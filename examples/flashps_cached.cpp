// flashps_cached: the shared cache-tier daemon.
//
// Exposes a net::CacheNode on a TCP port through TcpServer's service
// mode: the same poll loop, back-pressure, and graceful drain as
// flashps_served, with every cache fetch/put answered inline on the poll
// thread (the handlers are memcpy-scale). Workers configured with
// --cache-host/--cache-port — or with this node in their --cache-nodes
// ring list — fetch template activations here instead of re-registering
// them per process; a metrics frame (or SIGINT/SIGTERM at exit) reports
// the node's hit/miss/byte/eviction counters.
//
// --cache-precision sets the node's admission floor: lossless (the
// default) accepts only bitwise f32 puts — a misconfigured lossy worker
// is rejected loudly — while fp16/staged admit the matching compressed
// encodings. Entries rest in their wire form, so --max-bytes counts
// compressed bytes.
//
//   flashps_cached --port=7412 --max-bytes=0 --stats-every-s=10
//                  --cache-precision=lossless
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "src/common/flag_parser.h"
#include "src/net/cache_node.h"

using namespace flashps;

namespace {

std::sig_atomic_t g_signal = 0;

void OnSignal(int signum) { g_signal = signum; }

}  // namespace

int main(int argc, char** argv) {
  flags::FlagParser flags(argc, argv);

  net::CacheNodeOptions node_options;
  node_options.max_bytes = static_cast<size_t>(flags.LongInRange(
      "max-bytes", 0, 0, 1l << 40, "resident-byte cap (0 = unbounded)"));
  // Daemon default is the strictest floor: a fleet is bitwise-attested
  // unless the operator opts the node into compressed admissions.
  const std::string precision_name =
      flags.String("cache-precision", "lossless",
                   "admission floor: lossless|fp16|staged");

  net::TcpServerOptions server_options;
  server_options.port = static_cast<uint16_t>(
      flags.LongInRange("port", 7412, 0, 65535, "listen port (0 = ephemeral)"));
  server_options.max_inflight_per_conn = static_cast<int>(flags.LongInRange(
      "max-inflight", 64, 1, 1 << 16, "per-connection in-flight cap"));
  server_options.auth_token = flags.String(
      "auth-token", "", "shared secret; refuse unauthenticated sessions");
  const long stats_every_s = flags.LongInRange(
      "stats-every-s", 0, 0, 86400, "periodic stats print interval (0 = off)");

  const bool want_help = flags.Has("help", "print this help");
  const std::string usage = flags.HelpText(argv[0]);
  if (want_help) {
    std::fputs(usage.c_str(), stdout);
    return 0;
  }
  if (!flags.ok()) {
    std::fprintf(stderr, "%s%s", flags.ErrorText().c_str(), usage.c_str());
    return 2;
  }
  if (!quant::ParsePrecisionMode(precision_name, &node_options.admit)) {
    std::fprintf(stderr, "flashps_cached: bad --cache-precision=%s\n%s",
                 precision_name.c_str(), usage.c_str());
    return 2;
  }

  net::CacheNode node(node_options);
  net::TcpServer server(node.Service(), server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "flashps_cached: cannot listen on port %u\n",
                 server_options.port);
    return 1;
  }
  std::printf(
      "flashps_cached: listening on 127.0.0.1:%u (max-bytes=%zu, admit=%s)\n",
      server.port(), node_options.max_bytes,
      quant::ToString(node_options.admit).c_str());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  auto last_stats = std::chrono::steady_clock::now();
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (stats_every_s > 0 &&
        std::chrono::steady_clock::now() - last_stats >=
            std::chrono::seconds(stats_every_s)) {
      last_stats = std::chrono::steady_clock::now();
      std::printf("flashps_cached: %s\n", node.MetricsJson().c_str());
      std::fflush(stdout);
    }
  }

  std::printf("\nflashps_cached: signal %d, draining...\n",
              static_cast<int>(g_signal));
  server.Stop();
  std::printf("flashps_cached: final metrics\n%s\n",
              node.MetricsJson().c_str());
  return 0;
}
