// flashps_cached: the shared cache-tier daemon.
//
// Exposes a net::CacheNode on a TCP port through TcpServer's service
// mode: the same poll loop, back-pressure, and graceful drain as
// flashps_served, with every cache fetch/put answered inline on the poll
// thread (the handlers are memcpy-scale). Workers configured with
// --cache-host/--cache-port fetch template activations here instead of
// re-registering them per process; a metrics frame (or SIGINT/SIGTERM at
// exit) reports the node's hit/miss/byte/eviction counters.
//
//   flashps_cached --port=7412 --max-bytes=0 --stats-every-s=10
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/net/cache_node.h"

using namespace flashps;

namespace {

std::sig_atomic_t g_signal = 0;

void OnSignal(int signum) { g_signal = signum; }

// --key=value flag helpers (the daemon keeps argv parsing dependency-free).
bool FlagValue(int argc, char** argv, const char* key, std::string* out) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *out = argv[i] + prefix.size();
      return true;
    }
  }
  return false;
}

long FlagLong(int argc, char** argv, const char* key, long fallback) {
  std::string value;
  return FlagValue(argc, argv, key, &value) ? std::atol(value.c_str())
                                            : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  net::CacheNodeOptions node_options;
  node_options.max_bytes =
      static_cast<size_t>(FlagLong(argc, argv, "max-bytes", 0));

  net::TcpServerOptions server_options;
  server_options.port =
      static_cast<uint16_t>(FlagLong(argc, argv, "port", 7412));
  server_options.max_inflight_per_conn =
      static_cast<int>(FlagLong(argc, argv, "max-inflight", 64));

  net::CacheNode node(node_options);
  net::TcpServer server(node.Service(), server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "flashps_cached: cannot listen on port %u\n",
                 server_options.port);
    return 1;
  }
  std::printf("flashps_cached: listening on 127.0.0.1:%u (max-bytes=%zu)\n",
              server.port(), node_options.max_bytes);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  const long stats_every_s = FlagLong(argc, argv, "stats-every-s", 0);
  auto last_stats = std::chrono::steady_clock::now();
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (stats_every_s > 0 &&
        std::chrono::steady_clock::now() - last_stats >=
            std::chrono::seconds(stats_every_s)) {
      last_stats = std::chrono::steady_clock::now();
      std::printf("flashps_cached: %s\n", node.MetricsJson().c_str());
      std::fflush(stdout);
    }
  }

  std::printf("\nflashps_cached: signal %d, draining...\n",
              static_cast<int>(g_signal));
  server.Stop();
  std::printf("flashps_cached: final metrics\n%s\n",
              node.MetricsJson().c_str());
  return 0;
}
