// Image-restoration scenario (the paper's §2.2 Adetailer workflow): the
// editing mask is generated automatically from the image content — detect
// the salient region, pad it, and repaint only that region with the
// mask-aware engine. No user-supplied mask anywhere.
#include <cstdio>

#include "src/cache/activation_store.h"
#include "src/model/diffusion_model.h"
#include "src/quality/metrics.h"
#include "src/trace/auto_mask.h"

int main() {
  using namespace flashps;

  const model::NumericsConfig config =
      model::NumericsConfig::ForModelKind(model::ModelKind::kSdxl);
  const model::DiffusionModel diffusion(config);
  cache::ActivationStore store;

  std::printf("restoring 4 generated images (auto-generated masks):\n\n");
  double worst_ssim = 1.0;
  for (int template_id = 0; template_id < 4; ++template_id) {
    // The "freshly generated image" whose detail region needs repainting.
    const Matrix image =
        diffusion.DecodeLatent(diffusion.EncodeTemplate(template_id));

    // Adetailer substitute: find the salient region and pad it.
    trace::AutoMaskOptions detector;
    detector.threshold_sigmas = 1.2;
    detector.dilation = 2;
    detector.patch = config.patch;
    const trace::Mask mask = trace::GenerateAutoMask(image, detector);

    // Repaint: exact reference vs mask-aware with the cached activations.
    const uint64_t prompt_seed = 7000 + template_id;
    model::DiffusionModel::RunOptions exact;
    const Matrix reference =
        diffusion.EditImage(template_id, mask, prompt_seed, exact);

    model::DiffusionModel::RunOptions mask_aware;
    mask_aware.mode = model::ComputeMode::kMaskAwareY;
    mask_aware.cache = &store.GetOrRegister(diffusion, template_id);
    mask_aware.mask = &mask;
    const Matrix restored =
        diffusion.EditImage(template_id, mask, prompt_seed, mask_aware);

    const double ssim = quality::Ssim(reference, restored);
    worst_ssim = std::min(worst_ssim, ssim);
    std::printf(
        "template %d: auto mask covers %3zu/%d tokens (ratio %.2f), "
        "SSIM vs exact repaint %.4f\n",
        template_id, mask.masked_tokens.size(), mask.total_tokens(),
        mask.ratio(), ssim);
  }

  if (worst_ssim < 0.85) {
    std::printf("\nFAILED: restoration diverged from exact computation\n");
    return 1;
  }
  std::printf("\nOK: automatic masks drive mask-aware restoration with "
              "quality intact.\n");
  return 0;
}
