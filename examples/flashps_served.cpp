// flashps_served: the FlashPS serving daemon.
//
// Exposes a configured gateway::Gateway on a TCP port speaking the
// src/net wire protocol. Remote clients (net::Client, bench_net_loadgen)
// submit editing requests and receive admission status, per-stage
// latencies, and the output latent checksum; a metrics frame returns the
// gateway's MetricsJson(). SIGINT/SIGTERM triggers a graceful drain:
// stop admitting, finish in-flight requests, flush replies, then exit.
//
// Cache tier, three shapes:
//
//   (none)            — the fleet shares one in-process activation store.
//   --cache-host/--cache-port
//                     — one flashps_cached node behind a
//                       RemoteActivationStore (LRU front, single-flight,
//                       circuit breaker, local fallback).
//   --cache-nodes=host:port,host:port,...
//                     — a sharded, replicated cache ring: consistent-hash
//                       placement over every listed node,
//                       --cache-replication=k copies of each template,
//                       per-member circuit breakers, read repair, and
//                       failover down each template's preference list.
//                       Member health is probed at startup (metrics
//                       frame) and visible per member in the final
//                       metrics dump.
//
// Queue-ahead prefetch (--cache-prefetch=N, default 2) starts each
// admitted request's activation fetch while it waits behind earlier work,
// over --cache-connections wire connections (per ring member, when a ring
// is configured); set --cache-prefetch=0 for strictly on-demand fetches.
//
//   flashps_served --port=7411 --workers=2 --steps=8 --max-batch=4
//                  --policy=mask-aware --slo-ms=0 --stats-every-s=10
//                  [--cache-host=127.0.0.1 --cache-port=7412 |
//                   --cache-nodes=127.0.0.1:7412,127.0.0.1:7413,127.0.0.1:7414
//                   --cache-replication=2]
//                  [--cache-prefetch=2 --cache-connections=2]
//                  [--cache-precision=lossless|fp16|staged]
//
// --cache-precision picks the codec for records this worker PUBLISHES to
// the remote tier (fetches are self-describing): lossless ships bitwise
// f32, fp16 halves every frame, staged is fp16 for the early denoise
// steps and int8 for the late ones. Set the cache node's own
// --cache-precision at least as lax, or its admit policy rejects the
// puts.
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "src/cache/remote_store.h"
#include "src/cache/ring/sharded_store.h"
#include "src/common/flag_parser.h"
#include "src/net/tcp_server.h"
#include "src/trace/workload.h"

using namespace flashps;

namespace {

std::sig_atomic_t g_signal = 0;

void OnSignal(int signum) { g_signal = signum; }

}  // namespace

int main(int argc, char** argv) {
  flags::FlagParser flags(argc, argv);

  gateway::GatewayOptions options;
  options.num_workers = static_cast<int>(
      flags.LongInRange("workers", 2, 1, 256, "gateway worker count"));
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = static_cast<int>(
      flags.LongInRange("steps", 8, 1, 1024, "denoise steps per request"));
  options.worker.max_batch = static_cast<int>(
      flags.LongInRange("max-batch", 4, 1, 256, "max co-batched requests"));
  options.worker.compute_threads = static_cast<int>(flags.LongInRange(
      "compute-threads", 1, 1, 256, "denoise compute threads per worker"));
  options.worker.sparse_compute = flags.Has(
      "sparse-compute",
      "gathered-panel sparse compute: per-step work proportional to the "
      "mask ratio (records cached with K/V, 3x Y-only bytes)");
  const std::vector<std::string> resolution_args = flags.StringList(
      "resolutions",
      "extra latent grids to serve besides the native one, HxW,HxW,... "
      "(requests route by mask grid; needs --sparse-compute for "
      "patch-granular batching)");
  const std::string policy_name =
      flags.String("policy", "mask-aware",
                   "route policy: mask-aware|round-robin|first-fit|"
                   "request-count|token-count");
  const long slo_ms = flags.LongInRange(
      "slo-ms", 0, 0, 1l << 31, "per-request SLO (0 = no admission control)");
  options.slo = Duration::Millis(slo_ms);
  options.admission_control = slo_ms > 0;

  // Cache tier: a ring of cache nodes, a single node, or in-process.
  // Whatever the shape, every worker shares ONE ActivationSource (the
  // shared_ptr is copied into each worker's options) — never a
  // worker-private cache.
  const std::string cache_nodes = flags.String(
      "cache-nodes", "", "cache ring members, HOST:PORT,HOST:PORT,...");
  const std::string cache_host =
      flags.String("cache-host", "", "single remote cache node host");
  const int prefetch_workers = static_cast<int>(flags.LongInRange(
      "cache-prefetch", 2, 0, 64, "queue-ahead prefetch depth (0 = off)"));
  const int cache_connections = static_cast<int>(flags.LongInRange(
      "cache-connections", 2, 1, 64, "wire connections per cache node"));
  const int replication = static_cast<int>(flags.LongInRange(
      "cache-replication", 2, 1, 64, "copies of each template on the ring"));
  const uint16_t cache_port = static_cast<uint16_t>(flags.LongInRange(
      "cache-port", 7412, 1, 65535, "single remote cache node port"));
  const std::string precision_name =
      flags.String("cache-precision", "lossless",
                   "published record codec: lossless|fp16|staged");
  const std::string auth_token = flags.String(
      "auth-token", "", "shared secret; refuse unauthenticated sessions");

  net::TcpServerOptions server_options;
  server_options.port = static_cast<uint16_t>(
      flags.LongInRange("port", 7411, 0, 65535, "listen port (0 = ephemeral)"));
  server_options.max_inflight_per_conn = static_cast<int>(flags.LongInRange(
      "max-inflight", 32, 1, 1 << 16, "per-connection in-flight cap"));
  server_options.auth_token = auth_token;
  const long stats_every_s = flags.LongInRange(
      "stats-every-s", 0, 0, 86400, "periodic stats print interval (0 = off)");

  const bool want_help = flags.Has("help", "print this help");
  const std::string usage = flags.HelpText(argv[0]);
  if (want_help) {
    std::fputs(usage.c_str(), stdout);
    return 0;
  }
  if (!flags.ok()) {
    std::fprintf(stderr, "%s%s", flags.ErrorText().c_str(), usage.c_str());
    return 2;
  }
  if (!sched::ParseRoutePolicy(policy_name, &options.policy)) {
    std::fprintf(stderr, "flashps_served: bad --policy=%s\n%s",
                 policy_name.c_str(), usage.c_str());
    return 2;
  }
  quant::PrecisionMode precision = quant::PrecisionMode::kLossless;
  if (!quant::ParsePrecisionMode(precision_name, &precision)) {
    std::fprintf(stderr, "flashps_served: bad --cache-precision=%s\n%s",
                 precision_name.c_str(), usage.c_str());
    return 2;
  }
  for (const std::string& text : resolution_args) {
    int grid_h = 0;
    int grid_w = 0;
    if (!trace::ParseResolution(text, &grid_h, &grid_w)) {
      std::fprintf(stderr, "flashps_served: bad --resolutions entry '%s' "
                   "(expected HxW, e.g. 96x96)\n%s",
                   text.c_str(), usage.c_str());
      return 2;
    }
    options.worker.extra_resolutions.emplace_back(grid_h, grid_w);
  }

  std::string cache_label = "local";
  std::shared_ptr<cache::ShardedRemoteStore> ring_store;
  if (!cache_nodes.empty() && !cache_host.empty()) {
    std::fprintf(stderr,
                 "flashps_served: --cache-nodes and --cache-host are "
                 "mutually exclusive\n%s",
                 usage.c_str());
    return 2;
  }
  if (!cache_nodes.empty()) {
    std::string parse_error;
    cache::ShardedStoreOptions sharded;
    sharded.nodes = cache::ParseRingMembers(cache_nodes, &parse_error);
    if (sharded.nodes.empty()) {
      std::fprintf(stderr, "flashps_served: bad --cache-nodes: %s\n%s",
                   parse_error.c_str(), usage.c_str());
      return 2;
    }
    sharded.replication = replication;
    sharded.prefetch_workers = prefetch_workers;
    sharded.connections_per_member = cache_connections;
    sharded.precision = precision;
    sharded.auth_token = auth_token;
    ring_store = std::make_shared<cache::ShardedRemoteStore>(sharded);
    options.worker.activation_source = ring_store;
    cache_label = "ring(" + cache_nodes + ")";
  } else if (!cache_host.empty()) {
    cache::RemoteStoreOptions remote;
    remote.host = cache_host;
    remote.port = cache_port;
    remote.prefetch_workers = prefetch_workers;
    remote.connection_pool = cache_connections;
    remote.precision = precision;
    remote.auth_token = auth_token;
    options.worker.activation_source =
        std::make_shared<cache::RemoteActivationStore>(remote);
    cache_label = cache_host;
  } else {
    options.worker.activation_source =
        std::make_shared<cache::ActivationStore>();
  }

  std::printf("flashps_served: starting %d worker(s), %d steps, policy %s, "
              "slo %ld ms, cache %s, precision %s, compute %s\n",
              options.num_workers, options.worker.numerics.num_steps,
              policy_name.c_str(), slo_ms, cache_label.c_str(),
              quant::ToString(precision).c_str(),
              options.worker.sparse_compute ? "sparse (gathered)" : "dense");
  if (!options.worker.extra_resolutions.empty()) {
    std::string joined;
    for (const auto& [grid_h, grid_w] : options.worker.extra_resolutions) {
      joined += (joined.empty() ? "" : ",") + std::to_string(grid_h) + "x" +
                std::to_string(grid_w);
    }
    std::printf("flashps_served: extra resolutions %s\n", joined.c_str());
  }
  if (ring_store != nullptr) {
    // One probe per member so a mistyped node shows up at launch, not as
    // a circuit trip minutes in.
    const std::vector<bool> alive = ring_store->ProbeMembers();
    for (size_t i = 0; i < alive.size(); ++i) {
      std::printf("flashps_served: ring member %s: %s\n",
                  ring_store->ring().member(i).id().c_str(),
                  alive[i] ? "alive" : "UNREACHABLE");
    }
  }
  gateway::Gateway gateway(options);
  net::TcpServer server(gateway, server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "flashps_served: cannot listen on port %u\n",
                 server_options.port);
    return 1;
  }
  std::printf("flashps_served: listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  auto last_stats = std::chrono::steady_clock::now();
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (stats_every_s > 0 &&
        std::chrono::steady_clock::now() - last_stats >=
            std::chrono::seconds(stats_every_s)) {
      last_stats = std::chrono::steady_clock::now();
      const net::TcpServerStats stats = server.Stats();
      std::printf("flashps_served: conns=%llu frames=%llu responses=%llu "
                  "inflight=%llu\n",
                  static_cast<unsigned long long>(stats.connections_accepted),
                  static_cast<unsigned long long>(stats.frames_received),
                  static_cast<unsigned long long>(stats.responses_sent),
                  static_cast<unsigned long long>(server.inflight()));
      std::fflush(stdout);
    }
  }

  // Graceful drain: refuse new work, finish what is in flight, flush the
  // remaining replies, then tear everything down.
  std::printf("\nflashps_served: signal %d, draining...\n",
              static_cast<int>(g_signal));
  gateway.StopAccepting();
  server.Stop();
  gateway.Drain();
  std::printf("flashps_served: final metrics\n%s\n",
              gateway.MetricsJson().c_str());
  gateway.Stop();
  return 0;
}
