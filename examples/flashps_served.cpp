// flashps_served: the FlashPS serving daemon.
//
// Exposes a configured gateway::Gateway on a TCP port speaking the
// src/net wire protocol. Remote clients (net::Client, bench_net_loadgen)
// submit editing requests and receive admission status, per-stage
// latencies, and the output latent checksum; a metrics frame returns the
// gateway's MetricsJson(). SIGINT/SIGTERM triggers a graceful drain:
// stop admitting, finish in-flight requests, flush replies, then exit.
//
// With --cache-host/--cache-port set, the worker fleet shares a
// flashps_cached node: template activations are fetched over the wire
// (through each request's RemoteActivationStore LRU front) instead of
// being re-registered per process, and the final metrics include the
// remote store's hit/miss/fallback counters. Without the flags the fleet
// shares one in-process store — never a worker-private cache either way.
//
// Queue-ahead prefetch (--cache-prefetch=N, default 2) starts each
// admitted request's activation fetch while it waits behind earlier work,
// over a --cache-connections-sized connection pool; set
// --cache-prefetch=0 for strictly on-demand fetches.
//
//   flashps_served --port=7411 --workers=2 --steps=8 --max-batch=4
//                  --policy=mask-aware --slo-ms=0 --stats-every-s=10
//                  [--cache-host=127.0.0.1 --cache-port=7412
//                   --cache-prefetch=2 --cache-connections=2]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "src/cache/remote_store.h"
#include "src/net/tcp_server.h"

using namespace flashps;

namespace {

std::sig_atomic_t g_signal = 0;

void OnSignal(int signum) { g_signal = signum; }

// --key=value flag helpers (the daemon keeps argv parsing dependency-free).
bool FlagValue(int argc, char** argv, const char* key, std::string* out) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *out = argv[i] + prefix.size();
      return true;
    }
  }
  return false;
}

long FlagLong(int argc, char** argv, const char* key, long fallback) {
  std::string value;
  return FlagValue(argc, argv, key, &value) ? std::atol(value.c_str())
                                            : fallback;
}

sched::RoutePolicy ParsePolicy(const std::string& name) {
  if (name == "round-robin") return sched::RoutePolicy::kRoundRobin;
  if (name == "first-fit") return sched::RoutePolicy::kFirstFit;
  if (name == "request-count") return sched::RoutePolicy::kRequestCount;
  if (name == "token-count") return sched::RoutePolicy::kTokenCount;
  return sched::RoutePolicy::kMaskAware;
}

}  // namespace

int main(int argc, char** argv) {
  gateway::GatewayOptions options;
  options.num_workers = static_cast<int>(FlagLong(argc, argv, "workers", 2));
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps =
      static_cast<int>(FlagLong(argc, argv, "steps", 8));
  options.worker.max_batch =
      static_cast<int>(FlagLong(argc, argv, "max-batch", 4));
  options.worker.compute_threads =
      static_cast<int>(FlagLong(argc, argv, "compute-threads", 1));
  std::string policy_name = "mask-aware";
  FlagValue(argc, argv, "policy", &policy_name);
  options.policy = ParsePolicy(policy_name);
  const long slo_ms = FlagLong(argc, argv, "slo-ms", 0);
  options.slo = Duration::Millis(slo_ms);
  options.admission_control = slo_ms > 0;

  // Cache tier: with a cache node configured, every worker shares one
  // RemoteActivationStore (the shared_ptr is copied into each worker's
  // options); otherwise the fleet shares one in-process local store.
  std::string cache_host;
  const bool use_cache_node = FlagValue(argc, argv, "cache-host", &cache_host);
  if (use_cache_node) {
    cache::RemoteStoreOptions remote;
    remote.host = cache_host;
    remote.port =
        static_cast<uint16_t>(FlagLong(argc, argv, "cache-port", 7412));
    // --cache-prefetch=N: N background prefetch workers resolving the
    // gateway's queue-ahead hints (0 disables the pipeline).
    // --cache-connections=N: wire connections in the pool (the store
    // raises this so prefetch workers never starve foreground fetches).
    remote.prefetch_workers =
        static_cast<int>(FlagLong(argc, argv, "cache-prefetch", 2));
    remote.connection_pool =
        static_cast<int>(FlagLong(argc, argv, "cache-connections", 2));
    options.worker.activation_source =
        std::make_shared<cache::RemoteActivationStore>(remote);
  } else {
    options.worker.activation_source =
        std::make_shared<cache::ActivationStore>();
  }

  net::TcpServerOptions server_options;
  server_options.port = static_cast<uint16_t>(FlagLong(argc, argv, "port", 7411));
  server_options.max_inflight_per_conn =
      static_cast<int>(FlagLong(argc, argv, "max-inflight", 32));

  std::printf("flashps_served: starting %d worker(s), %d steps, policy %s, "
              "slo %ld ms, cache %s\n",
              options.num_workers, options.worker.numerics.num_steps,
              policy_name.c_str(), slo_ms,
              use_cache_node ? cache_host.c_str() : "local");
  gateway::Gateway gateway(options);
  net::TcpServer server(gateway, server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "flashps_served: cannot listen on port %u\n",
                 server_options.port);
    return 1;
  }
  std::printf("flashps_served: listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  const long stats_every_s = FlagLong(argc, argv, "stats-every-s", 0);
  auto last_stats = std::chrono::steady_clock::now();
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (stats_every_s > 0 &&
        std::chrono::steady_clock::now() - last_stats >=
            std::chrono::seconds(stats_every_s)) {
      last_stats = std::chrono::steady_clock::now();
      const net::TcpServerStats stats = server.Stats();
      std::printf("flashps_served: conns=%llu frames=%llu responses=%llu "
                  "inflight=%llu\n",
                  static_cast<unsigned long long>(stats.connections_accepted),
                  static_cast<unsigned long long>(stats.frames_received),
                  static_cast<unsigned long long>(stats.responses_sent),
                  static_cast<unsigned long long>(server.inflight()));
      std::fflush(stdout);
    }
  }

  // Graceful drain: refuse new work, finish what is in flight, flush the
  // remaining replies, then tear everything down.
  std::printf("\nflashps_served: signal %d, draining...\n",
              static_cast<int>(g_signal));
  gateway.StopAccepting();
  server.Stop();
  gateway.Drain();
  std::printf("flashps_served: final metrics\n%s\n",
              gateway.MetricsJson().c_str());
  gateway.Stop();
  return 0;
}
