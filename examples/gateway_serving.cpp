// Serving-gateway demo: a multi-worker frontend over real OnlineServer
// threads. Phase 1 replays a Poisson burst through each routing policy and
// prints per-policy latency percentiles and SLO attainment; phase 2 shows
// admission control rejecting an infeasible SLO up front instead of
// queueing doomed work.
#include <cstdio>
#include <vector>

#include "src/gateway/gateway.h"

using namespace flashps;

namespace {

gateway::GatewayOptions MakeOptions(sched::RoutePolicy policy) {
  gateway::GatewayOptions options;
  options.num_workers = 2;
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = 6;
  options.worker.max_batch = 3;
  options.policy = policy;
  options.slo = Duration::Seconds(2.0);  // Track attainment, admit everything.
  options.admission_control = false;
  return options;
}

}  // namespace

int main() {
  // A shared burst: 16 Poisson arrivals at ~10 rps, production-like masks.
  trace::WorkloadSpec spec;
  spec.num_requests = 16;
  spec.rps = 10.0;
  spec.seed = 12;
  const std::vector<trace::Request> burst = trace::GenerateWorkload(spec);

  std::printf("gateway serving: %d requests at %.0f rps over 2 real workers\n\n",
              spec.num_requests, spec.rps);
  std::printf("%-16s %-10s %-10s %-12s %-12s\n", "policy", "p50(ms)",
              "p99(ms)", "queue(ms)", "SLO attain");
  for (const auto policy :
       {sched::RoutePolicy::kRoundRobin, sched::RoutePolicy::kRequestCount,
        sched::RoutePolicy::kTokenCount, sched::RoutePolicy::kMaskAware}) {
    gateway::Gateway gw(MakeOptions(policy));
    gw.ReplayTrace(burst, /*mask_seed=*/5);
    gw.Drain();
    const gateway::MetricsSnapshot m = gw.Metrics();
    gw.Stop();
    std::printf("%-16s %-10.1f %-10.1f %-12.1f %-12.3f\n",
                sched::ToString(policy).c_str(), m.end_to_end.p50_ms,
                m.end_to_end.p99_ms, m.queueing.mean_ms, m.SloAttainment());
  }

  // Admission control: with a 1 ms SLO no request is feasible — each is
  // rejected with a distinct status instead of missing its deadline quietly.
  gateway::GatewayOptions strict = MakeOptions(sched::RoutePolicy::kMaskAware);
  strict.slo = Duration::Millis(1);
  strict.admission_control = true;
  gateway::Gateway gw(strict);
  gw.ReplayTrace(burst, /*mask_seed=*/5);
  gw.Drain();
  const gateway::MetricsSnapshot m = gw.Metrics();
  std::printf("\nadmission control at a 1 ms SLO: %llu submitted, %llu "
              "rejected-slo, %llu accepted\n",
              static_cast<unsigned long long>(m.submitted),
              static_cast<unsigned long long>(m.rejected_slo),
              static_cast<unsigned long long>(m.accepted));
  std::printf("\nmetrics json:\n%s\n", gw.MetricsJson().c_str());
  gw.Stop();
  return 0;
}
