// Quickstart: edit one image template with FlashPS's mask-aware engine and
// verify the result against exact (Diffusers-style) full computation.
//
// Demonstrates the core public API:
//   1. Build a diffusion model substrate.
//   2. Register a template (records its activation cache).
//   3. Run a mask-aware edit that reuses the cache for unmasked tokens.
//   4. Compare quality (SSIM) and accounted compute (FLOPs) vs full compute.
#include <cstdio>

#include "src/cache/activation_store.h"
#include "src/model/diffusion_model.h"
#include "src/model/flops.h"
#include "src/quality/metrics.h"

int main() {
  using namespace flashps;

  // A scaled-down SDXL-like model (see DESIGN.md for the substitution note).
  const model::NumericsConfig config =
      model::NumericsConfig::ForModelKind(model::ModelKind::kSdxl);
  const model::DiffusionModel diffusion(config);

  // An irregular editing mask covering ~20% of the image.
  Rng rng(1);
  const trace::Mask mask =
      trace::GenerateBlobMask(config.grid_h, config.grid_w, 0.2, rng);
  std::printf("mask: %zu of %d tokens masked (ratio %.2f)\n",
              mask.masked_tokens.size(), mask.total_tokens(), mask.ratio());

  // Register the template: one full pass that records per-block activations.
  cache::ActivationStore store;
  const int template_id = 7;
  const auto& record = store.GetOrRegister(diffusion, template_id);
  std::printf("registered template %d: %.1f MiB of cached activations\n",
              template_id,
              static_cast<double>(record.TotalBytes()) / (1 << 20));

  // Ground truth: full computation (what Diffusers would produce).
  model::DiffusionModel::RunOptions full;
  const Matrix img_full =
      diffusion.EditImage(template_id, mask, /*prompt_seed=*/99, full);

  // FlashPS: mask-aware edit reusing the cached activations.
  model::DiffusionModel::RunOptions mask_aware;
  mask_aware.mode = model::ComputeMode::kMaskAwareY;
  mask_aware.cache = &record;
  mask_aware.mask = &mask;
  const Matrix img_flash =
      diffusion.EditImage(template_id, mask, /*prompt_seed=*/99, mask_aware);

  const double ssim = quality::Ssim(img_full, img_flash);
  std::printf("SSIM(mask-aware, full) = %.4f\n", ssim);

  // Accounted compute per block (Table 1).
  const double flops_full =
      model::FlopsFullBlock(config.tokens(), config.hidden);
  const double flops_masked = model::FlopsYCacheBlock(
      config.tokens(), config.hidden, mask.ratio());
  std::printf("per-block FLOPs: full=%.1f M, mask-aware=%.1f M (%.2fx less)\n",
              flops_full / 1e6, flops_masked / 1e6,
              flops_full / flops_masked);

  if (ssim < 0.9) {
    std::printf("FAILED: mask-aware output diverged from full compute\n");
    return 1;
  }
  std::printf("OK: mask-aware editing matches full compute.\n");
  return 0;
}
