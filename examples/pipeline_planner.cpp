// Pipeline-planner explorer: shows how Algorithm 1's cache decisions shift
// with the mask ratio and the storage bandwidth — the design space of §4.2.
// Useful for understanding when selective recomputation beats caching.
#include <cstdio>
#include <string>

#include "src/model/timing.h"
#include "src/pipeline/pipeline.h"

namespace {

std::string Decisions(const std::vector<bool>& use_cache) {
  std::string out;
  for (const bool c : use_cache) {
    out += c ? 'C' : 'r';  // C = use cache, r = recompute.
  }
  return out;
}

}  // namespace

int main() {
  using namespace flashps;

  const auto config = model::TimingConfig::Get(model::ModelKind::kFlux);
  std::printf(
      "model: %s (%d cached block-groups per step)\n"
      "C = block uses cached activations, r = block recomputes in full\n\n",
      config.name.c_str(), config.num_groups);

  std::printf("%-8s %-10s %-22s %-12s %-12s %-12s\n", "mask", "bw(GB/s)",
              "decisions", "DP(ms)", "strawman", "ideal");
  for (const double bw_gbps : {1.0, 2.5, 8.0}) {
    device::DeviceSpec spec = device::DeviceSpec::Get(config.gpu);
    spec.gather_load_bw = bw_gbps * 1e9;
    for (const double m : {0.05, 0.2, 0.5}) {
      const double ratios[] = {m};
      const auto workload = model::BuildStepWorkload(
          config, ratios, model::ComputeMode::kMaskAwareY);
      const auto d = model::ComputeStepDurations(config, spec, workload);
      const auto plan = pipeline::PlanBubbleFree(
          d.compute_with_cache, d.compute_without_cache, d.load);
      const Duration strawman =
          pipeline::StrawmanPipelineLatency(d.compute_with_cache, d.load);
      const Duration ideal = pipeline::IdealLatency(d.compute_with_cache);
      std::printf("%-8.2f %-10.1f %-22s %-12.1f %-12.1f %-12.1f\n", m,
                  bw_gbps, Decisions(plan.use_cache).c_str(),
                  plan.latency.millis(), strawman.millis(), ideal.millis());
    }
  }

  std::printf(
      "\nreading the table: at low bandwidth / small masks, loading binds "
      "and the DP recomputes more blocks; at high bandwidth it caches "
      "everything and matches the ideal.\n");
  return 0;
}
