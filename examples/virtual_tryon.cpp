// Virtual try-on session (the paper's Fig. 1 scenario): one model-photo
// template is edited many times with different garments (prompt seeds) and
// differently shaped garment masks. Demonstrates end-to-end serving through
// the Service façade: registration amortization, mask-aware acceleration,
// continuous batching, and quality verification of every output against
// exact computation.
#include <cstdio>

#include "src/model/flops.h"
#include "src/quality/metrics.h"
#include "src/serving/service.h"

int main() {
  using namespace flashps;

  serving::ServiceConfig config;
  config.model = model::ModelKind::kSdxl;
  config.num_workers = 2;
  config.numerics = model::NumericsConfig::ForModelKind(model::ModelKind::kSdxl);

  serving::Service flashps_service(config);

  // Reference service: exact full computation (Diffusers-equivalent).
  serving::ServiceConfig reference_config = config;
  reference_config.mask_aware = false;
  serving::Service reference_service(reference_config);

  // A try-on session: 10 garment edits of the same model photo. Garment
  // masks are irregular blobs over the torso region; VITON-HD-like ratios.
  const int kTemplateId = 3;
  Rng rng(11);
  const trace::MaskRatioDistribution ratios(trace::TraceKind::kVitonHd);
  std::vector<serving::EditRequest> session;
  TimePoint arrival;
  for (int i = 0; i < 10; ++i) {
    serving::EditRequest request;
    request.template_id = kTemplateId;
    request.mask = trace::GenerateBlobMask(config.numerics.grid_h,
                                           config.numerics.grid_w,
                                           ratios.Sample(rng), rng);
    request.prompt_seed = 500 + i;  // A different garment each time.
    request.arrival = arrival;
    session.push_back(std::move(request));
    arrival = arrival + Duration::Seconds(rng.Exponential(1.0));
  }

  std::printf("serving %zu try-on edits of template %d...\n", session.size(),
              kTemplateId);
  const auto responses = flashps_service.Serve(session);
  const auto references = reference_service.Serve(session);

  double worst_ssim = 1.0;
  double total_latency = 0.0;
  double total_queue = 0.0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const double ssim =
        quality::Ssim(responses[i].image, references[i].image);
    worst_ssim = std::min(worst_ssim, ssim);
    total_latency += responses[i].timing.total().seconds();
    total_queue += responses[i].timing.queueing().seconds();
    std::printf(
        "edit %2zu: mask %.2f  worker %d  latency %5.2fs (queue %4.2fs)  "
        "SSIM vs exact %.4f\n",
        i, session[i].mask.ratio(), responses[i].worker_id,
        responses[i].timing.total().seconds(),
        responses[i].timing.queueing().seconds(), ssim);
  }
  const double ref_latency_one =
      references[0].timing.total().seconds();
  std::printf(
      "\nmean latency %.2fs (full-compute reference: %.2fs for an empty "
      "system), mean queueing %.2fs, worst SSIM %.4f\n",
      total_latency / responses.size(), ref_latency_one,
      total_queue / responses.size(), worst_ssim);

  if (worst_ssim < 0.85) {
    std::printf("FAILED: an edit diverged from exact computation\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
