// Cluster serving walkthrough: generates production-like traffic and
// compares the four serving systems (Diffusers, FISEdit, TeaCache, FlashPS)
// plus FlashPS's internal policy knobs (batching, routing) on an 8-worker
// cluster — the experiment a capacity planner would run before deployment.
#include <cstdio>

#include "src/cluster/simulation.h"

namespace {

void Report(const char* label, const flashps::cluster::SimResult& result) {
  std::printf("%-28s avg %6.2fs  p95 %6.2fs  queue %5.2fs  thr %.3f rps\n",
              label, result.total_latency_s.Mean(),
              result.total_latency_s.P95(), result.queueing_s.Mean(),
              result.throughput_rps);
}

}  // namespace

int main() {
  using namespace flashps;

  trace::WorkloadSpec workload;
  workload.trace = trace::TraceKind::kProduction;
  workload.rps = 2.0;
  workload.num_requests = 200;
  const auto requests = trace::GenerateWorkload(workload);
  std::printf(
      "workload: %d requests at %.1f rps, production mask distribution, "
      "%d templates (Zipf)\n\n",
      workload.num_requests, workload.rps, workload.num_templates);

  // 1) The four systems, as configured in the paper's evaluation.
  std::printf("--- systems (SDXL, 8 H800 workers) ---\n");
  for (const serving::SystemKind system :
       {serving::SystemKind::kDiffusers, serving::SystemKind::kTeaCache,
        serving::SystemKind::kFlashPS}) {
    cluster::ClusterConfig config;
    config.num_workers = 8;
    config.engine =
        serving::EngineConfig::ForSystem(system, model::ModelKind::kSdxl);
    config.policy = system == serving::SystemKind::kFlashPS
                        ? sched::RoutePolicy::kMaskAware
                        : sched::RoutePolicy::kRequestCount;
    Report(ToString(system).c_str(), cluster::RunClusterSim(config, requests));
  }

  // 2) FlashPS with each batching policy (everything else fixed).
  std::printf("\n--- FlashPS batching policy ablation ---\n");
  for (const serving::BatchPolicy policy :
       {serving::BatchPolicy::kStatic, serving::BatchPolicy::kContinuousNaive,
        serving::BatchPolicy::kContinuousDisaggregated}) {
    cluster::ClusterConfig config;
    config.num_workers = 8;
    config.engine = serving::EngineConfig::ForSystem(
        serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
    config.engine.batching = policy;
    Report(ToString(policy).c_str(), cluster::RunClusterSim(config, requests));
  }

  // 3) FlashPS with each routing policy.
  std::printf("\n--- FlashPS routing policy ablation ---\n");
  for (const sched::RoutePolicy policy :
       {sched::RoutePolicy::kRoundRobin, sched::RoutePolicy::kRequestCount,
        sched::RoutePolicy::kTokenCount, sched::RoutePolicy::kMaskAware}) {
    cluster::ClusterConfig config;
    config.num_workers = 8;
    config.engine = serving::EngineConfig::ForSystem(
        serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
    config.policy = policy;
    Report(ToString(policy).c_str(), cluster::RunClusterSim(config, requests));
  }

  // 4) With the hierarchical cache engine and a small host tier: cold
  // templates promote from disk while queued.
  std::printf("\n--- hierarchical cache (host tier = 16 templates) ---\n");
  cluster::ClusterConfig config;
  config.num_workers = 8;
  config.engine = serving::EngineConfig::ForSystem(
      serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
  config.use_cache_engine = true;
  config.host_capacity_bytes =
      16 * config.engine.model_config.TemplateCacheStoreBytes();
  Report("FlashPS + cache engine", cluster::RunClusterSim(config, requests));

  return 0;
}
