// flashps_fed: the cluster control plane / federated front tier.
//
// Listens on a TCP port speaking the exact wire protocol flashps_served
// speaks — clients cannot tell a federation from a single node — and
// fulfils every submit by routing it to one of the flashps_served nodes
// named in --nodes. The control plane joins each node at startup (pulling
// its profiled latency model out of its MetricsJson), heartbeats the
// fleet every --probe-interval ms, and fails requests over to siblings
// when a node dies mid-trace; because node outputs are bitwise
// deterministic, the failed-over replies carry the identical latent
// checksums the dead node would have produced.
//
// A metrics frame answers with the cluster rollup: federation counters
// under "fed" plus a per-node "members" array with each node's own
// MetricsJson spliced in — one query reads the whole fleet.
//
//   flashps_fed --port=7410 --nodes=127.0.0.1:7411,127.0.0.1:7421
//               --route=mask-aware --probe-interval=200
//               [--auth-token=SECRET]
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/cache/ring/cache_ring.h"
#include "src/common/flag_parser.h"
#include "src/fed/fed_gateway.h"
#include "src/net/tcp_server.h"
#include "src/trace/workload.h"

using namespace flashps;

namespace {

std::sig_atomic_t g_signal = 0;

void OnSignal(int signum) { g_signal = signum; }

}  // namespace

int main(int argc, char** argv) {
  flags::FlagParser flags(argc, argv);

  fed::FedGatewayOptions options;
  const std::string nodes_csv = flags.String(
      "nodes", "", "fleet members, HOST:PORT,HOST:PORT,... (required)");
  const std::string route_name =
      flags.String("route", "mask-aware",
                   "route policy: mask-aware|round-robin|first-fit|"
                   "request-count|token-count");
  options.registry.probe_interval =
      std::chrono::milliseconds(flags.LongInRange(
          "probe-interval", 200, 10, 60000, "heartbeat interval (ms)"));
  options.registry.probe_timeout =
      std::chrono::milliseconds(flags.LongInRange(
          "probe-timeout", 250, 10, 60000, "heartbeat reply deadline (ms)"));
  options.connections_per_node = static_cast<int>(flags.LongInRange(
      "connections-per-node", 2, 1, 64, "dispatcher connections per node"));
  options.call_timeout = std::chrono::milliseconds(flags.LongInRange(
      "call-timeout-ms", 30000, 100, 600000, "per-dispatch reply deadline"));
  options.max_attempts = static_cast<int>(flags.LongInRange(
      "max-attempts", 0, 0, 1024,
      "transport failures before a request fails (0 = 3x fleet size)"));
  options.auth_token = flags.String(
      "auth-token", "", "shared secret; presented to nodes AND required "
                        "of clients when set");
  // The front runs no model of its own; this flag states what the fleet is
  // EXPECTED to serve, checked against each node's advertised latency_model
  // splice at join time. A mismatch still routes correctly (each node is
  // priced by its own fitted line) but is worth a loud warning: mixed
  // fleets return bitwise-identical latents at different speeds, which
  // skews SLO attainment.
  const bool expect_sparse = flags.Has(
      "sparse-compute",
      "expect every node to serve the gathered sparse compute path; warn "
      "at join time when a node advertises otherwise");
  // Same expectation pattern for resolutions: the front never builds a
  // model, so --resolutions only declares which extra grids the fleet is
  // supposed to serve. A node whose profile lacks a fit for one of them
  // still works (cost falls back to the token-scaled primary fit) but
  // routes on a cruder estimate — warn at join time.
  const std::vector<std::string> resolution_args = flags.StringList(
      "resolutions",
      "extra latent grids the fleet is expected to profile, HxW,HxW,...; "
      "warn at join time when a node's profile lacks one");

  net::TcpServerOptions server_options;
  server_options.port = static_cast<uint16_t>(
      flags.LongInRange("port", 7410, 0, 65535, "listen port (0 = ephemeral)"));
  server_options.max_inflight_per_conn = static_cast<int>(flags.LongInRange(
      "max-inflight", 64, 1, 1 << 16, "per-connection in-flight cap"));
  server_options.auth_token = options.auth_token;
  const long stats_every_s = flags.LongInRange(
      "stats-every-s", 0, 0, 86400, "periodic stats print interval (0 = off)");

  const bool want_help = flags.Has("help", "print this help");
  const std::string usage = flags.HelpText(argv[0]);
  if (want_help) {
    std::fputs(usage.c_str(), stdout);
    return 0;
  }
  if (!flags.ok()) {
    std::fprintf(stderr, "%s%s", flags.ErrorText().c_str(), usage.c_str());
    return 2;
  }
  if (!sched::ParseRoutePolicy(route_name, &options.policy)) {
    std::fprintf(stderr, "flashps_fed: bad --route=%s\n%s", route_name.c_str(),
                 usage.c_str());
    return 2;
  }
  std::string parse_error;
  const std::vector<cache::RingMember> members =
      cache::ParseRingMembers(nodes_csv, &parse_error);
  if (members.empty()) {
    std::fprintf(stderr, "flashps_fed: bad --nodes: %s\n%s",
                 parse_error.empty() ? "at least one node is required"
                                     : parse_error.c_str(),
                 usage.c_str());
    return 2;
  }
  for (const cache::RingMember& m : members) {
    options.nodes.push_back(fed::FedNode{m.host, m.port});
  }
  std::vector<std::pair<int, int>> expected_resolutions;
  for (const std::string& text : resolution_args) {
    int grid_h = 0;
    int grid_w = 0;
    if (!trace::ParseResolution(text, &grid_h, &grid_w)) {
      std::fprintf(stderr, "flashps_fed: bad --resolutions entry '%s' "
                   "(expected HxW, e.g. 96x96)\n%s",
                   text.c_str(), usage.c_str());
      return 2;
    }
    expected_resolutions.emplace_back(grid_h, grid_w);
  }

  fed::FedGateway fed_gateway(options);
  fed_gateway.Start();
  for (size_t i = 0; i < fed_gateway.registry().size(); ++i) {
    const fed::NodeInfo info = fed_gateway.registry().Info(static_cast<int>(i));
    std::printf("flashps_fed: node %s: %s%s%s\n", info.node.id().c_str(),
                fed::ToString(info.health).c_str(),
                info.profile_loaded ? " (profile loaded)" : "",
                info.sparse_compute ? " (sparse compute)" : "");
    if (info.profile_loaded && info.sparse_compute != expect_sparse) {
      std::fprintf(stderr,
                   "flashps_fed: WARNING: node %s advertises %s compute but "
                   "this front %s --sparse-compute; fleet is mixed-speed\n",
                   info.node.id().c_str(),
                   info.sparse_compute ? "sparse" : "dense",
                   expect_sparse ? "was launched with" : "was launched without");
    }
    if (info.profile_loaded && !expected_resolutions.empty()) {
      const std::shared_ptr<const sched::LatencyModel> model =
          fed_gateway.registry().model(static_cast<int>(i));
      for (const auto& [grid_h, grid_w] : expected_resolutions) {
        if (model == nullptr) {
          break;
        }
        if (grid_h == model->primary_grid_h() &&
            grid_w == model->primary_grid_w()) {
          continue;  // The node's native grid needs no extra fit.
        }
        bool fitted = false;
        for (const sched::LatencyModel::ResolutionFit& fit :
             model->resolution_fits()) {
          if (fit.grid_h == grid_h && fit.grid_w == grid_w) {
            fitted = true;
            break;
          }
        }
        if (!fitted) {
          std::fprintf(stderr,
                       "flashps_fed: WARNING: node %s has no profiled fit for "
                       "%dx%d; its cost estimate falls back to the "
                       "token-scaled primary fit\n",
                       info.node.id().c_str(), grid_h, grid_w);
        }
      }
    }
  }

  net::TcpServer server(fed_gateway, server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "flashps_fed: cannot listen on port %u\n",
                 server_options.port);
    fed_gateway.Stop();
    return 1;
  }
  std::printf("flashps_fed: listening on 127.0.0.1:%u, %zu node(s), route %s\n",
              server.port(), fed_gateway.registry().size(),
              route_name.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  auto last_stats = std::chrono::steady_clock::now();
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (stats_every_s > 0 &&
        std::chrono::steady_clock::now() - last_stats >=
            std::chrono::seconds(stats_every_s)) {
      last_stats = std::chrono::steady_clock::now();
      const fed::FedGateway::Stats s = fed_gateway.stats();
      std::printf("flashps_fed: submitted=%llu completed=%llu failed=%llu "
                  "redispatched=%llu outstanding=%llu parked=%llu\n",
                  static_cast<unsigned long long>(s.submitted),
                  static_cast<unsigned long long>(s.completed),
                  static_cast<unsigned long long>(s.failed),
                  static_cast<unsigned long long>(s.redispatched),
                  static_cast<unsigned long long>(s.outstanding),
                  static_cast<unsigned long long>(s.parked));
      std::fflush(stdout);
    }
  }

  // Graceful drain: refuse new submits, let the fleet finish what is in
  // flight, flush replies, then tear down.
  std::printf("\nflashps_fed: signal %d, draining...\n",
              static_cast<int>(g_signal));
  fed_gateway.StopAccepting();
  server.Stop();
  fed_gateway.Drain();
  std::printf("flashps_fed: final metrics\n%s\n",
              fed_gateway.MetricsJson().c_str());
  fed_gateway.Stop();
  return 0;
}
