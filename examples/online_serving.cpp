// Real-time serving demo: the actual-concurrency runtime (threads, queues,
// futures) serving a stream of edits, comparing FlashPS's disaggregated
// continuous batching against the strawman that runs pre/post-processing on
// the denoise thread. Wall-clock numbers, real math.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/stats.h"
#include "src/runtime/online_server.h"

namespace {

struct RunStats {
  double mean_total_ms = 0.0;
  double p95_total_ms = 0.0;
  double mean_queue_ms = 0.0;
};

RunStats RunSession(bool disaggregate, bool mask_aware) {
  using namespace flashps;
  runtime::OnlineServer::Options options;
  options.numerics = model::NumericsConfig::ForTests();
  options.max_batch = 3;
  options.disaggregate = disaggregate;
  options.mask_aware = mask_aware;
  runtime::OnlineServer server(options);

  Rng rng(17);
  std::vector<std::future<runtime::OnlineResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    runtime::OnlineRequest request;
    request.template_id = i % 3;
    request.mask = trace::GenerateBlobMask(options.numerics.grid_h,
                                           options.numerics.grid_w,
                                           0.1 + 0.25 * rng.NextDouble(), rng);
    request.prompt_seed = 4000 + i;
    futures.push_back(server.Submit(std::move(request)));
    // A paced arrival stream.
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }

  StatAccumulator total_ms;
  StatAccumulator queue_ms;
  for (auto& f : futures) {
    const auto response = f.get();
    total_ms.Add(response.total_ms());
    queue_ms.Add(response.queueing_ms());
  }
  server.Stop();
  return RunStats{total_ms.Mean(), total_ms.P95(), queue_ms.Mean()};
}

}  // namespace

int main() {
  std::printf("online serving, 12 requests at ~25 rps (real threads, real "
              "math, wall clock):\n\n");
  std::printf("%-34s %-12s %-12s %-12s\n", "configuration", "mean(ms)",
              "p95(ms)", "queue(ms)");
  const RunStats flash = RunSession(/*disaggregate=*/true, /*mask_aware=*/true);
  std::printf("%-34s %-12.1f %-12.1f %-12.1f\n",
              "FlashPS (mask-aware, disagg.)", flash.mean_total_ms,
              flash.p95_total_ms, flash.mean_queue_ms);
  const RunStats strawman =
      RunSession(/*disaggregate=*/false, /*mask_aware=*/true);
  std::printf("%-34s %-12.1f %-12.1f %-12.1f\n",
              "strawman (pre/post on denoise)", strawman.mean_total_ms,
              strawman.p95_total_ms, strawman.mean_queue_ms);
  const RunStats full = RunSession(/*disaggregate=*/true, /*mask_aware=*/false);
  std::printf("%-34s %-12.1f %-12.1f %-12.1f\n", "full compute (Diffusers)",
              full.mean_total_ms, full.p95_total_ms, full.mean_queue_ms);

  std::printf("\nmask-aware + disaggregation should show the lowest "
              "latencies; exact figures vary with host load.\n");
  return 0;
}
