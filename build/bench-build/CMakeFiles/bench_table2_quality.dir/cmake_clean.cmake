file(REMOVE_RECURSE
  "../bench/bench_table2_quality"
  "../bench/bench_table2_quality.pdb"
  "CMakeFiles/bench_table2_quality.dir/bench_table2_quality.cc.o"
  "CMakeFiles/bench_table2_quality.dir/bench_table2_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
