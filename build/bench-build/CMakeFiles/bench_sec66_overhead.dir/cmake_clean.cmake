file(REMOVE_RECURSE
  "../bench/bench_sec66_overhead"
  "../bench/bench_sec66_overhead.pdb"
  "CMakeFiles/bench_sec66_overhead.dir/bench_sec66_overhead.cc.o"
  "CMakeFiles/bench_sec66_overhead.dir/bench_sec66_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec66_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
