# Empty dependencies file for bench_sec66_overhead.
# This may be replaced when dependencies are built.
