file(REMOVE_RECURSE
  "../bench/bench_fig16_batching_lb"
  "../bench/bench_fig16_batching_lb.pdb"
  "CMakeFiles/bench_fig16_batching_lb.dir/bench_fig16_batching_lb.cc.o"
  "CMakeFiles/bench_fig16_batching_lb.dir/bench_fig16_batching_lb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_batching_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
