# Empty dependencies file for bench_fig16_batching_lb.
# This may be replaced when dependencies are built.
