# Empty compiler generated dependencies file for bench_ablation_kv_vs_y.
# This may be replaced when dependencies are built.
