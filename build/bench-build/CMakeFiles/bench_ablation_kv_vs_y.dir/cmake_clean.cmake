file(REMOVE_RECURSE
  "../bench/bench_ablation_kv_vs_y"
  "../bench/bench_ablation_kv_vs_y.pdb"
  "CMakeFiles/bench_ablation_kv_vs_y.dir/bench_ablation_kv_vs_y.cc.o"
  "CMakeFiles/bench_ablation_kv_vs_y.dir/bench_ablation_kv_vs_y.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kv_vs_y.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
