file(REMOVE_RECURSE
  "../bench/bench_sec42_storage"
  "../bench/bench_sec42_storage.pdb"
  "CMakeFiles/bench_sec42_storage.dir/bench_sec42_storage.cc.o"
  "CMakeFiles/bench_sec42_storage.dir/bench_sec42_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
