# Empty dependencies file for bench_fig15_mask_ratio.
# This may be replaced when dependencies are built.
