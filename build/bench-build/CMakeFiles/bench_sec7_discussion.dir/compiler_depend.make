# Empty compiler generated dependencies file for bench_sec7_discussion.
# This may be replaced when dependencies are built.
