file(REMOVE_RECURSE
  "../bench/bench_sec7_discussion"
  "../bench/bench_sec7_discussion.pdb"
  "CMakeFiles/bench_sec7_discussion.dir/bench_sec7_discussion.cc.o"
  "CMakeFiles/bench_sec7_discussion.dir/bench_sec7_discussion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_discussion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
