file(REMOVE_RECURSE
  "../bench/bench_fig04_motivation"
  "../bench/bench_fig04_motivation.pdb"
  "CMakeFiles/bench_fig04_motivation.dir/bench_fig04_motivation.cc.o"
  "CMakeFiles/bench_fig04_motivation.dir/bench_fig04_motivation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
