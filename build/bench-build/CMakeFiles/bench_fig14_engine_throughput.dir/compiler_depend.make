# Empty compiler generated dependencies file for bench_fig14_engine_throughput.
# This may be replaced when dependencies are built.
