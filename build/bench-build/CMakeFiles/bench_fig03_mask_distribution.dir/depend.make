# Empty dependencies file for bench_fig03_mask_distribution.
# This may be replaced when dependencies are built.
