file(REMOVE_RECURSE
  "../bench/bench_fig03_mask_distribution"
  "../bench/bench_fig03_mask_distribution.pdb"
  "CMakeFiles/bench_fig03_mask_distribution.dir/bench_fig03_mask_distribution.cc.o"
  "CMakeFiles/bench_fig03_mask_distribution.dir/bench_fig03_mask_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_mask_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
