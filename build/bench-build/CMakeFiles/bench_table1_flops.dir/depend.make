# Empty dependencies file for bench_table1_flops.
# This may be replaced when dependencies are built.
