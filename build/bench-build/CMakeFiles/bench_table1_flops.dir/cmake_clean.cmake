file(REMOVE_RECURSE
  "../bench/bench_table1_flops"
  "../bench/bench_table1_flops.pdb"
  "CMakeFiles/bench_table1_flops.dir/bench_table1_flops.cc.o"
  "CMakeFiles/bench_table1_flops.dir/bench_table1_flops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
