file(REMOVE_RECURSE
  "../bench/bench_fig13_examples"
  "../bench/bench_fig13_examples.pdb"
  "CMakeFiles/bench_fig13_examples.dir/bench_fig13_examples.cc.o"
  "CMakeFiles/bench_fig13_examples.dir/bench_fig13_examples.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
