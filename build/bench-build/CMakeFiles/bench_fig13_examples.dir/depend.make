# Empty dependencies file for bench_fig13_examples.
# This may be replaced when dependencies are built.
