# Empty compiler generated dependencies file for bench_fig11_regression.
# This may be replaced when dependencies are built.
