# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/flops_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/transformer_test[1]_include.cmake")
include("/root/repo/build/tests/diffusion_model_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/disk_store_test[1]_include.cmake")
include("/root/repo/build/tests/quality_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/service_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/auto_mask_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
