file(REMOVE_RECURSE
  "CMakeFiles/auto_mask_test.dir/auto_mask_test.cc.o"
  "CMakeFiles/auto_mask_test.dir/auto_mask_test.cc.o.d"
  "auto_mask_test"
  "auto_mask_test.pdb"
  "auto_mask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_mask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
