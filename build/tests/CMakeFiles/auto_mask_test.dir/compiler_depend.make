# Empty compiler generated dependencies file for auto_mask_test.
# This may be replaced when dependencies are built.
