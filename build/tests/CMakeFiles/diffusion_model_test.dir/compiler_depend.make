# Empty compiler generated dependencies file for diffusion_model_test.
# This may be replaced when dependencies are built.
