file(REMOVE_RECURSE
  "CMakeFiles/diffusion_model_test.dir/diffusion_model_test.cc.o"
  "CMakeFiles/diffusion_model_test.dir/diffusion_model_test.cc.o.d"
  "diffusion_model_test"
  "diffusion_model_test.pdb"
  "diffusion_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffusion_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
