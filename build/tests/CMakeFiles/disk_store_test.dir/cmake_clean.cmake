file(REMOVE_RECURSE
  "CMakeFiles/disk_store_test.dir/disk_store_test.cc.o"
  "CMakeFiles/disk_store_test.dir/disk_store_test.cc.o.d"
  "disk_store_test"
  "disk_store_test.pdb"
  "disk_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
