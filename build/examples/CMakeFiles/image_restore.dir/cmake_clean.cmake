file(REMOVE_RECURSE
  "CMakeFiles/image_restore.dir/image_restore.cpp.o"
  "CMakeFiles/image_restore.dir/image_restore.cpp.o.d"
  "image_restore"
  "image_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
