# Empty compiler generated dependencies file for image_restore.
# This may be replaced when dependencies are built.
