file(REMOVE_RECURSE
  "CMakeFiles/virtual_tryon.dir/virtual_tryon.cpp.o"
  "CMakeFiles/virtual_tryon.dir/virtual_tryon.cpp.o.d"
  "virtual_tryon"
  "virtual_tryon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_tryon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
