# Empty compiler generated dependencies file for virtual_tryon.
# This may be replaced when dependencies are built.
