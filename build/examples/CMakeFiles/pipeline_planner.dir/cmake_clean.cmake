file(REMOVE_RECURSE
  "CMakeFiles/pipeline_planner.dir/pipeline_planner.cpp.o"
  "CMakeFiles/pipeline_planner.dir/pipeline_planner.cpp.o.d"
  "pipeline_planner"
  "pipeline_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
