file(REMOVE_RECURSE
  "libflashps_model.a"
)
