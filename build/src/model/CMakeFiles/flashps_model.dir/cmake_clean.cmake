file(REMOVE_RECURSE
  "CMakeFiles/flashps_model.dir/diffusion_model.cc.o"
  "CMakeFiles/flashps_model.dir/diffusion_model.cc.o.d"
  "CMakeFiles/flashps_model.dir/flops.cc.o"
  "CMakeFiles/flashps_model.dir/flops.cc.o.d"
  "CMakeFiles/flashps_model.dir/timing.cc.o"
  "CMakeFiles/flashps_model.dir/timing.cc.o.d"
  "CMakeFiles/flashps_model.dir/transformer.cc.o"
  "CMakeFiles/flashps_model.dir/transformer.cc.o.d"
  "libflashps_model.a"
  "libflashps_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
