# Empty compiler generated dependencies file for flashps_model.
# This may be replaced when dependencies are built.
