# Empty dependencies file for flashps_cache.
# This may be replaced when dependencies are built.
