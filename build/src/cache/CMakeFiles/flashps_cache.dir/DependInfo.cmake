
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/activation_store.cc" "src/cache/CMakeFiles/flashps_cache.dir/activation_store.cc.o" "gcc" "src/cache/CMakeFiles/flashps_cache.dir/activation_store.cc.o.d"
  "/root/repo/src/cache/cache_engine.cc" "src/cache/CMakeFiles/flashps_cache.dir/cache_engine.cc.o" "gcc" "src/cache/CMakeFiles/flashps_cache.dir/cache_engine.cc.o.d"
  "/root/repo/src/cache/disk_store.cc" "src/cache/CMakeFiles/flashps_cache.dir/disk_store.cc.o" "gcc" "src/cache/CMakeFiles/flashps_cache.dir/disk_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flashps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/flashps_device.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/flashps_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/flashps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flashps_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
