file(REMOVE_RECURSE
  "CMakeFiles/flashps_cache.dir/activation_store.cc.o"
  "CMakeFiles/flashps_cache.dir/activation_store.cc.o.d"
  "CMakeFiles/flashps_cache.dir/cache_engine.cc.o"
  "CMakeFiles/flashps_cache.dir/cache_engine.cc.o.d"
  "CMakeFiles/flashps_cache.dir/disk_store.cc.o"
  "CMakeFiles/flashps_cache.dir/disk_store.cc.o.d"
  "libflashps_cache.a"
  "libflashps_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
