file(REMOVE_RECURSE
  "libflashps_cache.a"
)
