# Empty compiler generated dependencies file for flashps_sched.
# This may be replaced when dependencies are built.
