file(REMOVE_RECURSE
  "libflashps_sched.a"
)
