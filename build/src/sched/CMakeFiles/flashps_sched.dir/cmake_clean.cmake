file(REMOVE_RECURSE
  "CMakeFiles/flashps_sched.dir/latency_model.cc.o"
  "CMakeFiles/flashps_sched.dir/latency_model.cc.o.d"
  "CMakeFiles/flashps_sched.dir/scheduler.cc.o"
  "CMakeFiles/flashps_sched.dir/scheduler.cc.o.d"
  "libflashps_sched.a"
  "libflashps_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
