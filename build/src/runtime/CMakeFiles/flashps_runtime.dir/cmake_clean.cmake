file(REMOVE_RECURSE
  "CMakeFiles/flashps_runtime.dir/online_server.cc.o"
  "CMakeFiles/flashps_runtime.dir/online_server.cc.o.d"
  "CMakeFiles/flashps_runtime.dir/thread_pool.cc.o"
  "CMakeFiles/flashps_runtime.dir/thread_pool.cc.o.d"
  "libflashps_runtime.a"
  "libflashps_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
