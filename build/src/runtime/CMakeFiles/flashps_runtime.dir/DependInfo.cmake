
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/online_server.cc" "src/runtime/CMakeFiles/flashps_runtime.dir/online_server.cc.o" "gcc" "src/runtime/CMakeFiles/flashps_runtime.dir/online_server.cc.o.d"
  "/root/repo/src/runtime/thread_pool.cc" "src/runtime/CMakeFiles/flashps_runtime.dir/thread_pool.cc.o" "gcc" "src/runtime/CMakeFiles/flashps_runtime.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/flashps_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/flashps_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/flashps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flashps_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/flashps_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flashps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
