file(REMOVE_RECURSE
  "libflashps_runtime.a"
)
