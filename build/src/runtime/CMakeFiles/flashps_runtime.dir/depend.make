# Empty dependencies file for flashps_runtime.
# This may be replaced when dependencies are built.
