# Empty dependencies file for flashps_common.
# This may be replaced when dependencies are built.
