file(REMOVE_RECURSE
  "libflashps_common.a"
)
