file(REMOVE_RECURSE
  "CMakeFiles/flashps_common.dir/log.cc.o"
  "CMakeFiles/flashps_common.dir/log.cc.o.d"
  "CMakeFiles/flashps_common.dir/rng.cc.o"
  "CMakeFiles/flashps_common.dir/rng.cc.o.d"
  "CMakeFiles/flashps_common.dir/stats.cc.o"
  "CMakeFiles/flashps_common.dir/stats.cc.o.d"
  "libflashps_common.a"
  "libflashps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
