file(REMOVE_RECURSE
  "CMakeFiles/flashps_cluster.dir/simulation.cc.o"
  "CMakeFiles/flashps_cluster.dir/simulation.cc.o.d"
  "libflashps_cluster.a"
  "libflashps_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
