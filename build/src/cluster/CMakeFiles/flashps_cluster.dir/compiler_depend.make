# Empty compiler generated dependencies file for flashps_cluster.
# This may be replaced when dependencies are built.
