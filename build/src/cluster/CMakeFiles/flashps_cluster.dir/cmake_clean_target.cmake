file(REMOVE_RECURSE
  "libflashps_cluster.a"
)
