file(REMOVE_RECURSE
  "CMakeFiles/flashps_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/flashps_pipeline.dir/pipeline.cc.o.d"
  "libflashps_pipeline.a"
  "libflashps_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
