# Empty dependencies file for flashps_pipeline.
# This may be replaced when dependencies are built.
