file(REMOVE_RECURSE
  "libflashps_pipeline.a"
)
