# Empty dependencies file for flashps_tensor.
# This may be replaced when dependencies are built.
