file(REMOVE_RECURSE
  "libflashps_tensor.a"
)
