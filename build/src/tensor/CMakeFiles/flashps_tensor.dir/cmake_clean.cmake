file(REMOVE_RECURSE
  "CMakeFiles/flashps_tensor.dir/matrix.cc.o"
  "CMakeFiles/flashps_tensor.dir/matrix.cc.o.d"
  "libflashps_tensor.a"
  "libflashps_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
