file(REMOVE_RECURSE
  "CMakeFiles/flashps_trace.dir/auto_mask.cc.o"
  "CMakeFiles/flashps_trace.dir/auto_mask.cc.o.d"
  "CMakeFiles/flashps_trace.dir/workload.cc.o"
  "CMakeFiles/flashps_trace.dir/workload.cc.o.d"
  "libflashps_trace.a"
  "libflashps_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
