# Empty dependencies file for flashps_trace.
# This may be replaced when dependencies are built.
