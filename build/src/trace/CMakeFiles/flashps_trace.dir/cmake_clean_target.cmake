file(REMOVE_RECURSE
  "libflashps_trace.a"
)
