# Empty compiler generated dependencies file for flashps_device.
# This may be replaced when dependencies are built.
