file(REMOVE_RECURSE
  "libflashps_device.a"
)
