file(REMOVE_RECURSE
  "CMakeFiles/flashps_device.dir/device.cc.o"
  "CMakeFiles/flashps_device.dir/device.cc.o.d"
  "libflashps_device.a"
  "libflashps_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
