# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("trace")
subdirs("device")
subdirs("model")
subdirs("cache")
subdirs("pipeline")
subdirs("quality")
subdirs("serving")
subdirs("sched")
subdirs("cluster")
subdirs("runtime")
