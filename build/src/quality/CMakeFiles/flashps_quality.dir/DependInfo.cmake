
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quality/metrics.cc" "src/quality/CMakeFiles/flashps_quality.dir/metrics.cc.o" "gcc" "src/quality/CMakeFiles/flashps_quality.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flashps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flashps_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/flashps_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
