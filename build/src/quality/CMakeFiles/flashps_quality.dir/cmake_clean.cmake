file(REMOVE_RECURSE
  "CMakeFiles/flashps_quality.dir/metrics.cc.o"
  "CMakeFiles/flashps_quality.dir/metrics.cc.o.d"
  "libflashps_quality.a"
  "libflashps_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
