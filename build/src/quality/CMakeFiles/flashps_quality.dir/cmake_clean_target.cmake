file(REMOVE_RECURSE
  "libflashps_quality.a"
)
