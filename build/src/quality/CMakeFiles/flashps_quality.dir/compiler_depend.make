# Empty compiler generated dependencies file for flashps_quality.
# This may be replaced when dependencies are built.
