file(REMOVE_RECURSE
  "CMakeFiles/flashps_serving.dir/service.cc.o"
  "CMakeFiles/flashps_serving.dir/service.cc.o.d"
  "CMakeFiles/flashps_serving.dir/worker.cc.o"
  "CMakeFiles/flashps_serving.dir/worker.cc.o.d"
  "libflashps_serving.a"
  "libflashps_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashps_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
