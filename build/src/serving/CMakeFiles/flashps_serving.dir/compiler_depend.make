# Empty compiler generated dependencies file for flashps_serving.
# This may be replaced when dependencies are built.
