file(REMOVE_RECURSE
  "libflashps_serving.a"
)
