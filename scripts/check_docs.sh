#!/usr/bin/env bash
# Docs/flags cross-check: every daemon flag must be documented, and every
# documented flag must exist.
#
# Direction 1 (undocumented): each `--flag` the daemons' auto-generated
# `--help` output advertises (flashps_served, flashps_cached, flashps_fed)
# must be mentioned somewhere in README.md or DESIGN.md.
# Direction 2 (unknown): each `--flag` token mentioned in README.md or
# DESIGN.md must be a daemon flag or on the allowlist of non-daemon flags
# (ctest/check.sh/bench_net_loadgen options that have no --help to parse).
#
# Needs the tier-1 build (the daemon binaries) to exist; check.sh invokes
# this right after that build.
#
#   scripts/check_docs.sh [BUILD_DIR]   # default: <repo>/build
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-${repo}/build}"

daemons=(flashps_served flashps_cached flashps_fed)
docs=("${repo}/README.md" "${repo}/DESIGN.md")

# Flags documented for tools whose help output this script does not parse:
# check.sh itself, ctest invocations quoted in the README, and the bench
# binaries (bench_net_loadgen's client options; --smoke on
# bench_hybrid_resolution / bench_gateway_slo; --bench-smoke on check.sh).
allowlist=(
  --fast --filter --help --json-only
  --build --test-dir --output-on-failure --timeout
  --host --requests --rps
  --smoke --bench-smoke
)

for d in "${daemons[@]}"; do
  [[ -x "${build}/examples/${d}" ]] || {
    echo "check_docs: ${build}/examples/${d} missing; build tier-1 first" >&2
    exit 2
  }
done

# Union of the daemons' advertised flags, e.g. "--port" from
# "  --port=N  listen port ...".
daemon_flags="$(
  for d in "${daemons[@]}"; do
    "${build}/examples/${d}" --help
  done | grep -oE '^\s+--[a-z0-9][a-z0-9-]*' | tr -d ' ' | sort -u
)"

# Every --token the docs mention.
doc_flags="$(
  grep -hoE '\-\-[a-z0-9][a-z0-9-]*' "${docs[@]}" | sort -u
)"

fail=0

# Direction 1: daemon flag absent from the docs.
while IFS= read -r flag; do
  if ! grep -qF -- "${flag}" "${docs[@]}"; then
    echo "UNDOCUMENTED: daemon flag ${flag} appears in --help but not in" \
         "README.md/DESIGN.md" >&2
    fail=1
  fi
done <<< "${daemon_flags}"

# Direction 2: documented flag that no daemon (or allowlisted tool) has.
while IFS= read -r flag; do
  known=0
  grep -qxF -- "${flag}" <<< "${daemon_flags}" && known=1
  for a in "${allowlist[@]}"; do
    [[ "${flag}" == "${a}" ]] && known=1
  done
  # A longer daemon flag can embed a shorter token (--cache-port contains
  # --cache); only exact matches count, so no prefix special-casing.
  if [[ "${known}" -eq 0 ]]; then
    echo "UNKNOWN: docs mention ${flag} but no daemon --help advertises it" \
         "(add it to a daemon, fix the docs, or extend the allowlist)" >&2
    fail=1
  fi
done <<< "${doc_flags}"

if [[ "${fail}" -ne 0 ]]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: README/DESIGN flags match daemon --help (both directions)"
