#!/usr/bin/env bash
# Tier-1 verification plus the concurrency and memory gauntlets:
#   1. configure + build + full ctest (the roadmap's tier-1 gate);
#   2. emit BENCH_kernels.json from the kernel microbenchmarks;
#   3. rebuild the threaded suites under ThreadSanitizer and run them;
#   4. rebuild the net + gateway suites under AddressSanitizer and run
#      them (malformed-frame handling must be memory-clean, not just
#      not-crash).
# The codec suites (Quant*, CodecQuality*) run in every leg: tier-1 via
# ctest, and again under both sanitizers — the decoder's malformed-frame
# rejection paths must be clean under ASan, and the codec is on the hot
# path of the threaded cache suites.
# Every ctest invocation carries a per-test timeout so a deadlocked
# thread (the failure mode the prefetch/serving tests exist to catch)
# fails the run instead of wedging it.
#
#   scripts/check.sh                    # everything
#   scripts/check.sh --fast             # tier-1 only: configure + build + ctest
#   scripts/check.sh --bench-smoke      # also run every bench binary with
#                                       # tiny iterations (numbers are not
#                                       # meaningful; catches bit-rot in the
#                                       # bench-only code paths)
#   scripts/check.sh --filter <regex>   # restrict every ctest leg to tests
#                                       # matching <regex> (replaces the
#                                       # sanitizer legs' default regexes)
#
# Run from anywhere; operates on the repo root it lives in.
set -euo pipefail

fast=0
filter=""
bench_smoke=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) fast=1; shift ;;
    --bench-smoke) bench_smoke=1; shift ;;
    --filter)
      [[ $# -ge 2 ]] || { echo "--filter needs a regex" >&2; exit 2; }
      filter="$2"; shift 2 ;;
    --filter=*) filter="${1#--filter=}"; shift ;;
    *) echo "unknown argument: $1 (supported: --fast, --bench-smoke," \
            "--filter <regex>)" >&2
       exit 2 ;;
  esac
done

# Generous for one test (the slowest integration tests run ~5 s); fatal
# only for a hang.
test_timeout=120

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo}"

# The threaded suites the sanitizers exercise. Keep the two lists in sync
# with the build target lists below.
tsan_regex='^(ParallelFor|KernelEquivalence|SparseCompute|ConcurrentQueue|ThreadPool|OnlineServer|Gateway|MetricsRegistry|StatAccumulator|Serde|Wire|TcpServer|NetIntegration|CacheRpc|CacheRing|Quant|CodecQuality|Fed)'
asan_regex='^(SparseCompute|Serde|Wire|TcpServer|NetIntegration|Gateway|CacheRpc|CacheRing|Quant|CodecQuality|Fed)'

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null

echo "== docs: flags cross-check =="
"${repo}/scripts/check_docs.sh" "${repo}/build"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$(nproc)" \
  --timeout "${test_timeout}" \
  ${filter:+-R "${filter}"}

# Opt-in smoke pass over every bench binary (~1 min): each one runs end to
# end with tiny iterations, from a scratch directory so the throwaway
# numbers never overwrite the recorded BENCH_*.json artifacts. Catches
# bench-only code paths (flag parsing, JSON dumps, the gathered-panel
# drivers) that ctest never executes.
if [[ "${bench_smoke}" -eq 1 ]]; then
  echo "== bench smoke: every bench binary, tiny iterations =="
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  for bin in "${repo}"/build/bench/bench_*; do
    name="$(basename "${bin}")"
    args=()
    case "${name}" in
      bench_hybrid_resolution|bench_gateway_slo) args=(--smoke) ;;
      bench_kernels) args=(--json-only) ;;
    esac
    echo "-- ${name} ${args[*]-}"
    (cd "${smoke_dir}" && "${bin}" ${args[@]+"${args[@]}"} >/dev/null)
  done
  echo "== bench smoke: all bench binaries ran clean =="
fi

if [[ "${fast}" -eq 1 ]]; then
  echo "== fast mode: tier-1 passed, skipping bench + sanitizers =="
  exit 0
fi

echo "== kernel bench: BENCH_kernels.json =="
cmake --build build -j --target bench_kernels >/dev/null
./build/bench/bench_kernels --json-only
echo "BENCH_kernels.json -> ${repo}/BENCH_kernels.json"

echo "== tsan: build threaded suites =="
cmake -B build-tsan -S . -DFLASHPS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target \
  kernel_equivalence_test sparse_compute_test runtime_test gateway_test \
  common_test \
  net_test net_integration_test cache_rpc_test cache_rpc_integration_test \
  cache_ring_test cache_ring_integration_test \
  fed_test fed_integration_test \
  quant_test codec_quality_test \
  >/dev/null

echo "== tsan: run threaded suites =="
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  --timeout "${test_timeout}" \
  -R "${filter:-${tsan_regex}}"

echo "== asan: build net + gateway + cache-rpc + cache-ring suites =="
cmake -B build-asan -S . -DFLASHPS_SANITIZE=address >/dev/null
cmake --build build-asan -j --target \
  sparse_compute_test \
  net_test net_integration_test gateway_test cache_rpc_test \
  cache_rpc_integration_test cache_ring_test cache_ring_integration_test \
  fed_test fed_integration_test \
  quant_test codec_quality_test \
  >/dev/null

echo "== asan: run net + gateway + cache-rpc + cache-ring suites =="
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  --timeout "${test_timeout}" \
  -R "${filter:-${asan_regex}}"

echo "== all checks passed =="
