// Ablation of the device-model mechanisms DESIGN.md calls out: toggle each
// one off and show which reproduced paper observation breaks. This is the
// justification trail for every second-order constant in TimingConfig.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cluster/simulation.h"
#include "src/pipeline/pipeline.h"

namespace flashps {
namespace {

using bench::Fmt;

double Throughput(const serving::EngineConfig& engine, int batch) {
  return cluster::MeasureEngineThroughput(engine, batch,
                                          trace::TraceKind::kProduction,
                                          16 * batch);
}

void SmUtilization() {
  std::printf("\n--- (1) SM utilization (sm_half_sat_tokens) ---\n");
  std::printf("supports: Fig. 14 batch-1 ordering (TeaCache ahead) and "
              "FlashPS's batching gain\n");
  auto flash = serving::EngineConfig::ForSystem(serving::SystemKind::kFlashPS,
                                                model::ModelKind::kSdxl);
  const auto tea = serving::EngineConfig::ForSystem(
      serving::SystemKind::kTeaCache, model::ModelKind::kSdxl);
  bench::PrintRow({"variant", "FlashPS B=1", "TeaCache B=1", "FlashPS gain"},
                  16);
  for (const bool enabled : {true, false}) {
    serving::EngineConfig variant = flash;
    if (!enabled) {
      variant.model_config.sm_half_sat_tokens = 1e-6;  // Perfect utilization.
    }
    const double b1 = Throughput(variant, 1);
    const double b8 = Throughput(variant, 8);
    bench::PrintRow({enabled ? "modeled" : "ablated", Fmt(b1, 3),
                     Fmt(Throughput(tea, 1), 3), Fmt(b8 / b1, 2) + "x"},
                    16);
  }
  std::printf("ablated: FlashPS already wins at batch 1 and batching gains "
              "vanish — Fig. 14's two signature shapes disappear.\n");
}

void PinnedVsPageable() {
  std::printf("\n--- (2) pinned vs pageable loads (sync_load_bw) ---\n");
  std::printf("supports: Fig. 4-Left's ~2x naive-loading overhead alongside "
              "Fig. 7's KV-cache win\n");
  const auto config = model::TimingConfig::Get(model::ModelKind::kSdxl);
  auto spec = device::DeviceSpec::Get(config.gpu);
  const double ratios[] = {0.11};
  const auto w =
      model::BuildStepWorkload(config, ratios, model::ComputeMode::kMaskAwareY);
  const auto d = model::ComputeStepDurations(config, spec, w);
  const Duration ideal = pipeline::IdealLatency(d.compute_with_cache) + d.non_tf;
  bench::PrintRow({"variant", "naive overhead"}, 22);
  for (const bool enabled : {true, false}) {
    std::vector<Duration> loads;
    for (const auto& block : w.blocks) {
      loads.push_back(enabled ? spec.SyncLoadLatency(block.load_bytes)
                              : spec.GatherLoadLatency(block.load_bytes));
    }
    const Duration naive =
        pipeline::NaiveSequentialLatency(d.compute_with_cache, loads) + d.non_tf;
    bench::PrintRow({enabled ? "pageable sync (modeled)" : "pinned rate (ablated)",
                     "+" + Fmt(100.0 * (naive / ideal - 1.0), 0) + "%"},
                    22);
  }
  std::printf("ablated: the naive overhead shrinks by more than half, "
              "falling well short of Fig. 4-Left's +102%%.\n");
}

void RaggedPadding() {
  std::printf("\n--- (3) ragged-batch padding (ragged_pad_fraction) ---\n");
  std::printf("supports: heterogeneous-ratio batches costing more than "
              "their parts (what mask-aware placement exploits)\n");
  bench::PrintRow({"variant", "mixed(ms)", "homog-mean(ms)"}, 18);
  for (const bool enabled : {true, false}) {
    auto engine = serving::EngineConfig::ForSystem(
        serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
    if (!enabled) {
      engine.model_config.ragged_pad_fraction = 0.0;
    }
    const serving::Worker worker(0, engine);
    const double mixed = worker.StepLatency({0.02, 0.8}).millis();
    const double homog = (worker.StepLatency({0.02, 0.02}).millis() +
                          worker.StepLatency({0.8, 0.8}).millis()) /
                         2.0;
    bench::PrintRow({enabled ? "modeled" : "ablated", Fmt(mixed, 1),
                     Fmt(homog, 1)},
                    18);
  }
  std::printf("ablated: batch cost becomes purely additive in mask ratios — "
              "no placement policy can beat count balancing.\n");
}

void SparseEfficiency() {
  std::printf("\n--- (4) sparse-kernel efficiency (FISEdit) ---\n");
  std::printf("supports: Fig. 12 SD2.1 — FlashPS's batch-4 engine overtakes "
              "FISEdit's batch-1 engine\n");
  bench::PrintRow({"variant", "FISEdit thr", "FlashPS B=4 thr"}, 18);
  const auto flash = serving::EngineConfig::ForSystem(
      serving::SystemKind::kFlashPS, model::ModelKind::kSd21);
  for (const bool enabled : {true, false}) {
    auto fisedit = serving::EngineConfig::ForSystem(
        serving::SystemKind::kFISEdit, model::ModelKind::kSd21);
    if (!enabled) {
      fisedit.model_config.sparse_kernel_efficiency = 1.0;
    }
    bench::PrintRow({enabled ? "modeled (0.5)" : "ablated (1.0)",
                     Fmt(Throughput(fisedit, 1), 3),
                     Fmt(Throughput(flash, 4), 3)},
                    18);
  }
  std::printf("ablated: FISEdit's capacity rises ~17%%, shrinking the "
              "headroom behind Fig. 12's SD2.1 result.\n");
}

void TeaCacheBatchGate() {
  std::printf("\n--- (5) batch-coupled step skipping (TeaCache) ---\n");
  std::printf("supports: Fig. 14 — TeaCache plateaus while FlashPS keeps "
              "scaling\n");
  const auto tea = serving::EngineConfig::ForSystem(
      serving::SystemKind::kTeaCache, model::ModelKind::kSdxl);
  const serving::Worker worker(0, tea);
  bench::PrintRow({"batch", "effective steps", "throughput"}, 18);
  for (const int batch : {1, 2, 4, 8}) {
    bench::PrintRow({std::to_string(batch),
                     std::to_string(worker.EffectiveSteps(batch)),
                     Fmt(Throughput(tea, batch), 3)},
                    18);
  }
  std::printf("every batch member must agree to skip a step, so the "
              "effective skip rate decays with batch size.\n");
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Ablation: device-model mechanisms (DESIGN.md)",
      "each second-order mechanism is needed for a specific paper "
      "observation; ablating it breaks that observation");
  flashps::SmUtilization();
  flashps::PinnedVsPageable();
  flashps::RaggedPadding();
  flashps::SparseEfficiency();
  flashps::TeaCacheBatchGate();
  return 0;
}
