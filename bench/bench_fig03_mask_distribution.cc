// Reproduces Fig. 3: mask-ratio distributions of the production trace and
// the public trace (plus the VITON-HD benchmark the text cites), as ASCII
// histograms with summary statistics.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/trace/workload.h"

namespace flashps {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 3: mask ratio distributions",
      "mean ratios 0.11 (production) / 0.19 (public) / 0.35 (VITON-HD), "
      "small on average but with significant variation");

  Rng rng(2026);
  for (const trace::TraceKind kind :
       {trace::TraceKind::kProduction, trace::TraceKind::kPublic,
        trace::TraceKind::kVitonHd}) {
    const trace::MaskRatioDistribution dist(kind);
    Histogram hist(0.0, 1.0, 20);
    StatAccumulator acc;
    for (int i = 0; i < 200000; ++i) {
      const double r = dist.Sample(rng);
      hist.Add(r);
      acc.Add(r);
    }
    std::printf("\n--- %s trace ---\n", trace::ToString(kind).c_str());
    std::printf("%s", hist.Render(48).c_str());
    std::printf("mean=%.3f  p50=%.3f  p95=%.3f  stddev=%.3f\n", acc.Mean(),
                acc.P50(), acc.P95(), acc.Stddev());
  }
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::Run();
  return 0;
}
