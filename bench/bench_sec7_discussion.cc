// Experiments for the paper's §7 Discussion claims:
//  1. "FlashPS's continuous batching design is independent of mask usage and
//     can be seamlessly integrated into existing diffusion serving
//     systems" — we port disaggregated continuous batching onto the
//     Diffusers and TeaCache engines and measure the improvement.
//  2. "For tasks such as style transfer — which modifies the overall
//     appearance — the benefits of mask-aware computation diminish" — we
//     sweep the workload's mask-ratio scale toward full-image edits.
//  3. Robustness under bursty traffic (§4.4 notes production arrivals are
//     bursty): FlashPS's advantage persists under an MMPP arrival process.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cluster/simulation.h"

namespace flashps {
namespace {

using bench::Fmt;

void ContinuousBatchingForBaselines() {
  std::printf("\n--- (1) continuous batching ported to baselines (SDXL, 8 "
              "workers, RPS 2.8) ---\n");
  trace::WorkloadSpec spec;
  spec.rps = 2.8;
  spec.num_requests = 250;
  const auto requests = trace::GenerateWorkload(spec);

  bench::PrintRow({"engine", "batching", "avg(s)", "P95(s)"}, 18);
  for (const serving::SystemKind system :
       {serving::SystemKind::kDiffusers, serving::SystemKind::kTeaCache}) {
    for (const serving::BatchPolicy policy :
         {serving::BatchPolicy::kStatic,
          serving::BatchPolicy::kContinuousDisaggregated}) {
      cluster::ClusterConfig config;
      config.num_workers = 8;
      config.engine =
          serving::EngineConfig::ForSystem(system, model::ModelKind::kSdxl);
      config.engine.batching = policy;
      config.policy = sched::RoutePolicy::kRequestCount;
      const auto result = cluster::RunClusterSim(config, requests);
      bench::PrintRow({ToString(system), ToString(policy),
                       Fmt(result.total_latency_s.Mean(), 2),
                       Fmt(result.total_latency_s.P95(), 2)},
                      18);
    }
  }
  std::printf("continuous batching helps the mask-agnostic engines too, as "
              "§7 predicts.\n");
}

void StyleTransferDiminishingBenefit() {
  std::printf("\n--- (2) diminishing benefit toward full-image edits ---\n");
  bench::PrintRow({"mask scale", "mean ratio", "FlashPS(s)", "Diffusers(s)",
                   "speedup"});
  const auto flash = serving::EngineConfig::ForSystem(
      serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
  const auto diffusers = serving::EngineConfig::ForSystem(
      serving::SystemKind::kDiffusers, model::ModelKind::kSdxl);
  const serving::Worker flash_worker(0, flash);
  const serving::Worker full_worker(0, diffusers);
  const auto& mc = flash.model_config;
  // Scale the production distribution's ratios toward 1.0 (style transfer
  // touches everything).
  for (const double scale : {1.0, 2.0, 4.0, 8.0}) {
    Rng rng(3);
    const trace::MaskRatioDistribution dist(trace::TraceKind::kProduction);
    double mean_ratio = 0.0;
    double flash_latency = 0.0;
    double full_latency = 0.0;
    constexpr int kSamples = 40;
    for (int i = 0; i < kSamples; ++i) {
      const double m = std::min(0.99, dist.Sample(rng) * scale);
      mean_ratio += m;
      flash_latency += flash_worker.StepLatency({m}).seconds() *
                       mc.denoise_steps;
      full_latency += full_worker.StepLatency({m}).seconds() *
                      mc.denoise_steps;
    }
    mean_ratio /= kSamples;
    bench::PrintRow({Fmt(scale, 0) + "x", Fmt(mean_ratio, 2),
                     Fmt(flash_latency / kSamples, 2),
                     Fmt(full_latency / kSamples, 2),
                     Fmt(full_latency / flash_latency, 2) + "x"});
  }
  std::printf("as masks approach the full image, mask-aware speedup "
              "approaches 1x (the §7 style-transfer caveat).\n");
}

void BurstyTraffic() {
  std::printf("\n--- (3) bursty arrivals (MMPP: 1.0 <-> 4.0 rps, SDXL, 8 "
              "workers) ---\n");
  // Build a bursty trace manually.
  Rng rng(99);
  trace::BurstyArrivals arrivals(1.0, 4.0, Duration::Seconds(30.0),
                                 rng.Split());
  const trace::MaskRatioDistribution ratios(trace::TraceKind::kProduction);
  const trace::TemplateCatalog catalog(970, 1.1);
  std::vector<trace::Request> requests;
  for (int i = 0; i < 250; ++i) {
    trace::Request r;
    r.id = static_cast<uint64_t>(i);
    r.arrival = arrivals.Next();
    r.template_id = catalog.SampleTemplate(rng);
    r.mask_ratio = ratios.Sample(rng);
    requests.push_back(r);
  }

  bench::PrintRow({"system", "avg(s)", "P95(s)", "queue(s)"});
  for (const serving::SystemKind system :
       {serving::SystemKind::kDiffusers, serving::SystemKind::kTeaCache,
        serving::SystemKind::kFlashPS}) {
    cluster::ClusterConfig config;
    config.num_workers = 8;
    config.engine =
        serving::EngineConfig::ForSystem(system, model::ModelKind::kSdxl);
    config.policy = system == serving::SystemKind::kFlashPS
                        ? sched::RoutePolicy::kMaskAware
                        : sched::RoutePolicy::kRequestCount;
    const auto result = cluster::RunClusterSim(config, requests);
    bench::PrintRow({ToString(system), Fmt(result.total_latency_s.Mean(), 2),
                     Fmt(result.total_latency_s.P95(), 2),
                     Fmt(result.queueing_s.Mean(), 2)});
  }
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Section 7 (Discussion) extensions",
      "continuous batching transfers to mask-agnostic engines; mask-aware "
      "benefit diminishes for style-transfer-like edits; gains persist "
      "under bursty traffic");
  flashps::ContinuousBatchingForBaselines();
  flashps::StyleTransferDiminishingBenefit();
  flashps::BurstyTraffic();
  return 0;
}
