// Reproduces §6.6: FlashPS's own overheads are milliseconds against
// request latencies measured in seconds. Measures the real wall-clock cost
// of a scheduling decision (Algorithm 2 incl. the DP) and reports the
// modeled per-step batching and handoff overheads against end-to-end
// latency.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cluster/simulation.h"
#include "src/sched/scheduler.h"

namespace flashps {
namespace {

double MeasureSchedulingDecisionMs() {
  const auto config = model::TimingConfig::Get(model::ModelKind::kSdxl);
  sched::MaskAwareRouter router(
      sched::LatencyModel::FitOffline(config, model::ComputeMode::kMaskAwareY));
  // 8 workers with realistic occupancy.
  std::vector<sched::WorkerStatus> statuses;
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    sched::WorkerStatus s;
    s.worker_id = i;
    for (int j = 0; j < 5; ++j) {
      s.running_ratios.push_back(0.05 + 0.3 * rng.NextDouble());
    }
    s.remaining_steps = 5 * 25;
    statuses.push_back(std::move(s));
  }
  trace::Request r;
  r.mask_ratio = 0.2;
  r.denoise_steps = 50;

  constexpr int kIters = 2000;
  const auto start = std::chrono::steady_clock::now();
  int sink = 0;
  for (int i = 0; i < kIters; ++i) {
    sink += router.Route(r, statuses);
  }
  const auto end = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::milli>(end - start).count() /
         kIters;
}

void Run() {
  bench::PrintHeader(
      "Section 6.6: system overheads",
      "scheduling ~0.6 ms, per-step batch organization ~1.2 ms, latent "
      "serialization ~1.1 ms + 1.3 ms IPC — negligible vs seconds-scale "
      "requests");

  const double sched_ms = MeasureSchedulingDecisionMs();

  const auto engine = serving::EngineConfig::ForSystem(
      serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
  trace::WorkloadSpec spec;
  spec.rps = 2.0;
  spec.num_requests = 60;
  cluster::ClusterConfig config;
  config.num_workers = 2;
  config.engine = engine;
  const auto result =
      cluster::RunClusterSim(config, trace::GenerateWorkload(spec));
  const double request_s = result.total_latency_s.Mean();

  bench::PrintRow({"overhead source", "cost", "paper", "share of request"},
                  22);
  bench::PrintRow({"scheduling decision*", bench::Fmt(sched_ms, 2) + " ms",
                   "0.6 ms",
                   bench::Fmt(100.0 * sched_ms / 1e3 / request_s, 3) + "%"},
                  22);
  bench::PrintRow({"batch org / step", bench::Fmt(
                       engine.batch_org_overhead.millis(), 1) + " ms",
                   "1.2 ms",
                   bench::Fmt(100.0 * engine.batch_org_overhead.seconds() /
                                  request_s,
                              3) +
                       "%"},
                  22);
  bench::PrintRow({"serialize + IPC", bench::Fmt(
                       engine.handoff_overhead.millis(), 1) + " ms",
                   "1.1 + 1.3 ms",
                   bench::Fmt(
                       100.0 * engine.handoff_overhead.seconds() / request_s,
                       3) +
                       "%"},
                  22);
  std::printf(
      "\n*actual wall-clock of Algorithm 2 over 8 workers on this host\n"
      "mean request latency in the same setting: %.2f s -> all overheads "
      "are millisecond-scale, negligible as the paper reports.\n",
      request_s);
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::Run();
  return 0;
}
