// Reproduces Table 1: per-operator FLOPs and cache shapes under mask-aware
// acceleration. Verifies the 1/m speedup of token-wise operators, the cache
// shape (B, (1-m)L, H), and cross-checks the analytic accounting against
// wall-clock measurements of the real CPU kernels.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/model/flops.h"
#include "src/model/timing.h"
#include "src/model/diffusion_model.h"
#include "src/model/transformer.h"

namespace flashps {
namespace {

using bench::Fmt;

double TimeMaskedBlockSeconds(const model::BlockWeights& w, const Matrix& x,
                              const Matrix& bias, const trace::Mask& mask,
                              const Matrix& cached_y, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const Matrix y = model::BlockForwardMaskedY(w, x, bias, mask, cached_y);
    (void)y;
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() / iters;
}

void Analytic() {
  bench::PrintHeader(
      "Table 1: FLOPs, speedup and cache shape per operator",
      "token-wise ops (feed-forward, projections) and attention scores all "
      "scale linearly with m (speedup 1/m); cache shape (B,(1-m)L,H)");

  const auto config = model::TimingConfig::Get(model::ModelKind::kSdxl);
  const double l = config.tokens;
  const double h = config.hidden;

  bench::PrintRow({"m", "FF+proj speedup", "QK^T speedup", "cache rows",
                   "expect rows"});
  for (const double m : {0.05, 0.1, 0.2, 0.5}) {
    // Token-wise operators under KV caching accelerate by exactly 1/m.
    const double tokenwise_full = 24.0 * l * h * h;
    const double tokenwise_masked = 24.0 * m * l * h * h;
    // Attention scores: (mL x L) instead of (L x L).
    const double attn_full = 4.0 * l * l * h;
    const double attn_masked = 4.0 * m * l * l * h;
    const uint64_t cache_rows =
        model::YCacheLoadBytes(config.tokens, config.hidden, m,
                               config.cache_bytes_per_elem) /
        (config.hidden * config.cache_bytes_per_elem);
    bench::PrintRow({Fmt(m, 2), Fmt(tokenwise_full / tokenwise_masked, 1) + "x",
                     Fmt(attn_full / attn_masked, 1) + "x",
                     std::to_string(cache_rows),
                     Fmt((1.0 - m) * l, 0)});
  }
}

void MeasuredKernels() {
  std::printf(
      "\n--- cross-check: measured CPU wall-clock of the real mask-aware "
      "block vs m (should be ~affine in m) ---\n");
  const model::NumericsConfig config =
      model::NumericsConfig::ForModelKind(model::ModelKind::kSdxl);
  Rng rng(1);
  model::BlockWeights w = model::BlockWeights::Random(config.hidden, rng);
  const Matrix bias = model::MakeDistanceBias(config.grid_h, config.grid_w,
                                              config.attn_bias_strength);
  Matrix x(config.tokens(), config.hidden);
  x.FillNormal(rng, 1.0f);
  const Matrix cached_y = model::BlockForwardFull(w, x, bias);

  bench::PrintRow({"m", "measured(ms)", "analytic FLOPs(M)"});
  double prev = 0.0;
  bool monotone = true;
  for (const double m : {0.1, 0.2, 0.4, 0.8}) {
    Rng mask_rng(7);
    const trace::Mask mask =
        trace::GenerateBlobMask(config.grid_h, config.grid_w, m, mask_rng);
    const double secs = TimeMaskedBlockSeconds(w, x, bias, mask, cached_y, 5);
    const double mflops =
        model::FlopsYCacheBlock(config.tokens(), config.hidden, mask.ratio()) /
        1e6;
    bench::PrintRow({Fmt(m, 2), Fmt(secs * 1e3, 2), Fmt(mflops, 1)});
    monotone &= secs >= prev * 0.8;  // Allow timer noise.
    prev = secs;
  }
  std::printf("measured latency grows with m: %s\n",
              monotone ? "yes" : "NO (timer noise?)");
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::Analytic();
  flashps::MeasuredKernels();
  return 0;
}
