// Reproduces Fig. 6: the two observations behind mask-aware caching.
//  Left:  Y activations of unmasked tokens are highly similar across
//         different requests editing the same template; masked tokens less.
//  Right: the attention matrix is near block-diagonal w.r.t. the mask —
//         masked tokens attend mostly to masked tokens (quadrant averages
//         (1) unmasked->unmasked, (2) unmasked->masked, (3) masked->masked,
//         (4) masked->unmasked, normalized per key).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/model/diffusion_model.h"

namespace flashps {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 6: activation similarity and attention locality",
      "unmasked-token activations nearly identical across requests; masked "
      "and unmasked tokens attend mostly within their own group");

  const model::NumericsConfig config =
      model::NumericsConfig::ForModelKind(model::ModelKind::kSdxl);
  const model::DiffusionModel m(config);
  Rng rng(6);
  const trace::Mask mask =
      trace::GenerateBlobMask(config.grid_h, config.grid_w, 0.2, rng);

  // Two different edits of the same template.
  model::ActivationRecord rec_a;
  model::ActivationRecord rec_b;
  model::DiffusionModel::RunOptions options;
  const Matrix tmpl = m.EncodeTemplate(3);
  options.record = &rec_a;
  m.RunDenoise(m.InitEditLatent(tmpl, mask, 1001), options);
  options.record = &rec_b;
  m.RunDenoise(m.InitEditLatent(tmpl, mask, 2002), options);

  std::printf("\n--- Left: mean cosine similarity of Y activations across two "
              "requests ---\n");
  bench::PrintRow({"block", "unmasked", "masked"});
  const int mid_step = config.num_steps / 2;
  for (int b = 0; b < config.num_blocks; ++b) {
    const Matrix& ya = rec_a.steps[mid_step].y[b];
    const Matrix& yb = rec_b.steps[mid_step].y[b];
    double um = 0.0;
    for (const int t : mask.unmasked_tokens) {
      um += CosineSimilarity(ya, t, yb, t);
    }
    um /= static_cast<double>(mask.unmasked_tokens.size());
    double mm = 0.0;
    for (const int t : mask.masked_tokens) {
      mm += CosineSimilarity(ya, t, yb, t);
    }
    mm /= static_cast<double>(mask.masked_tokens.size());
    bench::PrintRow({std::to_string(b), bench::Fmt(um, 4), bench::Fmt(mm, 4)});
  }

  std::printf("\n--- Right: attention mass by quadrant (block 0, mid step) ---\n");
  Matrix h0 = m.InitEditLatent(tmpl, mask, 1001);
  const Matrix attn = model::AttentionMatrix(m.block(0), h0, m.attention_bias());
  double q_uu = 0.0;
  double q_um = 0.0;
  double q_mm = 0.0;
  double q_mu = 0.0;
  for (const int i : mask.unmasked_tokens) {
    for (const int j : mask.unmasked_tokens) {
      q_uu += attn.at(i, j);
    }
    for (const int j : mask.masked_tokens) {
      q_um += attn.at(i, j);
    }
  }
  for (const int i : mask.masked_tokens) {
    for (const int j : mask.masked_tokens) {
      q_mm += attn.at(i, j);
    }
    for (const int j : mask.unmasked_tokens) {
      q_mu += attn.at(i, j);
    }
  }
  const double nu = static_cast<double>(mask.unmasked_tokens.size());
  const double nm = static_cast<double>(mask.masked_tokens.size());
  // Per-(query,key)-pair averages so group sizes don't skew the comparison.
  bench::PrintRow({"quadrant", "avg attention/pair"});
  bench::PrintRow({"(1) unmasked->unmasked", bench::Fmt(q_uu / (nu * nu), 5)});
  bench::PrintRow({"(2) unmasked->masked", bench::Fmt(q_um / (nu * nm), 5)});
  bench::PrintRow({"(3) masked->masked", bench::Fmt(q_mm / (nm * nm), 5)});
  bench::PrintRow({"(4) masked->unmasked", bench::Fmt(q_mu / (nm * nu), 5)});
  std::printf("\nwithin-group attention should dominate cross-group "
              "attention (paper: (1),(3) >> (2),(4)).\n");
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::Run();
  return 0;
}
