// Reproduces the §4.2 hierarchical-storage claims: template cache sizes
// (~2.6 GiB for SDXL), host-memory capacity in template copies (a 2 TiB host
// stores ~787), disk-load time (~6.4 s), and prefetch-while-queued hiding
// disk promotions behind queueing delay.
#include <cstdio>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/cache/cache_engine.h"
#include "src/cluster/simulation.h"

namespace flashps {
namespace {

using bench::Fmt;

void Sizes() {
  std::printf("\n--- cache sizes and capacity ---\n");
  bench::PrintRow({"model", "cache/template", "disk load", "copies in 2TiB"});
  for (const model::ModelKind kind :
       {model::ModelKind::kSd21, model::ModelKind::kSdxl,
        model::ModelKind::kFlux}) {
    const auto config = model::TimingConfig::Get(kind);
    const auto spec = device::DeviceSpec::Get(config.gpu);
    const uint64_t bytes = config.TemplateCacheStoreBytes();
    bench::PrintRow(
        {config.name,
         Fmt(static_cast<double>(bytes) / (1ULL << 30), 2) + " GiB",
         Fmt(spec.DiskLatency(bytes).seconds(), 1) + " s",
         std::to_string((2ULL << 40) / bytes)});
  }
  std::printf("(paper: SDXL ~2.6 GiB, ~6.4 s from disk, 787 copies in 2 TiB)\n");
}

void PrefetchWhileQueued() {
  std::printf("\n--- prefetch-while-queued ---\n");
  // A worker saturated enough that requests queue a few seconds: disk
  // promotions started at arrival overlap with that queueing delay.
  const auto engine = serving::EngineConfig::ForSystem(
      serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
  const auto spec = device::DeviceSpec::Get(engine.model_config.gpu);
  const uint64_t bytes = engine.model_config.TemplateCacheStoreBytes();

  for (const bool warm : {true, false}) {
    cache::CacheEngine cache_engine(
        warm ? 64 * bytes : 2 * bytes, spec);
    for (int t = 0; t < 24; ++t) {
      cache_engine.RegisterTemplate(t, bytes, TimePoint());
    }
    serving::Worker worker(0, engine);
    worker.AttachCache(&cache_engine);

    trace::WorkloadSpec spec_w;
    spec_w.rps = 2.0;
    spec_w.num_requests = 40;
    spec_w.num_templates = 24;
    auto requests = trace::GenerateWorkload(spec_w);
    for (const auto& r : requests) {
      worker.AdvanceTo(r.arrival);
      worker.Enqueue(r, r.arrival);
    }
    worker.Drain();
    StatAccumulator queueing;
    for (const auto& done : worker.TakeCompleted()) {
      queueing.Add(done.queueing().seconds());
    }
    std::printf(
        "%s host tier: mean queueing %.2f s (disk promotions: %llu, host "
        "hits: %llu, evictions: %llu)\n",
        warm ? "large" : "tiny", queueing.Mean(),
        static_cast<unsigned long long>(cache_engine.stats().disk_promotions),
        static_cast<unsigned long long>(cache_engine.stats().host_hits),
        static_cast<unsigned long long>(cache_engine.stats().evictions));
  }
  std::printf(
      "with a tiny host tier, promotions overlap queueing; queueing grows "
      "by far less than one disk load per miss.\n");
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Section 4.2: hierarchical storage for cached activations",
      "GiB-scale caches live on disk, LRU-managed host tier, promotions "
      "overlap queueing delay");
  flashps::Sizes();
  flashps::PrefetchWhileQueued();
  return 0;
}
