// Reproduces Fig. 13 (qualitative examples): edits the same templates with
// every system and writes the resulting images as PGM files for visual
// inspection, alongside per-image PSNR/SSIM against the Diffusers reference.
// The paper's point — FlashPS is visually indistinguishable from Diffusers
// while FISEdit/TeaCache lose details — becomes inspectable output.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench/bench_util.h"
#include "src/cache/activation_store.h"
#include "src/model/diffusion_model.h"
#include "src/quality/metrics.h"

namespace flashps {
namespace {

void WritePgm(const std::filesystem::path& path, const Matrix& image) {
  std::ofstream out(path, std::ios::binary);
  out << "P5\n" << image.cols() << " " << image.rows() << "\n255\n";
  for (size_t i = 0; i < image.size(); ++i) {
    const float v = std::clamp(image.data()[i], 0.0f, 1.0f);
    out.put(static_cast<char>(v * 255.0f + 0.5f));
  }
}

void Run() {
  bench::PrintHeader(
      "Figure 13: qualitative examples",
      "images from FlashPS are visually indistinguishable from Diffusers; "
      "FISEdit and TeaCache fail to match the details");

  const std::filesystem::path out_dir = "fig13_images";
  std::filesystem::create_directories(out_dir);

  const model::NumericsConfig config =
      model::NumericsConfig::ForModelKind(model::ModelKind::kSdxl);
  const model::DiffusionModel m(config);
  cache::ActivationStore store;
  Rng rng(13);

  bench::PrintRow({"edit", "system", "PSNR(dB)", "SSIM", "file"}, 16);
  for (int i = 0; i < 3; ++i) {
    const int template_id = i;
    const trace::Mask mask = trace::GenerateBlobMask(
        config.grid_h, config.grid_w, 0.15 + 0.1 * i, rng);
    const uint64_t prompt_seed = 1300 + i;

    model::DiffusionModel::RunOptions exact;
    const Matrix reference =
        m.EditImage(template_id, mask, prompt_seed, exact);
    const auto ref_file =
        out_dir / ("edit" + std::to_string(i) + "_diffusers.pgm");
    WritePgm(ref_file, reference);
    bench::PrintRow({std::to_string(i), "Diffusers", "ref", "ref",
                     ref_file.string()},
                    16);

    struct System {
      const char* name;
      model::ComputeMode mode;
    };
    for (const System system :
         {System{"FlashPS", model::ComputeMode::kMaskAwareY},
          System{"FISEdit", model::ComputeMode::kSparse},
          System{"TeaCache", model::ComputeMode::kTeaCache}}) {
      model::DiffusionModel::RunOptions options;
      options.mode = system.mode;
      options.mask = &mask;
      options.teacache_threshold = 0.5;
      if (system.mode == model::ComputeMode::kMaskAwareY) {
        options.cache = &store.GetOrRegister(m, template_id);
      }
      const Matrix image =
          m.EditImage(template_id, mask, prompt_seed, options);
      const auto file = out_dir / ("edit" + std::to_string(i) + "_" +
                                   system.name + ".pgm");
      WritePgm(file, image);
      bench::PrintRow({std::to_string(i), system.name,
                       bench::Fmt(quality::Psnr(reference, image), 1),
                       bench::Fmt(quality::Ssim(reference, image), 3),
                       file.string()},
                      16);
    }
  }
  std::printf("\nPGM files written under %s/ — any image viewer opens "
              "them.\n",
              out_dir.string().c_str());
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::Run();
  return 0;
}
