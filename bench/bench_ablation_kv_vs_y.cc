// Reproduces the §3.1 "alternative approaches" ablation (Fig. 7): caching
// K/V instead of Y halves the recomputation of projections (latency 2.27 s
// -> 2.06 s for SDXL/H800 at mask ratio 0.2) but doubles the cached bytes —
// and produces numerically equivalent images.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cache/activation_store.h"
#include "src/model/flops.h"
#include "src/model/diffusion_model.h"
#include "src/quality/metrics.h"
#include "src/serving/worker.h"

namespace flashps {
namespace {

using bench::Fmt;

void Latency() {
  std::printf("\n--- latency and cache size (SDXL/H800, device model) ---\n");
  bench::PrintRow({"m", "Y-cache(s)", "KV-cache(s)", "KV gain", "Y bytes/req",
                   "KV bytes/req"});
  auto y_engine = serving::EngineConfig::ForSystem(
      serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
  auto kv_engine = y_engine;
  kv_engine.mode = model::ComputeMode::kMaskAwareKV;
  const serving::Worker y_worker(0, y_engine);
  const serving::Worker kv_worker(0, kv_engine);
  const auto& mc = y_engine.model_config;
  for (const double m : {0.1, 0.2, 0.4}) {
    const double y_lat = y_worker.StepLatency({m}).seconds() * mc.denoise_steps +
                         mc.pre_latency.seconds() + mc.post_latency.seconds();
    const double kv_lat =
        kv_worker.StepLatency({m}).seconds() * mc.denoise_steps +
        mc.pre_latency.seconds() + mc.post_latency.seconds();
    const double y_mb =
        static_cast<double>(model::YCacheLoadBytes(mc.tokens, mc.hidden, m,
                                                   mc.cache_bytes_per_elem)) *
        mc.num_groups * mc.denoise_steps / 1e6;
    bench::PrintRow({Fmt(m, 1), Fmt(y_lat, 2), Fmt(kv_lat, 2),
                     Fmt(100.0 * (1.0 - kv_lat / y_lat), 1) + "%",
                     Fmt(y_mb, 0) + " MB", Fmt(2 * y_mb, 0) + " MB"});
  }
  std::printf("(paper at m=0.2: 2.27 s -> 2.06 s, ~10%% gain, 2x cache)\n");
}

void Quality() {
  std::printf("\n--- numerical equivalence of the two flows ---\n");
  const model::NumericsConfig config = model::NumericsConfig::ForTests();
  const model::DiffusionModel m(config);
  cache::ActivationStore store;
  const auto& record = store.GetOrRegister(m, 1, /*record_kv=*/true);
  Rng rng(5);
  const trace::Mask mask =
      trace::GenerateBlobMask(config.grid_h, config.grid_w, 0.2, rng);

  model::DiffusionModel::RunOptions y_run;
  y_run.mode = model::ComputeMode::kMaskAwareY;
  y_run.cache = &record;
  y_run.mask = &mask;
  auto kv_run = y_run;
  kv_run.mode = model::ComputeMode::kMaskAwareKV;

  const Matrix img_y = m.EditImage(1, mask, 42, y_run);
  const Matrix img_kv = m.EditImage(1, mask, 42, kv_run);
  std::printf("SSIM(Y-flow, KV-flow) = %.5f (mean abs diff %.2e)\n",
              quality::Ssim(img_y, img_kv), MeanAbsDiff(img_y, img_kv));
  std::printf("record with K/V is %.2fx the size of the Y-only record\n",
              static_cast<double>(record.TotalBytes()) /
                  static_cast<double>(
                      model::DiffusionModel(config).Register(1).TotalBytes()));
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Section 3.1 ablation: caching Y vs caching K/V (Fig. 7)",
      "KV caching is ~10% faster at m=0.2 but doubles cache size; results "
      "are equivalent — FlashPS picks Y caching");
  flashps::Latency();
  flashps::Quality();
  return 0;
}
