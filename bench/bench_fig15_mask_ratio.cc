// Reproduces Fig. 15: latency of mask-aware image editing vs mask ratio.
//  Left:  kernel-level latency (attention and linear/feed-forward kernels)
//         under the device model, which should scale linearly with m.
//  Right: image-level latency per model, linear in m, with the paper's
//         speedups at m = 0.2 (1.3x SD2.1, 2.2x SDXL, 1.9x Flux).
#include <cstdio>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/model/flops.h"
#include "src/serving/worker.h"

namespace flashps {
namespace {

using bench::Fmt;

void KernelLevel() {
  std::printf("\n--- Left: kernel-level latency vs mask ratio (Flux/H800) ---\n");
  const auto config = model::TimingConfig::Get(model::ModelKind::kFlux);
  const auto spec = device::DeviceSpec::Get(config.gpu);
  bench::PrintRow({"m", "attention(ms)", "linear+FF(ms)"});
  std::vector<double> ms;
  std::vector<double> attn_lat;
  std::vector<double> linear_lat;
  for (double m = 0.1; m <= 0.91; m += 0.1) {
    const double attn_flops =
        4.0 * m * config.tokens * config.tokens * config.hidden *
        config.layers_per_group;
    const double linear_flops =
        24.0 * m * config.tokens * config.hidden * config.hidden *
        config.layers_per_group;
    const double active = m * config.tokens;
    const double attn =
        model::UtilizedComputeLatency(spec, config, attn_flops, active)
            .millis();
    const double linear =
        model::UtilizedComputeLatency(spec, config, linear_flops, active)
            .millis();
    bench::PrintRow({Fmt(m, 1), Fmt(attn, 3), Fmt(linear, 3)});
    ms.push_back(m);
    attn_lat.push_back(attn);
    linear_lat.push_back(linear);
  }
  const LinearFit attn_fit = FitLinear(ms, attn_lat);
  const LinearFit lin_fit = FitLinear(ms, linear_lat);
  std::printf("linearity (R^2): attention %.4f, linear/FF %.4f\n", attn_fit.r2,
              lin_fit.r2);
}

void ImageLevel() {
  std::printf("\n--- Right: image-level latency vs mask ratio ---\n");
  bench::PrintRow({"m", "SD2.1(s)", "SDXL(s)", "Flux(s)"});
  std::vector<serving::Worker> workers;
  std::vector<serving::Worker> full_workers;
  for (const model::ModelKind kind :
       {model::ModelKind::kSd21, model::ModelKind::kSdxl,
        model::ModelKind::kFlux}) {
    workers.emplace_back(
        0, serving::EngineConfig::ForSystem(serving::SystemKind::kFlashPS, kind));
    full_workers.emplace_back(
        0,
        serving::EngineConfig::ForSystem(serving::SystemKind::kDiffusers, kind));
  }
  auto image_latency = [](const serving::Worker& w, double m) {
    const auto& mc = w.config().model_config;
    return w.StepLatency({m}).seconds() * mc.denoise_steps +
           mc.pre_latency.seconds() + mc.post_latency.seconds();
  };
  std::vector<double> ms;
  std::vector<std::vector<double>> lat(3);
  for (double m = 0.1; m <= 0.91; m += 0.1) {
    std::vector<std::string> row = {Fmt(m, 1)};
    for (size_t i = 0; i < workers.size(); ++i) {
      const double secs = image_latency(workers[i], m);
      row.push_back(Fmt(secs, 2));
      lat[i].push_back(secs);
    }
    ms.push_back(m);
    bench::PrintRow(row);
  }
  const char* names[] = {"SD2.1", "SDXL", "Flux"};
  for (size_t i = 0; i < workers.size(); ++i) {
    const LinearFit fit = FitLinear(ms, lat[i]);
    const double full = image_latency(full_workers[i], 0.2);
    const double masked = image_latency(workers[i], 0.2);
    std::printf("%s: linearity R^2=%.3f, speedup at m=0.2: %.2fx (paper: "
                "%s)\n",
                names[i], fit.r2, full / masked,
                i == 0 ? "1.3x" : (i == 1 ? "2.2x" : "1.9x"));
  }
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Figure 15: mask-aware editing latency vs mask ratio",
      "kernel- and image-level latencies scale linearly with the mask ratio "
      "(Table 1); m=0.2 speedups 1.3x / 2.2x / 1.9x for SD2.1/SDXL/Flux");
  flashps::KernelLevel();
  flashps::ImageLevel();
  return 0;
}
