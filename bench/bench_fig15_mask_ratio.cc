// Reproduces Fig. 15: latency of mask-aware image editing vs mask ratio.
//  Left:  kernel-level latency (attention and linear/feed-forward kernels)
//         under the device model, which should scale linearly with m.
//  Right: image-level latency per model, linear in m, with the paper's
//         speedups at m = 0.2 (1.3x SD2.1, 2.2x SDXL, 1.9x Flux).
//  Measured: real-numerics step latency of the gathered sparse compute
//         path vs the dense mask-aware path on the CPU substrate, with a
//         bitwise-equality gate (non-zero exit on drift).
#include <chrono>
#include <cstdio>
#include <cstring>

#include <algorithm>
#include <functional>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/model/diffusion_model.h"
#include "src/model/flops.h"
#include "src/serving/worker.h"
#include "src/trace/workload.h"

namespace flashps {
namespace {

using bench::Fmt;

void KernelLevel() {
  std::printf("\n--- Left: kernel-level latency vs mask ratio (Flux/H800) ---\n");
  const auto config = model::TimingConfig::Get(model::ModelKind::kFlux);
  const auto spec = device::DeviceSpec::Get(config.gpu);
  bench::PrintRow({"m", "attention(ms)", "linear+FF(ms)"});
  std::vector<double> ms;
  std::vector<double> attn_lat;
  std::vector<double> linear_lat;
  for (double m = 0.1; m <= 0.91; m += 0.1) {
    const double attn_flops =
        4.0 * m * config.tokens * config.tokens * config.hidden *
        config.layers_per_group;
    const double linear_flops =
        24.0 * m * config.tokens * config.hidden * config.hidden *
        config.layers_per_group;
    const double active = m * config.tokens;
    const double attn =
        model::UtilizedComputeLatency(spec, config, attn_flops, active)
            .millis();
    const double linear =
        model::UtilizedComputeLatency(spec, config, linear_flops, active)
            .millis();
    bench::PrintRow({Fmt(m, 1), Fmt(attn, 3), Fmt(linear, 3)});
    ms.push_back(m);
    attn_lat.push_back(attn);
    linear_lat.push_back(linear);
  }
  const LinearFit attn_fit = FitLinear(ms, attn_lat);
  const LinearFit lin_fit = FitLinear(ms, linear_lat);
  std::printf("linearity (R^2): attention %.4f, linear/FF %.4f\n", attn_fit.r2,
              lin_fit.r2);
}

void ImageLevel() {
  std::printf("\n--- Right: image-level latency vs mask ratio ---\n");
  bench::PrintRow({"m", "SD2.1(s)", "SDXL(s)", "Flux(s)"});
  std::vector<serving::Worker> workers;
  std::vector<serving::Worker> full_workers;
  for (const model::ModelKind kind :
       {model::ModelKind::kSd21, model::ModelKind::kSdxl,
        model::ModelKind::kFlux}) {
    workers.emplace_back(
        0, serving::EngineConfig::ForSystem(serving::SystemKind::kFlashPS, kind));
    full_workers.emplace_back(
        0,
        serving::EngineConfig::ForSystem(serving::SystemKind::kDiffusers, kind));
  }
  auto image_latency = [](const serving::Worker& w, double m) {
    const auto& mc = w.config().model_config;
    return w.StepLatency({m}).seconds() * mc.denoise_steps +
           mc.pre_latency.seconds() + mc.post_latency.seconds();
  };
  std::vector<double> ms;
  std::vector<std::vector<double>> lat(3);
  for (double m = 0.1; m <= 0.91; m += 0.1) {
    std::vector<std::string> row = {Fmt(m, 1)};
    for (size_t i = 0; i < workers.size(); ++i) {
      const double secs = image_latency(workers[i], m);
      row.push_back(Fmt(secs, 2));
      lat[i].push_back(secs);
    }
    ms.push_back(m);
    bench::PrintRow(row);
  }
  const char* names[] = {"SD2.1", "SDXL", "Flux"};
  for (size_t i = 0; i < workers.size(); ++i) {
    const LinearFit fit = FitLinear(ms, lat[i]);
    const double full = image_latency(full_workers[i], 0.2);
    const double masked = image_latency(workers[i], 0.2);
    std::printf("%s: linearity R^2=%.3f, speedup at m=0.2: %.2fx (paper: "
                "%s)\n",
                names[i], fit.r2, full / masked,
                i == 0 ? "1.3x" : (i == 1 ? "2.2x" : "1.9x"));
  }
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.bytes()) == 0;
}

// Interleaved min-of-N: alternating the two sides sample-by-sample makes
// the ratio robust to time-correlated steal noise on shared hosts. Each
// call here is >> 1 ms, so one call per sample suffices.
std::pair<double, double> InterleavedMinMs(const std::function<void()>& a,
                                           const std::function<void()>& b,
                                           int samples) {
  using Clock = std::chrono::steady_clock;
  auto once = [](const std::function<void()>& fn) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };
  once(a);
  once(b);
  double best_a = 1e300;
  double best_b = 1e300;
  for (int s = 0; s < samples; ++s) {
    best_a = std::min(best_a, once(a));
    best_b = std::min(best_b, once(b));
  }
  return {best_a, best_b};
}

// Real numerics on the CPU substrate: one denoise step, dense mask-aware Y
// path vs the gathered sparse compute path, across mask ratios. The dense
// path recomputes K/V for ALL tokens, so its latency is nearly flat in m;
// the gathered path is O(m·L) in the cached blocks, so its latency grows
// linearly and the speedup concentrates at small m — the same shape as the
// paper's Fig. 15 kernel curves. Outputs are compared bitwise over a full
// denoise in BOTH mask-aware modes first; any drift fails the run.
bool MeasuredStepLevel() {
  std::printf("\n--- Measured: sparse-compute step latency vs mask ratio "
              "(CPU substrate, grid 20, hidden 512) ---\n");
  model::NumericsConfig cfg;
  cfg.grid_h = 20;
  cfg.grid_w = 20;
  cfg.hidden = 512;
  cfg.num_blocks = 2;
  cfg.num_steps = 2;
  const model::DiffusionModel dm(cfg);
  const Matrix tmpl = dm.EncodeTemplate(0);
  const model::ActivationRecord rec = dm.Register(0, /*record_kv=*/true);
  bool ok = true;
  bench::PrintRow({"m", "dense(ms)", "sparse(ms)", "speedup"});
  std::vector<double> ms;
  std::vector<double> sparse_lat;
  for (const double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    Rng rng(17);
    const trace::Mask mask =
        trace::GenerateBlobMask(cfg.grid_h, cfg.grid_w, ratio, rng);
    const Matrix latent = dm.InitEditLatent(tmpl, mask, 5);
    model::DiffusionModel::RunOptions opts;
    opts.cache = &rec;
    opts.mask = &mask;
    for (const auto mode : {model::ComputeMode::kMaskAwareY,
                            model::ComputeMode::kMaskAwareKV}) {
      opts.mode = mode;
      opts.sparse_compute = false;
      const Matrix dense_out = dm.RunDenoise(latent, opts).final_latent;
      opts.sparse_compute = true;
      if (!BitwiseEqual(dense_out, dm.RunDenoise(latent, opts).final_latent)) {
        std::printf("BITWISE DRIFT: mode %s, m=%.1f\n",
                    mode == model::ComputeMode::kMaskAwareY ? "Y" : "KV",
                    ratio);
        ok = false;
      }
    }
    opts.mode = model::ComputeMode::kMaskAwareY;
    model::DiffusionModel::RunOptions dense_opts = opts;
    dense_opts.sparse_compute = false;
    model::DiffusionModel::RunOptions sparse_opts = opts;
    sparse_opts.sparse_compute = true;
    const auto [dense_ms, sparse_ms] = InterleavedMinMs(
        [&] { dm.RunStepRange(latent, dense_opts, 0, 1); },
        [&] { dm.RunStepRange(latent, sparse_opts, 0, 1); },
        /*samples=*/5);
    bench::PrintRow({Fmt(ratio, 1), Fmt(dense_ms, 2), Fmt(sparse_ms, 2),
                     Fmt(dense_ms / sparse_ms, 2) + "x"});
    ms.push_back(ratio);
    sparse_lat.push_back(sparse_ms);
  }
  const LinearFit fit = FitLinear(ms, sparse_lat);
  std::printf("sparse step latency linearity in m: R^2=%.3f; bitwise "
              "gathered == dense: %s\n",
              fit.r2, ok ? "yes" : "NO (drift)");
  return ok;
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Figure 15: mask-aware editing latency vs mask ratio",
      "kernel- and image-level latencies scale linearly with the mask ratio "
      "(Table 1); m=0.2 speedups 1.3x / 2.2x / 1.9x for SD2.1/SDXL/Flux");
  flashps::KernelLevel();
  flashps::ImageLevel();
  const bool ok = flashps::MeasuredStepLevel();
  return ok ? 0 : 1;
}
