// google-benchmark microbenchmarks of the real CPU kernels. Validates the
// *shape* claims behind Fig. 15-Left on actual hardware: transformer-block
// wall-clock under mask-aware computation scales ~linearly with the mask
// ratio, and the KV-cached flow undercuts the Y-cached flow.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/model/diffusion_model.h"
#include "src/model/transformer.h"

namespace flashps {
namespace {

struct KernelFixture {
  KernelFixture() {
    const model::NumericsConfig config =
        model::NumericsConfig::ForModelKind(model::ModelKind::kSdxl);
    grid = config.grid_h;
    hidden = config.hidden;
    Rng rng(3);
    weights = std::make_unique<model::BlockWeights>(
        model::BlockWeights::Random(hidden, rng));
    bias = model::MakeDistanceBias(grid, grid, 1.0f);
    x = Matrix(grid * grid, hidden);
    x.FillNormal(rng, 1.0f);
    Matrix k;
    Matrix v;
    cached_y = model::BlockForwardFull(*weights, x, bias, &k, &v);
    cached_k = std::move(k);
    cached_v = std::move(v);
  }

  trace::Mask MaskFor(double ratio) const {
    Rng rng(17);
    return trace::GenerateBlobMask(grid, grid, ratio, rng);
  }

  int grid = 0;
  int hidden = 0;
  std::unique_ptr<model::BlockWeights> weights;
  Matrix bias;
  Matrix x;
  Matrix cached_y;
  Matrix cached_k;
  Matrix cached_v;
};

const KernelFixture& Fixture() {
  static const KernelFixture fixture;
  return fixture;
}

void BM_BlockFull(benchmark::State& state) {
  const auto& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::BlockForwardFull(*f.weights, f.x, f.bias));
  }
}
BENCHMARK(BM_BlockFull)->Unit(benchmark::kMillisecond);

void BM_BlockMaskedY(benchmark::State& state) {
  const auto& f = Fixture();
  const trace::Mask mask = f.MaskFor(state.range(0) / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::BlockForwardMaskedY(*f.weights, f.x, f.bias, mask, f.cached_y));
  }
  state.counters["mask_ratio"] = mask.ratio();
}
BENCHMARK(BM_BlockMaskedY)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_BlockMaskedKV(benchmark::State& state) {
  const auto& f = Fixture();
  const trace::Mask mask = f.MaskFor(state.range(0) / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::BlockForwardMaskedKV(
        *f.weights, f.x, f.bias, mask, f.cached_y, f.cached_k, f.cached_v));
  }
  state.counters["mask_ratio"] = mask.ratio();
}
BENCHMARK(BM_BlockMaskedKV)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_BlockSparse(benchmark::State& state) {
  const auto& f = Fixture();
  const trace::Mask mask = f.MaskFor(state.range(0) / 100.0);
  const Matrix xm = GatherRows(f.x, mask.masked_tokens);
  const int n = xm.rows();
  Matrix sub_bias(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      sub_bias.at(i, j) = f.bias.at(mask.masked_tokens[i],
                                    mask.masked_tokens[j]);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::BlockForwardSparse(*f.weights, xm, sub_bias));
  }
}
BENCHMARK(BM_BlockSparse)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_AttentionMatrix(benchmark::State& state) {
  const auto& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::AttentionMatrix(*f.weights, f.x, f.bias));
  }
}
BENCHMARK(BM_AttentionMatrix)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flashps

BENCHMARK_MAIN();
