// google-benchmark microbenchmarks of the real CPU kernels. Validates the
// *shape* claims behind Fig. 15-Left on actual hardware: transformer-block
// wall-clock under mask-aware computation scales ~linearly with the mask
// ratio, and the KV-cached flow undercuts the Y-cached flow.
//
// On top of the Fig. 15 suite this binary measures the blocked/threaded
// kernel layer itself: naive-vs-blocked GEMM at the SDXL block shapes and
// 1/2/4-thread scaling of GEMM and BlockForwardFull. Regardless of the
// google-benchmark output, main() always finishes by hand-timing those
// kernels (median of repeated samples) and writing BENCH_kernels.json to
// the working directory; pass --json-only to skip the google-benchmark
// pass and emit only the JSON.
//
// The JSON also carries the gathered sparse compute path's legs
// (gather→GEMM→scatter vs the dense mask-aware flow at GEMM, block, and
// denoise-step level) and the measured sparse/gathered kernel
// efficiencies behind TimingConfig::sparse_kernel_efficiency. Each leg is
// gated on bitwise identity with the dense path; any drift makes the
// binary exit non-zero.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/parallel_for.h"
#include "src/model/diffusion_model.h"
#include "src/model/flops.h"
#include "src/model/transformer.h"
#include "src/tensor/naive.h"

namespace flashps {
namespace {

struct KernelFixture {
  KernelFixture() {
    const model::NumericsConfig config =
        model::NumericsConfig::ForModelKind(model::ModelKind::kSdxl);
    grid = config.grid_h;
    hidden = config.hidden;
    Rng rng(3);
    weights = std::make_unique<model::BlockWeights>(
        model::BlockWeights::Random(hidden, rng));
    bias = model::MakeDistanceBias(grid, grid, 1.0f);
    x = Matrix(grid * grid, hidden);
    x.FillNormal(rng, 1.0f);
    Matrix k;
    Matrix v;
    cached_y = model::BlockForwardFull(*weights, x, bias, &k, &v);
    cached_k = std::move(k);
    cached_v = std::move(v);
  }

  trace::Mask MaskFor(double ratio) const {
    Rng rng(17);
    return trace::GenerateBlobMask(grid, grid, ratio, rng);
  }

  int grid = 0;
  int hidden = 0;
  std::unique_ptr<model::BlockWeights> weights;
  Matrix bias;
  Matrix x;
  Matrix cached_y;
  Matrix cached_k;
  Matrix cached_v;
};

const KernelFixture& Fixture() {
  static const KernelFixture fixture;
  return fixture;
}

void BM_BlockFull(benchmark::State& state) {
  const auto& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::BlockForwardFull(*f.weights, f.x, f.bias));
  }
}
BENCHMARK(BM_BlockFull)->Unit(benchmark::kMillisecond);

void BM_BlockMaskedY(benchmark::State& state) {
  const auto& f = Fixture();
  const trace::Mask mask = f.MaskFor(state.range(0) / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::BlockForwardMaskedY(*f.weights, f.x, f.bias, mask, f.cached_y));
  }
  state.counters["mask_ratio"] = mask.ratio();
}
BENCHMARK(BM_BlockMaskedY)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_BlockMaskedKV(benchmark::State& state) {
  const auto& f = Fixture();
  const trace::Mask mask = f.MaskFor(state.range(0) / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::BlockForwardMaskedKV(
        *f.weights, f.x, f.bias, mask, f.cached_y, f.cached_k, f.cached_v));
  }
  state.counters["mask_ratio"] = mask.ratio();
}
BENCHMARK(BM_BlockMaskedKV)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_BlockMaskedGathered(benchmark::State& state) {
  const auto& f = Fixture();
  const trace::Mask mask = f.MaskFor(state.range(0) / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::BlockForwardMaskedGathered(
        *f.weights, f.x, f.bias, mask, f.cached_y, f.cached_k, f.cached_v));
  }
  state.counters["mask_ratio"] = mask.ratio();
}
BENCHMARK(BM_BlockMaskedGathered)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_BlockSparse(benchmark::State& state) {
  const auto& f = Fixture();
  const trace::Mask mask = f.MaskFor(state.range(0) / 100.0);
  const Matrix xm = GatherRows(f.x, mask.masked_tokens);
  const int n = xm.rows();
  Matrix sub_bias(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      sub_bias.at(i, j) = f.bias.at(mask.masked_tokens[i],
                                    mask.masked_tokens[j]);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::BlockForwardSparse(*f.weights, xm, sub_bias));
  }
}
BENCHMARK(BM_BlockSparse)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_AttentionMatrix(benchmark::State& state) {
  const auto& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::AttentionMatrix(*f.weights, f.x, f.bias));
  }
}
BENCHMARK(BM_AttentionMatrix)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Blocked kernel layer: naive vs blocked GEMM, and thread scaling.

struct GemmShape {
  const char* name;
  int m;
  int k;
  int n;
};

// The three GEMM shapes one SDXL transformer block actually issues
// (tokens=256, hidden=64, ff=256): QKV/out projections, FF up, and
// scores·V / FF down.
constexpr GemmShape kSdxlShapes[] = {
    {"qkv_256x64x64", 256, 64, 64},
    {"ff1_256x64x256", 256, 64, 256},
    {"ff2_256x256x64", 256, 256, 64},
};

Matrix BenchMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillNormal(rng, 1.0f);
  return m;
}

void BM_GemmNaive(benchmark::State& state) {
  const GemmShape& s = kSdxlShapes[state.range(0)];
  const Matrix a = BenchMatrix(s.m, s.k, 1);
  const Matrix b = BenchMatrix(s.k, s.n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::MatMul(a, b));
  }
  state.SetLabel(s.name);
}
BENCHMARK(BM_GemmNaive)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_GemmBlocked(benchmark::State& state) {
  const GemmShape& s = kSdxlShapes[state.range(0)];
  const Matrix a = BenchMatrix(s.m, s.k, 1);
  const Matrix b = BenchMatrix(s.k, s.n, 2);
  ComputeThreadsScope scope(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetLabel(s.name);
}
BENCHMARK(BM_GemmBlocked)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_GemmBlockedThreads(benchmark::State& state) {
  const GemmShape& s = kSdxlShapes[1];  // ff1: the largest of the three.
  const Matrix a = BenchMatrix(s.m, s.k, 1);
  const Matrix b = BenchMatrix(s.k, s.n, 2);
  ComputeThreadsScope scope(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetLabel(s.name);
}
BENCHMARK(BM_GemmBlockedThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_BlockFullThreads(benchmark::State& state) {
  const auto& f = Fixture();
  ComputeThreadsScope scope(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::BlockForwardFull(*f.weights, f.x, f.bias));
  }
}
BENCHMARK(BM_BlockFullThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_kernels.json: hand-timed medians, independent of google-benchmark.

// Median per-call milliseconds over `samples` timed batches. The batch size
// is calibrated once so each sample spans >= ~20 ms of wall clock.
double MedianCallMs(const std::function<void()>& fn, int samples = 5) {
  using Clock = std::chrono::steady_clock;
  auto time_batch = [&](int iters) {
    const auto start = Clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const auto stop = Clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
  };
  int iters = 1;
  double ms = time_batch(1);
  while (ms < 20.0 && iters < (1 << 20)) {
    iters *= 2;
    ms = time_batch(iters);
  }
  std::vector<double> per_call(static_cast<size_t>(samples));
  for (auto& sample : per_call) {
    sample = time_batch(iters) / iters;
  }
  std::sort(per_call.begin(), per_call.end());
  return per_call[per_call.size() / 2];
}

// Best-of timing for a speedup PAIR: alternates the two closures sample by
// sample and returns each side's fastest per-call milliseconds. Timing the
// two sides independently (each a median over its own window) lets a noisy
// neighbour on a time-shared core land on one side only and swing the
// ratio double-digit percent run to run; interleaving exposes both sides
// to the same windows, and min-of-N recovers each side's unloaded floor.
// Batch sizes are calibrated once (on the first closure) so every sample
// spans >= ~20 ms of wall clock.
std::pair<double, double> InterleavedMinMs(const std::function<void()>& a,
                                           const std::function<void()>& b,
                                           int samples = 9) {
  using Clock = std::chrono::steady_clock;
  auto time_batch = [](const std::function<void()>& fn, int iters) {
    const auto start = Clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const auto stop = Clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
  };
  int iters = 1;
  double ms = time_batch(a, 1);
  while (ms < 20.0 && iters < (1 << 20)) {
    iters *= 2;
    ms = time_batch(a, iters);
  }
  time_batch(b, iters);  // Warm b's cache footprint before sampling.
  double best_a = 1e300;
  double best_b = 1e300;
  for (int s = 0; s < samples; ++s) {
    best_a = std::min(best_a, time_batch(a, iters) / iters);
    best_b = std::min(best_b, time_batch(b, iters) / iters);
  }
  return {best_a, best_b};
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.bytes()) == 0;
}

// Returns false when any gathered-vs-dense bitwise gate fails. BENCH
// numbers from a drifting kernel are worthless, so drift fails the run.
bool WriteKernelsJson() {
  bool bitwise_ok = true;
  std::ostringstream json;
  json.setf(std::ios::fixed);
  json.precision(6);
  json << "{\n";
  json << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n";

  // Naive vs blocked, single thread, at the SDXL block shapes.
  json << "  \"gemm_naive_vs_blocked\": [\n";
  double worst_speedup = 1e30;
  for (size_t i = 0; i < std::size(kSdxlShapes); ++i) {
    const GemmShape& s = kSdxlShapes[i];
    const Matrix a = BenchMatrix(s.m, s.k, 1);
    const Matrix b = BenchMatrix(s.k, s.n, 2);
    const double naive_ms = MedianCallMs([&] {
      benchmark::DoNotOptimize(naive::MatMul(a, b));
    });
    ComputeThreadsScope scope(1);
    const double blocked_ms = MedianCallMs([&] {
      benchmark::DoNotOptimize(MatMul(a, b));
    });
    const double speedup = naive_ms / blocked_ms;
    worst_speedup = std::min(worst_speedup, speedup);
    json << "    {\"shape\": \"" << s.name << "\", \"naive_ms\": " << naive_ms
         << ", \"blocked_ms\": " << blocked_ms << ", \"speedup\": " << speedup
         << "}" << (i + 1 < std::size(kSdxlShapes) ? "," : "") << "\n";
    std::cerr << "gemm " << s.name << ": naive " << naive_ms << " ms, blocked "
              << blocked_ms << " ms, speedup " << speedup << "x\n";
  }
  json << "  ],\n";
  json << "  \"gemm_min_speedup\": " << worst_speedup << ",\n";

  // Thread scaling of the blocked GEMM (ff1 shape) and of a whole
  // transformer-block forward. On a host with a single online core the
  // fan-out threads time-share it, so scale_2t ~= 1.0 by construction;
  // hardware_threads above records the ceiling this host imposes.
  const GemmShape& s = kSdxlShapes[1];
  const Matrix a = BenchMatrix(s.m, s.k, 1);
  const Matrix b = BenchMatrix(s.k, s.n, 2);
  double gemm_ms[3] = {0, 0, 0};
  const int counts[3] = {1, 2, 4};
  json << "  \"gemm_thread_scaling\": [\n";
  for (int i = 0; i < 3; ++i) {
    ComputeThreadsScope scope(counts[i]);
    gemm_ms[i] = MedianCallMs([&] { benchmark::DoNotOptimize(MatMul(a, b)); });
    json << "    {\"threads\": " << counts[i] << ", \"shape\": \"" << s.name
         << "\", \"ms\": " << gemm_ms[i] << "}" << (i < 2 ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"gemm_scale_2t\": " << gemm_ms[0] / gemm_ms[1] << ",\n";

  const auto& f = Fixture();
  double block_ms[3] = {0, 0, 0};
  json << "  \"block_forward_thread_scaling\": [\n";
  for (int i = 0; i < 3; ++i) {
    ComputeThreadsScope scope(counts[i]);
    block_ms[i] = MedianCallMs([&] {
      benchmark::DoNotOptimize(
          model::BlockForwardFull(*f.weights, f.x, f.bias));
    });
    json << "    {\"threads\": " << counts[i] << ", \"ms\": " << block_ms[i]
         << "}" << (i < 2 ? "," : "") << "\n";
    std::cerr << "block_forward t=" << counts[i] << ": " << block_ms[i]
              << " ms\n";
  }
  json << "  ],\n";
  json << "  \"block_forward_scale_2t\": " << block_ms[0] / block_ms[1]
       << ",\n";

  // -------------------------------------------------------------------------
  // Gathered sparse compute path (gather→GEMM→scatter). Three levels:
  // the row-gathered GEMM primitive, one transformer block, and a full
  // denoise step. Every level gates on bitwise identity with the dense
  // flow before its timing is trusted.

  // GEMM level: MatMulRows over 10% of the rows vs the full MatMul, ff1
  // shape, single thread. This is the primitive whose cost is O(|rows|).
  {
    ComputeThreadsScope scope(1);
    const GemmShape& g = kSdxlShapes[1];
    const Matrix ga = BenchMatrix(g.m, g.k, 1);
    const Matrix gb = BenchMatrix(g.k, g.n, 2);
    std::vector<int> rows;
    for (int r = 0; r < g.m; r += 10) {
      rows.push_back(r);
    }
    const Matrix dense = MatMul(ga, gb);
    if (!BitwiseEqual(GatherRows(dense, rows), MatMulRows(ga, gb, rows))) {
      std::cerr << "BITWISE DRIFT: MatMulRows vs gathered dense GEMM\n";
      bitwise_ok = false;
    }
    const double dense_ms = MedianCallMs([&] {
      benchmark::DoNotOptimize(MatMul(ga, gb));
    });
    const double rows_ms = MedianCallMs([&] {
      benchmark::DoNotOptimize(MatMulRows(ga, gb, rows));
    });
    json << "  \"gemm_gathered_vs_dense\": {\"shape\": \"" << g.name
         << "\", \"rows_fraction\": "
         << static_cast<double>(rows.size()) / g.m
         << ", \"dense_ms\": " << dense_ms << ", \"gathered_ms\": " << rows_ms
         << ", \"speedup\": " << dense_ms / rows_ms << "},\n";
    std::cerr << "gemm gathered 10% rows: dense " << dense_ms
              << " ms, gathered " << rows_ms << " ms, speedup "
              << dense_ms / rows_ms << "x\n";
  }

  // Block level at m=0.1: BlockForwardMaskedGathered vs the dense
  // mask-aware flows, plus the measured kernel efficiencies the device
  // model consumes. The FISEdit-style figure is what TimingConfig::
  // sparse_kernel_efficiency holds: achieved FLOP/s of BlockForwardSparse
  // relative to the dense full-compute path at the same shape.
  {
    const trace::Mask m10 = f.MaskFor(0.10);
    const Matrix gathered = model::BlockForwardMaskedGathered(
        *f.weights, f.x, f.bias, m10, f.cached_y, f.cached_k, f.cached_v);
    if (!BitwiseEqual(gathered,
                      model::BlockForwardMaskedKV(*f.weights, f.x, f.bias, m10,
                                                  f.cached_y, f.cached_k,
                                                  f.cached_v))) {
      std::cerr << "BITWISE DRIFT: gathered block vs dense masked-KV block\n";
      bitwise_ok = false;
    }
    const auto [dense_y_ms, gathered_ms] = InterleavedMinMs(
        [&] {
          benchmark::DoNotOptimize(
              model::BlockForwardMaskedY(*f.weights, f.x, f.bias, m10,
                                         f.cached_y));
        },
        [&] {
          benchmark::DoNotOptimize(model::BlockForwardMaskedGathered(
              *f.weights, f.x, f.bias, m10, f.cached_y, f.cached_k,
              f.cached_v));
        });
    const double full_ms = MedianCallMs([&] {
      benchmark::DoNotOptimize(
          model::BlockForwardFull(*f.weights, f.x, f.bias));
    });
    const int L = f.grid * f.grid;
    const double ratio = m10.ratio();
    const double full_rate =
        model::FlopsFullBlock(L, f.hidden) / full_ms;
    const double gathered_eff =
        model::FlopsYCacheGatheredBlock(L, f.hidden, ratio) / gathered_ms /
        full_rate;
    // FISEdit-style sparse kernel, averaged over two mask ratios.
    double sparse_eff_sum = 0.0;
    for (const double mr : {0.1, 0.2}) {
      const trace::Mask mask = f.MaskFor(mr);
      const Matrix xm = GatherRows(f.x, mask.masked_tokens);
      const int n = xm.rows();
      Matrix sub_bias(n, n);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          sub_bias.at(i, j) =
              f.bias.at(mask.masked_tokens[i], mask.masked_tokens[j]);
        }
      }
      const double sparse_ms = MedianCallMs([&] {
        benchmark::DoNotOptimize(
            model::BlockForwardSparse(*f.weights, xm, sub_bias));
      });
      sparse_eff_sum += model::FlopsSparseBlock(L, f.hidden, mask.ratio()) /
                        sparse_ms / full_rate;
    }
    const double sparse_eff = sparse_eff_sum / 2.0;
    json << "  \"block_gathered_vs_dense\": {\"mask_ratio\": " << ratio
         << ", \"dense_y_ms\": " << dense_y_ms
         << ", \"gathered_ms\": " << gathered_ms
         << ", \"speedup\": " << dense_y_ms / gathered_ms << "},\n";
    json << "  \"gathered_kernel_efficiency\": " << gathered_eff << ",\n";
    json << "  \"sparse_kernel_efficiency_measured\": " << sparse_eff
         << ",\n";
    std::cerr << "block m=0.1: dense-Y " << dense_y_ms << " ms, gathered "
              << gathered_ms << " ms, speedup " << dense_y_ms / gathered_ms
              << "x; efficiency gathered " << gathered_eff << ", sparse "
              << sparse_eff << "\n";
  }

  // Step level: one RunStepRange step, dense vs gathered, at a bench-scale
  // shape (grid 20, hidden 512) where the Y-mode K/V recompute dominates —
  // the hot path the sparse option exists for. hidden >> grid keeps the
  // O(m·L^2) attention share small (the FLOP ratio nears its 2.67
  // asymptote), hidden = 512 keeps the weight panels within reach of L2
  // (wider hidden turns the panel walk TLB-bound), and grid 20 gathers 40
  // masked rows at m = 0.1 — an exact multiple of the 8-row GEMM tile, so
  // the gathered panels run with no ragged edge tile and enough row tiles
  // to amortize panel packing. The full-denoise outputs are compared
  // bitwise in BOTH mask-aware modes before timing.
  {
    model::NumericsConfig cfg;
    cfg.grid_h = 20;
    cfg.grid_w = 20;
    cfg.hidden = 512;
    cfg.num_blocks = 3;
    cfg.num_steps = 2;
    const model::DiffusionModel dm(cfg);
    const Matrix tmpl = dm.EncodeTemplate(0);
    const model::ActivationRecord rec = dm.Register(0, /*record_kv=*/true);
    double speedup_m10 = 0.0;
    json << "  \"step_latency_sparse_compute\": [\n";
    const double ratios[] = {0.1, 0.3, 0.5};
    for (size_t i = 0; i < std::size(ratios); ++i) {
      Rng rng(17);
      const trace::Mask mask =
          trace::GenerateBlobMask(cfg.grid_h, cfg.grid_w, ratios[i], rng);
      const Matrix latent = dm.InitEditLatent(tmpl, mask, 5);
      model::DiffusionModel::RunOptions opts;
      opts.cache = &rec;
      opts.mask = &mask;
      for (const auto mode : {model::ComputeMode::kMaskAwareY,
                              model::ComputeMode::kMaskAwareKV}) {
        opts.mode = mode;
        opts.sparse_compute = false;
        const Matrix dense_out = dm.RunDenoise(latent, opts).final_latent;
        opts.sparse_compute = true;
        if (!BitwiseEqual(dense_out, dm.RunDenoise(latent, opts).final_latent)) {
          std::cerr << "BITWISE DRIFT: sparse denoise, mode "
                    << (mode == model::ComputeMode::kMaskAwareY ? "Y" : "KV")
                    << ", m=" << ratios[i] << "\n";
          bitwise_ok = false;
        }
      }
      opts.mode = model::ComputeMode::kMaskAwareY;
      model::DiffusionModel::RunOptions dense_opts = opts;
      dense_opts.sparse_compute = false;
      model::DiffusionModel::RunOptions sparse_opts = opts;
      sparse_opts.sparse_compute = true;
      const auto [dense_ms, sparse_ms] = InterleavedMinMs(
          [&] {
            benchmark::DoNotOptimize(dm.RunStepRange(latent, dense_opts, 0, 1));
          },
          [&] {
            benchmark::DoNotOptimize(
                dm.RunStepRange(latent, sparse_opts, 0, 1));
          });
      const double speedup = dense_ms / sparse_ms;
      if (i == 0) {
        speedup_m10 = speedup;
      }
      json << "    {\"mask_ratio\": " << mask.ratio()
           << ", \"dense_step_ms\": " << dense_ms
           << ", \"sparse_step_ms\": " << sparse_ms
           << ", \"speedup\": " << speedup << "}"
           << (i + 1 < std::size(ratios) ? "," : "") << "\n";
      std::cerr << "step m=" << ratios[i] << ": dense " << dense_ms
                << " ms, sparse " << sparse_ms << " ms, speedup " << speedup
                << "x\n";
    }
    json << "  ],\n";
    json << "  \"sparse_step_speedup_m10\": " << speedup_m10 << ",\n";
  }

  json << "  \"bitwise_gathered_vs_dense_ok\": "
       << (bitwise_ok ? "true" : "false") << "\n";
  json << "}\n";

  std::ofstream out("BENCH_kernels.json");
  out << json.str();
  std::cerr << "wrote BENCH_kernels.json\n";
  return bitwise_ok;
}

}  // namespace
}  // namespace flashps

int main(int argc, char** argv) {
  bool json_only = false;
  // Strip --json-only before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!json_only) {
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  // Non-zero exit when a gathered-vs-dense bitwise gate fails: numbers
  // from a drifting sparse path must not land in BENCH_kernels.json
  // unflagged.
  return flashps::WriteKernelsJson() ? 0 : 1;
}
