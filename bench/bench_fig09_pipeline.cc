// Reproduces Fig. 9: timelines of the three cache-loading schemes for one
// denoising step, rendered as ASCII Gantt charts of the load and compute
// streams, plus the bubble accounting that motivates Algorithm 1.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/model/timing.h"
#include "src/pipeline/pipeline.h"

namespace flashps {
namespace {

void RenderTrace(const char* title, const pipeline::PipelineTrace& trace) {
  const double total_ms = trace.total.millis();
  const int width = 64;
  auto col = [&](TimePoint t) {
    return std::clamp(
        static_cast<int>((t - TimePoint()).millis() / total_ms * width), 0,
        width);
  };
  std::string load_row(width, '.');
  std::string comp_row(width, '.');
  for (size_t i = 0; i < trace.blocks.size(); ++i) {
    const auto& b = trace.blocks[i];
    const char tag = static_cast<char>('0' + i % 10);
    if (b.used_cache) {
      for (int c = col(b.load_start); c < col(b.load_end); ++c) {
        load_row[c] = tag;
      }
    }
    for (int c = col(b.compute_start); c < col(b.compute_end); ++c) {
      comp_row[c] = tag;
    }
  }
  std::printf("\n%s  (total %.1f ms, compute bubbles %.1f ms)\n", title,
              total_ms, trace.compute_idle.millis());
  std::printf("  load:    |%s|\n", load_row.c_str());
  std::printf("  compute: |%s|\n", comp_row.c_str());
}

void Run() {
  bench::PrintHeader(
      "Figure 9: naive vs strawman vs bubble-free pipeline (Flux step, "
      "small mask)",
      "strawman pipelining leaves bubbles when loading a block exceeds its "
      "computation; the DP removes them by recomputing selected blocks");

  const auto config = model::TimingConfig::Get(model::ModelKind::kFlux);
  const auto spec = device::DeviceSpec::Get(config.gpu);
  const double ratios[] = {0.1};
  const auto w =
      model::BuildStepWorkload(config, ratios, model::ComputeMode::kMaskAwareY);
  const auto d = model::ComputeStepDurations(config, spec, w);
  const size_t n = d.load.size();

  // Naive: serialized synchronous load + compute per block (blocking
  // pageable transfers, so each load runs at the slow sync rate).
  std::vector<Duration> sync_loads;
  for (const auto& block : w.blocks) {
    sync_loads.push_back(spec.SyncLoadLatency(block.load_bytes));
  }
  pipeline::PipelineTrace naive;
  naive.blocks.resize(n);
  TimePoint cursor;
  for (size_t i = 0; i < n; ++i) {
    auto& b = naive.blocks[i];
    b.used_cache = true;
    b.load_start = cursor;
    b.load_end = cursor + sync_loads[i];
    b.compute_start = b.load_end;
    b.compute_end = b.compute_start + d.compute_with_cache[i];
    cursor = b.compute_end;
  }
  naive.total = cursor - TimePoint();
  RenderTrace("Naive sequential loading", naive);

  const std::vector<bool> all(n, true);
  const auto strawman = pipeline::ExecutePlan(
      d.compute_with_cache, d.compute_without_cache, d.load, all);
  RenderTrace("Strawman pipeline (all blocks cached)", strawman);

  const auto plan = pipeline::PlanBubbleFree(d.compute_with_cache,
                                             d.compute_without_cache, d.load);
  const auto bubble_free = pipeline::ExecutePlan(
      d.compute_with_cache, d.compute_without_cache, d.load, plan.use_cache);
  RenderTrace("Bubble-free pipeline (Algorithm 1)", bubble_free);

  int cached = 0;
  for (const bool c : plan.use_cache) {
    cached += c ? 1 : 0;
  }
  std::printf(
      "\nDP chose to cache %d of %zu blocks. Latencies: naive %.1f ms, "
      "strawman %.1f ms, bubble-free %.1f ms.\n",
      cached, n, naive.total.millis(), strawman.total.millis(),
      bubble_free.total.millis());

  // Large mask ratio: computation dominates, the loading stream idles, and
  // (per §4.2) FlashPS keeps computing all masked tokens.
  const double big[] = {0.6};
  const auto wb =
      model::BuildStepWorkload(config, big, model::ComputeMode::kMaskAwareY);
  const auto db = model::ComputeStepDurations(config, spec, wb);
  const auto plan_big = pipeline::PlanBubbleFree(
      db.compute_with_cache, db.compute_without_cache, db.load);
  const auto trace_big = pipeline::ExecutePlan(
      db.compute_with_cache, db.compute_without_cache, db.load,
      plan_big.use_cache);
  std::printf(
      "\nAt mask ratio 0.6 the step is computation-bound: copy-stream idle "
      "%.1f ms (bubbles tolerated there by design), compute bubbles %.1f "
      "ms.\n",
      trace_big.copy_idle.millis(), trace_big.compute_idle.millis());
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::Run();
  return 0;
}
