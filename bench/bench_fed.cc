// Federated front tier under open-loop replay: a FedGateway over an
// in-process fleet of real serving nodes (gateway + TcpServer each),
// driven over the wire by a pipelined net::Client — the cluster control
// plane's end-to-end cost and its failover guarantee, measured.
//
// Two legs over the same trace:
//
//   steady   — every node healthy. Reports wall clock, throughput, e2e
//              p50/p99, and how the router spread the trace across the
//              fleet.
//   failover — the hottest node (most unfinished dispatched work) is
//              killed with a zero drain budget at the trace midpoint,
//              like a crashed process. The control plane must re-route
//              its orphans to siblings.
//
// Two hard gates, both legs: zero failed requests, and every latent
// checksum bitwise-identical to a single local gateway running the same
// trace (the determinism invariant that makes failover safe). The bench
// exits non-zero on any drift — this is the CI gate for the federation.
//
// Results land in BENCH_fed.json.
//
//   bench_fed --requests=32 --steps=2 --nodes=3 --route=mask-aware
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flag_parser.h"
#include "src/common/rng.h"
#include "src/fed/fed_gateway.h"
#include "src/gateway/gateway.h"
#include "src/net/client.h"
#include "src/net/tcp_server.h"
#include "src/trace/workload.h"

using namespace flashps;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

gateway::GatewayOptions NodeOptions(int steps) {
  gateway::GatewayOptions options;
  options.num_workers = 1;
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = steps;
  options.worker.max_batch = 2;
  options.admission_control = false;
  return options;
}

std::vector<runtime::OnlineRequest> MakeTrace(int count) {
  const model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  Rng rng(7411);
  std::vector<runtime::OnlineRequest> trace;
  for (int i = 0; i < count; ++i) {
    runtime::OnlineRequest request;
    request.template_id = i % 4;
    request.prompt_seed = 9000 + static_cast<uint64_t>(i);
    request.mask = trace::GenerateBlobMask(numerics.grid_h, numerics.grid_w,
                                           0.08 + 0.05 * (i % 7), rng);
    trace.push_back(request);
  }
  return trace;
}

struct FleetNode {
  std::unique_ptr<gateway::Gateway> gateway;
  std::unique_ptr<net::TcpServer> server;
};

struct LegResult {
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int victim = -1;
  fed::FedGateway::Stats stats;
  std::vector<uint64_t> node_completed;
  bool bitwise_identical = true;
  uint64_t mismatches = 0;
};

double PercentileMs(std::vector<int64_t> e2e_us, double q) {
  if (e2e_us.empty()) {
    return 0.0;
  }
  std::sort(e2e_us.begin(), e2e_us.end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(e2e_us.size() - 1) + 0.5);
  return static_cast<double>(e2e_us[index]) / 1e3;
}

// Replays the trace through a federated fleet; when `kill_midway`, the
// hottest node dies after half the replies have landed.
LegResult RunLeg(const std::vector<runtime::OnlineRequest>& trace, int steps,
                 int num_nodes, sched::RoutePolicy route, bool kill_midway,
                 const std::vector<uint64_t>& expected) {
  LegResult result;
  std::vector<FleetNode> fleet(static_cast<size_t>(num_nodes));
  for (FleetNode& node : fleet) {
    node.gateway = std::make_unique<gateway::Gateway>(NodeOptions(steps));
    net::TcpServerOptions options;
    options.drain_timeout = std::chrono::milliseconds(0);  // Kills are abrupt.
    node.server = std::make_unique<net::TcpServer>(*node.gateway, options);
    if (!node.server->Start()) {
      std::fprintf(stderr, "bench_fed: cannot start fleet node\n");
      std::exit(1);
    }
  }

  fed::FedGatewayOptions options;
  for (const FleetNode& node : fleet) {
    options.nodes.push_back(fed::FedNode{"127.0.0.1", node.server->port()});
  }
  options.policy = route;
  options.registry.probe_interval = std::chrono::milliseconds(50);
  options.registry.probe_timeout = std::chrono::milliseconds(250);
  options.registry.dead_after = 3;
  options.connections_per_node = 1;
  fed::FedGateway fed(options);
  fed.Start();
  net::TcpServer front(fed);
  if (!front.Start()) {
    std::fprintf(stderr, "bench_fed: cannot start front tier\n");
    std::exit(1);
  }
  net::Client client("127.0.0.1", front.port());
  if (!client.Connect()) {
    std::fprintf(stderr, "bench_fed: cannot connect to front tier\n");
    std::exit(1);
  }

  const Clock::time_point start = Clock::now();
  std::vector<uint64_t> seqs;
  for (const runtime::OnlineRequest& request : trace) {
    net::WireRequest wire;
    wire.denoise_steps = static_cast<int32_t>(steps);
    wire.request = request;
    seqs.push_back(client.Send(wire));
  }

  if (kill_midway) {
    const uint64_t half = trace.size() / 2;
    const auto deadline = Clock::now() + std::chrono::seconds(120);
    while (fed.stats().completed < half && Clock::now() < deadline) {
      client.Pump(std::chrono::milliseconds(1));
    }
    uint64_t hottest = 0;
    for (int i = 0; i < num_nodes; ++i) {
      const fed::NodeInfo info = fed.registry().Info(i);
      const uint64_t backlog = info.dispatched - info.completed;
      if (backlog > hottest) {
        hottest = backlog;
        result.victim = i;
      }
    }
    if (result.victim >= 0) {
      fleet[static_cast<size_t>(result.victim)].server->Stop();
    }
  }

  std::vector<int64_t> e2e_us;
  for (size_t i = 0; i < seqs.size(); ++i) {
    auto response = client.Await(seqs[i], std::chrono::milliseconds(120000));
    if (!response.has_value() ||
        response->submit_status() != gateway::SubmitStatus::kAccepted) {
      std::fprintf(stderr, "bench_fed: request %zu FAILED (%s leg)\n", i,
                   kill_midway ? "failover" : "steady");
      result.bitwise_identical = false;
      ++result.mismatches;
      continue;
    }
    e2e_us.push_back(response->e2e_us);
    if (response->latent_checksum != expected[i]) {
      std::fprintf(stderr,
                   "bench_fed: request %zu checksum drift: fleet %016llx "
                   "!= local %016llx\n",
                   i,
                   static_cast<unsigned long long>(response->latent_checksum),
                   static_cast<unsigned long long>(expected[i]));
      result.bitwise_identical = false;
      ++result.mismatches;
    }
  }
  result.wall_ms = MsSince(start);
  result.p50_ms = PercentileMs(e2e_us, 0.50);
  result.p99_ms = PercentileMs(e2e_us, 0.99);
  result.stats = fed.stats();
  for (int i = 0; i < num_nodes; ++i) {
    result.node_completed.push_back(fed.registry().Info(i).completed);
  }

  front.Stop();
  fed.StopAccepting();
  fed.Drain();
  fed.Stop();
  for (FleetNode& node : fleet) {
    node.server->Stop();
    node.gateway->Stop();
  }
  return result;
}

std::string LegJson(const LegResult& leg, size_t requests) {
  std::ostringstream json;
  json << "{\"wall_ms\":" << bench::Fmt(leg.wall_ms)
       << ",\"throughput_rps\":"
       << bench::Fmt(static_cast<double>(requests) / (leg.wall_ms / 1e3))
       << ",\"e2e_p50_ms\":" << bench::Fmt(leg.p50_ms)
       << ",\"e2e_p99_ms\":" << bench::Fmt(leg.p99_ms)
       << ",\"submitted\":" << leg.stats.submitted
       << ",\"completed\":" << leg.stats.completed
       << ",\"failed\":" << leg.stats.failed
       << ",\"redispatched\":" << leg.stats.redispatched
       << ",\"victim\":" << leg.victim << ",\"node_completed\":[";
  for (size_t i = 0; i < leg.node_completed.size(); ++i) {
    if (i > 0) json << ",";
    json << leg.node_completed[i];
  }
  json << "],\"bitwise_identical\":"
       << (leg.bitwise_identical ? "true" : "false") << "}";
  return json.str();
}

}  // namespace

int main(int argc, char** argv) {
  flags::FlagParser flags(argc, argv);
  const int requests = static_cast<int>(
      flags.LongInRange("requests", 32, 2, 4096, "trace length"));
  const int steps = static_cast<int>(
      flags.LongInRange("steps", 2, 1, 64, "denoise steps per request"));
  const int num_nodes = static_cast<int>(
      flags.LongInRange("nodes", 3, 2, 16, "fleet size"));
  const std::string route_name = flags.String(
      "route", "mask-aware", "route policy for both legs");
  const bool want_help = flags.Has("help", "print this help");
  const std::string usage = flags.HelpText(argv[0]);
  if (want_help) {
    std::fputs(usage.c_str(), stdout);
    return 0;
  }
  if (!flags.ok()) {
    std::fprintf(stderr, "%s%s", flags.ErrorText().c_str(), usage.c_str());
    return 2;
  }
  sched::RoutePolicy route = sched::RoutePolicy::kMaskAware;
  if (!sched::ParseRoutePolicy(route_name, &route)) {
    std::fprintf(stderr, "bench_fed: bad --route=%s\n%s", route_name.c_str(),
                 usage.c_str());
    return 2;
  }

  bench::PrintHeader(
      "bench_fed: federated front tier over " + std::to_string(num_nodes) +
          " serving nodes",
      "failover must lose zero requests and stay bitwise-identical");

  const std::vector<runtime::OnlineRequest> trace = MakeTrace(requests);

  // The bitwise reference: one local gateway, same trace.
  std::vector<uint64_t> expected;
  {
    gateway::Gateway local(NodeOptions(steps));
    for (const runtime::OnlineRequest& request : trace) {
      gateway::SubmitResult result = local.Submit(request);
      expected.push_back(net::LatentChecksum(result.future.get().image));
    }
    local.Stop();
  }

  const LegResult steady =
      RunLeg(trace, steps, num_nodes, route, /*kill_midway=*/false, expected);
  const LegResult failover =
      RunLeg(trace, steps, num_nodes, route, /*kill_midway=*/true, expected);

  bench::PrintRow({"leg", "wall_ms", "p50_ms", "p99_ms", "redisp", "failed",
                   "bitwise"});
  bench::PrintRow({"steady", bench::Fmt(steady.wall_ms),
                   bench::Fmt(steady.p50_ms), bench::Fmt(steady.p99_ms),
                   std::to_string(steady.stats.redispatched),
                   std::to_string(steady.stats.failed),
                   steady.bitwise_identical ? "yes" : "NO"});
  bench::PrintRow({"failover", bench::Fmt(failover.wall_ms),
                   bench::Fmt(failover.p50_ms), bench::Fmt(failover.p99_ms),
                   std::to_string(failover.stats.redispatched),
                   std::to_string(failover.stats.failed),
                   failover.bitwise_identical ? "yes" : "NO"});
  std::printf("failover: killed node %d mid-trace; %llu re-dispatched\n",
              failover.victim,
              static_cast<unsigned long long>(failover.stats.redispatched));

  std::ostringstream json;
  json << "{\"requests\":" << requests << ",\"steps\":" << steps
       << ",\"nodes\":" << num_nodes << ",\"route\":\"" << route_name << "\""
       << ",\"steady\":" << LegJson(steady, trace.size())
       << ",\"failover\":" << LegJson(failover, trace.size()) << "}";
  std::ofstream out("BENCH_fed.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_fed.json\n");

  // The CI gates: a federation that loses or corrupts a request under
  // failover is broken, whatever its latency numbers say.
  const bool gates_ok = steady.bitwise_identical && steady.stats.failed == 0 &&
                        failover.bitwise_identical &&
                        failover.stats.failed == 0;
  if (!gates_ok) {
    std::fprintf(stderr, "bench_fed: GATE FAILURE (see drift above)\n");
    return 2;
  }
  std::printf("gates: zero failed, bitwise identical across both legs\n");
  return 0;
}
