// Reproduces Fig. 14: serving-engine throughput vs batch size for SDXL and
// Flux on H800 (SD2.1/A10 omitted in the paper because FISEdit OOMs above
// batch 2; we include it for completeness, without FISEdit beyond 2).
#include <cstdio>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/cluster/simulation.h"

namespace flashps {
namespace {

using bench::Fmt;

void RunModel(model::ModelKind kind) {
  const auto timing = model::TimingConfig::Get(kind);
  std::printf("\n--- %s on %s ---\n", timing.name.c_str(),
              device::ToString(timing.gpu).c_str());
  bench::PrintRow({"batch", "FlashPS", "TeaCache", "Diffusers", "FISEdit"});
  double flash_b1 = 0.0;
  double best_baseline = 0.0;
  double flash_best = 0.0;
  for (const int batch : {1, 2, 4, 8}) {
    const int n = 16 * batch;
    const double flash = cluster::MeasureEngineThroughput(
        serving::EngineConfig::ForSystem(serving::SystemKind::kFlashPS, kind),
        batch, trace::TraceKind::kProduction, n);
    const double tea = cluster::MeasureEngineThroughput(
        serving::EngineConfig::ForSystem(serving::SystemKind::kTeaCache, kind),
        batch, trace::TraceKind::kProduction, n);
    const double dif = cluster::MeasureEngineThroughput(
        serving::EngineConfig::ForSystem(serving::SystemKind::kDiffusers, kind),
        batch, trace::TraceKind::kProduction, n);
    std::string fisedit = "-";
    if (kind == model::ModelKind::kSd21 && batch <= 2) {
      fisedit = Fmt(cluster::MeasureEngineThroughput(
                        serving::EngineConfig::ForSystem(
                            serving::SystemKind::kFISEdit, kind),
                        batch, trace::TraceKind::kProduction, n),
                    3);
    }
    bench::PrintRow({std::to_string(batch), Fmt(flash, 3), Fmt(tea, 3),
                     Fmt(dif, 3), fisedit});
    if (batch == 1) {
      flash_b1 = flash;
      std::printf(
          "  (batch 1: FlashPS %s TeaCache — the paper observes TeaCache "
          "wins here from full SM utilization)\n",
          flash < tea ? "<" : ">=");
    }
    best_baseline = std::max({best_baseline, tea, dif});
    flash_best = std::max(flash_best, flash);
  }
  std::printf("FlashPS batching gain (B=8 vs B=1): %.2fx; best-vs-best "
              "advantage over baselines: %.2fx\n",
              flash_best / flash_b1, flash_best / best_baseline);
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Figure 14: engine throughput vs batch size",
      "FlashPS throughput keeps growing with batch size (up to 3x over "
      "baselines at batch >= 2); baselines plateau almost immediately; "
      "TeaCache is ahead at batch 1");
  flashps::RunModel(flashps::model::ModelKind::kSdxl);
  flashps::RunModel(flashps::model::ModelKind::kFlux);
  flashps::RunModel(flashps::model::ModelKind::kSd21);
  return 0;
}
