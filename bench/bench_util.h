// Shared helpers for the experiment-reproduction binaries: consistent table
// printing and paper-vs-measured reporting.
#ifndef FLASHPS_BENCH_BENCH_UTIL_H_
#define FLASHPS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace flashps::bench {

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace flashps::bench

#endif  // FLASHPS_BENCH_BENCH_UTIL_H_
