// Reproduces Fig. 11: the linear regression models that map a batch's FLOPs
// (derived from mask ratios via Table 1) to latency, for each model/GPU
// pair. The paper reports R^2 ~= 0.99.
#include <cstdio>

#include "bench/bench_util.h"
#include <algorithm>

#include "src/common/rng.h"
#include "src/sched/latency_model.h"

namespace flashps {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 11: latency-estimation regressions",
      "latency is linear in Table-1 FLOPs; fits achieve R^2 ~= 0.99 "
      "(parameters vary per model and GPU)");

  bench::PrintRow({"model", "gpu", "compute R^2", "slope(s/TFLOP)",
                   "load R^2", "slope(s/MB)"});
  for (const model::ModelKind kind :
       {model::ModelKind::kSd21, model::ModelKind::kSdxl,
        model::ModelKind::kFlux}) {
    const auto config = model::TimingConfig::Get(kind);
    const auto m =
        sched::LatencyModel::FitOffline(config, model::ComputeMode::kMaskAwareY);
    bench::PrintRow({config.name, device::ToString(config.gpu),
                     bench::Fmt(m.compute_fit().r2, 4),
                     bench::Fmt(m.compute_fit().slope, 5),
                     bench::Fmt(m.load_fit().r2, 4),
                     bench::Fmt(m.load_fit().slope, 6)});
  }

  // Scatter check for SDXL: predicted vs device-model latency per batch.
  std::printf("\n--- SDXL/H800: predicted vs measured step latency ---\n");
  const auto config = model::TimingConfig::Get(model::ModelKind::kSdxl);
  const auto spec = device::DeviceSpec::Get(config.gpu);
  const auto lm =
      sched::LatencyModel::FitOffline(config, model::ComputeMode::kMaskAwareY);
  bench::PrintRow({"batch", "mean-ratio", "measured(ms)", "predicted(ms)"});
  Rng rng(11);
  for (int batch = 1; batch <= 8; batch *= 2) {
    for (const double base : {0.08, 0.25}) {
      std::vector<double> ratios;
      double sum = 0.0;
      for (int i = 0; i < batch; ++i) {
        const double r = std::clamp(base + rng.Uniform(-0.03, 0.03), 0.01, 0.99);
        ratios.push_back(r);
        sum += r;
      }
      const auto w = model::BuildStepWorkload(config, ratios,
                                              model::ComputeMode::kMaskAwareY);
      const auto d = model::ComputeStepDurations(config, spec, w);
      Duration measured = d.non_tf;
      for (const Duration c : d.compute_with_cache) {
        measured += c;
      }
      const auto est = lm.EstimateStepDurations(ratios);
      Duration predicted = est.non_tf;
      for (const Duration c : est.compute_with_cache) {
        predicted += c;
      }
      bench::PrintRow({std::to_string(batch), bench::Fmt(sum / batch, 2),
                       bench::Fmt(measured.millis(), 1),
                       bench::Fmt(predicted.millis(), 1)});
    }
  }
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::Run();
  return 0;
}
