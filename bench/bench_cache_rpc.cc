// Shared cache-tier microbenchmark: RemoteActivationStore against an
// in-process flashps_cached node over loopback TCP.
//
// Three legs, mirroring a fleet's lifecycle (EXPERIMENTS.md §cache-rpc):
//
//   cold   — the first worker of a fleet: every template misses the node,
//            registers locally, and publishes the record back. Measures
//            the register+publish cost and bytes shipped per template.
//   warm   — a freshly started worker joining a warm fleet: every
//            template is resident on the node, so the whole record
//            arrives over the wire. Measures fetch p50/p99 and the
//            speedup over local registration.
//   sweep  — a Zipf-like template-reuse trace replayed through fronts of
//            increasing LRU capacity: hit rate climbs with capacity until
//            the working set fits and RPCs vanish.
//
// Client and node byte counters are reconciled at the end (bytes put ==
// bytes stored, bytes fetched == bytes served) and everything is written
// to BENCH_cache_rpc.json.
//
//   bench_cache_rpc --templates=12 --steps=4 --trace-len=96
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/remote_store.h"
#include "src/common/rng.h"
#include "src/model/diffusion_model.h"
#include "src/net/cache_node.h"
#include "src/net/tcp_server.h"

using namespace flashps;

namespace {

using Clock = std::chrono::steady_clock;

bool FlagValue(int argc, char** argv, const char* key, std::string* out) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *out = argv[i] + prefix.size();
      return true;
    }
  }
  return false;
}

long FlagLong(int argc, char** argv, const char* key, long fallback) {
  std::string value;
  return FlagValue(argc, argv, key, &value) ? std::atol(value.c_str())
                                            : fallback;
}

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

cache::RemoteStoreOptions StoreOptions(uint16_t port, size_t lru_capacity) {
  cache::RemoteStoreOptions options;
  options.port = port;
  options.lru_capacity = lru_capacity;
  options.connect_attempts = 2;
  return options;
}

// A skewed reuse trace: popular templates dominate, the tail recurs
// rarely — the regime where a small LRU front pays off.
std::vector<int> ZipfTrace(int length, int templates, Rng& rng) {
  const ZipfSampler sampler(templates, /*s=*/1.0);
  std::vector<int> trace;
  trace.reserve(length);
  for (int i = 0; i < length; ++i) {
    trace.push_back(sampler.Sample(rng));
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const int templates = static_cast<int>(FlagLong(argc, argv, "templates", 12));
  const int steps = static_cast<int>(FlagLong(argc, argv, "steps", 4));
  const int trace_len =
      static_cast<int>(FlagLong(argc, argv, "trace-len", 96));
  const uint64_t seed = static_cast<uint64_t>(FlagLong(argc, argv, "seed", 7));

  bench::PrintHeader(
      "bench_cache_rpc — shared cache tier over the wire protocol",
      "templates are reused ~35k times fleet-wide (§3), so one cache node "
      "amortizes activation registration across every worker");

  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = steps;
  model::DiffusionModel model(numerics);

  net::CacheNode node;
  net::TcpServer server(node.Service());
  if (!server.Start()) {
    std::fprintf(stderr, "cannot start loopback cache node\n");
    return 1;
  }
  const uint16_t port = server.port();
  std::printf("cache node on 127.0.0.1:%u, %d templates, %d steps\n\n", port,
              templates, steps);

  // --- cold leg: first worker populates the node -------------------------
  auto cold = std::make_unique<cache::RemoteActivationStore>(
      StoreOptions(port, /*lru_capacity=*/0));
  const auto cold_start = Clock::now();
  for (int t = 0; t < templates; ++t) {
    cold->Acquire(model, t, /*record_kv=*/false);
  }
  const double cold_ms = MsSince(cold_start);
  const cache::RemoteStoreStats cold_stats = cold->Stats();

  // --- warm leg: a fresh worker fetches everything remotely --------------
  auto warm = std::make_unique<cache::RemoteActivationStore>(
      StoreOptions(port, /*lru_capacity=*/0));
  const auto warm_start = Clock::now();
  for (int t = 0; t < templates; ++t) {
    warm->Acquire(model, t, /*record_kv=*/false);
  }
  const double warm_ms = MsSince(warm_start);
  const cache::RemoteStoreStats warm_stats = warm->Stats();

  // Local baseline: registration cost with no cache tier at all.
  cache::ActivationStore local;
  const auto local_start = Clock::now();
  for (int t = 0; t < templates; ++t) {
    local.Acquire(model, t + templates, /*record_kv=*/false);
  }
  const double local_ms = MsSince(local_start);

  bench::PrintRow({"leg", "wall ms", "per-tmpl ms", "hit rate"}, 16);
  bench::PrintRow({"cold (register+put)", bench::Fmt(cold_ms, 1),
                   bench::Fmt(cold_ms / templates, 2), "0.00"},
                  16);
  bench::PrintRow({"warm (remote fetch)", bench::Fmt(warm_ms, 1),
                   bench::Fmt(warm_ms / templates, 2), "1.00"},
                  16);
  bench::PrintRow({"local (no tier)", bench::Fmt(local_ms, 1),
                   bench::Fmt(local_ms / templates, 2), "-"},
                  16);
  std::printf("\nwarm fetch p50 %.0f us, p99 %.0f us, %llu bytes/record\n",
              warm_stats.fetch_p50_us, warm_stats.fetch_p99_us,
              static_cast<unsigned long long>(warm_stats.remote_bytes_fetched /
                                             templates));

  // --- hit-rate sweep over the LRU front capacity ------------------------
  Rng rng(seed);
  const std::vector<int> trace = ZipfTrace(trace_len, templates, rng);
  struct SweepPoint {
    size_t capacity;
    uint64_t front_hits;
    uint64_t remote_hits;
    double hit_rate;
    double wall_ms;
  };
  std::vector<SweepPoint> sweep;
  std::printf("\nfront LRU sweep, %d-acquire Zipf trace over %d templates:\n",
              trace_len, templates);
  bench::PrintRow({"capacity", "front hits", "remote", "hit rate", "wall ms"},
                  12);
  for (size_t capacity : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    auto store = std::make_unique<cache::RemoteActivationStore>(
        StoreOptions(port, capacity));
    const auto start = Clock::now();
    for (int t : trace) {
      store->Acquire(model, t, /*record_kv=*/false);
    }
    SweepPoint point;
    point.capacity = capacity;
    point.wall_ms = MsSince(start);
    const cache::RemoteStoreStats stats = store->Stats();
    point.front_hits = stats.front_hits;
    point.remote_hits = stats.remote_hits;
    point.hit_rate = static_cast<double>(stats.front_hits) / trace.size();
    sweep.push_back(point);
    bench::PrintRow({std::to_string(capacity),
                     std::to_string(point.front_hits),
                     std::to_string(point.remote_hits),
                     bench::Fmt(point.hit_rate, 2),
                     bench::Fmt(point.wall_ms, 1)},
                    12);
  }

  // --- reconcile client-side byte counters with the node's ---------------
  const net::CacheNodeStats node_stats = node.Stats();
  const bool put_ok =
      node_stats.bytes_stored == cold_stats.remote_bytes_put;
  std::printf("\nreconcile: node stored %llu bytes vs client put %llu (%s), "
              "node served %llu bytes across all legs\n",
              static_cast<unsigned long long>(node_stats.bytes_stored),
              static_cast<unsigned long long>(cold_stats.remote_bytes_put),
              put_ok ? "ok" : "MISMATCH",
              static_cast<unsigned long long>(node_stats.bytes_served));

  std::ostringstream json;
  json << "{\"templates\":" << templates << ",\"steps\":" << steps
       << ",\"trace_len\":" << trace_len
       << ",\"cold\":{\"wall_ms\":" << cold_ms
       << ",\"remote_misses\":" << cold_stats.remote_misses
       << ",\"puts_ok\":" << cold_stats.puts_ok
       << ",\"bytes_put\":" << cold_stats.remote_bytes_put
       << "},\"warm\":{\"wall_ms\":" << warm_ms
       << ",\"remote_hits\":" << warm_stats.remote_hits
       << ",\"bytes_fetched\":" << warm_stats.remote_bytes_fetched
       << ",\"fetch_p50_us\":" << warm_stats.fetch_p50_us
       << ",\"fetch_p99_us\":" << warm_stats.fetch_p99_us
       << "},\"local_baseline_ms\":" << local_ms << ",\"sweep\":[";
  for (size_t i = 0; i < sweep.size(); ++i) {
    if (i > 0) json << ",";
    json << "{\"capacity\":" << sweep[i].capacity
         << ",\"front_hits\":" << sweep[i].front_hits
         << ",\"remote_hits\":" << sweep[i].remote_hits
         << ",\"hit_rate\":" << sweep[i].hit_rate
         << ",\"wall_ms\":" << sweep[i].wall_ms << "}";
  }
  json << "],\"node\":" << node.MetricsJson()
       << ",\"reconciled\":" << (put_ok ? "true" : "false") << "}";
  std::ofstream out("BENCH_cache_rpc.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_cache_rpc.json\n");

  server.Stop();
  return put_ok ? 0 : 2;
}
