// Shared cache-tier microbenchmark: RemoteActivationStore against an
// in-process flashps_cached node over loopback TCP.
//
// Three legs, mirroring a fleet's lifecycle (EXPERIMENTS.md §cache-rpc):
//
//   cold   — the first worker of a fleet: every template misses the node,
//            registers locally, and publishes the record back. Measures
//            the register+publish cost and bytes shipped per template.
//   warm   — a freshly started worker joining a warm fleet: every
//            template is resident on the node, so the whole record
//            arrives over the wire. Measures fetch p50/p99 and the
//            speedup over local registration.
//   sweep  — a Zipf-like template-reuse trace replayed through fronts of
//            increasing LRU capacity: hit rate climbs with capacity until
//            the working set fits and RPCs vanish. Each point reports the
//            foreground fetch p50/p99 alongside the wall clock.
//   prefetch — the same trace and capacities, with a queue-ahead window
//            hinting the next --queue-ahead templates to the async
//            prefetch pipeline while the foreground consumes the current
//            one (Algorithm 1's load/compute overlap on the network
//            tier). Reports the fraction of the prefetch-off gap to the
//            warm leg that pipelining recovers, and the foreground
//            remote-fetch stalls after warmup (near zero when the window
//            keeps ahead of consumption).
//   ring   — the same Zipf trace replayed against a three-node
//            consistent-hash ring (ShardedRemoteStore, k=2): single-node
//            vs cold ring vs warm ring vs ring with one member killed at
//            the trace midpoint. Every leg's per-acquire record checksums
//            must be bitwise-identical to a local ActivationStore replay
//            (and zero Acquires may fail) — the bench exits non-zero
//            otherwise.
//   precision — cold publish + warm fetch of every template at each
//            --cache-precision mode (lossless / fp16 / staged) against a
//            fresh node per mode. Reports wire vs decoded bytes, the
//            compression ratio, and warm fetch p50/p99. Two hard gates:
//            the lossless leg must be bitwise-identical to local
//            registration, and the staged leg must cut wire
//            bytes_fetched at least 2x vs lossless — the bench exits
//            non-zero if either fails.
//
// Client and node byte counters are reconciled at the end (bytes put ==
// bytes stored, bytes fetched == bytes served) and everything is written
// to BENCH_cache_rpc.json.
//
//   bench_cache_rpc --templates=12 --steps=4 --trace-len=96
//                   --queue-ahead=8 --prefetch-workers=3
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/remote_store.h"
#include "src/cache/ring/sharded_store.h"
#include "src/common/flag_parser.h"
#include "src/common/rng.h"
#include "src/model/diffusion_model.h"
#include "src/net/cache_node.h"
#include "src/net/tcp_server.h"
#include "src/net/wire.h"

using namespace flashps;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

cache::RemoteStoreOptions StoreOptions(uint16_t port, size_t lru_capacity) {
  cache::RemoteStoreOptions options;
  options.port = port;
  options.lru_capacity = lru_capacity;
  options.connect_attempts = 2;
  return options;
}

// A skewed reuse trace: popular templates dominate, the tail recurs
// rarely — the regime where a small LRU front pays off.
std::vector<int> ZipfTrace(int length, int templates, Rng& rng) {
  const ZipfSampler sampler(templates, /*s=*/1.0);
  std::vector<int> trace;
  trace.reserve(length);
  for (int i = 0; i < length; ++i) {
    trace.push_back(sampler.Sample(rng));
  }
  return trace;
}

// Checksum over every matrix in a record, so "bitwise-identical" is one
// comparable number per acquire.
uint64_t RecordChecksum(const model::ActivationRecord& record) {
  std::vector<uint64_t> sums;
  for (const auto& step : record.steps) {
    for (const auto& m : step.y) sums.push_back(net::LatentChecksum(m));
    for (const auto& m : step.k) sums.push_back(net::LatentChecksum(m));
    for (const auto& m : step.v) sums.push_back(net::LatentChecksum(m));
  }
  return net::Fnv1a64(sums.data(), sums.size() * sizeof(uint64_t));
}

}  // namespace

int main(int argc, char** argv) {
  flags::FlagParser flags(argc, argv);
  const int templates =
      static_cast<int>(flags.LongInRange("templates", 12, 1, 1 << 20));
  const int steps = static_cast<int>(flags.LongInRange("steps", 4, 1, 1024));
  const int trace_len =
      static_cast<int>(flags.LongInRange("trace-len", 96, 1, 1 << 24));
  const uint64_t seed = static_cast<uint64_t>(flags.Long("seed", 7));
  const int queue_ahead =
      static_cast<int>(flags.LongInRange("queue-ahead", 8, 0, 1 << 16));
  const int prefetch_workers =
      static_cast<int>(flags.LongInRange("prefetch-workers", 3, 0, 64));
  if (!flags.ok()) {
    std::fprintf(stderr, "%s", flags.ErrorText().c_str());
    return 2;
  }

  bench::PrintHeader(
      "bench_cache_rpc — shared cache tier over the wire protocol",
      "templates are reused ~35k times fleet-wide (§3), so one cache node "
      "amortizes activation registration across every worker");

  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = steps;
  model::DiffusionModel model(numerics);

  net::CacheNode node;
  net::TcpServer server(node.Service());
  if (!server.Start()) {
    std::fprintf(stderr, "cannot start loopback cache node\n");
    return 1;
  }
  const uint16_t port = server.port();
  std::printf("cache node on 127.0.0.1:%u, %d templates, %d steps\n\n", port,
              templates, steps);

  // --- cold leg: first worker populates the node -------------------------
  auto cold = std::make_unique<cache::RemoteActivationStore>(
      StoreOptions(port, /*lru_capacity=*/0));
  const auto cold_start = Clock::now();
  for (int t = 0; t < templates; ++t) {
    cold->Acquire(model, t, /*record_kv=*/false);
  }
  const double cold_ms = MsSince(cold_start);
  const cache::RemoteStoreStats cold_stats = cold->Stats();

  // --- warm leg: a fresh worker fetches everything remotely --------------
  auto warm = std::make_unique<cache::RemoteActivationStore>(
      StoreOptions(port, /*lru_capacity=*/0));
  const auto warm_start = Clock::now();
  for (int t = 0; t < templates; ++t) {
    warm->Acquire(model, t, /*record_kv=*/false);
  }
  const double warm_ms = MsSince(warm_start);
  const cache::RemoteStoreStats warm_stats = warm->Stats();

  // Local baseline: registration cost with no cache tier at all.
  cache::ActivationStore local;
  const auto local_start = Clock::now();
  for (int t = 0; t < templates; ++t) {
    local.Acquire(model, t + templates, /*record_kv=*/false);
  }
  const double local_ms = MsSince(local_start);

  bench::PrintRow({"leg", "wall ms", "per-tmpl ms", "hit rate"}, 16);
  bench::PrintRow({"cold (register+put)", bench::Fmt(cold_ms, 1),
                   bench::Fmt(cold_ms / templates, 2), "0.00"},
                  16);
  bench::PrintRow({"warm (remote fetch)", bench::Fmt(warm_ms, 1),
                   bench::Fmt(warm_ms / templates, 2), "1.00"},
                  16);
  bench::PrintRow({"local (no tier)", bench::Fmt(local_ms, 1),
                   bench::Fmt(local_ms / templates, 2), "-"},
                  16);
  std::printf("\nwarm fetch p50 %.0f us, p99 %.0f us, %llu bytes/record\n",
              warm_stats.fetch_p50_us, warm_stats.fetch_p99_us,
              static_cast<unsigned long long>(warm_stats.remote_bytes_fetched /
                                             templates));

  // --- hit-rate sweep over the LRU front capacity ------------------------
  Rng rng(seed);
  const std::vector<int> trace = ZipfTrace(trace_len, templates, rng);
  struct SweepPoint {
    size_t capacity;
    uint64_t front_hits;
    uint64_t remote_hits;
    double hit_rate;
    double wall_ms;
    double fetch_p50_us;
    double fetch_p99_us;
  };
  std::vector<SweepPoint> sweep;
  std::printf("\nfront LRU sweep, %d-acquire Zipf trace over %d templates:\n",
              trace_len, templates);
  bench::PrintRow({"capacity", "front hits", "remote", "hit rate", "wall ms",
                   "p50 us", "p99 us"},
                  12);
  for (size_t capacity : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    auto store = std::make_unique<cache::RemoteActivationStore>(
        StoreOptions(port, capacity));
    const auto start = Clock::now();
    for (int t : trace) {
      store->Acquire(model, t, /*record_kv=*/false);
    }
    SweepPoint point;
    point.capacity = capacity;
    point.wall_ms = MsSince(start);
    const cache::RemoteStoreStats stats = store->Stats();
    point.front_hits = stats.front_hits;
    point.remote_hits = stats.remote_hits;
    point.hit_rate = static_cast<double>(stats.front_hits) / trace.size();
    point.fetch_p50_us = stats.fetch_p50_us;
    point.fetch_p99_us = stats.fetch_p99_us;
    sweep.push_back(point);
    bench::PrintRow({std::to_string(capacity),
                     std::to_string(point.front_hits),
                     std::to_string(point.remote_hits),
                     bench::Fmt(point.hit_rate, 2),
                     bench::Fmt(point.wall_ms, 1),
                     bench::Fmt(point.fetch_p50_us, 0),
                     bench::Fmt(point.fetch_p99_us, 0)},
                    12);
  }

  // --- prefetch leg: same trace, queue-ahead pipeline on -----------------
  //
  // The driver hints trace[i+1 .. i+W] before consuming trace[i], the way
  // the gateway hints queued requests ahead of admission; the background
  // workers overlap those whole-record fetches with the foreground's
  // consumption. Foreground stalls (ladder trips: remote fetches and
  // fallbacks) after the warmup quarter gauge the steady state — a
  // working pipeline keeps them near zero.
  struct PrefetchPoint {
    size_t capacity;
    double wall_ms;
    uint64_t front_hits;
    uint64_t prefetch_issued;
    uint64_t prefetch_coalesced;
    uint64_t prefetch_wasted;
    uint64_t foreground_stalls;  // remote_hits + remote_misses + fallbacks
    uint64_t steady_stalls;      // ... after the first quarter of the trace
    double gap_closed;           // Of (off_wall - warm_ms), 1.0 = all of it.
    double prefetch_p50_us;
    double prefetch_p99_us;
  };
  std::vector<PrefetchPoint> prefetch_sweep;
  std::printf("\nprefetch pipeline, same trace, window %d, %d workers:\n",
              queue_ahead, prefetch_workers);
  bench::PrintRow({"capacity", "wall ms", "gap closed", "issued", "coalesced",
                   "stalls", "steady"},
                  12);
  const auto stalls_of = [](const cache::RemoteStoreStats& s) {
    return s.remote_hits + s.remote_misses + s.fallbacks;
  };
  for (size_t i = 0; i < sweep.size(); ++i) {
    const size_t capacity = sweep[i].capacity;
    cache::RemoteStoreOptions options = StoreOptions(port, capacity);
    options.prefetch_workers = prefetch_workers;
    options.connection_pool = prefetch_workers + 1;
    options.prefetch_queue_cap = static_cast<size_t>(queue_ahead) * 2;
    auto store = std::make_unique<cache::RemoteActivationStore>(options);
    const int warmup = trace_len / 4;
    uint64_t stalls_at_warmup = 0;
    const auto start = Clock::now();
    for (int j = 0; j < trace_len; ++j) {
      // Re-hint the whole lookahead window every step (the gateway hints
      // every submitted request the same way): issue-time dedup makes the
      // repeats free, and a record an undersized front evicted after its
      // first hint gets re-fetched before its request arrives instead of
      // stalling the foreground.
      const int limit = j + 1 + queue_ahead < trace_len
                            ? j + 1 + queue_ahead
                            : trace_len;
      for (int k = j + 1; k < limit; ++k) {
        store->Prefetch(model, trace[static_cast<size_t>(k)], false);
      }
      store->Acquire(model, trace[static_cast<size_t>(j)], false);
      if (j + 1 == warmup) {
        stalls_at_warmup = stalls_of(store->Stats());
      }
    }
    PrefetchPoint point;
    point.capacity = capacity;
    point.wall_ms = MsSince(start);
    const cache::RemoteStoreStats stats = store->Stats();
    point.front_hits = stats.front_hits;
    point.prefetch_issued = stats.prefetch_issued;
    point.prefetch_coalesced = stats.prefetch_coalesced;
    point.prefetch_wasted = stats.prefetch_wasted;
    point.foreground_stalls = stalls_of(stats);
    point.steady_stalls = point.foreground_stalls - stalls_at_warmup;
    const double gap = sweep[i].wall_ms - warm_ms;
    point.gap_closed =
        gap > 0.0 ? (sweep[i].wall_ms - point.wall_ms) / gap : 1.0;
    point.prefetch_p50_us = stats.prefetch_p50_us;
    point.prefetch_p99_us = stats.prefetch_p99_us;
    prefetch_sweep.push_back(point);
    bench::PrintRow({std::to_string(capacity), bench::Fmt(point.wall_ms, 1),
                     bench::Fmt(point.gap_closed, 2),
                     std::to_string(point.prefetch_issued),
                     std::to_string(point.prefetch_coalesced),
                     std::to_string(point.foreground_stalls),
                     std::to_string(point.steady_stalls)},
                    12);
  }

  // --- ring legs: the same trace over a three-node consistent-hash ring --
  //
  // Four replays of one Zipf trace, all required to produce bitwise-
  // identical per-acquire record checksums: a local ActivationStore (the
  // reference), a single cache node, a cold three-node ring (k=2), and a
  // three-node ring that loses a member at the trace midpoint. The
  // degraded leg is the acceptance check: zero failed Acquires, zero
  // output drift, while the per-member counters show the dead node's
  // ranges shifting to its successors.
  constexpr int kRingNodes = 3;
  constexpr int kReplication = 2;
  // Fresh nodes and a fresh template range so the earlier legs' residency
  // doesn't leak in.
  const int ring_base = 2 * templates + 1000;
  Rng ring_rng(seed + 1);
  std::vector<int> ring_trace = ZipfTrace(trace_len, templates, ring_rng);
  for (int& t : ring_trace) {
    t += ring_base;
  }

  std::vector<std::unique_ptr<net::CacheNode>> ring_nodes;
  std::vector<std::unique_ptr<net::TcpServer>> ring_servers;
  for (int i = 0; i < kRingNodes; ++i) {
    ring_nodes.push_back(std::make_unique<net::CacheNode>());
    ring_servers.push_back(
        std::make_unique<net::TcpServer>(ring_nodes.back()->Service()));
    if (!ring_servers.back()->Start()) {
      std::fprintf(stderr, "cannot start ring node %d\n", i);
      return 1;
    }
  }
  auto ring_options = [&](int prefetch) {
    cache::ShardedStoreOptions options;
    for (const auto& ring_server : ring_servers) {
      options.nodes.push_back({"127.0.0.1", ring_server->port()});
    }
    options.replication = kReplication;
    options.lru_capacity = 0;  // Every reuse goes back to the wire.
    options.connect_attempts = 2;
    options.prefetch_workers = prefetch;
    return options;
  };

  // One replay = checksums + null count; `at_midpoint` runs after half the
  // trace (the degraded leg stops a server there).
  struct ReplayResult {
    std::vector<uint64_t> checksums;
    int nulls = 0;
    double wall_ms = 0.0;
  };
  auto replay = [&](cache::ActivationSource& source,
                    const std::function<void()>& at_midpoint) {
    ReplayResult result;
    result.checksums.reserve(ring_trace.size());
    const auto start = Clock::now();
    for (size_t i = 0; i < ring_trace.size(); ++i) {
      if (at_midpoint && i == ring_trace.size() / 2) {
        at_midpoint();
      }
      auto record = source.Acquire(model, ring_trace[i], false);
      if (record == nullptr) {
        ++result.nulls;
        result.checksums.push_back(0);
        continue;
      }
      result.checksums.push_back(RecordChecksum(*record));
    }
    result.wall_ms = MsSince(start);
    return result;
  };

  cache::ActivationStore ring_reference_store;
  const ReplayResult reference = replay(ring_reference_store, nullptr);

  net::CacheNode single_node;
  net::TcpServer single_server(single_node.Service());
  if (!single_server.Start()) {
    std::fprintf(stderr, "cannot start single-node server\n");
    return 1;
  }
  cache::RemoteActivationStore single_store(
      StoreOptions(single_server.port(), /*lru_capacity=*/0));
  const ReplayResult single = replay(single_store, nullptr);

  cache::ShardedRemoteStore cold_ring(ring_options(0));
  const ReplayResult ring_cold = replay(cold_ring, nullptr);

  cache::ShardedRemoteStore warm_ring(ring_options(0));
  const ReplayResult ring_warm = replay(warm_ring, nullptr);
  const cache::ShardedStoreStats warm_ring_stats = warm_ring.Stats();

  // Degraded: a fresh store re-fetches everything off the ring; one member
  // dies mid-trace.
  cache::ShardedRemoteStore degraded_ring(ring_options(0));
  int killed_member = -1;
  const ReplayResult ring_degraded = replay(degraded_ring, [&] {
    // Kill the member that served the most so far — the worst case for
    // the Zipf head.
    const cache::ShardedStoreStats stats = degraded_ring.Stats();
    size_t busiest = 0;
    for (size_t i = 1; i < stats.members.size(); ++i) {
      if (stats.members[i].remote_hits >
          stats.members[busiest].remote_hits) {
        busiest = i;
      }
    }
    const uint16_t port = degraded_ring.ring().member(busiest).port;
    for (size_t i = 0; i < ring_servers.size(); ++i) {
      if (ring_servers[i]->port() == port) {
        ring_servers[i]->Stop();
        killed_member = static_cast<int>(busiest);
        break;
      }
    }
  });
  const cache::ShardedStoreStats degraded_stats = degraded_ring.Stats();

  auto identical = [&](const ReplayResult& leg) {
    return leg.nulls == 0 && leg.checksums == reference.checksums;
  };
  const bool single_ok = identical(single);
  const bool cold_ok = identical(ring_cold);
  const bool warm_ok = identical(ring_warm);
  const bool degraded_ok = identical(ring_degraded);
  const bool ring_bitwise =
      single_ok && cold_ok && warm_ok && degraded_ok;

  std::printf("\nring legs, %d-acquire Zipf trace, %d nodes, k=%d:\n",
              trace_len, kRingNodes, kReplication);
  bench::PrintRow({"leg", "wall ms", "hits", "misses", "fallbacks",
                   "bitwise"},
                  14);
  const auto ring_row = [&](const char* name, const ReplayResult& leg,
                            uint64_t hits, uint64_t misses,
                            uint64_t fallbacks, bool ok) {
    bench::PrintRow({name, bench::Fmt(leg.wall_ms, 1), std::to_string(hits),
                     std::to_string(misses), std::to_string(fallbacks),
                     ok ? "yes" : "NO"},
                    14);
  };
  ring_row("local ref", reference, 0, 0, 0, true);
  {
    const cache::RemoteStoreStats s = single_store.Stats();
    ring_row("single node", single, s.remote_hits, s.remote_misses,
             s.fallbacks, single_ok);
  }
  {
    const cache::ShardedStoreStats s = cold_ring.Stats();
    ring_row("ring cold", ring_cold, s.remote_hits, s.remote_misses,
             s.fallbacks, cold_ok);
  }
  ring_row("ring warm", ring_warm, warm_ring_stats.remote_hits,
           warm_ring_stats.remote_misses, warm_ring_stats.fallbacks, warm_ok);
  ring_row("ring -1 node", ring_degraded, degraded_stats.remote_hits,
           degraded_stats.remote_misses, degraded_stats.fallbacks,
           degraded_ok);

  std::printf("\nper-member counters, degraded leg (killed member %d at "
              "acquire %d):\n",
              killed_member, trace_len / 2);
  bench::PrintRow({"member", "hits", "misses", "xport fail", "trips", "puts",
                   "repairs"},
                  17);
  for (const cache::RingMemberStats& m : degraded_stats.members) {
    bench::PrintRow({m.id, std::to_string(m.remote_hits),
                     std::to_string(m.remote_misses),
                     std::to_string(m.transport_failures),
                     std::to_string(m.circuit_trips),
                     std::to_string(m.puts_ok),
                     std::to_string(m.read_repairs)},
                    17);
  }
  std::printf("degraded: failovers %llu, read repairs %llu, fallbacks %llu, "
              "failed acquires %d\n",
              static_cast<unsigned long long>(degraded_stats.failovers),
              static_cast<unsigned long long>(degraded_stats.read_repairs),
              static_cast<unsigned long long>(degraded_stats.fallbacks),
              ring_degraded.nulls);

  // --- precision legs: the codec modes against fresh nodes ---------------
  //
  // Cold publish + warm whole-fleet fetch per mode. The decoded byte
  // count is identical across modes by construction (same records); the
  // wire bytes are what the codec actually moved.
  struct PrecisionLeg {
    std::string mode;
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    uint64_t bytes_put = 0;
    uint64_t wire_bytes_put = 0;
    uint64_t bytes_fetched = 0;
    uint64_t wire_bytes_fetched = 0;
    double fetch_p50_us = 0.0;
    double fetch_p99_us = 0.0;
    double compression = 1.0;  // decoded / wire, put path.
    bool bitwise = false;      // Warm records == local registration.
  };
  const int prec_base = 4 * templates + 10000;
  std::vector<uint64_t> prec_reference;
  prec_reference.reserve(static_cast<size_t>(templates));
  for (int t = 0; t < templates; ++t) {
    prec_reference.push_back(
        RecordChecksum(model.Register(prec_base + t, false)));
  }
  std::vector<PrecisionLeg> precision_legs;
  for (const quant::PrecisionMode mode :
       {quant::PrecisionMode::kLossless, quant::PrecisionMode::kF16,
        quant::PrecisionMode::kStaged}) {
    net::CacheNode prec_node;
    net::TcpServer prec_server(prec_node.Service());
    if (!prec_server.Start()) {
      std::fprintf(stderr, "cannot start precision-leg cache node\n");
      return 1;
    }
    cache::RemoteStoreOptions options =
        StoreOptions(prec_server.port(), /*lru_capacity=*/0);
    options.precision = mode;

    PrecisionLeg leg;
    leg.mode = quant::ToString(mode);
    cache::RemoteActivationStore prec_cold(options);
    const auto prec_cold_start = Clock::now();
    for (int t = 0; t < templates; ++t) {
      prec_cold.Acquire(model, prec_base + t, /*record_kv=*/false);
    }
    leg.cold_ms = MsSince(prec_cold_start);
    const cache::RemoteStoreStats cold_s = prec_cold.Stats();
    leg.bytes_put = cold_s.remote_bytes_put;
    leg.wire_bytes_put = cold_s.remote_wire_bytes_put;

    cache::RemoteActivationStore prec_warm(options);
    bool bitwise = true;
    const auto prec_warm_start = Clock::now();
    for (int t = 0; t < templates; ++t) {
      auto record = prec_warm.Acquire(model, prec_base + t, false);
      bitwise = bitwise && record != nullptr &&
                RecordChecksum(*record) ==
                    prec_reference[static_cast<size_t>(t)];
    }
    leg.warm_ms = MsSince(prec_warm_start);
    const cache::RemoteStoreStats warm_s = prec_warm.Stats();
    leg.bytes_fetched = warm_s.remote_bytes_fetched;
    leg.wire_bytes_fetched = warm_s.remote_wire_bytes_fetched;
    leg.fetch_p50_us = warm_s.fetch_p50_us;
    leg.fetch_p99_us = warm_s.fetch_p99_us;
    leg.compression = leg.wire_bytes_put > 0
                          ? static_cast<double>(leg.bytes_put) /
                                static_cast<double>(leg.wire_bytes_put)
                          : 1.0;
    leg.bitwise = bitwise && warm_s.remote_hits ==
                                 static_cast<uint64_t>(templates);
    precision_legs.push_back(leg);
    prec_server.Stop();
  }

  std::printf("\nprecision legs, %d templates, fresh node per mode:\n",
              templates);
  bench::PrintRow({"mode", "cold ms", "warm ms", "wire put KB",
                   "wire fetch KB", "ratio", "p50 us", "p99 us", "bitwise"},
                  14);
  for (const PrecisionLeg& leg : precision_legs) {
    bench::PrintRow(
        {leg.mode, bench::Fmt(leg.cold_ms, 1), bench::Fmt(leg.warm_ms, 1),
         std::to_string(leg.wire_bytes_put / 1024),
         std::to_string(leg.wire_bytes_fetched / 1024),
         bench::Fmt(leg.compression, 2), bench::Fmt(leg.fetch_p50_us, 0),
         bench::Fmt(leg.fetch_p99_us, 0), leg.bitwise ? "yes" : "no"},
        14);
  }
  // The two hard gates: lossless must not drift, staged must halve the
  // warm wire traffic.
  const bool lossless_bitwise = precision_legs[0].bitwise;
  const bool staged_cut_ok = precision_legs[2].wire_bytes_fetched * 2 <=
                             precision_legs[0].wire_bytes_fetched;
  if (!lossless_bitwise) {
    std::fprintf(stderr, "lossless precision leg drifted from local "
                         "registration\n");
  }
  if (!staged_cut_ok) {
    std::fprintf(stderr, "staged precision leg moved more than half the "
                         "lossless wire bytes\n");
  }

  // --- reconcile client-side byte counters with the node's ---------------
  const net::CacheNodeStats node_stats = node.Stats();
  const bool put_ok =
      node_stats.bytes_stored == cold_stats.remote_bytes_put;
  std::printf("\nreconcile: node stored %llu bytes vs client put %llu (%s), "
              "node served %llu bytes across all legs\n",
              static_cast<unsigned long long>(node_stats.bytes_stored),
              static_cast<unsigned long long>(cold_stats.remote_bytes_put),
              put_ok ? "ok" : "MISMATCH",
              static_cast<unsigned long long>(node_stats.bytes_served));

  std::ostringstream json;
  json << "{\"templates\":" << templates << ",\"steps\":" << steps
       << ",\"trace_len\":" << trace_len
       << ",\"cold\":{\"wall_ms\":" << cold_ms
       << ",\"remote_misses\":" << cold_stats.remote_misses
       << ",\"puts_ok\":" << cold_stats.puts_ok
       << ",\"bytes_put\":" << cold_stats.remote_bytes_put
       << "},\"warm\":{\"wall_ms\":" << warm_ms
       << ",\"remote_hits\":" << warm_stats.remote_hits
       << ",\"bytes_fetched\":" << warm_stats.remote_bytes_fetched
       << ",\"fetch_p50_us\":" << warm_stats.fetch_p50_us
       << ",\"fetch_p99_us\":" << warm_stats.fetch_p99_us
       << "},\"local_baseline_ms\":" << local_ms << ",\"sweep\":[";
  for (size_t i = 0; i < sweep.size(); ++i) {
    if (i > 0) json << ",";
    json << "{\"capacity\":" << sweep[i].capacity
         << ",\"front_hits\":" << sweep[i].front_hits
         << ",\"remote_hits\":" << sweep[i].remote_hits
         << ",\"hit_rate\":" << sweep[i].hit_rate
         << ",\"wall_ms\":" << sweep[i].wall_ms
         << ",\"fetch_p50_us\":" << sweep[i].fetch_p50_us
         << ",\"fetch_p99_us\":" << sweep[i].fetch_p99_us << "}";
  }
  json << "],\"queue_ahead\":" << queue_ahead
       << ",\"prefetch_workers\":" << prefetch_workers
       << ",\"sweep_prefetch\":[";
  for (size_t i = 0; i < prefetch_sweep.size(); ++i) {
    const PrefetchPoint& p = prefetch_sweep[i];
    if (i > 0) json << ",";
    json << "{\"capacity\":" << p.capacity << ",\"wall_ms\":" << p.wall_ms
         << ",\"gap_closed\":" << p.gap_closed
         << ",\"front_hits\":" << p.front_hits
         << ",\"prefetch_issued\":" << p.prefetch_issued
         << ",\"prefetch_coalesced\":" << p.prefetch_coalesced
         << ",\"prefetch_wasted\":" << p.prefetch_wasted
         << ",\"foreground_stalls\":" << p.foreground_stalls
         << ",\"steady_stalls\":" << p.steady_stalls
         << ",\"prefetch_p50_us\":" << p.prefetch_p50_us
         << ",\"prefetch_p99_us\":" << p.prefetch_p99_us << "}";
  }
  json << "],\"ring\":{\"nodes\":" << kRingNodes
       << ",\"replication\":" << kReplication
       << ",\"killed_member\":" << killed_member
       << ",\"local_wall_ms\":" << reference.wall_ms
       << ",\"single_wall_ms\":" << single.wall_ms
       << ",\"cold_wall_ms\":" << ring_cold.wall_ms
       << ",\"warm_wall_ms\":" << ring_warm.wall_ms
       << ",\"degraded_wall_ms\":" << ring_degraded.wall_ms
       << ",\"degraded_failed_acquires\":" << ring_degraded.nulls
       << ",\"bitwise_identical\":" << (ring_bitwise ? "true" : "false")
       << ",\"warm\":" << warm_ring.MetricsJson()
       << ",\"degraded\":" << degraded_ring.MetricsJson() << "}";
  json << ",\"precision\":[";
  for (size_t i = 0; i < precision_legs.size(); ++i) {
    const PrecisionLeg& leg = precision_legs[i];
    if (i > 0) json << ",";
    json << "{\"mode\":\"" << leg.mode << "\""
         << ",\"cold_wall_ms\":" << leg.cold_ms
         << ",\"warm_wall_ms\":" << leg.warm_ms
         << ",\"bytes_put\":" << leg.bytes_put
         << ",\"wire_bytes_put\":" << leg.wire_bytes_put
         << ",\"bytes_fetched\":" << leg.bytes_fetched
         << ",\"wire_bytes_fetched\":" << leg.wire_bytes_fetched
         << ",\"compression_ratio\":" << leg.compression
         << ",\"fetch_p50_us\":" << leg.fetch_p50_us
         << ",\"fetch_p99_us\":" << leg.fetch_p99_us
         << ",\"bitwise_identical\":" << (leg.bitwise ? "true" : "false")
         << "}";
  }
  json << "],\"staged_wire_cut_ok\":" << (staged_cut_ok ? "true" : "false");
  json << ",\"node\":" << node.MetricsJson()
       << ",\"reconciled\":" << (put_ok ? "true" : "false") << "}";
  std::ofstream out("BENCH_cache_rpc.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_cache_rpc.json\n");
  if (!ring_bitwise) {
    std::fprintf(stderr,
                 "ring legs diverged from the local reference "
                 "(single %s, cold %s, warm %s, degraded %s)\n",
                 single_ok ? "ok" : "MISMATCH",
                 cold_ok ? "ok" : "MISMATCH", warm_ok ? "ok" : "MISMATCH",
                 degraded_ok ? "ok" : "MISMATCH");
  }

  single_server.Stop();
  for (auto& ring_server : ring_servers) {
    ring_server->Stop();
  }
  server.Stop();
  return put_ok && ring_bitwise && lossless_bitwise && staged_cut_ok ? 0 : 2;
}
