// Shared cache-tier microbenchmark: RemoteActivationStore against an
// in-process flashps_cached node over loopback TCP.
//
// Three legs, mirroring a fleet's lifecycle (EXPERIMENTS.md §cache-rpc):
//
//   cold   — the first worker of a fleet: every template misses the node,
//            registers locally, and publishes the record back. Measures
//            the register+publish cost and bytes shipped per template.
//   warm   — a freshly started worker joining a warm fleet: every
//            template is resident on the node, so the whole record
//            arrives over the wire. Measures fetch p50/p99 and the
//            speedup over local registration.
//   sweep  — a Zipf-like template-reuse trace replayed through fronts of
//            increasing LRU capacity: hit rate climbs with capacity until
//            the working set fits and RPCs vanish. Each point reports the
//            foreground fetch p50/p99 alongside the wall clock.
//   prefetch — the same trace and capacities, with a queue-ahead window
//            hinting the next --queue-ahead templates to the async
//            prefetch pipeline while the foreground consumes the current
//            one (Algorithm 1's load/compute overlap on the network
//            tier). Reports the fraction of the prefetch-off gap to the
//            warm leg that pipelining recovers, and the foreground
//            remote-fetch stalls after warmup (near zero when the window
//            keeps ahead of consumption).
//
// Client and node byte counters are reconciled at the end (bytes put ==
// bytes stored, bytes fetched == bytes served) and everything is written
// to BENCH_cache_rpc.json.
//
//   bench_cache_rpc --templates=12 --steps=4 --trace-len=96
//                   --queue-ahead=8 --prefetch-workers=3
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/remote_store.h"
#include "src/common/rng.h"
#include "src/model/diffusion_model.h"
#include "src/net/cache_node.h"
#include "src/net/tcp_server.h"

using namespace flashps;

namespace {

using Clock = std::chrono::steady_clock;

bool FlagValue(int argc, char** argv, const char* key, std::string* out) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *out = argv[i] + prefix.size();
      return true;
    }
  }
  return false;
}

long FlagLong(int argc, char** argv, const char* key, long fallback) {
  std::string value;
  return FlagValue(argc, argv, key, &value) ? std::atol(value.c_str())
                                            : fallback;
}

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

cache::RemoteStoreOptions StoreOptions(uint16_t port, size_t lru_capacity) {
  cache::RemoteStoreOptions options;
  options.port = port;
  options.lru_capacity = lru_capacity;
  options.connect_attempts = 2;
  return options;
}

// A skewed reuse trace: popular templates dominate, the tail recurs
// rarely — the regime where a small LRU front pays off.
std::vector<int> ZipfTrace(int length, int templates, Rng& rng) {
  const ZipfSampler sampler(templates, /*s=*/1.0);
  std::vector<int> trace;
  trace.reserve(length);
  for (int i = 0; i < length; ++i) {
    trace.push_back(sampler.Sample(rng));
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const int templates = static_cast<int>(FlagLong(argc, argv, "templates", 12));
  const int steps = static_cast<int>(FlagLong(argc, argv, "steps", 4));
  const int trace_len =
      static_cast<int>(FlagLong(argc, argv, "trace-len", 96));
  const uint64_t seed = static_cast<uint64_t>(FlagLong(argc, argv, "seed", 7));

  bench::PrintHeader(
      "bench_cache_rpc — shared cache tier over the wire protocol",
      "templates are reused ~35k times fleet-wide (§3), so one cache node "
      "amortizes activation registration across every worker");

  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = steps;
  model::DiffusionModel model(numerics);

  net::CacheNode node;
  net::TcpServer server(node.Service());
  if (!server.Start()) {
    std::fprintf(stderr, "cannot start loopback cache node\n");
    return 1;
  }
  const uint16_t port = server.port();
  std::printf("cache node on 127.0.0.1:%u, %d templates, %d steps\n\n", port,
              templates, steps);

  // --- cold leg: first worker populates the node -------------------------
  auto cold = std::make_unique<cache::RemoteActivationStore>(
      StoreOptions(port, /*lru_capacity=*/0));
  const auto cold_start = Clock::now();
  for (int t = 0; t < templates; ++t) {
    cold->Acquire(model, t, /*record_kv=*/false);
  }
  const double cold_ms = MsSince(cold_start);
  const cache::RemoteStoreStats cold_stats = cold->Stats();

  // --- warm leg: a fresh worker fetches everything remotely --------------
  auto warm = std::make_unique<cache::RemoteActivationStore>(
      StoreOptions(port, /*lru_capacity=*/0));
  const auto warm_start = Clock::now();
  for (int t = 0; t < templates; ++t) {
    warm->Acquire(model, t, /*record_kv=*/false);
  }
  const double warm_ms = MsSince(warm_start);
  const cache::RemoteStoreStats warm_stats = warm->Stats();

  // Local baseline: registration cost with no cache tier at all.
  cache::ActivationStore local;
  const auto local_start = Clock::now();
  for (int t = 0; t < templates; ++t) {
    local.Acquire(model, t + templates, /*record_kv=*/false);
  }
  const double local_ms = MsSince(local_start);

  bench::PrintRow({"leg", "wall ms", "per-tmpl ms", "hit rate"}, 16);
  bench::PrintRow({"cold (register+put)", bench::Fmt(cold_ms, 1),
                   bench::Fmt(cold_ms / templates, 2), "0.00"},
                  16);
  bench::PrintRow({"warm (remote fetch)", bench::Fmt(warm_ms, 1),
                   bench::Fmt(warm_ms / templates, 2), "1.00"},
                  16);
  bench::PrintRow({"local (no tier)", bench::Fmt(local_ms, 1),
                   bench::Fmt(local_ms / templates, 2), "-"},
                  16);
  std::printf("\nwarm fetch p50 %.0f us, p99 %.0f us, %llu bytes/record\n",
              warm_stats.fetch_p50_us, warm_stats.fetch_p99_us,
              static_cast<unsigned long long>(warm_stats.remote_bytes_fetched /
                                             templates));

  // --- hit-rate sweep over the LRU front capacity ------------------------
  Rng rng(seed);
  const std::vector<int> trace = ZipfTrace(trace_len, templates, rng);
  struct SweepPoint {
    size_t capacity;
    uint64_t front_hits;
    uint64_t remote_hits;
    double hit_rate;
    double wall_ms;
    double fetch_p50_us;
    double fetch_p99_us;
  };
  std::vector<SweepPoint> sweep;
  std::printf("\nfront LRU sweep, %d-acquire Zipf trace over %d templates:\n",
              trace_len, templates);
  bench::PrintRow({"capacity", "front hits", "remote", "hit rate", "wall ms",
                   "p50 us", "p99 us"},
                  12);
  for (size_t capacity : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    auto store = std::make_unique<cache::RemoteActivationStore>(
        StoreOptions(port, capacity));
    const auto start = Clock::now();
    for (int t : trace) {
      store->Acquire(model, t, /*record_kv=*/false);
    }
    SweepPoint point;
    point.capacity = capacity;
    point.wall_ms = MsSince(start);
    const cache::RemoteStoreStats stats = store->Stats();
    point.front_hits = stats.front_hits;
    point.remote_hits = stats.remote_hits;
    point.hit_rate = static_cast<double>(stats.front_hits) / trace.size();
    point.fetch_p50_us = stats.fetch_p50_us;
    point.fetch_p99_us = stats.fetch_p99_us;
    sweep.push_back(point);
    bench::PrintRow({std::to_string(capacity),
                     std::to_string(point.front_hits),
                     std::to_string(point.remote_hits),
                     bench::Fmt(point.hit_rate, 2),
                     bench::Fmt(point.wall_ms, 1),
                     bench::Fmt(point.fetch_p50_us, 0),
                     bench::Fmt(point.fetch_p99_us, 0)},
                    12);
  }

  // --- prefetch leg: same trace, queue-ahead pipeline on -----------------
  //
  // The driver hints trace[i+1 .. i+W] before consuming trace[i], the way
  // the gateway hints queued requests ahead of admission; the background
  // workers overlap those whole-record fetches with the foreground's
  // consumption. Foreground stalls (ladder trips: remote fetches and
  // fallbacks) after the warmup quarter gauge the steady state — a
  // working pipeline keeps them near zero.
  const int queue_ahead =
      static_cast<int>(FlagLong(argc, argv, "queue-ahead", 8));
  const int prefetch_workers =
      static_cast<int>(FlagLong(argc, argv, "prefetch-workers", 3));
  struct PrefetchPoint {
    size_t capacity;
    double wall_ms;
    uint64_t front_hits;
    uint64_t prefetch_issued;
    uint64_t prefetch_coalesced;
    uint64_t prefetch_wasted;
    uint64_t foreground_stalls;  // remote_hits + remote_misses + fallbacks
    uint64_t steady_stalls;      // ... after the first quarter of the trace
    double gap_closed;           // Of (off_wall - warm_ms), 1.0 = all of it.
    double prefetch_p50_us;
    double prefetch_p99_us;
  };
  std::vector<PrefetchPoint> prefetch_sweep;
  std::printf("\nprefetch pipeline, same trace, window %d, %d workers:\n",
              queue_ahead, prefetch_workers);
  bench::PrintRow({"capacity", "wall ms", "gap closed", "issued", "coalesced",
                   "stalls", "steady"},
                  12);
  const auto stalls_of = [](const cache::RemoteStoreStats& s) {
    return s.remote_hits + s.remote_misses + s.fallbacks;
  };
  for (size_t i = 0; i < sweep.size(); ++i) {
    const size_t capacity = sweep[i].capacity;
    cache::RemoteStoreOptions options = StoreOptions(port, capacity);
    options.prefetch_workers = prefetch_workers;
    options.connection_pool = prefetch_workers + 1;
    options.prefetch_queue_cap = static_cast<size_t>(queue_ahead) * 2;
    auto store = std::make_unique<cache::RemoteActivationStore>(options);
    const int warmup = trace_len / 4;
    uint64_t stalls_at_warmup = 0;
    const auto start = Clock::now();
    for (int j = 0; j < trace_len; ++j) {
      // Re-hint the whole lookahead window every step (the gateway hints
      // every submitted request the same way): issue-time dedup makes the
      // repeats free, and a record an undersized front evicted after its
      // first hint gets re-fetched before its request arrives instead of
      // stalling the foreground.
      const int limit = j + 1 + queue_ahead < trace_len
                            ? j + 1 + queue_ahead
                            : trace_len;
      for (int k = j + 1; k < limit; ++k) {
        store->Prefetch(model, trace[static_cast<size_t>(k)], false);
      }
      store->Acquire(model, trace[static_cast<size_t>(j)], false);
      if (j + 1 == warmup) {
        stalls_at_warmup = stalls_of(store->Stats());
      }
    }
    PrefetchPoint point;
    point.capacity = capacity;
    point.wall_ms = MsSince(start);
    const cache::RemoteStoreStats stats = store->Stats();
    point.front_hits = stats.front_hits;
    point.prefetch_issued = stats.prefetch_issued;
    point.prefetch_coalesced = stats.prefetch_coalesced;
    point.prefetch_wasted = stats.prefetch_wasted;
    point.foreground_stalls = stalls_of(stats);
    point.steady_stalls = point.foreground_stalls - stalls_at_warmup;
    const double gap = sweep[i].wall_ms - warm_ms;
    point.gap_closed =
        gap > 0.0 ? (sweep[i].wall_ms - point.wall_ms) / gap : 1.0;
    point.prefetch_p50_us = stats.prefetch_p50_us;
    point.prefetch_p99_us = stats.prefetch_p99_us;
    prefetch_sweep.push_back(point);
    bench::PrintRow({std::to_string(capacity), bench::Fmt(point.wall_ms, 1),
                     bench::Fmt(point.gap_closed, 2),
                     std::to_string(point.prefetch_issued),
                     std::to_string(point.prefetch_coalesced),
                     std::to_string(point.foreground_stalls),
                     std::to_string(point.steady_stalls)},
                    12);
  }

  // --- reconcile client-side byte counters with the node's ---------------
  const net::CacheNodeStats node_stats = node.Stats();
  const bool put_ok =
      node_stats.bytes_stored == cold_stats.remote_bytes_put;
  std::printf("\nreconcile: node stored %llu bytes vs client put %llu (%s), "
              "node served %llu bytes across all legs\n",
              static_cast<unsigned long long>(node_stats.bytes_stored),
              static_cast<unsigned long long>(cold_stats.remote_bytes_put),
              put_ok ? "ok" : "MISMATCH",
              static_cast<unsigned long long>(node_stats.bytes_served));

  std::ostringstream json;
  json << "{\"templates\":" << templates << ",\"steps\":" << steps
       << ",\"trace_len\":" << trace_len
       << ",\"cold\":{\"wall_ms\":" << cold_ms
       << ",\"remote_misses\":" << cold_stats.remote_misses
       << ",\"puts_ok\":" << cold_stats.puts_ok
       << ",\"bytes_put\":" << cold_stats.remote_bytes_put
       << "},\"warm\":{\"wall_ms\":" << warm_ms
       << ",\"remote_hits\":" << warm_stats.remote_hits
       << ",\"bytes_fetched\":" << warm_stats.remote_bytes_fetched
       << ",\"fetch_p50_us\":" << warm_stats.fetch_p50_us
       << ",\"fetch_p99_us\":" << warm_stats.fetch_p99_us
       << "},\"local_baseline_ms\":" << local_ms << ",\"sweep\":[";
  for (size_t i = 0; i < sweep.size(); ++i) {
    if (i > 0) json << ",";
    json << "{\"capacity\":" << sweep[i].capacity
         << ",\"front_hits\":" << sweep[i].front_hits
         << ",\"remote_hits\":" << sweep[i].remote_hits
         << ",\"hit_rate\":" << sweep[i].hit_rate
         << ",\"wall_ms\":" << sweep[i].wall_ms
         << ",\"fetch_p50_us\":" << sweep[i].fetch_p50_us
         << ",\"fetch_p99_us\":" << sweep[i].fetch_p99_us << "}";
  }
  json << "],\"queue_ahead\":" << queue_ahead
       << ",\"prefetch_workers\":" << prefetch_workers
       << ",\"sweep_prefetch\":[";
  for (size_t i = 0; i < prefetch_sweep.size(); ++i) {
    const PrefetchPoint& p = prefetch_sweep[i];
    if (i > 0) json << ",";
    json << "{\"capacity\":" << p.capacity << ",\"wall_ms\":" << p.wall_ms
         << ",\"gap_closed\":" << p.gap_closed
         << ",\"front_hits\":" << p.front_hits
         << ",\"prefetch_issued\":" << p.prefetch_issued
         << ",\"prefetch_coalesced\":" << p.prefetch_coalesced
         << ",\"prefetch_wasted\":" << p.prefetch_wasted
         << ",\"foreground_stalls\":" << p.foreground_stalls
         << ",\"steady_stalls\":" << p.steady_stalls
         << ",\"prefetch_p50_us\":" << p.prefetch_p50_us
         << ",\"prefetch_p99_us\":" << p.prefetch_p99_us << "}";
  }
  json << "],\"node\":" << node.MetricsJson()
       << ",\"reconciled\":" << (put_ok ? "true" : "false") << "}";
  std::ofstream out("BENCH_cache_rpc.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_cache_rpc.json\n");

  server.Stop();
  return put_ok ? 0 : 2;
}
