// Reproduces Fig. 12: end-to-end request serving latency of FlashPS vs
// Diffusers / FISEdit / TeaCache across request rates, for the three
// model/GPU settings of §6.2 (8 workers each), plus the normalized
// queueing-time breakdown at the reference RPS and the P95 comparison.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/simulation.h"

namespace flashps {
namespace {

using bench::Fmt;

struct SystemRow {
  serving::SystemKind system;
  std::optional<cluster::SimResult> result;
};

cluster::ClusterConfig MakeConfig(serving::SystemKind system,
                                  model::ModelKind kind) {
  cluster::ClusterConfig config;
  config.num_workers = 8;
  config.engine = serving::EngineConfig::ForSystem(system, kind);
  // Baselines get request-level load balancing (§6.1: "we implement static
  // batching and request-level load balancing for these baselines").
  config.policy = system == serving::SystemKind::kFlashPS
                      ? sched::RoutePolicy::kMaskAware
                      : sched::RoutePolicy::kRequestCount;
  return config;
}

void RunModel(model::ModelKind kind, const std::vector<double>& rps_grid,
              double reference_rps, int num_requests) {
  const auto timing = model::TimingConfig::Get(kind);
  std::printf("\n--- %s on %s (8 workers) ---\n", timing.name.c_str(),
              device::ToString(timing.gpu).c_str());

  // Baselines per model as in the paper: SD2.1 compares against Diffusers
  // and FISEdit (FISEdit supports only SD2.1); SDXL/Flux compare against
  // Diffusers and TeaCache.
  std::vector<serving::SystemKind> systems = {serving::SystemKind::kDiffusers};
  if (kind == model::ModelKind::kSd21) {
    systems.push_back(serving::SystemKind::kFISEdit);
  } else {
    systems.push_back(serving::SystemKind::kTeaCache);
  }
  systems.push_back(serving::SystemKind::kFlashPS);

  bench::PrintRow({"RPS", "system", "avg(s)", "P95(s)", "queue(s)"});
  std::vector<SystemRow> at_reference;
  for (const double rps : rps_grid) {
    trace::WorkloadSpec spec;
    spec.trace = trace::TraceKind::kProduction;
    spec.rps = rps;
    spec.num_requests = num_requests;
    const auto requests = trace::GenerateWorkload(spec);
    for (const auto system : systems) {
      const auto result = cluster::RunClusterSim(MakeConfig(system, kind),
                                                 requests);
      bench::PrintRow({Fmt(rps, 2), ToString(system),
                       Fmt(result.total_latency_s.Mean(), 2),
                       Fmt(result.total_latency_s.P95(), 2),
                       Fmt(result.queueing_s.Mean(), 2)});
      if (rps == reference_rps) {
        at_reference.push_back(SystemRow{system, result});
      }
    }
  }

  // Headline ratios at the reference traffic.
  const auto flash = std::find_if(
      at_reference.begin(), at_reference.end(), [](const SystemRow& row) {
        return row.system == serving::SystemKind::kFlashPS;
      });
  if (flash != at_reference.end()) {
    std::printf("\nAt RPS=%.2f:\n", reference_rps);
    double max_queue = 1e-9;
    for (const auto& row : at_reference) {
      max_queue = std::max(max_queue, row.result->queueing_s.Mean());
    }
    for (const auto& row : at_reference) {
      if (row.system == serving::SystemKind::kFlashPS) {
        continue;
      }
      std::printf(
          "  vs %-10s avg latency %.1fx lower, P95 %.0f%% lower, "
          "normalized queueing %.2f (FlashPS %.2f)\n",
          ToString(row.system).c_str(),
          row.result->total_latency_s.Mean() /
              flash->result->total_latency_s.Mean(),
          100.0 * (1.0 - flash->result->total_latency_s.P95() /
                             row.result->total_latency_s.P95()),
          row.result->queueing_s.Mean() / max_queue,
          flash->result->queueing_s.Mean() / max_queue);
    }
  }
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Figure 12: end-to-end serving performance",
      "FlashPS reduces average latency by up to 14.7x vs Diffusers, 4x vs "
      "FISEdit, 6x vs TeaCache; P95 by 88/71/60%; queueing is near zero");

  // RPS grids scaled to each model's single-worker capacity.
  // RPS grids span from light load to just past the strongest baseline's
  // saturation point (where the paper's headline ratios are measured).
  flashps::RunModel(flashps::model::ModelKind::kSd21, {0.3, 0.6, 0.9}, 0.9,
                    240);
  flashps::RunModel(flashps::model::ModelKind::kSdxl, {1.2, 2.4, 3.5}, 3.5,
                    300);
  flashps::RunModel(flashps::model::ModelKind::kFlux, {1.0, 1.8, 2.6}, 2.6,
                    300);
  return 0;
}
