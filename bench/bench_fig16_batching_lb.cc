// Reproduces Fig. 16:
//  Left:  P95 tail request latency and inference latency on one Flux worker
//         (max batch 8, RPS 0.5) under static, naive-continuous and
//         FlashPS's disaggregated continuous batching; plus the
//         interruption counts of §6.4.
//  Right: tail latency under request-/token-granularity load balancing vs
//         mask-aware balancing at 0.25 and 0.5 RPS per worker.
#include <cstdio>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/cluster/simulation.h"

namespace flashps {
namespace {

using bench::Fmt;

void Batching() {
  std::printf("\n--- Left: batching strategies (Flux worker, RPS 0.3) ---\n");
  bench::PrintRow({"strategy", "P95 req(s)", "P95 inf(s)", "median-intr",
                   "P95-intr"});

  trace::WorkloadSpec spec;
  spec.trace = trace::TraceKind::kProduction;
  spec.rps = 0.3;
  spec.num_requests = 200;
  const auto requests = trace::GenerateWorkload(spec);

  double disagg_p95 = 0.0;
  double static_p95 = 0.0;
  double naive_p95 = 0.0;
  for (const serving::BatchPolicy policy :
       {serving::BatchPolicy::kStatic, serving::BatchPolicy::kContinuousNaive,
        serving::BatchPolicy::kContinuousDisaggregated}) {
    cluster::ClusterConfig config;
    config.num_workers = 1;
    config.engine = serving::EngineConfig::ForSystem(
        serving::SystemKind::kFlashPS, model::ModelKind::kFlux);
    config.engine.batching = policy;
    config.policy = sched::RoutePolicy::kRoundRobin;
    const auto result = cluster::RunClusterSim(config, requests);
    bench::PrintRow({ToString(policy), Fmt(result.total_latency_s.P95(), 2),
                     Fmt(result.inference_s.P95(), 2),
                     Fmt(result.interruptions.P50(), 0),
                     Fmt(result.interruptions.P95(), 0)});
    switch (policy) {
      case serving::BatchPolicy::kStatic:
        static_p95 = result.total_latency_s.P95();
        break;
      case serving::BatchPolicy::kContinuousNaive:
        naive_p95 = result.total_latency_s.P95();
        break;
      case serving::BatchPolicy::kContinuousDisaggregated:
        disagg_p95 = result.total_latency_s.P95();
        break;
    }
  }
  std::printf(
      "vs disaggregated: static +%.0f%%, naive continuous +%.0f%% "
      "(paper: +35%% and +40%%)\n",
      100.0 * (static_p95 / disagg_p95 - 1.0),
      100.0 * (naive_p95 / disagg_p95 - 1.0));
}

void LoadBalance() {
  std::printf("\n--- Right: load-balance policies (4 Flux workers) ---\n");
  bench::PrintRow({"RPS/worker", "policy", "P95(s)", "mean(s)"});
  for (const double rps_per_worker : {0.15, 0.3}) {
    trace::WorkloadSpec spec;
    spec.trace = trace::TraceKind::kProduction;
    spec.rps = rps_per_worker * 4;
    spec.num_requests = 320;
    const auto requests = trace::GenerateWorkload(spec);

    double aware_p95 = 0.0;
    double worst_p95 = 0.0;
    for (const sched::RoutePolicy policy :
         {sched::RoutePolicy::kRequestCount, sched::RoutePolicy::kTokenCount,
          sched::RoutePolicy::kMaskAware}) {
      cluster::ClusterConfig config;
      config.num_workers = 4;
      config.engine = serving::EngineConfig::ForSystem(
          serving::SystemKind::kFlashPS, model::ModelKind::kFlux);
      config.policy = policy;
      const auto result = cluster::RunClusterSim(config, requests);
      bench::PrintRow({Fmt(rps_per_worker, 2), ToString(policy),
                       Fmt(result.total_latency_s.P95(), 2),
                       Fmt(result.total_latency_s.Mean(), 2)});
      if (policy == sched::RoutePolicy::kMaskAware) {
        aware_p95 = result.total_latency_s.P95();
      } else {
        worst_p95 = std::max(worst_p95, result.total_latency_s.P95());
      }
    }
    std::printf(
        "  baseline P95 inflation at %.2f RPS/worker: +%.0f%% (paper: "
        "comparable at low traffic, up to +35%% at the higher rate)\n",
        rps_per_worker, 100.0 * (worst_p95 / aware_p95 - 1.0));
  }
}

void HybridResolutions() {
  std::printf(
      "\n--- Mixed-resolution leg: patch-granular vs pad-to-largest "
      "(4 Flux workers) ---\n");
  bench::PrintRow({"hybrid mode", "P95(s)", "mean(s)", "SLO att."});

  // Production trace with a resolution mixture straddling Flux's native
  // 64x64 latent grid: smaller crops, native edits, and oversize panels.
  trace::WorkloadSpec spec;
  spec.trace = trace::TraceKind::kProduction;
  spec.rps = 1.2;
  spec.num_requests = 320;
  spec.resolutions = {{48, 48, 0.4}, {64, 64, 0.35}, {96, 96, 0.25}};
  const auto requests = trace::GenerateWorkload(spec);

  // SLO attainment against a fixed per-request wall budget, at a rate near
  // the pad-mode knee: patch-granular batches still clear the budget while
  // pad-to-largest serializes behind its oversize members and backlogs.
  const double slo_budget_s = 12.0;
  double patch_p95 = 0.0;
  double pad_p95 = 0.0;
  double patch_att = 0.0;
  double pad_att = 0.0;
  for (const serving::HybridMode mode :
       {serving::HybridMode::kPatchGranular,
        serving::HybridMode::kPadToLargest}) {
    cluster::ClusterConfig config;
    config.num_workers = 4;
    config.engine = serving::EngineConfig::ForSystem(
        serving::SystemKind::kFlashPS, model::ModelKind::kFlux);
    config.engine.hybrid = mode;
    config.policy = sched::RoutePolicy::kMaskAware;
    const auto result = cluster::RunClusterSim(config, requests);
    size_t met = 0;
    for (const auto& done : result.completed) {
      if (done.total().seconds() <= slo_budget_s) {
        ++met;
      }
    }
    const double attainment =
        result.completed.empty()
            ? 1.0
            : static_cast<double>(met) /
                  static_cast<double>(result.completed.size());
    bench::PrintRow({ToString(mode), Fmt(result.total_latency_s.P95(), 2),
                     Fmt(result.total_latency_s.Mean(), 2),
                     Fmt(attainment, 3)});
    if (mode == serving::HybridMode::kPatchGranular) {
      patch_p95 = result.total_latency_s.P95();
      patch_att = attainment;
    } else {
      pad_p95 = result.total_latency_s.P95();
      pad_att = attainment;
    }
  }
  std::printf(
      "patch-granular vs pad-to-largest: P95 %.2fx, SLO attainment "
      "%.3f vs %.3f (PatchedServe: ~35%% SLO improvement on mixed "
      "resolutions)\n",
      pad_p95 / patch_p95, patch_att, pad_att);
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Figure 16: continuous batching and load-balance microbenchmarks",
      "static/naive-continuous inflate P95 by 35%/40%; request-/token-level "
      "balancing inflates tail latency by up to 35% at higher traffic");
  flashps::Batching();
  flashps::LoadBalance();
  flashps::HybridResolutions();
  return 0;
}
