// Reproduces Table 2: quantitative image-quality comparison. Diffusers
// (exact full computation) is the ground-truth reference; FISEdit, TeaCache
// and FlashPS are scored against it with CLIP-proxy (prompt alignment), FID
// (feature-distribution distance) and SSIM. Real numerics on the scaled
// model substrate; the comparison of interest is the *ordering* between
// systems (see DESIGN.md on metric substitutions).
#include <cstdio>
#include <map>
#include <vector>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/cache/activation_store.h"
#include "src/model/diffusion_model.h"
#include "src/quality/metrics.h"

namespace flashps {
namespace {

using bench::Fmt;

struct BenchmarkSpec {
  model::ModelKind kind;
  const char* dataset;
  double mask_mean;  // Mean mask ratio of the dataset's editing tasks.
  std::vector<model::ComputeMode> systems;
  bool clip_applicable;  // VITON-HD is image-conditioned: no CLIP.
};

struct Scores {
  double clip = 0.0;
  double fid = 0.0;
  double ssim = 0.0;
  int accepted = 0;  // Edits a viewer would accept (visual-quality proxy).
  int images = 0;
};

// Proxy for the paper's §6.2 user study: an edit is "acceptable" when it is
// visually close to the reference (the study asked participants to judge
// alignment with the standard images). SSIM >= 0.9 is a standard
// visually-indistinguishable band.
constexpr double kAcceptSsim = 0.90;

void RunBenchmark(const BenchmarkSpec& spec, int num_images) {
  const model::NumericsConfig config =
      model::NumericsConfig::ForModelKind(spec.kind);
  const model::DiffusionModel m(config);
  cache::ActivationStore store;
  Rng rng(2026);

  std::printf("\n--- %s / %s (%d edits, mean mask %.2f) ---\n",
              model::ToString(spec.kind).c_str(), spec.dataset, num_images,
              spec.mask_mean);

  // Per-edit inputs.
  struct Edit {
    int template_id;
    trace::Mask mask;
    uint64_t prompt_seed;
  };
  std::vector<Edit> edits;
  for (int i = 0; i < num_images; ++i) {
    Edit e;
    e.template_id = i % 4;  // Templates reused heavily, as in production.
    const double ratio =
        std::clamp(spec.mask_mean + rng.Uniform(-0.08, 0.08), 0.05, 0.9);
    e.mask = trace::GenerateBlobMask(config.grid_h, config.grid_w, ratio, rng);
    e.prompt_seed = 10'000 + i;
    edits.push_back(std::move(e));
  }

  // Reference: Diffusers-style exact computation.
  std::vector<Matrix> reference;
  double ref_clip = 0.0;
  for (const Edit& e : edits) {
    model::DiffusionModel::RunOptions full;
    Matrix img = m.EditImage(e.template_id, e.mask, e.prompt_seed, full);
    ref_clip += quality::ClipProxyScore(img, m.PromptTexture(e.prompt_seed),
                                        e.mask, config.patch);
    reference.push_back(std::move(img));
  }
  ref_clip /= num_images;

  std::map<model::ComputeMode, Scores> results;
  for (const model::ComputeMode mode : spec.systems) {
    std::vector<Matrix> images;
    Scores s;
    for (const Edit& e : edits) {
      model::DiffusionModel::RunOptions options;
      options.mode = mode;
      options.mask = &e.mask;
      // Match the serving-side configuration: TeaCache skips ~half of the
      // denoising steps ("minimize latency while ensuring acceptable
      // quality", §6.1).
      options.teacache_threshold = 0.5;
      const bool mask_aware = mode == model::ComputeMode::kMaskAwareY ||
                              mode == model::ComputeMode::kMaskAwareKV;
      if (mask_aware) {
        options.cache = &store.GetOrRegister(
            m, e.template_id, mode == model::ComputeMode::kMaskAwareKV);
      }
      Matrix img = m.EditImage(e.template_id, e.mask, e.prompt_seed, options);
      s.clip += quality::ClipProxyScore(img, m.PromptTexture(e.prompt_seed),
                                        e.mask, config.patch);
      const double ssim = quality::Ssim(img, reference[s.images]);
      s.ssim += ssim;
      s.accepted += ssim >= kAcceptSsim ? 1 : 0;
      ++s.images;
      images.push_back(std::move(img));
    }
    s.clip /= s.images;
    s.ssim /= s.images;
    s.fid = quality::FidScore(images, reference);
    results[mode] = s;
  }

  bench::PrintRow({"system", "CLIP", "FID", "SSIM"});
  bench::PrintRow({"Diffusers (ref)",
                   spec.clip_applicable ? Fmt(ref_clip, 2) : "-", "-", "-"});
  for (const auto& [mode, s] : results) {
    std::string name;
    switch (mode) {
      case model::ComputeMode::kMaskAwareY:
        name = "FlashPS";
        break;
      case model::ComputeMode::kSparse:
        name = "FISEdit";
        break;
      case model::ComputeMode::kTeaCache:
        name = "TeaCache";
        break;
      default:
        name = model::ToString(mode);
    }
    bench::PrintRow({name, spec.clip_applicable ? Fmt(s.clip, 2) : "-",
                     Fmt(s.fid, 2), Fmt(s.ssim, 3)});
  }

  const Scores& flash = results.at(model::ComputeMode::kMaskAwareY);
  for (const auto& [mode, s] : results) {
    if (mode == model::ComputeMode::kMaskAwareY) {
      continue;
    }
    const char* name =
        mode == model::ComputeMode::kSparse ? "FISEdit" : "TeaCache";
    std::printf("FlashPS vs %s: FID %s, SSIM %s\n", name,
                flash.fid < s.fid ? "lower (better)" : "HIGHER (worse!)",
                flash.ssim > s.ssim ? "higher (better)" : "LOWER (worse!)");
    // §6.2 user-study proxy: acceptance-rate ratio (paper: 2.0x over
    // FISEdit, 1.63x over TeaCache).
    std::printf(
        "  acceptance (SSIM>=%.2f): FlashPS %d/%d vs %s %d/%d -> %.2fx\n",
        kAcceptSsim, flash.accepted, flash.images, name, s.accepted, s.images,
        static_cast<double>(flash.accepted) / std::max(1, s.accepted));
  }
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::bench::PrintHeader(
      "Table 2: quantitative image quality",
      "FlashPS matches Diffusers closely (SSIM up to 0.99) and beats "
      "FISEdit and TeaCache on FID/SSIM while matching CLIP alignment");

  using flashps::model::ComputeMode;
  using flashps::model::ModelKind;

  flashps::RunBenchmark(
      {ModelKind::kSd21, "InstructPix2Pix", 0.2,
       {ComputeMode::kMaskAwareY, ComputeMode::kSparse}, true},
      8);
  flashps::RunBenchmark(
      {ModelKind::kSdxl, "VITON-HD", 0.35,
       {ComputeMode::kMaskAwareY, ComputeMode::kTeaCache}, false},
      8);
  flashps::RunBenchmark(
      {ModelKind::kFlux, "PIE-Bench", 0.25,
       {ComputeMode::kMaskAwareY, ComputeMode::kTeaCache}, true},
      8);
  return 0;
}
