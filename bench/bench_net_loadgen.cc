// Open-loop remote load generator for the FlashPS TCP serving frontier.
//
// Replays a trace::Workload against a flashps_served daemon over one
// pipelined net::Client connection, timing every request from the
// client's side of the wire (send to reply, network + queueing + serving
// included). With no --host flag it self-hosts: a Gateway + TcpServer
// spin up in-process on an ephemeral loopback port, so the whole
// round-trip — encode, socket, poll loop, gateway, completer, socket,
// decode — is exercised by one command. Reports client-observed
// p50/p99, per-status counts, and achieved request rate; cross-checks
// them against the daemon's own MetricsJson() counters; emits
// BENCH_net.json.
//
//   bench_net_loadgen --requests=24 --rps=20 --steps=4 --workers=2
//   bench_net_loadgen --host=127.0.0.1 --port=7411 --requests=100 --rps=50
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/net/client.h"
#include "src/net/tcp_server.h"

using namespace flashps;

namespace {

using Clock = std::chrono::steady_clock;

bool FlagValue(int argc, char** argv, const char* key, std::string* out) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *out = argv[i] + prefix.size();
      return true;
    }
  }
  return false;
}

double FlagDouble(int argc, char** argv, const char* key, double fallback) {
  std::string value;
  return FlagValue(argc, argv, key, &value) ? std::atof(value.c_str())
                                            : fallback;
}

long FlagLong(int argc, char** argv, const char* key, long fallback) {
  std::string value;
  return FlagValue(argc, argv, key, &value) ? std::atol(value.c_str())
                                            : fallback;
}

struct Outstanding {
  uint64_t trace_id = 0;
  Clock::time_point sent;
};

struct Observed {
  net::WireResponse response;
  double latency_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const long requests = FlagLong(argc, argv, "requests", 24);
  const double rps = FlagDouble(argc, argv, "rps", 20.0);
  const int steps = static_cast<int>(FlagLong(argc, argv, "steps", 4));
  const int workers = static_cast<int>(FlagLong(argc, argv, "workers", 2));
  const int max_batch = static_cast<int>(FlagLong(argc, argv, "max-batch", 3));
  const uint64_t seed =
      static_cast<uint64_t>(FlagLong(argc, argv, "seed", 42));
  const long slo_ms = FlagLong(argc, argv, "slo-ms", 0);
  const long timeout_s = FlagLong(argc, argv, "timeout-s", 120);
  std::string host;
  const bool self_host = !FlagValue(argc, argv, "host", &host);
  uint16_t port = static_cast<uint16_t>(FlagLong(argc, argv, "port", 7411));

  bench::PrintHeader(
      "bench_net_loadgen — remote serving over the TCP frontier",
      "InstGenIE/PatchedServe-style cluster frontends serve editing "
      "requests over the wire with SLOs attached (FlashPS arXiv, §5)");

  // Self-host: the daemon side of the loopback, in-process.
  std::unique_ptr<gateway::Gateway> own_gateway;
  std::unique_ptr<net::TcpServer> own_server;
  const model::NumericsConfig numerics = [&] {
    model::NumericsConfig n = model::NumericsConfig::ForTests();
    n.num_steps = steps;
    return n;
  }();
  if (self_host) {
    gateway::GatewayOptions options;
    options.num_workers = workers;
    options.worker.numerics = numerics;
    options.worker.max_batch = max_batch;
    options.slo = Duration::Millis(slo_ms);
    options.admission_control = slo_ms > 0;
    own_gateway = std::make_unique<gateway::Gateway>(options);
    own_server = std::make_unique<net::TcpServer>(*own_gateway);
    if (!own_server->Start()) {
      std::fprintf(stderr, "cannot start loopback server\n");
      return 1;
    }
    host = "127.0.0.1";
    port = own_server->port();
    std::printf("self-hosting on 127.0.0.1:%u (%d workers, %d steps)\n", port,
                workers, steps);
  }

  net::ClientOptions client_options;
  client_options.connect_attempts = 5;
  net::Client client(host, port, client_options);
  if (!client.Connect()) {
    std::fprintf(stderr, "cannot connect to %s:%u\n", host.c_str(), port);
    return 1;
  }

  // The workload: Poisson arrivals, production-trace mask ratios.
  trace::WorkloadSpec spec;
  spec.num_requests = static_cast<int>(requests);
  spec.rps = rps;
  spec.denoise_steps = steps;
  spec.seed = seed;
  const std::vector<trace::Request> workload = trace::GenerateWorkload(spec);
  Rng mask_rng(seed ^ 0x6E65747Eull);

  std::map<uint64_t, Outstanding> outstanding;
  std::vector<Observed> observed;
  uint64_t send_failures = 0;
  const auto harvest = [&] {
    const auto now = Clock::now();
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      if (auto response = client.TryTake(it->first)) {
        Observed obs;
        obs.response = *response;
        obs.latency_ms =
            std::chrono::duration<double, std::milli>(now - it->second.sent)
                .count();
        observed.push_back(obs);
        it = outstanding.erase(it);
      } else {
        ++it;
      }
    }
  };

  const auto epoch = Clock::now();
  for (const trace::Request& request : workload) {
    const auto due =
        epoch + std::chrono::microseconds(request.arrival.micros());
    while (Clock::now() < due) {
      client.Pump(std::chrono::milliseconds(1));
      harvest();
    }
    net::WireRequest wire;
    wire.denoise_steps = steps;
    wire.request.template_id = request.template_id;
    wire.request.prompt_seed = request.id + 1;
    wire.request.mask = trace::GenerateBlobMask(
        numerics.grid_h, numerics.grid_w, request.mask_ratio, mask_rng);
    if (slo_ms > 0) {
      wire.request.slo = Duration::Millis(slo_ms);
    }
    const uint64_t seq = client.Send(wire);
    if (seq == 0) {
      ++send_failures;
      continue;
    }
    outstanding[seq] = Outstanding{request.id, Clock::now()};
    client.Pump(std::chrono::milliseconds(0));
    harvest();
  }

  const auto deadline = Clock::now() + std::chrono::seconds(timeout_s);
  while (!outstanding.empty() && Clock::now() < deadline &&
         client.connected()) {
    client.Pump(std::chrono::milliseconds(5));
    harvest();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - epoch).count();
  const uint64_t lost = outstanding.size() + send_failures;

  // Tally per-status counts and accepted-request latency percentiles.
  uint64_t accepted = 0, rejected_slo = 0, shed = 0, shutdown = 0;
  StatAccumulator latency_ms;
  StatAccumulator server_e2e_ms;
  for (const Observed& obs : observed) {
    switch (obs.response.submit_status()) {
      case gateway::SubmitStatus::kAccepted:
        ++accepted;
        latency_ms.Add(obs.latency_ms);
        server_e2e_ms.Add(static_cast<double>(obs.response.e2e_us) / 1e3);
        break;
      case gateway::SubmitStatus::kRejectedSlo:
        ++rejected_slo;
        break;
      case gateway::SubmitStatus::kShedOverload:
        ++shed;
        break;
      case gateway::SubmitStatus::kRejectedShutdown:
        ++shutdown;
        break;
    }
  }

  bench::PrintRow({"metric", "value"}, 26);
  bench::PrintRow({"requests sent", std::to_string(workload.size())}, 26);
  bench::PrintRow({"accepted", std::to_string(accepted)}, 26);
  bench::PrintRow({"rejected-slo", std::to_string(rejected_slo)}, 26);
  bench::PrintRow({"shed-overload", std::to_string(shed)}, 26);
  bench::PrintRow({"rejected-shutdown", std::to_string(shutdown)}, 26);
  bench::PrintRow({"lost/unanswered", std::to_string(lost)}, 26);
  if (!latency_ms.empty()) {
    bench::PrintRow({"client p50 (ms)", bench::Fmt(latency_ms.P50(), 1)}, 26);
    bench::PrintRow({"client p99 (ms)", bench::Fmt(latency_ms.P99(), 1)}, 26);
    bench::PrintRow({"client mean (ms)", bench::Fmt(latency_ms.Mean(), 1)},
                    26);
    bench::PrintRow(
        {"server e2e p50 (ms)", bench::Fmt(server_e2e_ms.P50(), 1)}, 26);
    bench::PrintRow(
        {"network+pump overhead p50",
         bench::Fmt(latency_ms.P50() - server_e2e_ms.P50(), 1)},
        26);
  }
  bench::PrintRow({"achieved rps", bench::Fmt(accepted / wall_s, 2)}, 26);

  // Cross-check against the daemon's own counters over the wire.
  std::string server_metrics = "{}";
  if (auto json = client.QueryMetrics(std::chrono::seconds(10))) {
    server_metrics = *json;
  }
  std::printf("\nserver metrics (over the wire):\n%s\n",
              server_metrics.c_str());

  std::ostringstream json;
  json << "{\"requests\":" << workload.size() << ",\"rps\":" << rps
       << ",\"steps\":" << steps << ",\"workers\":" << workers
       << ",\"self_host\":" << (self_host ? "true" : "false")
       << ",\"client\":{\"accepted\":" << accepted
       << ",\"rejected_slo\":" << rejected_slo << ",\"shed_overload\":" << shed
       << ",\"rejected_shutdown\":" << shutdown << ",\"lost\":" << lost
       << ",\"e2e_ms\":{\"p50\":" << (latency_ms.empty() ? 0.0 : latency_ms.P50())
       << ",\"p99\":" << (latency_ms.empty() ? 0.0 : latency_ms.P99())
       << ",\"mean\":" << (latency_ms.empty() ? 0.0 : latency_ms.Mean())
       << "},\"achieved_rps\":" << (accepted / wall_s)
       << ",\"wall_s\":" << wall_s << "},\"server_metrics\":" << server_metrics
       << "}";
  std::ofstream out("BENCH_net.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_net.json\n");

  client.Close();
  if (own_server != nullptr) {
    own_server->Stop();
  }
  if (own_gateway != nullptr) {
    own_gateway->Stop();
  }
  return lost == 0 ? 0 : 2;
}
