// Real-concurrency gateway SLO comparison (the wall-clock counterpart of
// Fig. 16-Right): all five routing policies dispatch the same skewed-mask
// open-loop arrival trace onto real OnlineServer workers; we report
// per-policy p50/p99 end-to-end latency and SLO attainment.
//
// The trace is deliberately bimodal (mostly small masks with a heavy-mask
// minority), the regime where count-based balancing misplaces the expensive
// requests and the paper's mask-aware Algorithm 2 routing wins. Writes
// BENCH_gateway.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/gateway/gateway.h"

namespace {

using namespace flashps;

constexpr int kWorkers = 2;
constexpr int kCpuLanes = 2;  // Pre/post lanes per worker.
constexpr int kRequests = 48;
constexpr int kSteps = 12;
constexpr uint64_t kMaskSeed = 2024;
// Attainment on one 64-request trace is noisy (one request is ~1.6%);
// aggregate over several independent traces of the same distribution. With
// five traces and the policy order rotated per trace, every policy runs
// exactly once in every position, so slow host phases hit all policies
// evenly and the median discards outlier runs.
constexpr int kSeedCount = 7;

// Optional hybrid-resolution replay (--resolutions=HxW:weight,...): grids
// the trace mixes in besides the native one. Empty = the seed's
// single-resolution bench, byte for byte.
std::vector<trace::ResolutionWeight> g_mixture;

// --smoke (check.sh --bench-smoke) shrinks the replay to one short trace:
// it exercises the whole path — calibration, every policy, the JSON dump —
// without the minutes-long steady-state measurement, so its numbers are
// not meaningful.
int g_requests = kRequests;
int g_seed_count = kSeedCount;

gateway::GatewayOptions BaseOptions() {
  gateway::GatewayOptions options;
  options.num_workers = kWorkers;
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = kSteps;
  options.worker.max_batch = 3;
  options.worker.cpu_lanes = kCpuLanes;
  // Rank policies on the same offered load: track SLO attainment but do not
  // reject up front, so every policy serves the identical request set.
  options.admission_control = false;
  for (const auto& rw : g_mixture) {
    if (rw.grid_h != options.worker.numerics.grid_h ||
        rw.grid_w != options.worker.numerics.grid_w) {
      options.worker.extra_resolutions.emplace_back(rw.grid_h, rw.grid_w);
    }
  }
  if (!options.worker.extra_resolutions.empty()) {
    // Hybrid serving batches cross-resolution steps through the gathered
    // panel, which needs the sparse path.
    options.worker.sparse_compute = true;
  }
  return options;
}

// Stamps each request's grid from the mixture, deterministically per trace.
void StampResolutions(std::vector<trace::Request>& requests, uint64_t seed) {
  if (g_mixture.empty()) {
    return;
  }
  double total = 0.0;
  for (const auto& rw : g_mixture) {
    total += rw.weight;
  }
  Rng rng(seed ^ 0x5eed);
  for (auto& r : requests) {
    double u = rng.NextDouble() * total;
    const trace::ResolutionWeight* pick = &g_mixture.back();
    for (const auto& rw : g_mixture) {
      if (u < rw.weight) {
        pick = &rw;
        break;
      }
      u -= rw.weight;
    }
    r.grid_h = pick->grid_h;
    r.grid_w = pick->grid_w;
  }
}

// Bimodal skewed-mask trace: 80% light edits (ratio ~0.03-0.08), 20% heavy
// edits (ratio ~0.8-0.95), Poisson arrivals at `rps`. The wide cost gap
// (roughly 8x per step) is the regime where balancing request *counts*
// leaves large work imbalances whenever the heavy minority clusters by
// chance, while mask-aware routing balances estimated work exactly.
std::vector<trace::Request> SkewedTrace(double rps, uint64_t seed) {
  Rng rng(seed);
  trace::PoissonArrivals arrivals(rps, rng.Split());
  std::vector<trace::Request> requests;
  requests.reserve(g_requests);
  for (int i = 0; i < g_requests; ++i) {
    trace::Request r;
    r.id = static_cast<uint64_t>(i);
    r.arrival = arrivals.Next();
    r.template_id = static_cast<int>(rng.NextBelow(3));
    r.mask_ratio = (rng.NextDouble() < 0.8) ? rng.Uniform(0.03, 0.08)
                                            : rng.Uniform(0.8, 0.95);
    r.denoise_steps = kSteps;
    requests.push_back(r);
  }
  return requests;
}

struct HostCalibration {
  double solo_ms = 0.0;          // Mean unloaded end-to-end latency (r=0.3).
  double fixed_ms = 0.0;         // Non-denoise overhead (pre/post/dispatch).
  double mean_denoise_ms = 0.0;  // Expected per-request denoise cost of the
                                 // trace mix, from the profiled regression.
  // Mixture-weighted pre/post cost: the CPU-lane work per request. The
  // non-denoise overhead scales with the image (latent preparation and
  // decoding touch every token), so mixed-resolution replay must budget
  // the lanes too, not just the denoise thread.
  double mean_pre_post_ms = 0.0;
  // Measured per-grid non-denoise overhead (mixture replay only).
  std::vector<std::pair<std::pair<int, int>, double>> fixed_by_grid;
  sched::LatencyModel model;     // Wall-clock-profiled step-cost regression.

  double FixedMsFor(const trace::Request& r) const {
    for (const auto& [grid, ms] : fixed_by_grid) {
      if (grid.first == r.grid_h && grid.second == r.grid_w) {
        return ms;
      }
    }
    return fixed_ms;
  }

  // Estimated unloaded end-to-end latency for one request of `ratio` — the
  // basis for slowdown-normalized per-request SLOs.
  double SoloMs(double ratio) const {
    const std::vector<double> one{ratio};
    return fixed_ms + kSteps * model.EstimateStepLatency(one).millis();
  }

  // Per-request variant: prices the request at its OWN resolution (the
  // grid's profiled fit when the gateway profiled one, else the
  // token-scaled primary regression) — identical to SoloMs(mask_ratio)
  // for resolution-less traces.
  double SoloMsFor(const trace::Request& r) const {
    return FixedMsFor(r) + kSteps * model.EstimateRequestStepSeconds(r) * 1000.0;
  }
};

// Probes this host: solo latency anchors the SLO scale; the profiled latency
// model gives per-ratio step costs (for per-request SLO budgets) and the
// denoise-thread capacity that the arrival rate is set against.
HostCalibration Calibrate() {
  gateway::GatewayOptions options = BaseOptions();
  options.policy = sched::RoutePolicy::kRoundRobin;
  gateway::Gateway probe(options);
  Rng rng(3);
  StatAccumulator ms;
  for (int i = 0; i < 4; ++i) {
    runtime::OnlineRequest request;
    request.template_id = i % 3;
    request.mask = trace::GenerateBlobMask(options.worker.numerics.grid_h,
                                           options.worker.numerics.grid_w,
                                           0.3, rng);
    request.prompt_seed = 100 + i;
    auto result = probe.Submit(std::move(request));
    ms.Add(result.future.get().total_ms());
  }
  HostCalibration cal;
  cal.model = probe.latency_model();
  cal.solo_ms = ms.Mean();
  const std::vector<double> probe_ratio{0.3};
  cal.fixed_ms = std::max(
      0.0, cal.solo_ms -
               kSteps * cal.model.EstimateStepLatency(probe_ratio).millis());
  // Expected per-request denoise cost of the bimodal mix. With a
  // resolution mixture, each mode is priced per grid through the profiled
  // per-resolution fits and weighted — otherwise the offered load would be
  // set against the native grid's cost alone and overdrive the host
  // whenever the mixture skews large.
  auto mode_step_ms = [&cal](double ratio) {
    if (g_mixture.empty()) {
      const std::vector<double> one{ratio};
      return cal.model.EstimateStepLatency(one).millis();
    }
    double total_weight = 0.0;
    double weighted_ms = 0.0;
    for (const auto& rw : g_mixture) {
      trace::Request r;
      r.mask_ratio = ratio;
      r.grid_h = rw.grid_h;
      r.grid_w = rw.grid_w;
      weighted_ms +=
          rw.weight * cal.model.EstimateRequestStepSeconds(r) * 1000.0;
      total_weight += rw.weight;
    }
    return weighted_ms / total_weight;
  };
  cal.mean_denoise_ms =
      kSteps * (0.8 * mode_step_ms(0.055) + 0.2 * mode_step_ms(0.875));

  // Mixture replay: probe each grid for its measured non-denoise overhead
  // (pre/post scale with the image — a large grid's latent preparation
  // costs several native ones) and fold them into the lane budget.
  cal.mean_pre_post_ms = cal.fixed_ms;
  if (!g_mixture.empty()) {
    double total_weight = 0.0;
    double weighted_fixed = 0.0;
    for (const auto& rw : g_mixture) {
      double fixed_grid = cal.fixed_ms;
      if (rw.grid_h != options.worker.numerics.grid_h ||
          rw.grid_w != options.worker.numerics.grid_w) {
        StatAccumulator grid_ms;
        for (int i = 0; i < 2; ++i) {
          runtime::OnlineRequest request;
          request.template_id = i % 3;
          request.mask =
              trace::GenerateBlobMask(rw.grid_h, rw.grid_w, 0.3, rng);
          request.prompt_seed = 200 + i;
          auto result = probe.Submit(std::move(request));
          grid_ms.Add(result.future.get().total_ms());
        }
        trace::Request priced;
        priced.mask_ratio = 0.3;
        priced.grid_h = rw.grid_h;
        priced.grid_w = rw.grid_w;
        fixed_grid = std::max(
            0.0, grid_ms.Mean() -
                     kSteps * cal.model.EstimateRequestStepSeconds(priced) *
                         1000.0);
      }
      cal.fixed_by_grid.push_back({{rw.grid_h, rw.grid_w}, fixed_grid});
      weighted_fixed += rw.weight * fixed_grid;
      total_weight += rw.weight;
    }
    cal.mean_pre_post_ms = weighted_fixed / total_weight;
  }
  probe.Stop();
  return cal;
}

// Replays the trace open-loop with slowdown-normalized SLOs: each request's
// deadline budget is `slo_mult` times its own estimated unloaded latency
// (the serving-literature "SLO scale"). Lights get proportionally tight
// budgets, so parking a light behind a heavy batch — the mistake count-based
// balancing makes systematically on skewed traces — costs attainment even
// when heavies alone would still make their looser deadlines.
gateway::MetricsSnapshot RunPolicy(sched::RoutePolicy policy,
                                   const std::vector<trace::Request>& requests,
                                   const HostCalibration& cal,
                                   double slo_mult) {
  gateway::GatewayOptions options = BaseOptions();
  options.policy = policy;
  gateway::Gateway gw(options);
  Rng rng(kMaskSeed);
  gw.ResetArrivalEpoch();
  for (const auto& r : requests) {
    runtime::OnlineRequest online =
        gateway::MakeOnlineRequest(r, options.worker.numerics, rng);
    online.slo = Duration::Seconds(slo_mult * cal.SoloMsFor(r) / 1000.0);
    gw.SubmitAt(std::move(online), r.arrival - TimePoint());
  }
  gw.Drain();
  gateway::MetricsSnapshot metrics = gw.Metrics();
  gw.Stop();
  return metrics;
}

struct PolicyAggregate {
  sched::RoutePolicy policy;
  std::vector<gateway::MetricsSnapshot> runs;

  // Median per-trace attainment: robust to a single run degraded by host
  // noise (the bench shares one machine with everything else on it).
  double Attainment() const {
    std::vector<double> per_run;
    per_run.reserve(runs.size());
    for (const auto& m : runs) {
      per_run.push_back(m.SloAttainment());
    }
    if (per_run.empty()) {
      return 1.0;
    }
    std::sort(per_run.begin(), per_run.end());
    return per_run[per_run.size() / 2];
  }
  double MeanP50() const { return Mean([](const auto& m) { return m.end_to_end.p50_ms; }); }
  double MeanP99() const { return Mean([](const auto& m) { return m.end_to_end.p99_ms; }); }
  double MeanQueueP99() const { return Mean([](const auto& m) { return m.queueing.p99_ms; }); }

  template <typename F>
  double Mean(F field) const {
    double sum = 0.0;
    for (const auto& m : runs) {
      sum += field(m);
    }
    return runs.empty() ? 0.0 : sum / static_cast<double>(runs.size());
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Gateway SLO comparison — real threads, open-loop skewed-mask trace",
      "§4.4/Fig. 16: count-based balancing misplaces heavy-mask requests; "
      "mask-aware routing attains the SLO at least as often");

  // Strip --smoke and --resolutions=HxW[:weight],... (hybrid-resolution
  // replay) before the positional args; with a mixture the workers serve
  // every listed grid and each trace request draws its grid from the
  // weighted mixture.
  {
    std::vector<char*> positional;
    for (int i = 0; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--smoke") {
        g_requests = 8;
        g_seed_count = 1;
        continue;
      }
      const std::string prefix = "--resolutions=";
      if (arg.rfind(prefix, 0) != 0) {
        positional.push_back(argv[i]);
        continue;
      }
      std::stringstream list(arg.substr(prefix.size()));
      std::string entry;
      while (std::getline(list, entry, ',')) {
        trace::ResolutionWeight rw;
        const size_t colon = entry.find(':');
        const std::string grid_text =
            colon == std::string::npos ? entry : entry.substr(0, colon);
        if (!trace::ParseResolution(grid_text, &rw.grid_h, &rw.grid_w) ||
            (colon != std::string::npos &&
             (rw.weight = std::atof(entry.c_str() + colon + 1)) <= 0.0)) {
          std::fprintf(stderr,
                       "bad --resolutions entry '%s' (expected HxW or "
                       "HxW:weight)\n",
                       entry.c_str());
          return 2;
        }
        g_mixture.push_back(rw);
      }
    }
    argc = static_cast<int>(positional.size());
    for (int i = 0; i < argc; ++i) {
      argv[i] = positional[i];
    }
  }
  if (!g_mixture.empty()) {
    std::printf("hybrid-resolution replay:");
    for (const auto& rw : g_mixture) {
      std::printf(" %dx%d:%.2f", rw.grid_h, rw.grid_w, rw.weight);
    }
    std::printf("\n");
  }

  const HostCalibration cal = Calibrate();
  // Offered load: a fraction of the denoise-thread capacity (the routed
  // resource) — near the knee, where backlog builds intermittently and
  // placement of the heavy-mask minority decides the tail. Each request's
  // SLO is `slo_mult` times its own estimated unloaded latency (slowdown-
  // normalized). Both are overridable for exploration:
  //   bench_gateway_slo [utilization] [slo_multiplier]
  double util = argc > 1 ? std::atof(argv[1]) : 0.30;
  double slo_mult = argc > 2 ? std::atof(argv[2]) : 5.0;
  if (util <= 0.0 || util > 1.0) {
    std::fprintf(stderr, "invalid utilization '%s', using 0.30\n",
                 argc > 1 ? argv[1] : "");
    util = 0.30;
  }
  if (slo_mult <= 1.0) {
    std::fprintf(stderr, "invalid SLO multiplier '%s', using 5.0\n",
                 argc > 2 ? argv[2] : "");
    slo_mult = 5.0;
  }
  // Utilization targets whichever resource the trace mix saturates first.
  // Single-resolution traces are denoise-bound (the seed behavior); a
  // resolution mixture can shift the bottleneck to the pre/post lanes,
  // whose per-request cost scales with the image.
  const double denoise_rps = util * kWorkers * 1000.0 / cal.mean_denoise_ms;
  const double lane_rps = g_mixture.empty()
                              ? denoise_rps
                              : util * kWorkers * kCpuLanes * 1000.0 /
                                    cal.mean_pre_post_ms;
  const double rps = std::min(denoise_rps, lane_rps);
  std::printf("solo %.1f ms (fixed %.1f ms), mean denoise %.1f ms -> %.0f%% "
              "denoise utilization = %.1f rps, SLO = %.1fx per-request solo "
              "(light %.0f ms / heavy %.0f ms), %d traces x %d requests, "
              "%d workers\n\n",
              cal.solo_ms, cal.fixed_ms, cal.mean_denoise_ms, 100.0 * util,
              rps, slo_mult, slo_mult * cal.SoloMs(0.055),
              slo_mult * cal.SoloMs(0.875), g_seed_count, g_requests,
              kWorkers);

  const std::vector<sched::RoutePolicy> policies = {
      sched::RoutePolicy::kRoundRobin, sched::RoutePolicy::kFirstFit,
      sched::RoutePolicy::kRequestCount, sched::RoutePolicy::kTokenCount,
      sched::RoutePolicy::kMaskAware};
  std::vector<PolicyAggregate> results;
  for (const auto policy : policies) {
    results.push_back(PolicyAggregate{policy, {}});
  }
  for (int seed = 0; seed < g_seed_count; ++seed) {
    std::vector<trace::Request> requests =
        SkewedTrace(rps, /*seed=*/7 + static_cast<uint64_t>(seed));
    StampResolutions(requests, /*seed=*/7 + static_cast<uint64_t>(seed));
    // Rotate the execution order so no policy always runs first (cold) or
    // last (after the host has drifted).
    for (size_t i = 0; i < policies.size(); ++i) {
      const size_t p = (i + static_cast<size_t>(seed)) % policies.size();
      results[p].runs.push_back(RunPolicy(policies[p], requests, cal, slo_mult));
    }
  }

  bench::PrintRow({"policy", "p50(ms)", "p99(ms)", "queue p99", "attainment"},
                  16);
  double best_baseline = 0.0;
  double mask_aware = 0.0;
  for (const auto& r : results) {
    bench::PrintRow({sched::ToString(r.policy), bench::Fmt(r.MeanP50(), 1),
                     bench::Fmt(r.MeanP99(), 1),
                     bench::Fmt(r.MeanQueueP99(), 1),
                     bench::Fmt(r.Attainment(), 3)},
                    16);
    if (r.policy == sched::RoutePolicy::kMaskAware) {
      mask_aware = r.Attainment();
    } else {
      best_baseline = std::max(best_baseline, r.Attainment());
    }
  }
  std::printf("\nmask-aware attainment %.3f vs best baseline %.3f (%s)\n",
              mask_aware, best_baseline,
              mask_aware >= best_baseline ? "OK: >= best baseline"
                                          : "below best baseline");

  std::ostringstream json;
  json << "{\"workers\":" << kWorkers << ",\"requests\":" << g_requests
       << ",\"traces\":" << g_seed_count << ",\"slo_multiplier\":" << slo_mult
       << ",\"slo_light_ms\":" << slo_mult * cal.SoloMs(0.055)
       << ",\"slo_heavy_ms\":" << slo_mult * cal.SoloMs(0.875)
       << ",\"arrival_rps\":" << rps << ",\"policies\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) {
      json << ",";
    }
    json << "{\"policy\":\"" << sched::ToString(results[i].policy)
         << "\",\"attainment\":" << results[i].Attainment()
         << ",\"p50_ms\":" << results[i].MeanP50()
         << ",\"p99_ms\":" << results[i].MeanP99() << ",\"runs\":[";
    for (size_t r = 0; r < results[i].runs.size(); ++r) {
      if (r > 0) {
        json << ",";
      }
      json << results[i].runs[r].ToJson();
    }
    json << "]}";
  }
  json << "]}";
  std::ofstream out("BENCH_gateway.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_gateway.json\n");
  return 0;
}
