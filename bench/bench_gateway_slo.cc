// Real-concurrency gateway SLO comparison (the wall-clock counterpart of
// Fig. 16-Right): all five routing policies dispatch the same skewed-mask
// open-loop arrival trace onto real OnlineServer workers; we report
// per-policy p50/p99 end-to-end latency and SLO attainment.
//
// The trace is deliberately bimodal (mostly small masks with a heavy-mask
// minority), the regime where count-based balancing misplaces the expensive
// requests and the paper's mask-aware Algorithm 2 routing wins. Writes
// BENCH_gateway.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/gateway/gateway.h"

namespace {

using namespace flashps;

constexpr int kWorkers = 2;
constexpr int kRequests = 48;
constexpr int kSteps = 12;
constexpr uint64_t kMaskSeed = 2024;
// Attainment on one 64-request trace is noisy (one request is ~1.6%);
// aggregate over several independent traces of the same distribution. With
// five traces and the policy order rotated per trace, every policy runs
// exactly once in every position, so slow host phases hit all policies
// evenly and the median discards outlier runs.
constexpr int kSeedCount = 7;

gateway::GatewayOptions BaseOptions() {
  gateway::GatewayOptions options;
  options.num_workers = kWorkers;
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = kSteps;
  options.worker.max_batch = 3;
  options.worker.cpu_lanes = 2;
  // Rank policies on the same offered load: track SLO attainment but do not
  // reject up front, so every policy serves the identical request set.
  options.admission_control = false;
  return options;
}

// Bimodal skewed-mask trace: 80% light edits (ratio ~0.03-0.08), 20% heavy
// edits (ratio ~0.8-0.95), Poisson arrivals at `rps`. The wide cost gap
// (roughly 8x per step) is the regime where balancing request *counts*
// leaves large work imbalances whenever the heavy minority clusters by
// chance, while mask-aware routing balances estimated work exactly.
std::vector<trace::Request> SkewedTrace(double rps, uint64_t seed) {
  Rng rng(seed);
  trace::PoissonArrivals arrivals(rps, rng.Split());
  std::vector<trace::Request> requests;
  requests.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    trace::Request r;
    r.id = static_cast<uint64_t>(i);
    r.arrival = arrivals.Next();
    r.template_id = static_cast<int>(rng.NextBelow(3));
    r.mask_ratio = (rng.NextDouble() < 0.8) ? rng.Uniform(0.03, 0.08)
                                            : rng.Uniform(0.8, 0.95);
    r.denoise_steps = kSteps;
    requests.push_back(r);
  }
  return requests;
}

struct HostCalibration {
  double solo_ms = 0.0;          // Mean unloaded end-to-end latency (r=0.3).
  double fixed_ms = 0.0;         // Non-denoise overhead (pre/post/dispatch).
  double mean_denoise_ms = 0.0;  // Expected per-request denoise cost of the
                                 // trace mix, from the profiled regression.
  sched::LatencyModel model;     // Wall-clock-profiled step-cost regression.

  // Estimated unloaded end-to-end latency for one request of `ratio` — the
  // basis for slowdown-normalized per-request SLOs.
  double SoloMs(double ratio) const {
    const std::vector<double> one{ratio};
    return fixed_ms + kSteps * model.EstimateStepLatency(one).millis();
  }
};

// Probes this host: solo latency anchors the SLO scale; the profiled latency
// model gives per-ratio step costs (for per-request SLO budgets) and the
// denoise-thread capacity that the arrival rate is set against.
HostCalibration Calibrate() {
  gateway::GatewayOptions options = BaseOptions();
  options.policy = sched::RoutePolicy::kRoundRobin;
  gateway::Gateway probe(options);
  Rng rng(3);
  StatAccumulator ms;
  for (int i = 0; i < 4; ++i) {
    runtime::OnlineRequest request;
    request.template_id = i % 3;
    request.mask = trace::GenerateBlobMask(options.worker.numerics.grid_h,
                                           options.worker.numerics.grid_w,
                                           0.3, rng);
    request.prompt_seed = 100 + i;
    auto result = probe.Submit(std::move(request));
    ms.Add(result.future.get().total_ms());
  }
  HostCalibration cal;
  cal.model = probe.latency_model();
  cal.solo_ms = ms.Mean();
  const std::vector<double> probe_ratio{0.3};
  cal.fixed_ms = std::max(
      0.0, cal.solo_ms -
               kSteps * cal.model.EstimateStepLatency(probe_ratio).millis());
  const std::vector<double> light{0.055};
  const std::vector<double> heavy{0.875};
  cal.mean_denoise_ms =
      kSteps * (0.8 * cal.model.EstimateStepLatency(light).millis() +
                0.2 * cal.model.EstimateStepLatency(heavy).millis());
  probe.Stop();
  return cal;
}

// Replays the trace open-loop with slowdown-normalized SLOs: each request's
// deadline budget is `slo_mult` times its own estimated unloaded latency
// (the serving-literature "SLO scale"). Lights get proportionally tight
// budgets, so parking a light behind a heavy batch — the mistake count-based
// balancing makes systematically on skewed traces — costs attainment even
// when heavies alone would still make their looser deadlines.
gateway::MetricsSnapshot RunPolicy(sched::RoutePolicy policy,
                                   const std::vector<trace::Request>& requests,
                                   const HostCalibration& cal,
                                   double slo_mult) {
  gateway::GatewayOptions options = BaseOptions();
  options.policy = policy;
  gateway::Gateway gw(options);
  Rng rng(kMaskSeed);
  gw.ResetArrivalEpoch();
  for (const auto& r : requests) {
    runtime::OnlineRequest online =
        gateway::MakeOnlineRequest(r, options.worker.numerics, rng);
    online.slo =
        Duration::Seconds(slo_mult * cal.SoloMs(r.mask_ratio) / 1000.0);
    gw.SubmitAt(std::move(online), r.arrival - TimePoint());
  }
  gw.Drain();
  gateway::MetricsSnapshot metrics = gw.Metrics();
  gw.Stop();
  return metrics;
}

struct PolicyAggregate {
  sched::RoutePolicy policy;
  std::vector<gateway::MetricsSnapshot> runs;

  // Median per-trace attainment: robust to a single run degraded by host
  // noise (the bench shares one machine with everything else on it).
  double Attainment() const {
    std::vector<double> per_run;
    per_run.reserve(runs.size());
    for (const auto& m : runs) {
      per_run.push_back(m.SloAttainment());
    }
    if (per_run.empty()) {
      return 1.0;
    }
    std::sort(per_run.begin(), per_run.end());
    return per_run[per_run.size() / 2];
  }
  double MeanP50() const { return Mean([](const auto& m) { return m.end_to_end.p50_ms; }); }
  double MeanP99() const { return Mean([](const auto& m) { return m.end_to_end.p99_ms; }); }
  double MeanQueueP99() const { return Mean([](const auto& m) { return m.queueing.p99_ms; }); }

  template <typename F>
  double Mean(F field) const {
    double sum = 0.0;
    for (const auto& m : runs) {
      sum += field(m);
    }
    return runs.empty() ? 0.0 : sum / static_cast<double>(runs.size());
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Gateway SLO comparison — real threads, open-loop skewed-mask trace",
      "§4.4/Fig. 16: count-based balancing misplaces heavy-mask requests; "
      "mask-aware routing attains the SLO at least as often");

  const HostCalibration cal = Calibrate();
  // Offered load: a fraction of the denoise-thread capacity (the routed
  // resource) — near the knee, where backlog builds intermittently and
  // placement of the heavy-mask minority decides the tail. Each request's
  // SLO is `slo_mult` times its own estimated unloaded latency (slowdown-
  // normalized). Both are overridable for exploration:
  //   bench_gateway_slo [utilization] [slo_multiplier]
  double util = argc > 1 ? std::atof(argv[1]) : 0.30;
  double slo_mult = argc > 2 ? std::atof(argv[2]) : 5.0;
  if (util <= 0.0 || util > 1.0) {
    std::fprintf(stderr, "invalid utilization '%s', using 0.30\n",
                 argc > 1 ? argv[1] : "");
    util = 0.30;
  }
  if (slo_mult <= 1.0) {
    std::fprintf(stderr, "invalid SLO multiplier '%s', using 5.0\n",
                 argc > 2 ? argv[2] : "");
    slo_mult = 5.0;
  }
  const double rps = util * kWorkers * 1000.0 / cal.mean_denoise_ms;
  std::printf("solo %.1f ms (fixed %.1f ms), mean denoise %.1f ms -> %.0f%% "
              "denoise utilization = %.1f rps, SLO = %.1fx per-request solo "
              "(light %.0f ms / heavy %.0f ms), %d traces x %d requests, "
              "%d workers\n\n",
              cal.solo_ms, cal.fixed_ms, cal.mean_denoise_ms, 100.0 * util,
              rps, slo_mult, slo_mult * cal.SoloMs(0.055),
              slo_mult * cal.SoloMs(0.875), kSeedCount, kRequests, kWorkers);

  const std::vector<sched::RoutePolicy> policies = {
      sched::RoutePolicy::kRoundRobin, sched::RoutePolicy::kFirstFit,
      sched::RoutePolicy::kRequestCount, sched::RoutePolicy::kTokenCount,
      sched::RoutePolicy::kMaskAware};
  std::vector<PolicyAggregate> results;
  for (const auto policy : policies) {
    results.push_back(PolicyAggregate{policy, {}});
  }
  for (int seed = 0; seed < kSeedCount; ++seed) {
    const std::vector<trace::Request> requests =
        SkewedTrace(rps, /*seed=*/7 + static_cast<uint64_t>(seed));
    // Rotate the execution order so no policy always runs first (cold) or
    // last (after the host has drifted).
    for (size_t i = 0; i < policies.size(); ++i) {
      const size_t p = (i + static_cast<size_t>(seed)) % policies.size();
      results[p].runs.push_back(RunPolicy(policies[p], requests, cal, slo_mult));
    }
  }

  bench::PrintRow({"policy", "p50(ms)", "p99(ms)", "queue p99", "attainment"},
                  16);
  double best_baseline = 0.0;
  double mask_aware = 0.0;
  for (const auto& r : results) {
    bench::PrintRow({sched::ToString(r.policy), bench::Fmt(r.MeanP50(), 1),
                     bench::Fmt(r.MeanP99(), 1),
                     bench::Fmt(r.MeanQueueP99(), 1),
                     bench::Fmt(r.Attainment(), 3)},
                    16);
    if (r.policy == sched::RoutePolicy::kMaskAware) {
      mask_aware = r.Attainment();
    } else {
      best_baseline = std::max(best_baseline, r.Attainment());
    }
  }
  std::printf("\nmask-aware attainment %.3f vs best baseline %.3f (%s)\n",
              mask_aware, best_baseline,
              mask_aware >= best_baseline ? "OK: >= best baseline"
                                          : "below best baseline");

  std::ostringstream json;
  json << "{\"workers\":" << kWorkers << ",\"requests\":" << kRequests
       << ",\"traces\":" << kSeedCount << ",\"slo_multiplier\":" << slo_mult
       << ",\"slo_light_ms\":" << slo_mult * cal.SoloMs(0.055)
       << ",\"slo_heavy_ms\":" << slo_mult * cal.SoloMs(0.875)
       << ",\"arrival_rps\":" << rps << ",\"policies\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) {
      json << ",";
    }
    json << "{\"policy\":\"" << sched::ToString(results[i].policy)
         << "\",\"attainment\":" << results[i].Attainment()
         << ",\"p50_ms\":" << results[i].MeanP50()
         << ",\"p99_ms\":" << results[i].MeanP99() << ",\"runs\":[";
    for (size_t r = 0; r < results[i].runs.size(); ++r) {
      if (r > 0) {
        json << ",";
      }
      json << results[i].runs[r].ToJson();
    }
    json << "]}";
  }
  json << "]}";
  std::ofstream out("BENCH_gateway.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_gateway.json\n");
  return 0;
}
