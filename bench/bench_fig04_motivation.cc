// Reproduces Fig. 4, the three motivating measurements:
//  Left:   per-request inference latency under naive sequential cache
//          loading vs FlashPS's pipeline vs the loading-free ideal
//          (SDXL on H800; paper: naive adds ~102%).
//  Middle: average queueing time, static vs continuous batching, as request
//          traffic grows (Flux on H800; paper: ~2x longer queues).
//  Right:  P95 latency under naive request-level load balancing vs
//          mask-aware load balancing (Flux on H800; paper: +32%).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cluster/simulation.h"
#include "src/pipeline/pipeline.h"

namespace flashps {
namespace {

using bench::Fmt;

void LoadingMethods() {
  bench::PrintHeader(
      "Figure 4-Left: cache loading methods (SDXL, H800)",
      "naive sequential loading increases inference latency by ~102% vs the "
      "ideal; FlashPS's pipeline is close to ideal");

  const auto config = model::TimingConfig::Get(model::ModelKind::kSdxl);
  const auto spec = device::DeviceSpec::Get(config.gpu);
  bench::PrintRow({"mask", "naive(s)", "pipeline(s)", "ideal(s)",
                   "naive-overhead", "pipeline-overhead"});
  for (const double m : {0.05, 0.11, 0.2}) {
    const double ratios[] = {m};
    const auto w =
        model::BuildStepWorkload(config, ratios, model::ComputeMode::kMaskAwareY);
    const auto d = model::ComputeStepDurations(config, spec, w);
    // The naive scheme issues blocking synchronous loads (pageable memory,
    // one transfer per block); the pipelined path streams from pinned
    // buffers on the copy stream.
    std::vector<Duration> sync_loads;
    for (const auto& block : w.blocks) {
      sync_loads.push_back(spec.SyncLoadLatency(block.load_bytes));
    }
    const Duration naive =
        pipeline::NaiveSequentialLatency(d.compute_with_cache, sync_loads) +
        d.non_tf;
    const Duration bubble_free =
        pipeline::PlanBubbleFree(d.compute_with_cache, d.compute_without_cache,
                                 d.load)
            .latency +
        d.non_tf;
    const Duration ideal = pipeline::IdealLatency(d.compute_with_cache) + d.non_tf;
    const double steps = config.denoise_steps;
    bench::PrintRow(
        {Fmt(m, 2), Fmt(naive.seconds() * steps, 2),
         Fmt(bubble_free.seconds() * steps, 2), Fmt(ideal.seconds() * steps, 2),
         "+" + Fmt(100.0 * (naive / ideal - 1.0), 0) + "%",
         "+" + Fmt(100.0 * (bubble_free / ideal - 1.0), 0) + "%"});
  }
}

void QueueingTimes() {
  bench::PrintHeader(
      "Figure 4-Middle: queueing delay, static vs continuous batching "
      "(Flux, H800)",
      "static batching roughly doubles average queueing delay, and the gap "
      "widens with traffic");

  bench::PrintRow({"RPS", "static(s)", "continuous(s)", "ratio"});
  for (const double rps : {0.15, 0.2, 0.25, 0.3}) {
    trace::WorkloadSpec spec;
    spec.trace = trace::TraceKind::kProduction;
    spec.rps = rps;
    spec.num_requests = 150;
    const auto requests = trace::GenerateWorkload(spec);

    cluster::ClusterConfig config;
    config.num_workers = 1;
    config.engine = serving::EngineConfig::ForSystem(
        serving::SystemKind::kFlashPS, model::ModelKind::kFlux);
    config.policy = sched::RoutePolicy::kRoundRobin;

    config.engine.batching = serving::BatchPolicy::kStatic;
    const auto stat = cluster::RunClusterSim(config, requests);
    config.engine.batching = serving::BatchPolicy::kContinuousDisaggregated;
    const auto cont = cluster::RunClusterSim(config, requests);
    bench::PrintRow({Fmt(rps, 2), Fmt(stat.queueing_s.Mean(), 2),
                     Fmt(cont.queueing_s.Mean(), 2),
                     Fmt(stat.queueing_s.Mean() /
                             std::max(1e-9, cont.queueing_s.Mean()),
                         2) +
                         "x"});
  }
}

void LoadBalance() {
  bench::PrintHeader(
      "Figure 4-Right: naive vs mask-aware load balance (Flux, H800)",
      "request-level balancing inflates P95 latency by ~32%");

  trace::WorkloadSpec spec;
  spec.trace = trace::TraceKind::kProduction;
  spec.rps = 1.2;  // 0.3 per worker, ~80% of engine capacity.
  spec.num_requests = 400;
  const auto requests = trace::GenerateWorkload(spec);

  cluster::ClusterConfig config;
  config.num_workers = 4;
  config.engine = serving::EngineConfig::ForSystem(serving::SystemKind::kFlashPS,
                                                   model::ModelKind::kFlux);

  // "Uniformly assigns requests to workers" (paper) = round-robin.
  config.policy = sched::RoutePolicy::kRoundRobin;
  const auto naive = cluster::RunClusterSim(config, requests);
  config.policy = sched::RoutePolicy::kMaskAware;
  const auto aware = cluster::RunClusterSim(config, requests);

  bench::PrintRow({"policy", "P95(s)", "mean(s)"});
  bench::PrintRow({"uniform (naive)", Fmt(naive.total_latency_s.P95(), 2),
                   Fmt(naive.total_latency_s.Mean(), 2)});
  bench::PrintRow({"mask-aware", Fmt(aware.total_latency_s.P95(), 2),
                   Fmt(aware.total_latency_s.Mean(), 2)});
  std::printf("P95 inflation of naive balancing: +%.0f%%\n",
              100.0 * (naive.total_latency_s.P95() /
                           aware.total_latency_s.P95() -
                       1.0));
}

}  // namespace
}  // namespace flashps

int main() {
  flashps::LoadingMethods();
  flashps::QueueingTimes();
  flashps::LoadBalance();
  return 0;
}
