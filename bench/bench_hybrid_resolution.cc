// Hybrid-resolution serving: patch-granular step batching vs the two
// baselines, on the REAL model layer (no virtual time).
//
// A mixed-resolution batch (requests at three latent grids sharing one
// weight family) advances through denoising under three regimes:
//  - patch-granular: one RunStepBatchGathered panel per step holds exactly
//    every member's masked tokens, across requests AND resolutions;
//  - serialize-per-resolution: every member steps alone through the solo
//    sparse path (what a server without patch batching does);
//  - pad-to-largest: cost emulation of the naive mixed-resolution batcher
//    that pads each member's latent to the batch's largest grid — every
//    member is charged a solo sparse step at the LARGEST grid with its own
//    mask ratio (its patch count inflated to the largest image).
//
// Two gates make the numbers trustworthy, each failing the run (non-zero
// exit):
//  - bitwise: the gathered panel must land every latent on the same bits
//    as solo stepping, for a mixed panel and for the degenerate
//    single-resolution mixture (the tentpole's correctness keystone);
//  - speedup: patch-granular must beat pad-to-largest by >= 1.5x mean
//    step latency on the mixed batch.
//
// A virtual-time cluster leg (4 Flux workers, the Fig. 16 mixed-resolution
// trace) records SLO attainment under serving::HybridMode::kPatchGranular
// vs kPadToLargest. Everything lands in BENCH_hybrid.json.
//
// Flags: --smoke shrinks the model and the timing windows so the binary
// finishes in ~seconds (the scripts/check.sh --bench-smoke leg); gates
// still run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/simulation.h"
#include "src/common/flag_parser.h"
#include "src/model/diffusion_model.h"

namespace flashps {
namespace {

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.bytes()) == 0;
}

// Median per-call milliseconds; each timed sample spans >= `min_window_ms`.
double MedianCallMs(const std::function<void()>& fn, double min_window_ms,
                    int samples) {
  using Clock = std::chrono::steady_clock;
  auto time_batch = [&](int iters) {
    const auto start = Clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const auto stop = Clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
  };
  int iters = 1;
  double ms = time_batch(1);
  while (ms < min_window_ms && iters < (1 << 20)) {
    iters *= 2;
    ms = time_batch(iters);
  }
  std::vector<double> per_call(static_cast<size_t>(samples));
  for (auto& sample : per_call) {
    sample = time_batch(iters) / iters;
  }
  std::sort(per_call.begin(), per_call.end());
  return per_call[per_call.size() / 2];
}

// One request in the mixed batch: its model (one per grid), pinned K/V
// record, mask, and a pristine initial latent the timing loops copy from.
struct Member {
  const model::DiffusionModel* model = nullptr;
  model::ActivationRecord cache;
  trace::Mask mask;
  Matrix initial_latent;
};

Member MakeMember(const model::DiffusionModel& m, double ratio, uint64_t seed) {
  Member member;
  member.model = &m;
  member.cache = m.Register(0, /*record_kv=*/true);
  Rng rng(seed);
  member.mask = trace::GenerateBlobMask(m.config().grid_h, m.config().grid_w,
                                        ratio, rng);
  const Matrix tmpl = m.EncodeTemplate(0);
  member.initial_latent = m.InitEditLatent(tmpl, member.mask, seed);
  return member;
}

model::DiffusionModel::RunOptions SoloOptions(const Member& member) {
  model::DiffusionModel::RunOptions opts;
  opts.mode = model::ComputeMode::kMaskAwareY;
  opts.cache = &member.cache;
  opts.mask = &member.mask;
  opts.sparse_compute = true;
  return opts;
}

// Advances copies of every member through `steps` via the gathered panel.
void RunPanel(const std::vector<Member>& members, int steps) {
  std::vector<Matrix> latents;
  latents.reserve(members.size());
  for (const Member& m : members) {
    latents.push_back(m.initial_latent);
  }
  for (int step = 0; step < steps; ++step) {
    std::vector<model::DiffusionModel::StepBatchMember> panel;
    panel.reserve(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      panel.push_back({members[i].model, &latents[i], &members[i].mask,
                       &members[i].cache, step});
    }
    model::DiffusionModel::RunStepBatchGathered(panel);
  }
}

// Advances copies of every member through `steps`, one member at a time.
void RunSerialized(const std::vector<Member>& members, int steps) {
  for (const Member& m : members) {
    Matrix latent = m.initial_latent;
    latent = m.model->RunStepRange(std::move(latent), SoloOptions(m), 0, steps);
  }
}

// Returns false when any panel latent drifts from its solo twin.
bool BitwiseGate(const std::vector<Member>& members, int steps,
                 const char* label) {
  std::vector<Matrix> panel_latents;
  std::vector<Matrix> solo_latents;
  for (const Member& m : members) {
    panel_latents.push_back(m.initial_latent);
    solo_latents.push_back(m.initial_latent);
  }
  for (int step = 0; step < steps; ++step) {
    std::vector<model::DiffusionModel::StepBatchMember> panel;
    for (size_t i = 0; i < members.size(); ++i) {
      panel.push_back({members[i].model, &panel_latents[i], &members[i].mask,
                       &members[i].cache, step});
    }
    model::DiffusionModel::RunStepBatchGathered(panel);
    for (size_t i = 0; i < members.size(); ++i) {
      solo_latents[i] = members[i].model->RunStepRange(
          std::move(solo_latents[i]), SoloOptions(members[i]), step, step + 1);
      if (!BitwiseEqual(panel_latents[i], solo_latents[i])) {
        std::fprintf(stderr,
                     "BITWISE DRIFT (%s): member %zu step %d diverged from "
                     "solo stepping\n",
                     label, i, step);
        return false;
      }
    }
  }
  return true;
}

struct ClusterLeg {
  double p95_s = 0.0;
  double mean_s = 0.0;
  double attainment = 1.0;
};

// Virtual-time SLO leg: the Fig. 16 mixed-resolution trace on 4 Flux
// workers under the given cost model.
ClusterLeg RunClusterLeg(serving::HybridMode mode,
                         const std::vector<trace::Request>& requests,
                         double slo_budget_s) {
  cluster::ClusterConfig config;
  config.num_workers = 4;
  config.engine = serving::EngineConfig::ForSystem(serving::SystemKind::kFlashPS,
                                                   model::ModelKind::kFlux);
  config.engine.hybrid = mode;
  config.policy = sched::RoutePolicy::kMaskAware;
  const auto result = cluster::RunClusterSim(config, requests);
  ClusterLeg leg;
  leg.p95_s = result.total_latency_s.P95();
  leg.mean_s = result.total_latency_s.Mean();
  if (!result.completed.empty()) {
    size_t met = 0;
    for (const auto& done : result.completed) {
      if (done.total().seconds() <= slo_budget_s) {
        ++met;
      }
    }
    leg.attainment =
        static_cast<double>(met) / static_cast<double>(result.completed.size());
  }
  return leg;
}

}  // namespace
}  // namespace flashps

int main(int argc, char** argv) {
  using namespace flashps;

  flags::FlagParser flags(argc, argv);
  const bool smoke = flags.Has(
      "smoke", "tiny model and timing windows (seconds, for check.sh)");
  const bool help = flags.Has("help", "print this help");
  if (help || !flags.ok()) {
    const std::string usage = flags.HelpText("bench_hybrid_resolution");
    std::fprintf(help ? stdout : stderr, "%s", usage.c_str());
    if (!flags.ok()) {
      for (const auto& e : flags.errors()) {
        std::fprintf(stderr, "error: %s\n", e.c_str());
      }
      return 2;
    }
    return 0;
  }

  bench::PrintHeader(
      "Hybrid-resolution serving: patch-granular step batching",
      "one gathered panel per step across requests and resolutions beats "
      "pad-to-largest >= 1.5x mean step latency, bitwise-identically");

  // The mixed batch: three grids around a native one, all sharing the
  // native model's weight family. hidden is sized so the token-wise GEMMs
  // (what patch batching accelerates) dominate the step.
  model::NumericsConfig base = model::NumericsConfig::ForTests();
  base.hidden = smoke ? 64 : 256;
  base.num_blocks = 2;
  base.num_steps = smoke ? 2 : 4;
  model::NumericsConfig small = base;
  small.grid_h = 8;
  small.grid_w = 8;
  model::NumericsConfig large = base;
  large.grid_h = 16;
  large.grid_w = 16;
  const model::DiffusionModel m_native(base);
  const model::DiffusionModel m_small(small);
  const model::DiffusionModel m_large(large);

  std::vector<Member> mixed;
  mixed.push_back(MakeMember(m_small, 0.25, 101));
  mixed.push_back(MakeMember(m_native, 0.20, 102));
  mixed.push_back(MakeMember(m_native, 0.15, 103));
  mixed.push_back(MakeMember(m_small, 0.30, 104));
  mixed.push_back(MakeMember(m_large, 0.10, 105));
  mixed.push_back(MakeMember(m_native, 0.25, 106));

  // Gate 1: bitwise identity, mixed panel and degenerate single-resolution
  // mixture.
  bool bitwise_mixed_ok = BitwiseGate(mixed, base.num_steps, "mixed");
  std::vector<Member> degenerate;
  degenerate.push_back(MakeMember(m_native, 0.20, 201));
  degenerate.push_back(MakeMember(m_native, 0.35, 202));
  degenerate.push_back(MakeMember(m_native, 0.10, 203));
  bool bitwise_degenerate_ok =
      BitwiseGate(degenerate, base.num_steps, "degenerate");
  std::printf("bitwise gates: mixed %s, degenerate single-resolution %s\n",
              bitwise_mixed_ok ? "OK" : "FAIL",
              bitwise_degenerate_ok ? "OK" : "FAIL");

  // Pad-to-largest emulation members: each mixed member re-drawn at the
  // largest grid with its own mask ratio (same masked FRACTION, inflated
  // to the largest image — the cost a padded batch pays per member).
  std::vector<Member> padded;
  for (size_t i = 0; i < mixed.size(); ++i) {
    padded.push_back(
        MakeMember(m_large, mixed[i].mask.ratio(), 300 + static_cast<int>(i)));
  }

  const double window_ms = smoke ? 5.0 : 40.0;
  const int samples = smoke ? 3 : 5;
  const int steps = base.num_steps;
  const double batch = static_cast<double>(mixed.size());
  // Per-step latency of the WHOLE batch under each regime.
  const double patch_ms =
      MedianCallMs([&] { RunPanel(mixed, steps); }, window_ms, samples) / steps;
  const double serialize_ms =
      MedianCallMs([&] { RunSerialized(mixed, steps); }, window_ms, samples) /
      steps;
  const double pad_ms =
      MedianCallMs([&] { RunSerialized(padded, steps); }, window_ms, samples) /
      steps;

  bench::PrintRow({"regime", "step(ms)", "per-req(ms)", "vs patch"});
  bench::PrintRow({"patch-granular", bench::Fmt(patch_ms, 3),
                   bench::Fmt(patch_ms / batch, 3), "1.00x"});
  bench::PrintRow({"serialize", bench::Fmt(serialize_ms, 3),
                   bench::Fmt(serialize_ms / batch, 3),
                   bench::Fmt(serialize_ms / patch_ms, 2) + "x"});
  bench::PrintRow({"pad-to-largest", bench::Fmt(pad_ms, 3),
                   bench::Fmt(pad_ms / batch, 3),
                   bench::Fmt(pad_ms / patch_ms, 2) + "x"});

  // Gate 2: the tentpole's headline number.
  const double speedup_vs_pad = pad_ms / patch_ms;
  const bool speedup_ok = speedup_vs_pad >= 1.5;
  std::printf("patch-granular vs pad-to-largest: %.2fx mean step latency "
              "(gate: >= 1.5x) %s\n",
              speedup_vs_pad, speedup_ok ? "OK" : "FAIL");

  // Virtual-time SLO leg (skipped numbers stay meaningful in smoke mode:
  // the sim is virtual time, so --smoke only trims the request count).
  // Near the pad-mode knee: patch-granular still clears the budget while
  // pad-to-largest's serialization behind oversize members builds backlog.
  trace::WorkloadSpec spec;
  spec.trace = trace::TraceKind::kProduction;
  spec.rps = 1.2;
  spec.num_requests = smoke ? 64 : 320;
  spec.resolutions = {{48, 48, 0.4}, {64, 64, 0.35}, {96, 96, 0.25}};
  const auto requests = trace::GenerateWorkload(spec);
  const double slo_budget_s = 12.0;
  const ClusterLeg patch_leg =
      RunClusterLeg(serving::HybridMode::kPatchGranular, requests, slo_budget_s);
  const ClusterLeg pad_leg =
      RunClusterLeg(serving::HybridMode::kPadToLargest, requests, slo_budget_s);
  std::printf("cluster SLO leg (4 Flux workers, mixed 48/64/96 trace, "
              "%.0fs budget): attainment %.3f (patch) vs %.3f (pad), "
              "P95 %.2fs vs %.2fs\n",
              slo_budget_s, patch_leg.attainment, pad_leg.attainment,
              patch_leg.p95_s, pad_leg.p95_s);

  std::ostringstream json;
  json.setf(std::ios::fixed);
  json.precision(6);
  json << "{\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  json << "  \"batch\": {\"members\": " << mixed.size()
       << ", \"grids\": [\"8x8\", \"12x12\", \"16x16\"], \"hidden\": "
       << base.hidden << ", \"blocks\": " << base.num_blocks << "},\n";
  json << "  \"step_latency_ms\": {\"patch_granular\": " << patch_ms
       << ", \"serialize_per_resolution\": " << serialize_ms
       << ", \"pad_to_largest\": " << pad_ms << "},\n";
  json << "  \"speedup_vs_pad_to_largest\": " << speedup_vs_pad << ",\n";
  json << "  \"speedup_vs_serialize\": " << serialize_ms / patch_ms << ",\n";
  json << "  \"speedup_gate_min\": 1.5,\n";
  json << "  \"bitwise_mixed_ok\": " << (bitwise_mixed_ok ? "true" : "false")
       << ",\n";
  json << "  \"bitwise_degenerate_ok\": "
       << (bitwise_degenerate_ok ? "true" : "false") << ",\n";
  json << "  \"cluster_slo\": {\"budget_s\": " << slo_budget_s
       << ", \"requests\": " << spec.num_requests
       << ", \"mixture\": \"48x48:0.4,64x64:0.35,96x96:0.25\","
       << " \"patch_granular\": {\"attainment\": " << patch_leg.attainment
       << ", \"p95_s\": " << patch_leg.p95_s
       << ", \"mean_s\": " << patch_leg.mean_s << "},"
       << " \"pad_to_largest\": {\"attainment\": " << pad_leg.attainment
       << ", \"p95_s\": " << pad_leg.p95_s << ", \"mean_s\": " << pad_leg.mean_s
       << "}},\n";
  const bool gates_ok = bitwise_mixed_ok && bitwise_degenerate_ok && speedup_ok;
  json << "  \"gates_ok\": " << (gates_ok ? "true" : "false") << "\n";
  json << "}\n";
  std::ofstream out("BENCH_hybrid.json");
  out << json.str();
  std::printf("wrote BENCH_hybrid.json\n");

  return gates_ok ? 0 : 1;
}
