#include "src/gateway/worker_handle.h"

namespace flashps::gateway {

sched::WorkerStatus WorkerHandle::Status() const {
  const runtime::BatchSnapshot snap = server_.Snapshot();
  sched::WorkerStatus status;
  status.worker_id = worker_id_;
  status.running_ratios = snap.running_ratios;
  status.running_remaining_steps = snap.running_remaining;
  status.waiting_ratios = snap.waiting_ratios;
  status.remaining_steps = snap.remaining_steps;
  status.max_batch = snap.max_batch;
  status.has_slack = snap.has_slack();
  return status;
}

}  // namespace flashps::gateway
