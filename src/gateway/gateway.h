// Real-concurrency multi-worker serving gateway (the paper's §5 cluster
// frontend, on real threads instead of the virtual clock).
//
// The gateway owns N runtime::OnlineServer workers, publishes a live
// sched::WorkerStatus per worker from their batch snapshots, and dispatches
// every incoming request through a pluggable sched::Router — all five
// RoutePolicy values (round-robin, first-fit, request-count, token-count,
// mask-aware Algorithm 2) run unchanged against wall clocks. On top of
// dispatch it layers the production-serving pieces the paper assumes:
//
//  - open-loop arrivals: SubmitAt() schedules a request at an offset from
//    the arrival epoch, and ReplayTrace() drives a trace::Workload
//    (Poisson/bursty arrival processes) through it;
//  - per-request deadlines with SLO admission control: a default SLO is
//    stamped on deadline-less requests, and requests whose best-case drain
//    estimate (sched::LatencyModel, wall-clock calibrated) misses their
//    budget are rejected with a distinct status, never silently dropped;
//  - graceful Drain()/Stop() and a lock-protected MetricsRegistry
//    (admission counters, queueing/denoise/post/e2e latency percentiles,
//    SLO attainment, per-worker utilization) exported as JSON.
#ifndef FLASHPS_SRC_GATEWAY_GATEWAY_H_
#define FLASHPS_SRC_GATEWAY_GATEWAY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/concurrent_queue.h"
#include "src/gateway/admission.h"
#include "src/gateway/metrics.h"
#include "src/gateway/worker_handle.h"
#include "src/runtime/online_server.h"
#include "src/sched/scheduler.h"
#include "src/trace/workload.h"

namespace flashps::gateway {

struct GatewayOptions {
  int num_workers = 2;
  // Per-worker server options (every worker gets the same configuration,
  // and with it an identical seeded model — any worker can serve any
  // template).
  runtime::OnlineServer::Options worker;
  sched::RoutePolicy policy = sched::RoutePolicy::kMaskAware;
  // Timing config backing the regression latency model used by mask-aware
  // routing and admission control.
  model::TimingConfig timing = model::TimingConfig::Get(model::ModelKind::kSdxl);
  // Default SLO stamped on requests that carry no deadline; Zero() disables.
  Duration slo = Duration::Zero();
  // When false, deadlines are still stamped and tracked (SLO attainment in
  // the metrics) but no request is rejected up front.
  bool admission_control = true;
  // Cluster-wide waiting-depth cap for deadline-less requests.
  size_t max_queue_depth = std::numeric_limits<size_t>::max();
  // Extra safety multiplier on the (already wall-clock) profiled admission
  // estimates. <= 0 means 1.0. The routing/admission latency model is fitted
  // at startup on timed denoise steps of a real worker, so its estimates are
  // native wall-clock — no model-second conversion is needed.
  double wall_seconds_per_model_second = 0.0;
};

enum class SubmitStatus {
  kAccepted,
  kRejectedSlo,       // Admission control: SLO infeasible.
  kShedOverload,      // Admission control: queue depth cap.
  kRejectedShutdown,  // Gateway stopping/stopped.
};

std::string ToString(SubmitStatus status);

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kRejectedShutdown;
  int worker_id = -1;
  // Best-case wall-clock drain estimate from admission (seconds).
  double estimated_wall_s = 0.0;
  // Valid iff status == kAccepted.
  std::future<runtime::OnlineResponse> future;

  bool accepted() const { return status == SubmitStatus::kAccepted; }
};

class Gateway {
 public:
  explicit Gateway(GatewayOptions options);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // Synchronous dispatch: admission → routing → worker submission. Never
  // throws on shutdown; the outcome is always reported in the result status
  // (and counted in the metrics).
  SubmitResult Submit(runtime::OnlineRequest request);

  // Open-loop arrival: schedules Submit() at `offset` after the arrival
  // epoch (set at construction; ResetArrivalEpoch() restarts it). Offsets
  // already in the past dispatch immediately. Results are observable via
  // the metrics registry.
  void SubmitAt(runtime::OnlineRequest request, Duration offset);

  // Replays a generated workload open-loop: each trace request's arrival
  // time becomes a SubmitAt() offset, its mask ratio a blob mask drawn with
  // `mask_seed`. Resets the arrival epoch to now.
  void ReplayTrace(const std::vector<trace::Request>& requests,
                   uint64_t mask_seed);

  void ResetArrivalEpoch();

  // Blocks until every scheduled arrival has dispatched and every accepted
  // request has completed. The gateway keeps accepting afterwards.
  void Drain();

  // Drain hook for network frontends: stops admitting new requests (every
  // later Submit() reports kRejectedShutdown) while in-flight work keeps
  // running and completes. Follow with Drain() + Stop() for a graceful
  // shutdown sequence. Idempotent; Stop() implies it.
  void StopAccepting();
  bool accepting() const { return accepting_.load(); }

  // Graceful shutdown: stops accepting (pending scheduled arrivals are
  // counted rejected_shutdown), drains accepted work, joins all gateway
  // threads and workers. Idempotent.
  void Stop();

  std::vector<sched::WorkerStatus> WorkerStatuses() const;
  MetricsSnapshot Metrics() const { return metrics_.Snapshot(); }
  // Registry JSON, plus an "activation_source" object when the fleet is
  // configured with a shared source (local or remote cache tier) — so one
  // daemon metrics query reports serving and cache-tier counters together.
  std::string MetricsJson() const;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const GatewayOptions& options() const { return options_; }
  // The safety multiplier admission applies to its profiled estimates
  // (for tests/benches).
  double wall_scale() const { return admission_.wall_scale(); }
  // The wall-clock-profiled regression model behind routing and admission.
  const sched::LatencyModel& latency_model() const { return latency_model_; }
  // Mean profiled pre+post (non-denoise) cost of one request, seconds.
  double per_request_overhead_s() const { return per_request_overhead_s_; }

 private:
  struct Pending {
    int worker_id = -1;
    std::future<runtime::OnlineResponse> worker_future;
    std::promise<runtime::OnlineResponse> caller_promise;
  };
  struct Timed {
    std::chrono::steady_clock::time_point due;
    uint64_t seq = 0;
    runtime::OnlineRequest request;
    bool operator>(const Timed& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  void CollectorLoop();
  void TimerLoop();
  // Queue-ahead: hand the request's template to the shared activation
  // source as a prefetch hint, so a slow (remote) acquisition overlaps the
  // queueing delay ahead of it instead of stalling admission later.
  void HintPrefetch(const runtime::OnlineRequest& request);
  // Times real denoise steps across the mask-ratio range on worker 0's model
  // and fits the routing/admission regression on the wall-clock samples (the
  // paper's profiling methodology, run against this host's engine). Also
  // times pre/post-processing once to fill per_request_overhead_s_.
  void ProfileHost();

  GatewayOptions options_;
  std::vector<std::unique_ptr<WorkerHandle>> workers_;
  sched::LatencyModel latency_model_;
  // Mean profiled pre+post (non-denoise) cost of one request, seconds.
  double per_request_overhead_s_ = 0.0;
  AdmissionController admission_;
  MetricsRegistry metrics_;

  // Routers keep per-policy state (round-robin cursor, assignment tallies);
  // dispatch serializes on this mutex.
  std::mutex route_mu_;
  std::unique_ptr<sched::Router> router_;

  // Completion harvesting: accepted requests are handed to a collector
  // thread that waits on the worker future, records metrics, and fulfils
  // the caller-visible future.
  ConcurrentQueue<Pending> completions_;
  std::thread collector_;
  std::atomic<uint64_t> inflight_{0};

  // Open-loop arrival timer. timer_pending_ counts scheduled arrivals from
  // SubmitAt() until their dispatch (or shutdown flush) finishes, so Drain()
  // cannot slip between a pop and the Submit() it feeds.
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<Timed, std::vector<Timed>, std::greater<Timed>> timed_;
  std::chrono::steady_clock::time_point epoch_;
  uint64_t timer_seq_ = 0;
  bool timer_stop_ = false;
  std::atomic<uint64_t> timer_pending_{0};
  std::thread timer_;

  // Submissions run under a shared lock; Stop() flips accepting_ under the
  // exclusive lock, so no Submit() is mid-dispatch once the flip is visible
  // and the inflight/completions accounting below it is race-free.
  std::shared_mutex submit_gate_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mu_;
};

// Converts a generated trace request into a runtime request: the mask ratio
// becomes a connected blob mask on the worker's latent grid.
runtime::OnlineRequest MakeOnlineRequest(const trace::Request& request,
                                         const model::NumericsConfig& numerics,
                                         Rng& rng);

}  // namespace flashps::gateway

#endif  // FLASHPS_SRC_GATEWAY_GATEWAY_H_
