// One gateway-owned worker: a real-concurrency runtime::OnlineServer plus
// the glue that publishes its live load as a sched::WorkerStatus — the same
// snapshot type the virtual-time cluster simulation feeds the routers, so
// every RoutePolicy runs unchanged against wall-clock workers.
#ifndef FLASHPS_SRC_GATEWAY_WORKER_HANDLE_H_
#define FLASHPS_SRC_GATEWAY_WORKER_HANDLE_H_

#include <future>

#include "src/runtime/online_server.h"
#include "src/sched/scheduler.h"

namespace flashps::gateway {

class WorkerHandle {
 public:
  WorkerHandle(int worker_id, runtime::OnlineServer::Options options)
      : worker_id_(worker_id), server_(std::move(options)) {}

  int worker_id() const { return worker_id_; }
  runtime::OnlineServer& server() { return server_; }
  const runtime::OnlineServer& server() const { return server_; }

  std::future<runtime::OnlineResponse> Submit(runtime::OnlineRequest request) {
    return server_.Submit(std::move(request));
  }

  // Live snapshot in the router's vocabulary.
  sched::WorkerStatus Status() const;

  void Stop() { server_.Stop(); }

 private:
  int worker_id_;
  runtime::OnlineServer server_;
};

}  // namespace flashps::gateway

#endif  // FLASHPS_SRC_GATEWAY_WORKER_HANDLE_H_
