#include "src/gateway/metrics.h"

#include <sstream>

namespace flashps::gateway {

namespace {

void AppendLatency(std::ostringstream& out, const std::string& name,
                   const LatencySummary& s) {
  out << "\"" << name << "\":{\"count\":" << s.count << ",\"mean_ms\":"
      << s.mean_ms << ",\"p50_ms\":" << s.p50_ms << ",\"p95_ms\":" << s.p95_ms
      << ",\"p99_ms\":" << s.p99_ms << ",\"max_ms\":" << s.max_ms << "}";
}

template <typename T>
void AppendArray(std::ostringstream& out, const std::string& name,
                 const std::vector<T>& values) {
  out << "\"" << name << "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << values[i];
  }
  out << "]";
}

}  // namespace

double MetricsSnapshot::SloAttainment() const {
  const uint64_t with_deadline = slo_met + slo_missed;
  if (with_deadline == 0) {
    return 1.0;
  }
  return static_cast<double>(slo_met) / static_cast<double>(with_deadline);
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{";
  out << "\"submitted\":" << submitted << ",\"accepted\":" << accepted
      << ",\"rejected_slo\":" << rejected_slo
      << ",\"shed_overload\":" << shed_overload
      << ",\"rejected_shutdown\":" << rejected_shutdown
      << ",\"completed\":" << completed << ",\"slo_met\":" << slo_met
      << ",\"slo_missed\":" << slo_missed
      << ",\"prefetch_hints\":" << prefetch_hints
      << ",\"slo_attainment\":" << SloAttainment() << ",";
  AppendLatency(out, "queueing", queueing);
  out << ",";
  AppendLatency(out, "denoise", denoise);
  out << ",";
  AppendLatency(out, "post", post);
  out << ",";
  AppendLatency(out, "end_to_end", end_to_end);
  out << ",";
  AppendArray(out, "worker_dispatched", worker_dispatched);
  out << ",";
  AppendArray(out, "worker_completed", worker_completed);
  out << ",";
  AppendArray(out, "worker_busy_ms", worker_busy_ms);
  out << "}";
  return out.str();
}

MetricsRegistry::MetricsRegistry(int num_workers) {
  counters_.worker_dispatched.assign(num_workers, 0);
  counters_.worker_completed.assign(num_workers, 0);
  counters_.worker_busy_ms.assign(num_workers, 0.0);
}

void MetricsRegistry::RecordSubmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.submitted;
}

void MetricsRegistry::RecordAccepted(int worker_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.accepted;
  ++counters_.worker_dispatched.at(worker_id);
}

void MetricsRegistry::RecordRejectedSlo() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rejected_slo;
}

void MetricsRegistry::RecordShedOverload() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.shed_overload;
}

void MetricsRegistry::RecordRejectedShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rejected_shutdown;
}

void MetricsRegistry::RecordPrefetchHint() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.prefetch_hints;
}

void MetricsRegistry::RecordCompleted(int worker_id, double queueing_ms,
                                      double denoise_ms, double post_ms,
                                      double end_to_end_ms, bool had_deadline,
                                      bool met_deadline) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.completed;
  ++counters_.worker_completed.at(worker_id);
  counters_.worker_busy_ms.at(worker_id) += denoise_ms;
  if (had_deadline) {
    if (met_deadline) {
      ++counters_.slo_met;
    } else {
      ++counters_.slo_missed;
    }
  }
  queueing_ms_.Add(queueing_ms);
  denoise_ms_.Add(denoise_ms);
  post_ms_.Add(post_ms);
  end_to_end_ms_.Add(end_to_end_ms);
}

LatencySummary MetricsRegistry::Summarize(const StatAccumulator& acc) {
  LatencySummary s;
  s.count = acc.count();
  if (acc.empty()) {
    return s;
  }
  s.mean_ms = acc.Mean();
  s.p50_ms = acc.P50();
  s.p95_ms = acc.P95();
  s.p99_ms = acc.P99();
  s.max_ms = acc.Max();
  return s;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap = counters_;
  snap.queueing = Summarize(queueing_ms_);
  snap.denoise = Summarize(denoise_ms_);
  snap.post = Summarize(post_ms_);
  snap.end_to_end = Summarize(end_to_end_ms_);
  return snap;
}

}  // namespace flashps::gateway
