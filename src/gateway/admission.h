// SLO admission control for the serving gateway.
//
// Before a request is routed, the gateway asks the admission controller
// whether any worker can plausibly finish it inside its deadline. The
// estimate reuses the scheduler's regression latency model (the same
// Algorithm 1/2 machinery that drives mask-aware routing): the best-case
// drain time over all workers. With a wall-clock-profiled model (the
// gateway's default) the estimate is native wall seconds and the scale is a
// safety multiplier; with the offline device-model fit the scale converts
// model-seconds to this host's real-math denoiser speed. Requests that
// cannot meet their SLO are rejected up front with a
// distinct status — shedding load early instead of queueing doomed work, as
// production diffusion frontends (InstGenIE-style) do. A queue-depth cap
// provides orthogonal overload shedding for requests without deadlines.
#ifndef FLASHPS_SRC_GATEWAY_ADMISSION_H_
#define FLASHPS_SRC_GATEWAY_ADMISSION_H_

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "src/sched/latency_model.h"
#include "src/sched/scheduler.h"
#include "src/trace/workload.h"

namespace flashps::gateway {

class AdmissionController {
 public:
  struct Options {
    // Multiplier applied to the latency model's drain estimate. 1.0 for a
    // wall-clock-profiled model; for the offline device-model fit it is the
    // wall-seconds-per-model-second conversion.
    double wall_seconds_per_model_second = 1.0;
    // Total accepted-but-not-yet-denoising requests (across all workers)
    // beyond which deadline-less requests are shed.
    size_t max_queue_depth = std::numeric_limits<size_t>::max();
  };

  enum class Decision {
    kAdmit,
    kRejectSlo,      // No worker can drain the request inside its budget.
    kShedOverload,   // Cluster-wide waiting depth exceeds the cap.
  };

  struct Verdict {
    Decision decision = Decision::kAdmit;
    // Best-case wall-clock drain estimate (seconds) over all workers.
    double estimated_wall_s = 0.0;
  };

  AdmissionController(sched::LatencyModel latency_model, Options options);

  // `budget_s`: wall-clock seconds until the request's deadline (nullopt
  // when the request carries no deadline; only the depth cap applies then).
  Verdict Evaluate(const trace::Request& request,
                   const std::vector<sched::WorkerStatus>& statuses,
                   std::optional<double> budget_s) const;

  void set_wall_scale(double scale) { options_.wall_seconds_per_model_second = scale; }
  double wall_scale() const { return options_.wall_seconds_per_model_second; }

 private:
  sched::LatencyModel latency_model_;
  Options options_;
};

}  // namespace flashps::gateway

#endif  // FLASHPS_SRC_GATEWAY_ADMISSION_H_
