#include "src/gateway/gateway.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/cache/activation_store.h"
#include "src/common/parallel_for.h"

namespace flashps::gateway {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

}  // namespace

std::string ToString(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kRejectedSlo:
      return "rejected-slo";
    case SubmitStatus::kShedOverload:
      return "shed-overload";
    case SubmitStatus::kRejectedShutdown:
      return "rejected-shutdown";
  }
  return "?";
}

runtime::OnlineRequest MakeOnlineRequest(const trace::Request& request,
                                         const model::NumericsConfig& numerics,
                                         Rng& rng) {
  runtime::OnlineRequest out;
  out.template_id = request.template_id;
  // The request's own grid when the trace carries one (hybrid-resolution
  // mixtures), else the worker's native grid — byte-identical masks for
  // resolution-less traces.
  const int grid_h = request.has_resolution() ? request.grid_h : numerics.grid_h;
  const int grid_w = request.has_resolution() ? request.grid_w : numerics.grid_w;
  out.mask = trace::GenerateBlobMask(grid_h, grid_w, request.mask_ratio, rng);
  out.prompt_seed = request.id + 1;
  return out;
}

Gateway::Gateway(GatewayOptions options)
    : options_(std::move(options)),
      admission_(sched::LatencyModel(), AdmissionController::Options{}),
      metrics_(std::max(1, options_.num_workers)),
      epoch_(std::chrono::steady_clock::now()) {
  // The analytic FLOP model must price steps the way the workers execute
  // them: when the fleet serves the gathered sparse path, the regression's
  // x-axis (and the router's per-block costs) use the gathered formulas.
  options_.timing.sparse_compute =
      options_.worker.mask_aware && options_.worker.sparse_compute;
  workers_.reserve(std::max(1, options_.num_workers));
  for (int i = 0; i < std::max(1, options_.num_workers); ++i) {
    workers_.push_back(std::make_unique<WorkerHandle>(i, options_.worker));
  }
  // Fit the routing/admission regression on timed real denoise steps, so
  // routing costs and admission budgets have this host's cost shape (not the
  // GPU device-model constants, whose fixed/variable split is different).
  ProfileHost();
  admission_ = AdmissionController(
      latency_model_,
      AdmissionController::Options{
          .wall_seconds_per_model_second =
              options_.wall_seconds_per_model_second > 0.0
                  ? options_.wall_seconds_per_model_second
                  : 1.0,
          .max_queue_depth = options_.max_queue_depth});
  if (options_.policy == sched::RoutePolicy::kMaskAware) {
    // Algorithm 2 on the profiled model (not the offline device-model fit),
    // with the serialized-batch cost reading that matches OnlineServer's
    // step-level batching on one denoise thread.
    router_ = std::make_unique<sched::MaskAwareRouter>(
        latency_model_, /*serialized_batches=*/true, per_request_overhead_s_);
  } else {
    router_ = sched::MakeRouter(options_.policy, options_.timing,
                                options_.worker.mask_aware
                                    ? model::ComputeMode::kMaskAwareY
                                    : model::ComputeMode::kFull);
  }
  collector_ = std::thread([this] { CollectorLoop(); });
  timer_ = std::thread([this] { TimerLoop(); });
}

Gateway::~Gateway() { Stop(); }

void Gateway::ProfileHost() {
  // The paper fits its regressions on profiled (FLOPs, latency) samples of
  // the real system; do the same here. One single-request denoise step per
  // mask ratio, warm-started, timed over two steps. x is the Table 1
  // whole-step FLOPs under the worker's compute mode; the per-member math
  // serializes on the denoise thread, so batches are linear in these
  // per-request samples by construction. Profiling runs under the workers'
  // compute-thread budget so the fitted model prices the kernels exactly as
  // the denoise threads will execute them.
  ComputeThreadsScope compute_scope(options_.worker.compute_threads);
  const model::DiffusionModel& m = workers_.front()->server().model();
  const model::ComputeMode mode = options_.worker.mask_aware
                                      ? model::ComputeMode::kMaskAwareY
                                      : model::ComputeMode::kFull;
  cache::ActivationStore store;
  Rng rng(0x9A7E);
  std::vector<double> tflops;
  std::vector<double> seconds;
  double overhead_s = 0.0;
  int overhead_samples = 0;
  const int total_steps = std::max(1, options_.worker.numerics.num_steps);
  const int warm = total_steps > 1 ? 1 : 0;
  const int timed = std::max(1, std::min(2, total_steps - warm));
  for (const double target : {0.05, 0.15, 0.3, 0.5, 0.7, 0.9}) {
    auto mask = trace::GenerateBlobMask(options_.worker.numerics.grid_h,
                                        options_.worker.numerics.grid_w,
                                        target, rng);
    // Pre-processing, timed: the same template-encode + latent-init the
    // worker's CPU lanes run per request.
    const auto pre0 = std::chrono::steady_clock::now();
    const Matrix tmpl = m.EncodeTemplate(0);
    Matrix latent = m.InitEditLatent(tmpl, mask, /*prompt_seed=*/1);
    const auto pre1 = std::chrono::steady_clock::now();
    model::DiffusionModel::RunOptions opts;
    opts.mode = mode;
    if (options_.worker.mask_aware) {
      opts.cache = &store.GetOrRegister(
          m, 0, /*record_kv=*/options_.worker.sparse_compute);
      opts.mask = &mask;
      opts.sparse_compute = options_.worker.sparse_compute;
    }
    latent = m.RunStepRange(std::move(latent), opts, 0, warm);
    const auto t0 = std::chrono::steady_clock::now();
    latent = m.RunStepRange(std::move(latent), opts, warm, warm + timed);
    const auto t1 = std::chrono::steady_clock::now();
    // Post-processing, timed: the per-request decode.
    const Matrix image = m.DecodeLatent(latent);
    const auto t2 = std::chrono::steady_clock::now();
    (void)image;
    overhead_s += std::chrono::duration<double>(pre1 - pre0).count() +
                  std::chrono::duration<double>(t2 - t1).count();
    ++overhead_samples;

    const std::vector<double> ratios{mask.ratio()};
    const auto workload =
        model::BuildStepWorkload(options_.timing, ratios, mode);
    double flops = workload.non_tf_flops;
    for (const auto& block : workload.blocks) {
      flops += options_.worker.mask_aware ? block.flops_with_cache
                                          : block.flops_without_cache;
    }
    tflops.push_back(flops / 1e12);
    seconds.push_back(std::chrono::duration<double>(t1 - t0).count() / timed);
  }
  latency_model_ = sched::LatencyModel::FitProfiled(options_.timing, mode,
                                                    tflops, seconds);
  per_request_overhead_s_ =
      overhead_samples > 0 ? overhead_s / overhead_samples : 0.0;

  // Hybrid-resolution serving: anchor TokenScale on the native grid and
  // fit one whole-step line per extra resolution from timed steps on that
  // resolution's model. The fit's x-axis is the masked-token fraction of
  // the PRIMARY grid, so routing costs across resolutions are directly
  // comparable. No extra resolutions → no fits; every estimate stays on
  // the primary regression, exactly as before.
  latency_model_.SetPrimaryGrid(options_.worker.numerics.grid_h,
                                options_.worker.numerics.grid_w);
  const double primary_tokens =
      static_cast<double>(options_.worker.numerics.tokens());
  for (const auto& [grid_h, grid_w] : options_.worker.extra_resolutions) {
    if (grid_h == options_.worker.numerics.grid_h &&
        grid_w == options_.worker.numerics.grid_w) {
      continue;
    }
    const model::DiffusionModel* rm =
        workers_.front()->server().ModelForGrid(grid_h, grid_w);
    if (rm == nullptr) {
      continue;  // Duplicate entry already profiled.
    }
    // Fresh store per resolution: the profiling records are keyed by bare
    // template id, and records of different shapes must not collide.
    cache::ActivationStore res_store;
    std::vector<double> xs;
    std::vector<double> ys;
    for (const double target : {0.1, 0.3, 0.6}) {
      auto mask = trace::GenerateBlobMask(grid_h, grid_w, target, rng);
      const Matrix tmpl = rm->EncodeTemplate(0);
      Matrix latent = rm->InitEditLatent(tmpl, mask, /*prompt_seed=*/1);
      model::DiffusionModel::RunOptions opts;
      opts.mode = mode;
      if (options_.worker.mask_aware) {
        opts.cache = &res_store.GetOrRegister(
            *rm, 0, /*record_kv=*/options_.worker.sparse_compute);
        opts.mask = &mask;
        opts.sparse_compute = options_.worker.sparse_compute;
      }
      latent = rm->RunStepRange(std::move(latent), opts, 0, warm);
      const auto t0 = std::chrono::steady_clock::now();
      latent = rm->RunStepRange(std::move(latent), opts, warm, warm + timed);
      const auto t1 = std::chrono::steady_clock::now();
      xs.push_back(mask.ratio() * static_cast<double>(grid_h * grid_w) /
                   primary_tokens);
      ys.push_back(std::chrono::duration<double>(t1 - t0).count() / timed);
    }
    latency_model_.AddResolutionFit(grid_h, grid_w, FitLinear(xs, ys));
  }
}

void Gateway::HintPrefetch(const runtime::OnlineRequest& request) {
  if (options_.worker.activation_source == nullptr ||
      !options_.worker.mask_aware) {
    return;
  }
  // All workers run identical seeded models, so worker 0's models supply
  // the record geometry no matter where routing lands the request. The
  // source only reads the model during the call (hints are fetch-only).
  // Hint with the request's OWN resolution model and the salted key the
  // worker will Acquire() under; an unsupported grid skips the hint (the
  // worker rejects the request anyway).
  const runtime::OnlineServer& server = workers_.front()->server();
  const model::DiffusionModel* m =
      server.ModelForGrid(request.mask.grid_h, request.mask.grid_w);
  const int effective_id = server.EffectiveTemplateId(
      request.template_id, request.mask.grid_h, request.mask.grid_w);
  if (m == nullptr || effective_id < 0) {
    return;
  }
  options_.worker.activation_source->Prefetch(
      *m, effective_id,
      /*record_kv=*/options_.worker.mask_aware && options_.worker.sparse_compute);
  metrics_.RecordPrefetchHint();
}

std::string Gateway::MetricsJson() const {
  std::string json = metrics_.ToJson();
  if (options_.worker.activation_source != nullptr && !json.empty() &&
      json.back() == '}') {
    json.insert(json.size() - 1, ",\"activation_source\":" +
                                     options_.worker.activation_source
                                         ->MetricsJson());
  }
  if (!json.empty() && json.back() == '}') {
    // The host's profiled regression lines, round-trippable at full double
    // precision: a federated front fetches these at join time and rebuilds
    // this node's LatencyModel (FromFits) so the cross-machine Algorithm-2
    // cost prices each node with its own hardware's line.
    auto num = [](double v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      return std::string(buf);
    };
    std::string lm = "{\"compute_slope\":" + num(latency_model_.compute_fit().slope) +
                     ",\"compute_intercept\":" + num(latency_model_.compute_fit().intercept) +
                     ",\"compute_r2\":" + num(latency_model_.compute_fit().r2) +
                     ",\"load_slope\":" + num(latency_model_.load_fit().slope) +
                     ",\"load_intercept\":" + num(latency_model_.load_fit().intercept) +
                     ",\"load_r2\":" + num(latency_model_.load_fit().r2) +
                     ",\"per_request_overhead_s\":" + num(per_request_overhead_s_) +
                     ",\"mask_aware\":" + (options_.worker.mask_aware ? "true" : "false") +
                     ",\"sparse_compute\":" +
                     (options_.worker.mask_aware && options_.worker.sparse_compute
                          ? "true" : "false") +
                     ",\"workers\":" + std::to_string(workers_.size()) +
                     ",\"max_batch\":" + std::to_string(options_.worker.max_batch) +
                     ",\"grid_h\":" + std::to_string(latency_model_.primary_grid_h()) +
                     ",\"grid_w\":" + std::to_string(latency_model_.primary_grid_w()) +
                     "}";
    json.insert(json.size() - 1, ",\"latency_model\":" + lm);
    // Per-resolution whole-step fits, as a SEPARATE top-level array: the
    // registry's latency_model parser scans a flat object (it stops at the
    // first '}'), so nested objects must not live inside it.
    if (!latency_model_.resolution_fits().empty()) {
      std::string fits = "[";
      for (const auto& rf : latency_model_.resolution_fits()) {
        if (fits.size() > 1) {
          fits += ",";
        }
        fits += "{\"grid_h\":" + std::to_string(rf.grid_h) +
                ",\"grid_w\":" + std::to_string(rf.grid_w) +
                ",\"slope\":" + num(rf.fit.slope) +
                ",\"intercept\":" + num(rf.fit.intercept) +
                ",\"r2\":" + num(rf.fit.r2) + "}";
      }
      fits += "]";
      json.insert(json.size() - 1, ",\"resolution_fits\":" + fits);
    }
  }
  return json;
}

std::vector<sched::WorkerStatus> Gateway::WorkerStatuses() const {
  std::vector<sched::WorkerStatus> statuses;
  statuses.reserve(workers_.size());
  for (const auto& worker : workers_) {
    statuses.push_back(worker->Status());
  }
  return statuses;
}

SubmitResult Gateway::Submit(runtime::OnlineRequest request) {
  std::shared_lock<std::shared_mutex> gate(submit_gate_);
  metrics_.RecordSubmitted();

  SubmitResult result;
  if (!accepting_.load()) {
    metrics_.RecordRejectedShutdown();
    result.status = SubmitStatus::kRejectedShutdown;
    return result;
  }

  const auto now = std::chrono::steady_clock::now();
  if (request.deadline == kNoDeadline) {
    // Per-request budget takes precedence over the gateway-wide default, so
    // open-loop drivers can attach slowdown-normalized SLOs.
    const Duration budget =
        request.slo > Duration::Zero() ? request.slo : options_.slo;
    if (budget > Duration::Zero()) {
      request.deadline = now + std::chrono::microseconds(budget.micros());
    }
  }

  // The request as the schedulers see it, carrying its own grid so the
  // resolution-aware cost terms can price it (TokenScale is 1.0 and the
  // per-resolution fits are empty outside hybrid setups).
  trace::Request probe;
  probe.mask_ratio = request.mask.ratio();
  probe.denoise_steps = options_.worker.numerics.num_steps;
  probe.grid_h = request.mask.grid_h;
  probe.grid_w = request.mask.grid_w;

  const std::vector<sched::WorkerStatus> statuses = WorkerStatuses();

  if (options_.admission_control) {
    std::optional<double> budget_s;
    if (request.deadline != kNoDeadline) {
      budget_s = std::chrono::duration<double>(request.deadline - now).count();
    }
    const AdmissionController::Verdict verdict =
        admission_.Evaluate(probe, statuses, budget_s);
    result.estimated_wall_s = verdict.estimated_wall_s;
    if (verdict.decision == AdmissionController::Decision::kRejectSlo) {
      metrics_.RecordRejectedSlo();
      result.status = SubmitStatus::kRejectedSlo;
      return result;
    }
    if (verdict.decision == AdmissionController::Decision::kShedOverload) {
      metrics_.RecordShedOverload();
      result.status = SubmitStatus::kShedOverload;
      return result;
    }
  }

  // Admitted: overlap the (possibly remote) activation fetch with the
  // routing + worker-queue delay ahead of this request. With no shared
  // source, or prefetch disabled on it, this is a no-op.
  HintPrefetch(request);

  int worker_id = 0;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    worker_id = router_->Route(probe, statuses);
  }
  worker_id = std::clamp(worker_id, 0, num_workers() - 1);

  Pending pending;
  pending.worker_id = worker_id;
  std::future<runtime::OnlineResponse> caller_future =
      pending.caller_promise.get_future();
  inflight_.fetch_add(1);
  try {
    pending.worker_future = workers_[worker_id]->Submit(std::move(request));
  } catch (const std::exception&) {
    // Worker already stopping (we lost a shutdown race despite the gate).
    inflight_.fetch_sub(1);
    metrics_.RecordRejectedShutdown();
    result.status = SubmitStatus::kRejectedShutdown;
    return result;
  }
  metrics_.RecordAccepted(worker_id);
  completions_.Push(std::move(pending));

  result.status = SubmitStatus::kAccepted;
  result.worker_id = worker_id;
  result.future = std::move(caller_future);
  return result;
}

void Gateway::SubmitAt(runtime::OnlineRequest request, Duration offset) {
  // The earliest the gateway knows this template is coming is now — not
  // when the arrival timer fires. Hint immediately so the wire fetch runs
  // during the open-loop wait (bounded staging absorbs early arrivals).
  HintPrefetch(request);
  const auto due = epoch_ + std::chrono::microseconds(offset.micros());
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (timer_stop_) {
      // Scheduled after shutdown: account for it like any late arrival.
      metrics_.RecordSubmitted();
      metrics_.RecordRejectedShutdown();
      return;
    }
    timer_pending_.fetch_add(1);
    timed_.push(Timed{due, timer_seq_++, std::move(request)});
  }
  timer_cv_.notify_one();
}

void Gateway::ReplayTrace(const std::vector<trace::Request>& requests,
                          uint64_t mask_seed) {
  Rng rng(mask_seed);
  ResetArrivalEpoch();
  for (const auto& request : requests) {
    SubmitAt(MakeOnlineRequest(request, options_.worker.numerics, rng),
             request.arrival - TimePoint());
  }
}

void Gateway::ResetArrivalEpoch() {
  std::lock_guard<std::mutex> lock(timer_mu_);
  epoch_ = std::chrono::steady_clock::now();
}

void Gateway::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  for (;;) {
    if (timed_.empty()) {
      if (timer_stop_) {
        return;
      }
      timer_cv_.wait(lock);
      continue;
    }
    const auto due = timed_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (now < due && !timer_stop_) {
      timer_cv_.wait_until(lock, due);
      continue;
    }
    // Dispatch (shutdown dispatches everything left; Submit() rejects it
    // with an explicit status once accepting_ is off).
    Timed item = std::move(const_cast<Timed&>(timed_.top()));
    timed_.pop();
    lock.unlock();
    Submit(std::move(item.request));
    timer_pending_.fetch_sub(1);
    lock.lock();
  }
}

void Gateway::Drain() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      if (timed_.empty() && timer_pending_.load() == 0 &&
          inflight_.load() == 0) {
        return;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void Gateway::StopAccepting() {
  // Exclusive gate: once this returns no Submit() is mid-dispatch, so
  // every later submission observes the flip.
  std::unique_lock<std::shared_mutex> gate(submit_gate_);
  accepting_.store(false);
}

void Gateway::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_.load()) {
    return;
  }

  {
    // Exclusive gate: after this block no Submit() is mid-dispatch.
    std::unique_lock<std::shared_mutex> gate(submit_gate_);
    accepting_.store(false);
  }

  // Wake the timer; it dispatches whatever is scheduled (each arrival is
  // rejected with a shutdown status now — counted, never dropped) and exits.
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) {
    timer_.join();
  }

  // Drain accepted work, then retire the collector and the workers.
  while (inflight_.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  completions_.Close();
  if (collector_.joinable()) {
    collector_.join();
  }
  for (auto& worker : workers_) {
    worker->Stop();
  }
  stopped_.store(true);
}

void Gateway::CollectorLoop() {
  while (auto pending = completions_.Pop()) {
    try {
      runtime::OnlineResponse response = pending->worker_future.get();
      metrics_.RecordCompleted(pending->worker_id, response.queueing_ms(),
                               response.denoise_ms(), response.post_ms(),
                               response.total_ms(), response.has_deadline(),
                               response.met_deadline());
      pending->caller_promise.set_value(std::move(response));
    } catch (...) {
      pending->caller_promise.set_exception(std::current_exception());
    }
    inflight_.fetch_sub(1);
  }
}

}  // namespace flashps::gateway
