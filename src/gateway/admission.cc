#include "src/gateway/admission.h"

#include <algorithm>

namespace flashps::gateway {

AdmissionController::AdmissionController(sched::LatencyModel latency_model,
                                         Options options)
    : latency_model_(std::move(latency_model)), options_(options) {}

AdmissionController::Verdict AdmissionController::Evaluate(
    const trace::Request& request,
    const std::vector<sched::WorkerStatus>& statuses,
    std::optional<double> budget_s) const {
  Verdict verdict;

  size_t total_waiting = 0;
  double best_model_s = std::numeric_limits<double>::max();
  for (const auto& status : statuses) {
    total_waiting += status.waiting_ratios.size();
    best_model_s = std::min(
        best_model_s, sched::EstimateDrainSeconds(latency_model_, request, status));
  }
  verdict.estimated_wall_s =
      statuses.empty() ? 0.0
                       : best_model_s * options_.wall_seconds_per_model_second;

  if (budget_s.has_value()) {
    // A request with a deadline is admitted iff the best worker's estimated
    // drain fits the remaining budget; an infeasible request is rejected
    // explicitly rather than queued to miss its SLO.
    if (verdict.estimated_wall_s > *budget_s) {
      verdict.decision = Decision::kRejectSlo;
    }
    return verdict;
  }

  if (total_waiting >= options_.max_queue_depth) {
    verdict.decision = Decision::kShedOverload;
  }
  return verdict;
}

}  // namespace flashps::gateway
