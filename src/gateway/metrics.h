// Lock-protected serving metrics for the real-concurrency gateway.
//
// The registry is the gateway's single source of truth for SLO reporting:
// monotonically increasing counters for every admission outcome, latency
// histograms for each request phase (queueing, denoise, post-processing,
// end-to-end), and per-worker dispatch/utilization tallies. Everything is
// guarded by one mutex — the gateway records a handful of samples per
// request, so contention is negligible next to denoising work — and exports
// as JSON for downstream dashboards (`BENCH_gateway.json` et al.).
#ifndef FLASHPS_SRC_GATEWAY_METRICS_H_
#define FLASHPS_SRC_GATEWAY_METRICS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace flashps::gateway {

// Summary of one latency series (milliseconds) at export time.
struct LatencySummary {
  size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

// A point-in-time copy of every metric, safe to read without locks.
struct MetricsSnapshot {
  // Admission counters. submitted = accepted + rejected_slo + shed_overload
  // + rejected_shutdown, always.
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected_slo = 0;       // Admission: estimated drain misses SLO.
  uint64_t shed_overload = 0;      // Admission: queue depth cap exceeded.
  uint64_t rejected_shutdown = 0;  // Arrived after Stop()/Drain().
  uint64_t completed = 0;
  uint64_t slo_met = 0;     // Completed within their deadline.
  uint64_t slo_missed = 0;  // Completed, but past their deadline.
  // Queue-ahead hints handed to the activation source (admission/routing
  // and timer-enqueue time). Whether a hint became a wire fetch is the
  // source's story — see the activation_source prefetch_* counters.
  uint64_t prefetch_hints = 0;

  LatencySummary queueing;
  LatencySummary denoise;
  LatencySummary post;
  LatencySummary end_to_end;

  // Per-worker dispatch counts and busy time (denoise occupancy).
  std::vector<uint64_t> worker_dispatched;
  std::vector<uint64_t> worker_completed;
  std::vector<double> worker_busy_ms;

  // Fraction of completed requests that met their deadline (1.0 when no
  // request carried a deadline).
  double SloAttainment() const;
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(int num_workers);

  // Admission outcomes.
  void RecordSubmitted();
  void RecordAccepted(int worker_id);
  void RecordRejectedSlo();
  void RecordShedOverload();
  void RecordRejectedShutdown();
  void RecordPrefetchHint();

  // Completion: phase latencies in milliseconds; `met_deadline` is
  // meaningful only when `had_deadline`.
  void RecordCompleted(int worker_id, double queueing_ms, double denoise_ms,
                       double post_ms, double end_to_end_ms, bool had_deadline,
                       bool met_deadline);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  static LatencySummary Summarize(const StatAccumulator& acc);

  mutable std::mutex mu_;
  MetricsSnapshot counters_;  // Histogram fields unused; counters only.
  StatAccumulator queueing_ms_;
  StatAccumulator denoise_ms_;
  StatAccumulator post_ms_;
  StatAccumulator end_to_end_ms_;
};

}  // namespace flashps::gateway

#endif  // FLASHPS_SRC_GATEWAY_METRICS_H_
