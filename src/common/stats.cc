#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace flashps {

void StatAccumulator::Add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void StatAccumulator::Clear() {
  samples_.clear();
  sorted_.clear();
  sum_ = 0.0;
  sorted_valid_ = false;
}

double StatAccumulator::Mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double StatAccumulator::Min() const {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double StatAccumulator::Max() const {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

double StatAccumulator::Stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double ss = 0.0;
  for (double v : samples_) {
    ss += (v - mean) * (v - mean);
  }
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double StatAccumulator::Percentile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  assert(buckets > 0 && hi > lo);
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double v) {
  const int n = bucket_count();
  int idx = static_cast<int>((v - lo_) / (hi_ - lo_) * n);
  idx = std::clamp(idx, 0, n - 1);
  ++counts_[idx];
  ++total_;
}

double Histogram::BucketLow(int i) const {
  return lo_ + (hi_ - lo_) * i / bucket_count();
}

double Histogram::BucketHigh(int i) const {
  return lo_ + (hi_ - lo_) * (i + 1) / bucket_count();
}

double Histogram::Fraction(int i) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

std::string Histogram::Render(int max_width) const {
  std::ostringstream os;
  size_t max_count = 1;
  for (size_t c : counts_) {
    max_count = std::max(max_count, c);
  }
  char buf[64];
  for (int i = 0; i < bucket_count(); ++i) {
    const int width =
        static_cast<int>(static_cast<double>(counts_[i]) /
                         static_cast<double>(max_count) * max_width);
    std::snprintf(buf, sizeof(buf), "[%5.2f,%5.2f) %6.2f%% |", BucketLow(i),
                  BucketHigh(i), Fraction(i) * 100.0);
    os << buf << std::string(static_cast<size_t>(width), '#') << "\n";
  }
  return os.str();
}

LinearFit FitLinear(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  LinearFit fit;
  const size_t n = x.size();
  if (n < 2) {
    return fit;
  }
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    fit.intercept = sy / dn;
    return fit;
  }
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;

  const double mean_y = sy / dn;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r2 = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace flashps
