// Statistics accumulators used by benchmarks and the cluster metrics pipeline.
#ifndef FLASHPS_SRC_COMMON_STATS_H_
#define FLASHPS_SRC_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace flashps {

// Collects samples and reports summary statistics. Percentile queries sort a
// copy lazily; the accumulator itself is append-only.
class StatAccumulator {
 public:
  void Add(double v);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  // q in [0, 1]; linear interpolation between closest ranks.
  double Percentile(double q) const;
  double P50() const { return Percentile(0.50); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the edge
// buckets. Used to render distribution figures (e.g. Fig. 3) as text.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double v);
  int bucket_count() const { return static_cast<int>(counts_.size()); }
  size_t total() const { return total_; }
  size_t bucket(int i) const { return counts_[i]; }
  double BucketLow(int i) const;
  double BucketHigh(int i) const;
  double Fraction(int i) const;

  // Renders an ASCII bar chart, one row per bucket.
  std::string Render(int max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

// Ordinary least squares fit y = a*x + b plus the coefficient of
// determination R^2. This is the regression model family the FlashPS
// scheduler uses (paper §4.4, Fig. 11).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

LinearFit FitLinear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace flashps

#endif  // FLASHPS_SRC_COMMON_STATS_H_
