// Minimal thread-safe blocking queue. Lives in common so the serving
// runtime, the kernel-layer fan-out pool, and the network frontier can all
// share it.
#ifndef FLASHPS_SRC_COMMON_CONCURRENT_QUEUE_H_
#define FLASHPS_SRC_COMMON_CONCURRENT_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace flashps {

template <typename T>
class ConcurrentQueue {
 public:
  // Pushes an item and wakes one waiter. Returns false after Close().
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Like Push(), but hands the item back when the queue is closed so the
  // caller can dispose of it (e.g. fail the promise it carries) instead of
  // losing it to the queue's local scope.
  std::optional<T> PushOrReturn(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return std::optional<T>(std::move(item));
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return std::nullopt;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;  // Closed and drained.
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Drains up to `max_items` currently queued items without blocking.
  std::vector<T> DrainUpTo(size_t max_items) {
    std::vector<T> out;
    std::lock_guard<std::mutex> lock(mu_);
    while (!items_.empty() && out.size() < max_items) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  // After Close(), Push() fails and Pop() returns nullopt once drained.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace flashps

#endif  // FLASHPS_SRC_COMMON_CONCURRENT_QUEUE_H_
