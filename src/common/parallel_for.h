// Intra-op parallelism for the CPU kernel layer: a blocking fan-out/join
// ParallelFor over a shared worker pool, with a thread-count configuration
// that composes with the serving runtime.
//
// Thread count resolution, per calling thread:
//   1. inside a ParallelFor body (worker or caller chunk): always 1 —
//      nested parallelism runs serial, so kernels can call kernels freely;
//   2. an active ComputeThreadsScope on this thread (the denoise thread
//      installs one from OnlineServer::Options::compute_threads);
//   3. the process-wide default from SetGlobalComputeThreads() (1 at start,
//      so nothing parallelizes unless explicitly asked to).
//
// Chunk boundaries are aligned to multiples of `grain` (the last chunk takes
// the remainder). Kernels exploit this: a GEMM that passes a grain that is a
// multiple of its row-tile height gets an identical tile decomposition — and
// therefore bitwise-identical output — at every thread count.
#ifndef FLASHPS_SRC_COMMON_PARALLEL_FOR_H_
#define FLASHPS_SRC_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace flashps {

// Hard cap on the per-call fan-out width (and the shared pool size).
inline constexpr int kMaxComputeThreads = 16;

// Process-wide default compute-thread count; clamped to
// [1, kMaxComputeThreads]. Thread-safe.
void SetGlobalComputeThreads(int n);
int GlobalComputeThreads();

// RAII thread-local override of the compute-thread count, restoring the
// previous override on destruction. Scopes nest.
class ComputeThreadsScope {
 public:
  explicit ComputeThreadsScope(int n);
  ~ComputeThreadsScope();
  ComputeThreadsScope(const ComputeThreadsScope&) = delete;
  ComputeThreadsScope& operator=(const ComputeThreadsScope&) = delete;

 private:
  int prev_;
};

// The thread count ParallelFor would use if called right now on this thread.
int EffectiveComputeThreads();

// Runs body(begin, end) over a partition of [0, n). Serial fast path (one
// inline body(0, n) call, no pool dispatch) when the effective thread count
// is 1, when n <= grain, or when already inside a ParallelFor body. Blocks
// until every chunk finished; the calling thread executes the first chunk
// itself. `body` must not throw.
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace flashps

#endif  // FLASHPS_SRC_COMMON_PARALLEL_FOR_H_
