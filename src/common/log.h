// Minimal leveled logger. Serving-system components log through this so that
// benchmarks can silence them and tests can raise verbosity.
#ifndef FLASHPS_SRC_COMMON_LOG_H_
#define FLASHPS_SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace flashps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped. Not thread-safe to
// mutate concurrently with logging (set it once at startup).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& msg);
}  // namespace internal

// Stream-style log statement: FLASHPS_LOG(kInfo) << "worker " << id;
#define FLASHPS_LOG(level)                                              \
  if (::flashps::LogLevel::level < ::flashps::GetLogLevel()) {          \
  } else                                                                \
    ::flashps::internal::LogLine(::flashps::LogLevel::level)

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace flashps

#endif  // FLASHPS_SRC_COMMON_LOG_H_
