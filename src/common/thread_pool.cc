#include "src/common/thread_pool.h"

#include <cassert>

namespace flashps {

ThreadPool::ThreadPool(int num_threads) {
  assert(num_threads > 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  if (shutdown_.load()) {
    return false;
  }
  return tasks_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    return;
  }
  tasks_.Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    auto task = tasks_.Pop();
    if (!task.has_value()) {
      return;  // Closed and drained.
    }
    (*task)();
    completed_.fetch_add(1);
  }
}

}  // namespace flashps
