// A deterministic simulated clock shared by device streams, serving engines
// and the cluster simulator. Time only moves forward via AdvanceTo/AdvanceBy.
#ifndef FLASHPS_SRC_COMMON_VIRTUAL_CLOCK_H_
#define FLASHPS_SRC_COMMON_VIRTUAL_CLOCK_H_

#include "src/common/time.h"

namespace flashps {

class VirtualClock {
 public:
  VirtualClock() = default;

  TimePoint now() const { return now_; }

  // Moves the clock to `t`. Moving backwards is a programming error and is
  // ignored (the clock is monotone), which keeps multi-source advancement
  // (several streams reporting completion times) safe.
  void AdvanceTo(TimePoint t) {
    if (t > now_) {
      now_ = t;
    }
  }

  void AdvanceBy(Duration d) { now_ = now_ + d; }

  void Reset() { now_ = TimePoint(); }

 private:
  TimePoint now_;
};

}  // namespace flashps

#endif  // FLASHPS_SRC_COMMON_VIRTUAL_CLOCK_H_
