// Fixed-size worker pool. Used by the serving runtime for the disaggregated
// pre/post-processing lanes and by the kernel layer's ParallelFor fan-out.
#ifndef FLASHPS_SRC_COMMON_THREAD_POOL_H_
#define FLASHPS_SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/concurrent_queue.h"

namespace flashps {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns false after Shutdown().
  bool Submit(std::function<void()> task);

  // Drains outstanding tasks and joins the workers. Idempotent.
  void Shutdown();

  // Tasks executed so far (for tests/metrics).
  uint64_t completed() const { return completed_.load(); }

 private:
  void WorkerLoop();

  ConcurrentQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace flashps

#endif  // FLASHPS_SRC_COMMON_THREAD_POOL_H_
