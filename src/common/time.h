// Fixed-point simulated-time types used across FlashPS.
//
// All timing in the simulator is expressed in integral microseconds so that
// event ordering is exact and runs are bit-reproducible across platforms.
// Floating-point seconds are accepted/produced only at API boundaries.
#ifndef FLASHPS_SRC_COMMON_TIME_H_
#define FLASHPS_SRC_COMMON_TIME_H_

#include <cstdint>
#include <compare>
#include <limits>

namespace flashps {

// A span of simulated time. Signed so that differences are representable.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() {
    return Duration(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t micros() const { return us_; }
  constexpr double millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr Duration operator+(Duration o) const { return Duration(us_ + o.us_); }
  constexpr Duration operator-(Duration o) const { return Duration(us_ - o.us_); }
  constexpr Duration operator*(int64_t k) const { return Duration(us_ * k); }
  // Fractional scaling (rounded to microseconds).
  constexpr Duration Scale(double k) const { return Seconds(seconds() * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(us_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    us_ -= o.us_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

// A point on the simulated timeline (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }
  static constexpr TimePoint FromSeconds(double s) {
    return TimePoint(Duration::Seconds(s).micros());
  }
  static constexpr TimePoint Max() {
    return TimePoint(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t micros() const { return us_; }
  constexpr double millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(us_ + d.micros());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(us_ - d.micros());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::Micros(us_ - o.us_);
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  constexpr explicit TimePoint(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

inline TimePoint Later(TimePoint a, TimePoint b) { return a < b ? b : a; }

}  // namespace flashps

#endif  // FLASHPS_SRC_COMMON_TIME_H_
