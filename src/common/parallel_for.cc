#include "src/common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_pool.h"

namespace flashps {
namespace {

std::atomic<int> g_compute_threads{1};
thread_local int tls_override = 0;
thread_local bool tls_in_parallel_region = false;

int ClampThreads(int n) { return std::clamp(n, 1, kMaxComputeThreads); }

// One shared fan-out pool, created on first parallel dispatch. Workers block
// on the task queue when idle, so an unused pool costs nothing after
// creation; the Meyers-singleton destructor joins them at process exit.
ThreadPool& FanoutPool() {
  static ThreadPool pool(kMaxComputeThreads - 1);
  return pool;
}

}  // namespace

void SetGlobalComputeThreads(int n) { g_compute_threads.store(ClampThreads(n)); }

int GlobalComputeThreads() { return g_compute_threads.load(); }

ComputeThreadsScope::ComputeThreadsScope(int n) : prev_(tls_override) {
  tls_override = ClampThreads(n);
}

ComputeThreadsScope::~ComputeThreadsScope() { tls_override = prev_; }

int EffectiveComputeThreads() {
  if (tls_in_parallel_region) {
    return 1;  // Nested parallelism runs serial.
  }
  return tls_override > 0 ? tls_override : g_compute_threads.load();
}

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) {
    return;
  }
  grain = std::max<int64_t>(grain, 1);
  const int threads = EffectiveComputeThreads();
  if (threads <= 1 || n <= grain) {
    body(0, n);
    return;
  }

  // Grain-aligned chunking: step is the smallest multiple of `grain` that
  // yields at most `threads` chunks, so chunk boundaries do not move with
  // the thread count (see header contract).
  const int64_t grains = (n + grain - 1) / grain;
  const int64_t chunks64 = std::min<int64_t>(threads, grains);
  const int64_t step = ((grains + chunks64 - 1) / chunks64) * grain;
  const int chunks = static_cast<int>((n + step - 1) / step);
  if (chunks <= 1) {
    body(0, n);
    return;
  }

  std::mutex mu;
  std::condition_variable cv;
  int remaining = chunks - 1;
  ThreadPool& pool = FanoutPool();
  for (int c = 1; c < chunks; ++c) {
    const int64_t begin = static_cast<int64_t>(c) * step;
    const int64_t end = std::min<int64_t>(n, begin + step);
    auto run = [&mu, &cv, &remaining, &body, begin, end] {
      tls_in_parallel_region = true;
      body(begin, end);
      tls_in_parallel_region = false;
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) {
        cv.notify_all();
      }
    };
    if (!pool.Submit(run)) {
      run();  // Pool already shut down (process-exit path): degrade inline.
    }
  }
  tls_in_parallel_region = true;
  body(0, std::min<int64_t>(n, step));
  tls_in_parallel_region = false;
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
}

}  // namespace flashps
