// Seeded, splittable pseudo-random generator (xoshiro256**) with the
// distributions FlashPS needs: uniform, normal, exponential, Poisson, Zipf.
//
// We own the generator rather than using <random> engines so that streams are
// reproducible across standard-library implementations.
#ifndef FLASHPS_SRC_COMMON_RNG_H_
#define FLASHPS_SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace flashps {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextU64();
  // Uniform in [0, n).
  uint64_t NextBelow(uint64_t n);
  // Uniform in [0, 1).
  double NextDouble();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Standard normal via Box-Muller (deterministic pairing).
  double Normal(double mean = 0.0, double stddev = 1.0);
  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);
  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  int Poisson(double mean);
  // Log-normal with the given underlying normal parameters.
  double LogNormal(double mu, double sigma);
  // Beta(a, b) via two gamma draws.
  double Beta(double a, double b);

  // A new independent generator derived from this one's stream.
  Rng Split();

 private:
  double Gamma(double shape);

  uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// Zipf-distributed sampler over {0, ..., n-1} with exponent `s`.
// Precomputes the CDF once; sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);

  int Sample(Rng& rng) const;
  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace flashps

#endif  // FLASHPS_SRC_COMMON_RNG_H_
