// Explicit little-endian byte (de)serialization.
//
// Everything FlashPS puts on a wire or a disk goes through these two
// cursors: multi-byte integers are assembled byte-by-byte, so the encoded
// form is identical on every host and nothing is ever reinterpret_cast off
// a buffer. The reader is fail-soft — the first short or out-of-range read
// flips ok() to false and every later read returns zero, so decoders can
// run straight-line and check once at the end.
#ifndef FLASHPS_SRC_COMMON_BYTES_H_
#define FLASHPS_SRC_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace flashps {

// Appends little-endian encoded values to a caller-owned byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>& out) : out_(out) {}

  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      out_.push_back(static_cast<uint8_t>(v >> shift));
    }
  }
  void U64(uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      out_.push_back(static_cast<uint8_t>(v >> shift));
    }
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bytes(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  size_t size() const { return out_.size(); }

 private:
  std::vector<uint8_t>& out_;
};

// Reads little-endian values off a borrowed buffer. Never throws; a short
// read latches ok() to false and yields zeros from then on.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[off_++];
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = static_cast<uint16_t>(data_[off_]) |
                 static_cast<uint16_t>(data_[off_ + 1]) << 8;
    off_ += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[off_ + i]) << (8 * i);
    }
    off_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[off_ + i]) << (8 * i);
    }
    off_ += 8;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  std::string String() {
    const uint32_t n = U32();
    if (!Need(n)) return std::string();
    std::string s(reinterpret_cast<const char*>(data_ + off_), n);
    off_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - off_; }
  size_t offset() const { return off_; }
  // Marks the whole read as failed (for semantic validation errors).
  void Fail() { ok_ = false; }

 private:
  bool Need(size_t n) {
    if (!ok_ || size_ - off_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
  bool ok_ = true;
};

}  // namespace flashps

#endif  // FLASHPS_SRC_COMMON_BYTES_H_
