// Strict --key=value flag parsing shared by the daemons and benches.
//
// Replaces the per-binary copy-pasted FlagValue/FlagLong helpers, which
// silently turned "--port=sevenfourtwelve" into 0 (std::atol) and ignored
// unknown flags outright — a typo'd flag name meant running with defaults
// and no hint why. This parser:
//
//   - accepts only `--key=value` (and bare `--key`, for switches like
//     --help); anything else is an error,
//   - parses integers with full-string validation and range checks, so a
//     malformed value is reported instead of becoming 0,
//   - records which keys the program asked for, so ok() can report every
//     flag the program does NOT understand — call it after the last
//     lookup, print errors() + usage, and exit non-zero,
//   - auto-generates --help text from the registered lookups (each may
//     carry a one-line description), so a daemon's usage can never drift
//     from the flags it actually reads: perform every lookup, then answer
//     Has("help") with HelpText() before checking ok().
//
// Header-only; no dependencies beyond the standard library, so the
// daemons stay as self-contained as before.
#ifndef FLASHPS_SRC_COMMON_FLAG_PARSER_H_
#define FLASHPS_SRC_COMMON_FLAG_PARSER_H_

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace flashps::flags {

class FlagParser {
 public:
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
        errors_.push_back("unrecognized argument '" + arg +
                          "' (expected --key=value)");
        continue;
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  // True when the flag was given (with or without a value).
  bool Has(const std::string& key, const std::string& help = "") {
    Note(key, "", "", "", help);
    return values_.count(key) != 0;
  }

  std::string String(const std::string& key, std::string fallback,
                     const std::string& help = "") {
    Note(key, "VALUE", fallback.empty() ? "\"\"" : fallback, "", help);
    auto it = values_.find(key);
    return it == values_.end() ? std::move(fallback) : it->second;
  }

  long Long(const std::string& key, long fallback,
            const std::string& help = "") {
    Note(key, "N", std::to_string(fallback), "", help);
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(it->second.c_str(), &end, 10);
    if (it->second.empty() || end == nullptr || *end != '\0' ||
        errno == ERANGE) {
      errors_.push_back("invalid integer for --" + key + ": '" + it->second +
                        "'");
      return fallback;
    }
    return value;
  }

  // Long() constrained to [min, max]; out-of-range values are errors, not
  // silent clamps (a port of 99999 is a typo, not a request).
  long LongInRange(const std::string& key, long fallback, long min, long max,
                   const std::string& help = "") {
    Note(key, "N", std::to_string(fallback),
         "[" + std::to_string(min) + ", " + std::to_string(max) + "]", help);
    const size_t errors_before = errors_.size();
    const long value = Long(key, fallback);
    if (errors_.size() != errors_before) {
      return fallback;
    }
    if (value < min || value > max) {
      errors_.push_back("--" + key + "=" + std::to_string(value) +
                        " out of range [" + std::to_string(min) + ", " +
                        std::to_string(max) + "]");
      return fallback;
    }
    return value;
  }

  // Call after the last lookup: any flag the program never asked about is
  // unknown. False when anything went wrong; errors() lists why.
  bool ok() {
    if (!finished_) {
      finished_ = true;
      for (const auto& [key, value] : values_) {
        if (!seen_.contains(key)) {
          errors_.push_back("unknown flag --" + key);
        }
      }
    }
    return errors_.empty();
  }

  const std::vector<std::string>& errors() const { return errors_; }

  // One line per error, ready for stderr.
  std::string ErrorText() const {
    std::string out;
    for (const std::string& error : errors_) {
      out += error;
      out += '\n';
    }
    return out;
  }

  // Usage text generated from every lookup performed so far, in lookup
  // order. Call after the last lookup (the same place ok() goes) so every
  // flag the program reads is in the table.
  std::string HelpText(const std::string& program) const {
    std::vector<std::pair<std::string, std::string>> rows;
    size_t width = 0;
    for (const Spec& spec : specs_) {
      std::string left = "--" + spec.key;
      if (!spec.placeholder.empty()) {
        left += "=" + spec.placeholder;
      }
      std::string right = spec.help;
      std::string meta;
      if (!spec.fallback.empty()) {
        meta += "default " + spec.fallback;
      }
      if (!spec.range.empty()) {
        meta += (meta.empty() ? "" : ", ") + ("range " + spec.range);
      }
      if (!meta.empty()) {
        right += (right.empty() ? "(" : " (") + meta + ")";
      }
      width = std::max(width, left.size());
      rows.emplace_back(std::move(left), std::move(right));
    }
    std::string out = "usage: " + program + " [--key=value ...]\n\nflags:\n";
    for (const auto& [left, right] : rows) {
      out += "  " + left;
      if (!right.empty()) {
        out.append(width - left.size() + 2, ' ');
        out += right;
      }
      out += '\n';
    }
    return out;
  }

 private:
  struct Spec {
    std::string key;
    std::string placeholder;  // "" for bare switches, "N"/"VALUE" otherwise.
    std::string fallback;     // Rendered default ("" = no default to show).
    std::string range;        // "[min, max]" or "".
    std::string help;
  };

  // Records one lookup for ok()'s unknown-flag check and HelpText's table.
  // First registration of a key wins on shape; a later non-empty help
  // backfills an empty one (Long() inside LongInRange() passes none).
  void Note(const std::string& key, const std::string& placeholder,
            const std::string& fallback, const std::string& range,
            const std::string& help) {
    seen_.insert(key);
    for (Spec& spec : specs_) {
      if (spec.key == key) {
        if (spec.help.empty()) {
          spec.help = help;
        }
        return;
      }
    }
    specs_.push_back(Spec{key, placeholder, fallback, range, help});
  }

  std::map<std::string, std::string> values_;
  std::set<std::string> seen_;
  std::vector<Spec> specs_;
  std::vector<std::string> errors_;
  bool finished_ = false;
};

}  // namespace flashps::flags

#endif  // FLASHPS_SRC_COMMON_FLAG_PARSER_H_
