// Strict --key=value flag parsing shared by the daemons and benches.
//
// Replaces the per-binary copy-pasted FlagValue/FlagLong helpers, which
// silently turned "--port=sevenfourtwelve" into 0 (std::atol) and ignored
// unknown flags outright — a typo'd flag name meant running with defaults
// and no hint why. This parser:
//
//   - accepts only `--key=value` (and bare `--key`, for switches like
//     --help); anything else is an error,
//   - parses integers with full-string validation and range checks, so a
//     malformed value is reported instead of becoming 0,
//   - distinguishes scalar flags from list flags: a scalar given twice is
//     an error (the old map silently kept the last occurrence, so
//     "--port=1 --port=2" ran on 2 with no hint), while StringList()
//     accumulates every occurrence and splits each on commas, so
//     "--resolutions=64x64,96x96 --resolutions=128x128" yields all three,
//   - records which keys the program asked for, so ok() can report every
//     flag the program does NOT understand — call it after the last
//     lookup, print errors() + usage, and exit non-zero,
//   - auto-generates --help text from the registered lookups (each may
//     carry a one-line description), so a daemon's usage can never drift
//     from the flags it actually reads: perform every lookup, then answer
//     Has("help") with HelpText() before checking ok().
//
// Header-only; no dependencies beyond the standard library, so the
// daemons stay as self-contained as before.
#ifndef FLASHPS_SRC_COMMON_FLAG_PARSER_H_
#define FLASHPS_SRC_COMMON_FLAG_PARSER_H_

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace flashps::flags {

class FlagParser {
 public:
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
        errors_.push_back("unrecognized argument '" + arg +
                          "' (expected --key=value)");
        continue;
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)].push_back("");
      } else {
        values_[arg.substr(2, eq - 2)].push_back(arg.substr(eq + 1));
      }
    }
  }

  // True when the flag was given (with or without a value). A switch
  // repeated twice is a scalar duplicate and therefore an error.
  bool Has(const std::string& key, const std::string& help = "") {
    Note(key, "", "", "", help);
    return Scalar(key) != nullptr;
  }

  std::string String(const std::string& key, std::string fallback,
                     const std::string& help = "") {
    Note(key, "VALUE", fallback.empty() ? "\"\"" : fallback, "", help);
    const std::string* value = Scalar(key);
    return value == nullptr ? std::move(fallback) : *value;
  }

  // Every occurrence of `--key=...`, in command-line order, with each
  // value split on commas: "--k=a,b --k=c" yields {a, b, c}. Repeats are
  // legal here — this is the one lookup for which they are. An empty
  // element ("--k=" or "--k=a,,b") is an error.
  std::vector<std::string> StringList(const std::string& key,
                                      const std::string& help = "") {
    Note(key, "V1,V2,...", "", "", help);
    std::vector<std::string> out;
    auto it = values_.find(key);
    if (it == values_.end()) {
      return out;
    }
    for (const std::string& occurrence : it->second) {
      size_t begin = 0;
      for (;;) {
        const size_t comma = occurrence.find(',', begin);
        const std::string element =
            occurrence.substr(begin, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - begin);
        if (element.empty()) {
          errors_.push_back("empty element in --" + key + "='" + occurrence +
                            "'");
        } else {
          out.push_back(element);
        }
        if (comma == std::string::npos) {
          break;
        }
        begin = comma + 1;
      }
    }
    return out;
  }

  long Long(const std::string& key, long fallback,
            const std::string& help = "") {
    Note(key, "N", std::to_string(fallback), "", help);
    const std::string* raw = Scalar(key);
    if (raw == nullptr) {
      return fallback;
    }
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(raw->c_str(), &end, 10);
    if (raw->empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
      errors_.push_back("invalid integer for --" + key + ": '" + *raw + "'");
      return fallback;
    }
    return value;
  }

  // Long() constrained to [min, max]; out-of-range values are errors, not
  // silent clamps (a port of 99999 is a typo, not a request).
  long LongInRange(const std::string& key, long fallback, long min, long max,
                   const std::string& help = "") {
    Note(key, "N", std::to_string(fallback),
         "[" + std::to_string(min) + ", " + std::to_string(max) + "]", help);
    const size_t errors_before = errors_.size();
    const long value = Long(key, fallback);
    if (errors_.size() != errors_before) {
      return fallback;
    }
    if (value < min || value > max) {
      errors_.push_back("--" + key + "=" + std::to_string(value) +
                        " out of range [" + std::to_string(min) + ", " +
                        std::to_string(max) + "]");
      return fallback;
    }
    return value;
  }

  // Call after the last lookup: any flag the program never asked about is
  // unknown. False when anything went wrong; errors() lists why.
  bool ok() {
    if (!finished_) {
      finished_ = true;
      for (const auto& [key, value] : values_) {
        if (!seen_.contains(key)) {
          errors_.push_back("unknown flag --" + key);
        }
      }
    }
    return errors_.empty();
  }

  const std::vector<std::string>& errors() const { return errors_; }

  // One line per error, ready for stderr.
  std::string ErrorText() const {
    std::string out;
    for (const std::string& error : errors_) {
      out += error;
      out += '\n';
    }
    return out;
  }

  // Usage text generated from every lookup performed so far, in lookup
  // order. Call after the last lookup (the same place ok() goes) so every
  // flag the program reads is in the table.
  std::string HelpText(const std::string& program) const {
    std::vector<std::pair<std::string, std::string>> rows;
    size_t width = 0;
    for (const Spec& spec : specs_) {
      std::string left = "--" + spec.key;
      if (!spec.placeholder.empty()) {
        left += "=" + spec.placeholder;
      }
      std::string right = spec.help;
      std::string meta;
      if (!spec.fallback.empty()) {
        meta += "default " + spec.fallback;
      }
      if (!spec.range.empty()) {
        meta += (meta.empty() ? "" : ", ") + ("range " + spec.range);
      }
      if (!meta.empty()) {
        right += (right.empty() ? "(" : " (") + meta + ")";
      }
      width = std::max(width, left.size());
      rows.emplace_back(std::move(left), std::move(right));
    }
    std::string out = "usage: " + program + " [--key=value ...]\n\nflags:\n";
    for (const auto& [left, right] : rows) {
      out += "  " + left;
      if (!right.empty()) {
        out.append(width - left.size() + 2, ' ');
        out += right;
      }
      out += '\n';
    }
    return out;
  }

 private:
  struct Spec {
    std::string key;
    std::string placeholder;  // "" for bare switches, "N"/"VALUE" otherwise.
    std::string fallback;     // Rendered default ("" = no default to show).
    std::string range;        // "[min, max]" or "".
    std::string help;
  };

  // Resolves `key` as a scalar: null when absent, its single value when
  // given once. A repeated scalar is a hard error (reported once per key,
  // however many lookups see it) and resolves to null so the caller's
  // fallback applies — never a silent last-one-wins.
  const std::string* Scalar(const std::string& key) {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return nullptr;
    }
    if (it->second.size() > 1) {
      if (duplicates_reported_.insert(key).second) {
        errors_.push_back("--" + key + " given " +
                          std::to_string(it->second.size()) +
                          " times (expected at most once)");
      }
      return nullptr;
    }
    return &it->second.front();
  }

  // Records one lookup for ok()'s unknown-flag check and HelpText's table.
  // First registration of a key wins on shape; a later non-empty help
  // backfills an empty one (Long() inside LongInRange() passes none).
  void Note(const std::string& key, const std::string& placeholder,
            const std::string& fallback, const std::string& range,
            const std::string& help) {
    seen_.insert(key);
    for (Spec& spec : specs_) {
      if (spec.key == key) {
        if (spec.help.empty()) {
          spec.help = help;
        }
        return;
      }
    }
    specs_.push_back(Spec{key, placeholder, fallback, range, help});
  }

  // Every occurrence of each key, in command-line order. Scalar lookups
  // demand exactly one; StringList() consumes them all.
  std::map<std::string, std::vector<std::string>> values_;
  std::set<std::string> seen_;
  std::set<std::string> duplicates_reported_;
  std::vector<Spec> specs_;
  std::vector<std::string> errors_;
  bool finished_ = false;
};

}  // namespace flashps::flags

#endif  // FLASHPS_SRC_COMMON_FLAG_PARSER_H_
