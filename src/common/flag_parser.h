// Strict --key=value flag parsing shared by the daemons and benches.
//
// Replaces the per-binary copy-pasted FlagValue/FlagLong helpers, which
// silently turned "--port=sevenfourtwelve" into 0 (std::atol) and ignored
// unknown flags outright — a typo'd flag name meant running with defaults
// and no hint why. This parser:
//
//   - accepts only `--key=value` (and bare `--key`, for switches like
//     --help); anything else is an error,
//   - parses integers with full-string validation and range checks, so a
//     malformed value is reported instead of becoming 0,
//   - records which keys the program asked for, so ok() can report every
//     flag the program does NOT understand — call it after the last
//     lookup, print errors() + usage, and exit non-zero.
//
// Header-only; no dependencies beyond the standard library, so the
// daemons stay as self-contained as before.
#ifndef FLASHPS_SRC_COMMON_FLAG_PARSER_H_
#define FLASHPS_SRC_COMMON_FLAG_PARSER_H_

#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace flashps::flags {

class FlagParser {
 public:
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
        errors_.push_back("unrecognized argument '" + arg +
                          "' (expected --key=value)");
        continue;
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  // True when the flag was given (with or without a value).
  bool Has(const std::string& key) {
    seen_.insert(key);
    return values_.count(key) != 0;
  }

  std::string String(const std::string& key, std::string fallback) {
    seen_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? std::move(fallback) : it->second;
  }

  long Long(const std::string& key, long fallback) {
    seen_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(it->second.c_str(), &end, 10);
    if (it->second.empty() || end == nullptr || *end != '\0' ||
        errno == ERANGE) {
      errors_.push_back("invalid integer for --" + key + ": '" + it->second +
                        "'");
      return fallback;
    }
    return value;
  }

  // Long() constrained to [min, max]; out-of-range values are errors, not
  // silent clamps (a port of 99999 is a typo, not a request).
  long LongInRange(const std::string& key, long fallback, long min,
                   long max) {
    const size_t errors_before = errors_.size();
    const long value = Long(key, fallback);
    if (errors_.size() != errors_before) {
      return fallback;
    }
    if (value < min || value > max) {
      errors_.push_back("--" + key + "=" + std::to_string(value) +
                        " out of range [" + std::to_string(min) + ", " +
                        std::to_string(max) + "]");
      return fallback;
    }
    return value;
  }

  // Call after the last lookup: any flag the program never asked about is
  // unknown. False when anything went wrong; errors() lists why.
  bool ok() {
    if (!finished_) {
      finished_ = true;
      for (const auto& [key, value] : values_) {
        if (!seen_.contains(key)) {
          errors_.push_back("unknown flag --" + key);
        }
      }
    }
    return errors_.empty();
  }

  const std::vector<std::string>& errors() const { return errors_; }

  // One line per error, ready for stderr.
  std::string ErrorText() const {
    std::string out;
    for (const std::string& error : errors_) {
      out += error;
      out += '\n';
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> seen_;
  std::vector<std::string> errors_;
  bool finished_ = false;
};

}  // namespace flashps::flags

#endif  // FLASHPS_SRC_COMMON_FLAG_PARSER_H_
