#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace flashps {

namespace {

// SplitMix64, used to expand a single seed into xoshiro state.
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean > 64.0) {
    const double v = Normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Gamma(double shape) {
  // Marsaglia-Tsang for shape >= 1; boost trick for shape < 1.
  if (shape < 1.0) {
    const double u = NextDouble();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v;
    }
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a);
  const double y = Gamma(b);
  return x / (x + y);
}

Rng Rng::Split() { return Rng(NextU64()); }

ZipfSampler::ZipfSampler(int n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
}

int ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  int lo = 0;
  int hi = static_cast<int>(cdf_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace flashps
