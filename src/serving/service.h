// End-to-end service façade: the piece a downstream user instantiates.
//
// Combines the two halves of the reproduction:
//  - the timing half (cluster simulation: routing, batching, caching,
//    pipeline planning) produces per-request latency/queueing numbers, and
//  - the numerics half (DiffusionModel + ActivationStore) produces the
//    actual edited images, using the same mask-aware flow the timing half
//    accounts for.
//
// This mirrors the paper's §5 implementation: a frontend accepting edit
// requests, a scheduler, and workers with a cache engine.
#ifndef FLASHPS_SRC_SERVING_SERVICE_H_
#define FLASHPS_SRC_SERVING_SERVICE_H_

#include <memory>
#include <vector>

#include "src/cache/activation_store.h"
#include "src/model/diffusion_model.h"
#include "src/sched/scheduler.h"
#include "src/serving/worker.h"
#include "src/trace/workload.h"

namespace flashps::serving {

// A user-facing edit request: which template, where to edit (mask), and the
// edit content (prompt seed stands in for the text/image condition).
struct EditRequest {
  int template_id = 0;
  trace::Mask mask;
  uint64_t prompt_seed = 0;
  TimePoint arrival;
};

struct EditResponse {
  Matrix image;           // The edited image (real numerics).
  CompletedRequest timing; // Simulated serving timeline for the request.
  int worker_id = 0;
};

struct ServiceConfig {
  model::ModelKind model = model::ModelKind::kSdxl;
  int num_workers = 2;
  sched::RoutePolicy policy = sched::RoutePolicy::kMaskAware;
  model::NumericsConfig numerics =
      model::NumericsConfig::ForModelKind(model::ModelKind::kSdxl);
  // When false, runs exact full computation (Diffusers-equivalent) — useful
  // for producing reference images.
  bool mask_aware = true;
};

class Service {
 public:
  explicit Service(const ServiceConfig& config);

  // Serves a batch of requests (arrival order). Returns one response per
  // request, in request order. Deterministic.
  std::vector<EditResponse> Serve(const std::vector<EditRequest>& requests);

  const model::DiffusionModel& model() const { return model_; }

 private:
  ServiceConfig config_;
  model::DiffusionModel model_;
  cache::ActivationStore store_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<sched::Router> router_;
};

}  // namespace flashps::serving

#endif  // FLASHPS_SRC_SERVING_SERVICE_H_
