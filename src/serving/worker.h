// Virtual-time serving engine for one GPU worker.
//
// Implements the paper's three batching policies (§4.3, Fig. 10):
//  - kStatic: the running batch is fixed until every member finishes; new
//    arrivals wait (Diffusers-style, the [9]/[19] baseline).
//  - kContinuousNaive: step-level join/leave, but CPU-bound pre/post
//    processing executes on the denoise lane, interrupting every in-flight
//    request (the strawman of Fig. 10-Top).
//  - kContinuousDisaggregated: FlashPS — pre/post run on a separate CPU lane
//    (process), so a request joins the batch within one denoising step and
//    the denoise lane is never interrupted (Fig. 10-Bottom).
//
// Compute policy (ComputeMode) is orthogonal: the same engine serves
// Diffusers (kFull), FISEdit (kSparse, batch limited to 1), TeaCache
// (kTeaCache, step skipping) and FlashPS (kMaskAwareY + bubble-free DP),
// mirroring how the paper implements all baselines on one substrate.
#ifndef FLASHPS_SRC_SERVING_WORKER_H_
#define FLASHPS_SRC_SERVING_WORKER_H_

#include <deque>
#include <optional>
#include <vector>

#include "src/cache/cache_engine.h"
#include "src/common/time.h"
#include "src/device/device.h"
#include "src/model/timing.h"
#include "src/trace/workload.h"

namespace flashps::serving {

enum class BatchPolicy { kStatic, kContinuousNaive, kContinuousDisaggregated };

std::string ToString(BatchPolicy policy);

// Cost model for mixed-resolution batches — requests whose latent grid
// differs from the `model_config.tokens` image the engine was profiled at.
//  - kPatchGranular: the panel holds exactly each member's masked tokens,
//    so a member contributes mask_ratio * (own_tokens / profiled_tokens)
//    to the step's work (PatchedServe-style patch batching over the
//    gathered kernels).
//  - kPadToLargest: the naive baseline pads every member's latent to the
//    batch's largest grid, so each member is charged its mask FRACTION of
//    that largest grid — the whole batch serializes behind its biggest
//    member.
// A batch whose members all sit at the profiled grid (or carry no
// resolution at all) costs the same under both modes.
enum class HybridMode { kPatchGranular, kPadToLargest };

std::string ToString(HybridMode mode);

// The four serving systems of the paper's evaluation (§6.1).
enum class SystemKind { kFlashPS, kDiffusers, kFISEdit, kTeaCache };

std::string ToString(SystemKind kind);

struct EngineConfig {
  model::TimingConfig model_config;
  model::ComputeMode mode = model::ComputeMode::kMaskAwareY;
  BatchPolicy batching = BatchPolicy::kContinuousDisaggregated;
  int max_batch = 8;
  // Fraction of denoising steps TeaCache skips (configured as the paper
  // does: minimal latency at acceptable quality).
  double teacache_skip_fraction = 0.6;
  // false = strawman pipeline (always use the cache for every block);
  // true = Algorithm 1's bubble-free selection.
  bool use_pipeline_planner = true;
  // Per-step batch-organization overhead (§6.6: ~1.2 ms) in continuous
  // modes.
  Duration batch_org_overhead = Duration::Micros(1200);
  // How mixed-resolution batch members are charged (see HybridMode).
  HybridMode hybrid = HybridMode::kPatchGranular;
  // Latent serialization + IPC to the post-processing process
  // (§6.6: 1.1 ms + 1.3 ms), charged per completion under disaggregation.
  Duration handoff_overhead = Duration::Micros(2400);

  // Baseline/system presets matching §6.1 (FISEdit: batch 1, sparse, static;
  // Diffusers: full compute, static; TeaCache: step skipping, static;
  // FlashPS: mask-aware + continuous disaggregated batching).
  static EngineConfig ForSystem(SystemKind system, model::ModelKind model);
};

struct CompletedRequest {
  trace::Request request;
  TimePoint arrival;       // At the worker.
  TimePoint exec_start;    // Preprocessing began.
  TimePoint denoise_done;  // Left the running batch.
  TimePoint completion;    // Post-processing finished.
  int interruptions = 0;   // Times its denoising was interrupted by CPU work.

  Duration queueing() const { return exec_start - arrival; }
  Duration inference() const { return denoise_done - exec_start; }
  Duration total() const { return completion - arrival; }
};

class Worker {
 public:
  Worker(int id, EngineConfig config);

  // Optional hierarchical cache: when set, a request may only join the batch
  // once its template cache is host-resident; promotion starts at arrival
  // (prefetch while queued, §4.2). Templates must be registered by the
  // caller. Not owned.
  void AttachCache(cache::CacheEngine* cache_engine) { cache_ = cache_engine; }

  // Request arrives at the worker at time `now` (>= previous events).
  void Enqueue(const trace::Request& request, TimePoint now);

  // Processes work up to time `t`. Idempotent for t <= current time.
  void AdvanceTo(TimePoint t);

  // Runs until all accepted requests complete; returns the finish time.
  TimePoint Drain();

  std::vector<CompletedRequest> TakeCompleted();

  // -- Status for the cluster scheduler --
  int id() const { return id_; }
  const EngineConfig& config() const { return config_; }
  TimePoint now() const { return now_; }
  // Effective mask ratios (masked tokens over the profiled image) of
  // requests in the running batch — equal to the raw ratios when every
  // request is at the profiled resolution.
  std::vector<double> RunningRatios() const;
  // Effective mask ratios of requests waiting (queued or preprocessing).
  std::vector<double> WaitingRatios() const;
  // Total denoising steps outstanding across running + waiting requests.
  int64_t RemainingSteps() const;
  int running_batch_size() const { return static_cast<int>(batch_.size()); }
  int waiting_count() const { return static_cast<int>(waiting_.size()); }
  bool HasSlack() const {
    return running_batch_size() + waiting_count() < config_.max_batch;
  }
  bool idle() const { return batch_.empty() && waiting_.empty(); }

  // Per-step latency of a hypothetical batch with the given mask ratios
  // under this worker's config (used by tests and throughput benches).
  Duration StepLatency(const std::vector<double>& ratios) const;

  // Steps a request of this config executes (TeaCache runs fewer). For
  // TeaCache the batch size matters: a batched step can only be skipped
  // when every batch member's gate agrees, so the effective skip fraction
  // shrinks as the batch grows — this is why TeaCache's throughput
  // plateaus in Fig. 14 while FlashPS keeps scaling.
  int EffectiveSteps(int batch_size = 1) const;

 private:
  struct Waiting {
    trace::Request request;
    TimePoint arrival;
    // Earliest time it may join the batch (preprocessing done and, when a
    // cache engine is attached, template cache host-resident).
    TimePoint ready_at;
    bool pre_charged = false;  // Preprocessing already ran (disaggregated).
  };

  struct InFlight {
    trace::Request request;
    TimePoint arrival;
    TimePoint exec_start;
    int steps_left = 0;
    int interruptions = 0;
  };

  // Masked tokens of `request` over the profiled image's token count
  // (mask_ratio itself for resolution-less requests).
  double EffectiveRatio(const trace::Request& request) const;
  // The running batch's per-member step ratios under config_.hybrid.
  std::vector<double> StepRatios() const;
  // Admits eligible waiting requests; returns true if any joined.
  bool Admit();
  void RunOneStep();
  void CompleteFinished();
  std::optional<TimePoint> NextWakeup() const;

  int id_;
  EngineConfig config_;
  device::DeviceSpec spec_;
  cache::CacheEngine* cache_ = nullptr;
  TimePoint now_;
  device::StreamTimeline cpu_lane_;  // Disaggregated pre/post processes.
  std::deque<Waiting> waiting_;
  std::vector<InFlight> batch_;
  std::vector<CompletedRequest> completed_;
};

}  // namespace flashps::serving

#endif  // FLASHPS_SRC_SERVING_WORKER_H_
