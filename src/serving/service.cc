#include "src/serving/service.h"

#include <algorithm>
#include <cassert>

namespace flashps::serving {

Service::Service(const ServiceConfig& config)
    : config_(config), model_(config.numerics) {
  const EngineConfig engine = EngineConfig::ForSystem(
      config.mask_aware ? SystemKind::kFlashPS : SystemKind::kDiffusers,
      config.model);
  for (int i = 0; i < config.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(i, engine));
  }
  router_ =
      sched::MakeRouter(config.policy, engine.model_config, engine.mode);
}

std::vector<EditResponse> Service::Serve(
    const std::vector<EditRequest>& requests) {
  // Timing half: route and simulate.
  std::vector<int> placement(requests.size(), 0);
  for (size_t i = 0; i < requests.size(); ++i) {
    const EditRequest& request = requests[i];
    assert(i == 0 || requests[i - 1].arrival <= request.arrival);
    for (auto& worker : workers_) {
      worker->AdvanceTo(request.arrival);
    }
    std::vector<sched::WorkerStatus> statuses;
    for (const auto& worker : workers_) {
      sched::WorkerStatus s;
      s.worker_id = worker->id();
      s.running_ratios = worker->RunningRatios();
      s.waiting_ratios = worker->WaitingRatios();
      s.remaining_steps = worker->RemainingSteps();
      s.max_batch = worker->config().max_batch;
      s.has_slack = worker->HasSlack();
      statuses.push_back(std::move(s));
    }
    trace::Request r;
    r.id = static_cast<uint64_t>(i);
    r.arrival = request.arrival;
    r.template_id = request.template_id;
    r.mask_ratio = request.mask.ratio();
    r.denoise_steps = config_.numerics.num_steps;
    const int target = router_->Route(r, statuses);
    placement[i] = target;
    workers_[target]->Enqueue(r, request.arrival);
  }

  std::vector<CompletedRequest> timings(requests.size());
  for (auto& worker : workers_) {
    worker->Drain();
    for (auto& done : worker->TakeCompleted()) {
      timings[done.request.id] = done;
    }
  }

  // Numerics half: produce the actual images with the same compute policy.
  std::vector<EditResponse> responses;
  responses.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const EditRequest& request = requests[i];
    model::DiffusionModel::RunOptions options;
    if (config_.mask_aware) {
      options.mode = model::ComputeMode::kMaskAwareY;
      options.cache = &store_.GetOrRegister(model_, request.template_id);
      options.mask = &request.mask;
    }
    EditResponse response;
    response.image = model_.EditImage(request.template_id, request.mask,
                                      request.prompt_seed, options);
    response.timing = timings[i];
    response.worker_id = placement[i];
    responses.push_back(std::move(response));
  }
  return responses;
}

}  // namespace flashps::serving
