#include "src/serving/worker.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/pipeline/pipeline.h"

namespace flashps::serving {

std::string ToString(BatchPolicy policy) {
  switch (policy) {
    case BatchPolicy::kStatic:
      return "static";
    case BatchPolicy::kContinuousNaive:
      return "continuous-naive";
    case BatchPolicy::kContinuousDisaggregated:
      return "continuous-disaggregated";
  }
  return "?";
}

std::string ToString(HybridMode mode) {
  switch (mode) {
    case HybridMode::kPatchGranular:
      return "patch-granular";
    case HybridMode::kPadToLargest:
      return "pad-to-largest";
  }
  return "?";
}

std::string ToString(SystemKind kind) {
  switch (kind) {
    case SystemKind::kFlashPS:
      return "FlashPS";
    case SystemKind::kDiffusers:
      return "Diffusers";
    case SystemKind::kFISEdit:
      return "FISEdit";
    case SystemKind::kTeaCache:
      return "TeaCache";
  }
  return "?";
}

EngineConfig EngineConfig::ForSystem(SystemKind system,
                                     model::ModelKind model) {
  EngineConfig c;
  c.model_config = model::TimingConfig::Get(model);
  // §6.2: max batch size 4 for SD2.1 workers, 8 for SDXL and Flux.
  c.max_batch = model == model::ModelKind::kSd21 ? 4 : 8;
  switch (system) {
    case SystemKind::kFlashPS:
      c.mode = model::ComputeMode::kMaskAwareY;
      c.batching = BatchPolicy::kContinuousDisaggregated;
      c.use_pipeline_planner = true;
      break;
    case SystemKind::kDiffusers:
      c.mode = model::ComputeMode::kFull;
      c.batching = BatchPolicy::kStatic;
      break;
    case SystemKind::kFISEdit:
      // FISEdit cannot batch requests with different mask ratios (§2.4).
      c.mode = model::ComputeMode::kSparse;
      c.batching = BatchPolicy::kStatic;
      c.max_batch = 1;
      // The TimingConfig default is this repo's measured gathered-kernel
      // efficiency (~dense parity); FISEdit's hand-written GPU sparse
      // kernels ran well below dense-library rates, a large part of why
      // it loses end-to-end despite fewer FLOPs (§2.4, §6.2).
      c.model_config.sparse_kernel_efficiency = 0.5;
      break;
    case SystemKind::kTeaCache:
      c.mode = model::ComputeMode::kTeaCache;
      c.batching = BatchPolicy::kStatic;
      // On the DiT (Flux), aggressive timestep skipping is visibly lossy,
      // so the latency-minimizing-at-acceptable-quality configuration
      // (§6.1) skips fewer steps than on the UNet models.
      if (model == model::ModelKind::kFlux) {
        c.teacache_skip_fraction = 0.52;
      }
      break;
  }
  return c;
}

Worker::Worker(int id, EngineConfig config)
    : id_(id),
      config_(std::move(config)),
      spec_(device::DeviceSpec::Get(config_.model_config.gpu)) {}

int Worker::EffectiveSteps(int batch_size) const {
  const int steps = config_.model_config.denoise_steps;
  if (config_.mode != model::ComputeMode::kTeaCache) {
    return steps;
  }
  // All batch members must agree to skip a step. The timestep-embedding
  // part of the gate is shared (correlated), the content part is not; the
  // agreement probability decays gently with batch size.
  const double b = std::max(1, batch_size);
  const double agreement = 0.85 + 0.15 / b;
  const int computed = static_cast<int>(std::lround(
      steps * (1.0 - config_.teacache_skip_fraction * agreement)));
  return std::max(1, computed);
}

void Worker::Enqueue(const trace::Request& request, TimePoint now) {
  Waiting w;
  w.request = request;
  w.arrival = now;
  w.ready_at = now;
  const bool mask_aware = config_.mode == model::ComputeMode::kMaskAwareY ||
                          config_.mode == model::ComputeMode::kMaskAwareKV;
  if (cache_ != nullptr && mask_aware) {
    // Prefetch while queued (§4.2): the promotion overlaps queueing delay.
    w.ready_at = Later(w.ready_at,
                       cache_->EnsureHostResident(request.template_id, now));
  }
  if (config_.batching == BatchPolicy::kContinuousDisaggregated) {
    // Preprocessing starts immediately on the CPU lane.
    const auto span = cpu_lane_.Enqueue(now, config_.model_config.pre_latency);
    w.ready_at = Later(w.ready_at, span.end);
    w.pre_charged = true;
  }
  waiting_.push_back(std::move(w));
}

double Worker::EffectiveRatio(const trace::Request& request) const {
  if (!request.has_resolution()) {
    return request.mask_ratio;
  }
  const double profiled = std::max(1, config_.model_config.tokens);
  return request.mask_ratio *
         (static_cast<double>(request.grid_h) *
          static_cast<double>(request.grid_w) / profiled);
}

std::vector<double> Worker::RunningRatios() const {
  std::vector<double> out;
  out.reserve(batch_.size());
  for (const auto& r : batch_) {
    out.push_back(EffectiveRatio(r.request));
  }
  return out;
}

std::vector<double> Worker::WaitingRatios() const {
  std::vector<double> out;
  out.reserve(waiting_.size());
  for (const auto& w : waiting_) {
    out.push_back(EffectiveRatio(w.request));
  }
  return out;
}

std::vector<double> Worker::StepRatios() const {
  if (config_.hybrid == HybridMode::kPatchGranular) {
    return RunningRatios();
  }
  // Pad-to-largest: every member is charged its mask fraction of the
  // largest grid in the batch (the profiled grid when no member exceeds
  // it), so one big member inflates everyone.
  const double profiled = std::max(1, config_.model_config.tokens);
  double largest = profiled;
  for (const auto& r : batch_) {
    if (r.request.has_resolution()) {
      largest = std::max(largest,
                         static_cast<double>(r.request.grid_h) *
                             static_cast<double>(r.request.grid_w));
    }
  }
  std::vector<double> out;
  out.reserve(batch_.size());
  for (const auto& r : batch_) {
    out.push_back(r.request.mask_ratio * (largest / profiled));
  }
  return out;
}

int64_t Worker::RemainingSteps() const {
  int64_t total = 0;
  for (const auto& r : batch_) {
    total += r.steps_left;
  }
  total += static_cast<int64_t>(waiting_.size()) * EffectiveSteps();
  return total;
}

Duration Worker::StepLatency(const std::vector<double>& ratios) const {
  if (ratios.empty()) {
    return Duration::Zero();
  }
  const Duration fixed = config_.model_config.step_overhead;
  const auto workload =
      model::BuildStepWorkload(config_.model_config, ratios, config_.mode);
  const auto d = model::ComputeStepDurations(config_.model_config, spec_, workload);
  const bool mask_aware = config_.mode == model::ComputeMode::kMaskAwareY ||
                          config_.mode == model::ComputeMode::kMaskAwareKV;
  Duration block_latency;
  if (!mask_aware) {
    for (const Duration c : d.compute_without_cache) {
      block_latency += c;
    }
  } else if (config_.use_pipeline_planner) {
    block_latency = pipeline::PlanBubbleFree(d.compute_with_cache,
                                             d.compute_without_cache, d.load)
                        .latency;
  } else {
    block_latency =
        pipeline::StrawmanPipelineLatency(d.compute_with_cache, d.load);
  }
  return fixed + block_latency + d.non_tf;
}

bool Worker::Admit() {
  bool admitted = false;
  if (config_.batching == BatchPolicy::kStatic && !batch_.empty()) {
    return false;  // The running batch must fully complete first.
  }
  // FIFO preference, but a request whose cache is still promoting does not
  // block ready requests behind it (they overtake, as with any
  // prefetch-while-queued design).
  auto next_ready = [this]() {
    for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
      if (it->ready_at <= now_) {
        return it;
      }
    }
    return waiting_.end();
  };
  for (auto it = next_ready();
       it != waiting_.end() &&
       static_cast<int>(batch_.size()) < config_.max_batch;
       it = next_ready()) {
    Waiting w = std::move(*it);
    waiting_.erase(it);

    InFlight inflight;
    inflight.request = w.request;
    inflight.arrival = w.arrival;
    inflight.exec_start = now_;
    inflight.steps_left =
        EffectiveSteps(static_cast<int>(batch_.size()) + 1);

    if (!w.pre_charged) {
      // Pre-processing executes on the denoise lane, interrupting every
      // already-running request (Fig. 10-Top).
      for (auto& member : batch_) {
        ++member.interruptions;
      }
      now_ = now_ + config_.model_config.pre_latency;
    }
    if (cache_ != nullptr) {
      cache_->Touch(w.request.template_id, now_);
    }
    batch_.push_back(std::move(inflight));
    admitted = true;
  }
  return admitted;
}

void Worker::RunOneStep() {
  assert(!batch_.empty());
  Duration step = StepLatency(StepRatios());
  if (config_.batching != BatchPolicy::kStatic) {
    step += config_.batch_org_overhead;  // §6.6 batching overhead.
  }
  now_ = now_ + step;
  for (auto& member : batch_) {
    --member.steps_left;
  }
}

void Worker::CompleteFinished() {
  if (config_.batching == BatchPolicy::kStatic) {
    // The whole batch leaves together.
    const bool all_done = std::all_of(
        batch_.begin(), batch_.end(),
        [](const InFlight& r) { return r.steps_left <= 0; });
    if (!all_done) {
      return;
    }
    const TimePoint denoise_end = now_;  // The batch leaves as a unit.
    for (auto& member : batch_) {
      CompletedRequest done;
      done.request = member.request;
      done.arrival = member.arrival;
      done.exec_start = member.exec_start;
      done.denoise_done = denoise_end;
      now_ = now_ + config_.model_config.post_latency;
      done.completion = now_;
      done.interruptions = member.interruptions;
      completed_.push_back(done);
    }
    batch_.clear();
    return;
  }

  for (auto it = batch_.begin(); it != batch_.end();) {
    if (it->steps_left > 0) {
      ++it;
      continue;
    }
    CompletedRequest done;
    done.request = it->request;
    done.arrival = it->arrival;
    done.exec_start = it->exec_start;
    done.denoise_done = now_;
    done.interruptions = it->interruptions;
    if (config_.batching == BatchPolicy::kContinuousNaive) {
      // Post-processing on the denoise lane interrupts the others.
      now_ = now_ + config_.model_config.post_latency;
      done.completion = now_;
      it = batch_.erase(it);
      for (auto& member : batch_) {
        ++member.interruptions;
      }
    } else {
      // Disaggregated: serialize + hand off, post runs on the CPU lane.
      now_ = now_ + config_.handoff_overhead;
      const auto span =
          cpu_lane_.Enqueue(now_, config_.model_config.post_latency);
      done.completion = span.end;
      it = batch_.erase(it);
    }
    completed_.push_back(done);
  }
}

std::optional<TimePoint> Worker::NextWakeup() const {
  std::optional<TimePoint> wake;
  for (const auto& w : waiting_) {
    if (!wake || w.ready_at < *wake) {
      wake = w.ready_at;
    }
  }
  return wake;
}

void Worker::AdvanceTo(TimePoint t) {
  while (now_ < t) {
    Admit();
    if (batch_.empty()) {
      const auto wake = NextWakeup();
      if (!wake.has_value()) {
        // Idle: leave the clock at the last event so drain/makespan
        // measurements reflect real completion times.
        return;
      }
      if (*wake > t) {
        now_ = t;
        return;
      }
      now_ = Later(now_, *wake);
      continue;
    }
    RunOneStep();
    CompleteFinished();
    // In continuous modes new requests may join at the next step boundary;
    // the loop re-admits at the top.
  }
}

TimePoint Worker::Drain() {
  while (!idle()) {
    const auto wake = NextWakeup();
    TimePoint target = now_ + Duration::Seconds(3600.0);
    if (batch_.empty() && wake.has_value()) {
      target = Later(*wake + Duration::Micros(1), target);
    }
    AdvanceTo(target);
  }
  // Disaggregated post-processing may still be running on the CPU lane
  // after the denoise lane went idle.
  return Later(now_, cpu_lane_.free_at());
}

std::vector<CompletedRequest> Worker::TakeCompleted() {
  std::vector<CompletedRequest> out;
  out.swap(completed_);
  return out;
}

}  // namespace flashps::serving
