// Cluster-scale discrete-event simulation: Poisson request traffic routed by
// a scheduler across N worker replicas, each running the serving engine in
// virtual time. This is the substrate for the paper's end-to-end serving
// experiments (Fig. 4, Fig. 12, Fig. 16).
#ifndef FLASHPS_SRC_CLUSTER_SIMULATION_H_
#define FLASHPS_SRC_CLUSTER_SIMULATION_H_

#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/sched/scheduler.h"
#include "src/serving/worker.h"
#include "src/trace/workload.h"

namespace flashps::cluster {

struct ClusterConfig {
  int num_workers = 8;
  serving::EngineConfig engine;
  sched::RoutePolicy policy = sched::RoutePolicy::kMaskAware;
  // When true, each worker gets a hierarchical cache engine with the given
  // host capacity and the first `num_templates` templates registered
  // (pre-warmed: templates have all been edited before, §2.2).
  bool use_cache_engine = false;
  uint64_t host_capacity_bytes = 1ULL << 40;
  int num_templates = 970;
  // Routing decision cost (§6.6: ~0.6 ms) added to each request's path.
  Duration scheduler_overhead = Duration::Micros(600);
};

struct SimResult {
  std::vector<serving::CompletedRequest> completed;
  StatAccumulator total_latency_s;
  StatAccumulator queueing_s;
  StatAccumulator inference_s;
  StatAccumulator interruptions;
  double makespan_s = 0.0;
  double throughput_rps = 0.0;
};

SimResult RunClusterSim(const ClusterConfig& config,
                        const std::vector<trace::Request>& requests);

// Closed-loop engine throughput at a fixed batch size (Fig. 14): keeps the
// worker's batch at `batch_size` and reports steady-state requests/second.
double MeasureEngineThroughput(const serving::EngineConfig& engine,
                               int batch_size, trace::TraceKind trace_kind,
                               int num_requests = 64, uint64_t seed = 7);

}  // namespace flashps::cluster

#endif  // FLASHPS_SRC_CLUSTER_SIMULATION_H_
