#include "src/cluster/simulation.h"

#include <algorithm>
#include <cassert>

namespace flashps::cluster {

SimResult RunClusterSim(const ClusterConfig& config,
                        const std::vector<trace::Request>& requests) {
  assert(config.num_workers > 0);

  std::vector<std::unique_ptr<serving::Worker>> workers;
  std::vector<std::unique_ptr<cache::CacheEngine>> caches;
  const auto spec = device::DeviceSpec::Get(config.engine.model_config.gpu);
  for (int i = 0; i < config.num_workers; ++i) {
    workers.push_back(std::make_unique<serving::Worker>(i, config.engine));
    if (config.use_cache_engine) {
      auto cache_engine = std::make_unique<cache::CacheEngine>(
          config.host_capacity_bytes, spec);
      const uint64_t bytes =
          config.engine.model_config.TemplateCacheStoreBytes(
              config.engine.mode);
      for (int t = 0; t < config.num_templates; ++t) {
        cache_engine->RegisterTemplate(t, bytes, TimePoint());
      }
      // Templates in the trace beyond the pre-warmed set are registered too
      // (their registration pass ran on first historical use, §2.2); the
      // host tier decides what stays resident.
      for (const auto& request : requests) {
        cache_engine->RegisterTemplate(request.template_id, bytes, TimePoint());
      }
      workers.back()->AttachCache(cache_engine.get());
      caches.push_back(std::move(cache_engine));
    }
  }

  auto router = sched::MakeRouter(config.policy, config.engine.model_config,
                                  config.engine.mode);

  for (const trace::Request& request : requests) {
    const TimePoint dispatch = request.arrival + config.scheduler_overhead;
    for (auto& worker : workers) {
      worker->AdvanceTo(dispatch);
    }
    std::vector<sched::WorkerStatus> statuses;
    statuses.reserve(workers.size());
    for (const auto& worker : workers) {
      sched::WorkerStatus s;
      s.worker_id = worker->id();
      s.running_ratios = worker->RunningRatios();
      s.waiting_ratios = worker->WaitingRatios();
      s.remaining_steps = worker->RemainingSteps();
      s.max_batch = worker->config().max_batch;
      s.has_slack = worker->HasSlack();
      statuses.push_back(std::move(s));
    }
    const int target = router->Route(request, statuses);
    assert(target >= 0 && target < config.num_workers);
    workers[target]->Enqueue(request, dispatch);
  }

  SimResult result;
  TimePoint end;
  for (auto& worker : workers) {
    end = Later(end, worker->Drain());
    for (auto& done : worker->TakeCompleted()) {
      result.total_latency_s.Add(done.total().seconds());
      result.queueing_s.Add(done.queueing().seconds());
      result.inference_s.Add(done.inference().seconds());
      result.interruptions.Add(done.interruptions);
      result.completed.push_back(std::move(done));
    }
  }
  std::sort(result.completed.begin(), result.completed.end(),
            [](const auto& a, const auto& b) {
              return a.request.id < b.request.id;
            });
  result.makespan_s = end.seconds();
  if (result.makespan_s > 0.0) {
    result.throughput_rps =
        static_cast<double>(result.completed.size()) / result.makespan_s;
  }
  return result;
}

double MeasureEngineThroughput(const serving::EngineConfig& engine,
                               int batch_size, trace::TraceKind trace_kind,
                               int num_requests, uint64_t seed) {
  assert(batch_size > 0);
  serving::EngineConfig config = engine;
  config.max_batch = batch_size;
  serving::Worker worker(0, config);

  // Closed loop: all requests queued at t=0; the worker always has a full
  // batch available, so the measurement reflects engine capacity.
  Rng rng(seed);
  const trace::MaskRatioDistribution ratios(trace_kind);
  for (int i = 0; i < num_requests; ++i) {
    trace::Request r;
    r.id = static_cast<uint64_t>(i);
    r.template_id = i % 16;
    r.mask_ratio = ratios.Sample(rng);
    r.denoise_steps = config.model_config.denoise_steps;
    worker.Enqueue(r, TimePoint());
  }
  const TimePoint end = worker.Drain();
  return static_cast<double>(num_requests) / end.seconds();
}

}  // namespace flashps::cluster
