// Analytic device model standing in for the paper's NVIDIA A10 / H800 GPUs.
//
// FlashPS's experiments measure latency *structure* — linear scaling of
// compute and cache-load latency with mask ratio, pipeline bubbles between a
// compute stream and a copy stream, and queueing that follows from service
// times. A roofline-style analytic model over a virtual clock reproduces that
// structure deterministically on a CPU-only host. Absolute constants are
// calibrated against the numbers the paper publishes (see calibration.h).
#ifndef FLASHPS_SRC_DEVICE_DEVICE_H_
#define FLASHPS_SRC_DEVICE_DEVICE_H_

#include <cstdint>
#include <string>

#include "src/common/time.h"

namespace flashps::device {

enum class GpuKind { kA10, kH800 };

std::string ToString(GpuKind kind);

// Static description of one GPU worker's hardware.
struct DeviceSpec {
  GpuKind kind = GpuKind::kH800;
  // Effective dense-math throughput (FLOP/s) for diffusion inference kernels.
  // Far below peak: it folds in attention memory-boundness, kernel mix and
  // small batch sizes, and is calibrated so full-model latencies match §3.1
  // and Fig. 15 of the paper.
  double compute_flops = 80e12;
  // Effective host->HBM bandwidth (B/s) for *pipelined* cached-activation
  // loads: asynchronous copies from pinned staging buffers on the copy
  // stream. Gathering (1-m)*L non-contiguous token rows keeps this below
  // the PCIe link rate, but well above the synchronous path.
  double gather_load_bw = 6.0e9;
  // Effective bandwidth (B/s) of *naive* synchronous loads (blocking,
  // pageable host memory, one transfer per block) — the strawman of
  // Fig. 4-Left, which roughly doubles inference latency.
  double sync_load_bw = 1.1e9;
  // Contiguous host->HBM copy bandwidth (B/s), e.g. for latents.
  double pcie_bw = 50e9;
  // Disk / remote-storage read bandwidth into host memory (B/s). Calibrated
  // from §4.2: loading a 2.6 GiB SDXL template cache from disk takes 6.4 s.
  double disk_bw = 0.44e9;
  // Per-kernel-launch overhead charged to each enqueued compute op.
  Duration launch_overhead = Duration::Micros(15);
  // HBM capacity (bytes) available for cached activations of the running
  // batch (most HBM is weights + workspace).
  uint64_t hbm_cache_bytes = 8ULL << 30;

  // Latency to execute `flops` of dense math on this device.
  Duration ComputeLatency(double flops) const;
  // Latency to gather-load `bytes` of cached activations from host memory
  // on the copy stream (pipelined path).
  Duration GatherLoadLatency(uint64_t bytes) const;
  // Latency of the naive synchronous load of `bytes` (blocks computation).
  Duration SyncLoadLatency(uint64_t bytes) const;
  // Latency to stream `bytes` contiguously over PCIe.
  Duration PcieLatency(uint64_t bytes) const;
  // Latency to read `bytes` from secondary storage into host memory.
  Duration DiskLatency(uint64_t bytes) const;

  static DeviceSpec Get(GpuKind kind);
};

// A hardware queue (CUDA-stream analogue): ops run in FIFO order; an op
// enqueued at `ready` starts at max(ready, stream free time).
class StreamTimeline {
 public:
  struct Span {
    TimePoint start;
    TimePoint end;
  };

  // Schedules work of length `duration` that may not start before `ready`.
  // Returns the realized [start, end) span and advances the stream.
  Span Enqueue(TimePoint ready, Duration duration);

  TimePoint free_at() const { return free_at_; }
  // Total time the stream sat idle between ops (pipeline bubbles).
  Duration idle_time() const { return idle_; }
  // Total busy time.
  Duration busy_time() const { return busy_; }

  void Reset(TimePoint t = TimePoint());

 private:
  TimePoint free_at_;
  Duration idle_;
  Duration busy_;
  bool first_op_done_ = false;
};

}  // namespace flashps::device

#endif  // FLASHPS_SRC_DEVICE_DEVICE_H_
