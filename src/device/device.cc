#include "src/device/device.h"

#include "src/device/calibration.h"

namespace flashps::device {

std::string ToString(GpuKind kind) {
  switch (kind) {
    case GpuKind::kA10:
      return "A10";
    case GpuKind::kH800:
      return "H800";
  }
  return "?";
}

Duration DeviceSpec::ComputeLatency(double flops) const {
  return launch_overhead + Duration::Seconds(flops / compute_flops);
}

Duration DeviceSpec::GatherLoadLatency(uint64_t bytes) const {
  return Duration::Seconds(static_cast<double>(bytes) / gather_load_bw);
}

Duration DeviceSpec::SyncLoadLatency(uint64_t bytes) const {
  return Duration::Seconds(static_cast<double>(bytes) / sync_load_bw);
}

Duration DeviceSpec::PcieLatency(uint64_t bytes) const {
  return Duration::Seconds(static_cast<double>(bytes) / pcie_bw);
}

Duration DeviceSpec::DiskLatency(uint64_t bytes) const {
  return Duration::Seconds(static_cast<double>(bytes) / disk_bw);
}

DeviceSpec DeviceSpec::Get(GpuKind kind) {
  DeviceSpec spec;
  spec.kind = kind;
  switch (kind) {
    case GpuKind::kA10:
      spec.compute_flops = calibration::kA10EffectiveFlops;
      spec.gather_load_bw = calibration::kA10GatherLoadBw;
      spec.sync_load_bw = calibration::kA10SyncLoadBw;
      spec.pcie_bw = calibration::kA10PcieBw;
      spec.disk_bw = calibration::kDiskBw;
      spec.hbm_cache_bytes = 4ULL << 30;
      break;
    case GpuKind::kH800:
      spec.compute_flops = calibration::kH800EffectiveFlops;
      spec.gather_load_bw = calibration::kH800GatherLoadBw;
      spec.sync_load_bw = calibration::kH800SyncLoadBw;
      spec.pcie_bw = calibration::kH800PcieBw;
      spec.disk_bw = calibration::kDiskBw;
      spec.hbm_cache_bytes = 16ULL << 30;
      break;
  }
  return spec;
}

StreamTimeline::Span StreamTimeline::Enqueue(TimePoint ready, Duration duration) {
  const TimePoint start = Later(ready, free_at_);
  if (first_op_done_ && start > free_at_) {
    idle_ += start - free_at_;
  }
  const TimePoint end = start + duration;
  free_at_ = end;
  busy_ += duration;
  first_op_done_ = true;
  return Span{start, end};
}

void StreamTimeline::Reset(TimePoint t) {
  free_at_ = t;
  idle_ = Duration::Zero();
  busy_ = Duration::Zero();
  first_op_done_ = false;
}

}  // namespace flashps::device
