// Calibration constants for the analytic device model.
//
// Each constant is anchored to a number the paper publishes; none of the
// algorithms under test depend on the absolute values, only on the regimes
// they induce (e.g. "cache loading is comparable to mask-aware compute",
// which is what makes the bubble-free pipeline matter).
//
// Anchors used:
//  - §3.1: SDXL on H800 at mask ratio 0.2 takes 2.27 s with Y-caching
//    (2.06 s with KV-caching).
//  - Fig. 15-Right: mask ratio 0.2 speedups are 1.3x (SD2.1/A10),
//    2.2x (SDXL/H800), 1.9x (Flux/H800).
//  - Fig. 4-Left: sequential cache loading inflates SDXL/H800 latency by
//    ~102% versus compute-only, i.e. per-step load latency is of the same
//    order as per-step mask-aware compute. Cached-activation loads gather
//    scattered token rows, so their effective bandwidth is latency-bound and
//    far below the PCIe link rate.
//  - §4.2: an SDXL template's cache is ~2.6 GiB and loads from disk in
//    ~6.4 s, giving a ~0.44 GB/s disk read rate.
//  - §1: generating a 1024x1024 SDXL image costs 676 TFLOPs (with CFG).
#ifndef FLASHPS_SRC_DEVICE_CALIBRATION_H_
#define FLASHPS_SRC_DEVICE_CALIBRATION_H_

namespace flashps::device::calibration {

// Effective dense throughput. H800: derived from SDXL full-image latency of
// ~5.0 s (= 2.27 s x 2.2 speedup) for ~400 TFLOP of work. A10: scaled by the
// A10:H800 dense-rate gap so SD2.1 full generation lands near 8 s.
inline constexpr double kH800EffectiveFlops = 80e12;
inline constexpr double kA10EffectiveFlops = 18e12;

// Host->HBM bandwidth for *pipelined* cached-activation loads: async
// copies via pinned staging buffers, gathering scattered token rows.
inline constexpr double kH800GatherLoadBw = 2.5e9;
inline constexpr double kA10GatherLoadBw = 2.5e9;

// Bandwidth of *naive* synchronous loads (blocking pageable transfers, one
// per block) -- the Fig. 4-Left strawman. Calibrated so sequential loading
// roughly doubles SDXL/H800 inference latency (~+102%).
inline constexpr double kH800SyncLoadBw = 1.1e9;
inline constexpr double kA10SyncLoadBw = 0.7e9;

// Contiguous PCIe rates (Gen5 x16 for the H800 host, Gen4 x16 for A10).
inline constexpr double kH800PcieBw = 50e9;
inline constexpr double kA10PcieBw = 25e9;

// Disk/remote storage read rate (2.6 GiB in 6.4 s, §4.2).
inline constexpr double kDiskBw = 0.44e9;

}  // namespace flashps::device::calibration

#endif  // FLASHPS_SRC_DEVICE_CALIBRATION_H_
