// Workload generation: mask-ratio distributions, irregular mask geometry,
// template popularity and request arrival processes.
//
// The distributions are parametric substitutes fitted to the statistics the
// paper reports (§2.2, Fig. 3): production trace mean mask ratio 0.11, public
// trace mean 0.19, VITON-HD mean 0.35, all with heavy right tails; 970
// templates reused ~35k times each with skewed popularity.
#ifndef FLASHPS_SRC_TRACE_WORKLOAD_H_
#define FLASHPS_SRC_TRACE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace flashps::trace {

// Which empirical mask-ratio distribution to sample from.
enum class TraceKind {
  kProduction,  // FlashPS authors' 14-day trace, mean ratio 0.11.
  kPublic,      // Public diffusion serving trace, mean ratio 0.19.
  kVitonHd,     // VITON-HD virtual try-on benchmark, mean ratio 0.35.
};

std::string ToString(TraceKind kind);

// Samples mask ratios in (0, 1). Beta-distributed with parameters chosen to
// match each trace's reported mean while keeping the wide spread the paper
// emphasizes (individual ratios "exhibit a significant variation").
class MaskRatioDistribution {
 public:
  explicit MaskRatioDistribution(TraceKind kind);

  double Sample(Rng& rng) const;
  double mean() const { return alpha_ / (alpha_ + beta_); }
  TraceKind kind() const { return kind_; }

 private:
  TraceKind kind_;
  double alpha_;
  double beta_;
};

// An irregular editing mask over an h x w latent token grid. Grown as a
// random connected blob so masks have arbitrary shape, as in production
// (the paper's approach makes no assumption about mask shape).
struct Mask {
  int grid_h = 0;
  int grid_w = 0;
  std::vector<int> masked_tokens;    // Row-major token ids, sorted.
  std::vector<int> unmasked_tokens;  // Complement, sorted.

  int total_tokens() const { return grid_h * grid_w; }
  double ratio() const {
    return total_tokens() == 0
               ? 0.0
               : static_cast<double>(masked_tokens.size()) / total_tokens();
  }
};

// Grows a connected random blob covering ~ratio of the h x w grid.
Mask GenerateBlobMask(int grid_h, int grid_w, double ratio, Rng& rng);

// A rectangle mask (used by tests and the FISEdit baseline, which assumes
// contiguous regions).
Mask GenerateRectMask(int grid_h, int grid_w, double ratio, Rng& rng);

// Template popularity: 970 templates with Zipf-skewed reuse (paper §2.2:
// "only 970 templates were utilized among the 34 million generated images").
class TemplateCatalog {
 public:
  TemplateCatalog(int num_templates, double zipf_exponent);

  int SampleTemplate(Rng& rng) const;
  int num_templates() const { return sampler_.size(); }

 private:
  ZipfSampler sampler_;
};

// One image-editing request as seen by the serving system. `grid_h`/`grid_w`
// name the request's latent resolution; 0 (the legacy default) means "the
// serving config's native grid" — single-resolution traces and pre-mixture
// trace files carry 0 and behave exactly as before.
struct Request {
  uint64_t id = 0;
  TimePoint arrival;
  int template_id = 0;
  double mask_ratio = 0.0;
  int denoise_steps = 50;
  int grid_h = 0;
  int grid_w = 0;

  bool has_resolution() const { return grid_h > 0 && grid_w > 0; }
};

// One entry of a resolution-mixture distribution: requests draw this grid
// with probability weight / sum(weights).
struct ResolutionWeight {
  int grid_h = 0;
  int grid_w = 0;
  double weight = 1.0;
};

// Parses "HxW" (e.g. "96x64") into a grid. Returns false on malformed
// input or non-positive sides.
bool ParseResolution(const std::string& text, int* grid_h, int* grid_w);

// Poisson arrival process at a fixed rate (requests per second), the load
// model the paper's evaluation uses (§6.1).
class PoissonArrivals {
 public:
  PoissonArrivals(double rps, Rng rng);

  // Arrival time of the next request (strictly increasing).
  TimePoint Next();

 private:
  double rps_;
  Rng rng_;
  TimePoint last_;
};

// Two-state Markov-modulated Poisson process for bursty traffic (the paper
// notes production arrivals are bursty, citing [23, 63]).
class BurstyArrivals {
 public:
  BurstyArrivals(double base_rps, double burst_rps, Duration mean_phase,
                 Rng rng);

  TimePoint Next();

 private:
  double base_rps_;
  double burst_rps_;
  Duration mean_phase_;
  Rng rng_;
  TimePoint last_;
  TimePoint phase_end_;
  bool bursting_ = false;
};

// Generates a full request trace: arrivals + per-request template and mask
// ratio draws.
struct WorkloadSpec {
  TraceKind trace = TraceKind::kProduction;
  double rps = 1.0;
  int num_requests = 100;
  int num_templates = 970;
  double zipf_exponent = 1.1;
  int denoise_steps = 50;
  uint64_t seed = 42;
  // Resolution mixture: each request draws its grid from these weights.
  // Empty (the default) leaves every request at the native resolution
  // (grid 0,0) and generates bit-for-bit the same trace as before the
  // mixture existed — the resolution stream is split off AFTER the
  // arrival/ratio/template streams, so it never perturbs them.
  std::vector<ResolutionWeight> resolutions;
};

std::vector<Request> GenerateWorkload(const WorkloadSpec& spec);

// Record/replay: writes a request trace as CSV
// (id,arrival_us,template_id,mask_ratio,denoise_steps,grid_h,grid_w) and
// reads it back. Legacy 5-column rows (pre-resolution traces) parse with
// grid 0,0 — the native-resolution sentinel.
// Throws std::runtime_error on malformed rows.
std::string SerializeTraceCsv(const std::vector<Request>& requests);
std::vector<Request> ParseTraceCsv(const std::string& csv);
void WriteTraceFile(const std::string& path,
                    const std::vector<Request>& requests);
std::vector<Request> ReadTraceFile(const std::string& path);

}  // namespace flashps::trace

#endif  // FLASHPS_SRC_TRACE_WORKLOAD_H_
