// Automatic mask generation (the paper's §2.2 Adetailer workflow: when users
// do not supply a mask, one is generated from the image content to delineate
// the editing region, e.g. around detected faces/hands).
//
// Our detector substitute finds the salient region of a grayscale image:
// threshold on deviation from the image mean, take the largest connected
// component, and dilate it — the classic segmentation-postprocessing
// pipeline Adetailer applies around its detector output.
#ifndef FLASHPS_SRC_TRACE_AUTO_MASK_H_
#define FLASHPS_SRC_TRACE_AUTO_MASK_H_

#include "src/tensor/matrix.h"
#include "src/trace/workload.h"

namespace flashps::trace {

struct AutoMaskOptions {
  // Pixels whose |value - mean| exceeds `threshold_sigmas` standard
  // deviations are seed candidates.
  double threshold_sigmas = 1.0;
  // Dilation radius (pixels) applied to the detected component, as
  // Adetailer pads its detection boxes.
  int dilation = 1;
  // Pixels per token side: the pixel mask is reduced to the token grid a
  // diffusion model edits (a token is masked if any of its pixels is).
  int patch = 4;
};

// Binary pixel mask (1 = selected) of the salient region.
Matrix DetectSalientRegion(const Matrix& image, const AutoMaskOptions& options);

// Largest 4-connected component of a binary mask (values > 0.5).
Matrix LargestConnectedComponent(const Matrix& binary);

// Morphological dilation of a binary mask with a square structuring element
// of the given radius.
Matrix Dilate(const Matrix& binary, int radius);

// Full Adetailer-style pipeline: detect -> largest component -> dilate ->
// reduce to the token grid. The resulting Mask is non-empty (falls back to
// the single most salient token when detection finds nothing).
Mask GenerateAutoMask(const Matrix& image, const AutoMaskOptions& options);

}  // namespace flashps::trace

#endif  // FLASHPS_SRC_TRACE_AUTO_MASK_H_
