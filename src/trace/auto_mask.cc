#include "src/trace/auto_mask.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace flashps::trace {

Matrix DetectSalientRegion(const Matrix& image, const AutoMaskOptions& options) {
  double mean = 0.0;
  for (size_t i = 0; i < image.size(); ++i) {
    mean += image.data()[i];
  }
  mean /= static_cast<double>(image.size());
  double var = 0.0;
  for (size_t i = 0; i < image.size(); ++i) {
    const double d = image.data()[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(image.size());
  const double threshold = options.threshold_sigmas * std::sqrt(var);

  Matrix binary(image.rows(), image.cols());
  for (size_t i = 0; i < image.size(); ++i) {
    binary.data()[i] =
        std::abs(image.data()[i] - mean) > threshold ? 1.0f : 0.0f;
  }
  return binary;
}

Matrix LargestConnectedComponent(const Matrix& binary) {
  const int h = binary.rows();
  const int w = binary.cols();
  std::vector<int> label(static_cast<size_t>(h) * w, 0);
  int next_label = 0;
  int best_label = 0;
  int best_size = 0;

  std::vector<int> stack;
  for (int start = 0; start < h * w; ++start) {
    if (binary.data()[start] <= 0.5f || label[start] != 0) {
      continue;
    }
    ++next_label;
    int size = 0;
    stack.push_back(start);
    label[start] = next_label;
    while (!stack.empty()) {
      const int cell = stack.back();
      stack.pop_back();
      ++size;
      const int r = cell / w;
      const int c = cell % w;
      const int neighbours[4] = {
          r > 0 ? cell - w : -1,
          r + 1 < h ? cell + w : -1,
          c > 0 ? cell - 1 : -1,
          c + 1 < w ? cell + 1 : -1,
      };
      for (const int nb : neighbours) {
        if (nb >= 0 && binary.data()[nb] > 0.5f && label[nb] == 0) {
          label[nb] = next_label;
          stack.push_back(nb);
        }
      }
    }
    if (size > best_size) {
      best_size = size;
      best_label = next_label;
    }
  }

  Matrix out(h, w);
  if (best_label == 0) {
    return out;  // Empty input -> empty component.
  }
  for (int i = 0; i < h * w; ++i) {
    out.data()[i] = label[i] == best_label ? 1.0f : 0.0f;
  }
  return out;
}

Matrix Dilate(const Matrix& binary, int radius) {
  assert(radius >= 0);
  if (radius == 0) {
    return binary;
  }
  const int h = binary.rows();
  const int w = binary.cols();
  Matrix out(h, w);
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      bool hit = false;
      for (int dr = -radius; dr <= radius && !hit; ++dr) {
        for (int dc = -radius; dc <= radius && !hit; ++dc) {
          const int rr = r + dr;
          const int cc = c + dc;
          if (rr >= 0 && rr < h && cc >= 0 && cc < w &&
              binary.at(rr, cc) > 0.5f) {
            hit = true;
          }
        }
      }
      out.at(r, c) = hit ? 1.0f : 0.0f;
    }
  }
  return out;
}

Mask GenerateAutoMask(const Matrix& image, const AutoMaskOptions& options) {
  assert(options.patch > 0);
  assert(image.rows() % options.patch == 0 &&
         image.cols() % options.patch == 0);
  const Matrix detected = DetectSalientRegion(image, options);
  const Matrix component = LargestConnectedComponent(detected);
  const Matrix region = Dilate(component, options.dilation);

  Mask mask;
  mask.grid_h = image.rows() / options.patch;
  mask.grid_w = image.cols() / options.patch;

  std::vector<char> in_mask(static_cast<size_t>(mask.total_tokens()), 0);
  for (int r = 0; r < image.rows(); ++r) {
    for (int c = 0; c < image.cols(); ++c) {
      if (region.at(r, c) > 0.5f) {
        in_mask[(r / options.patch) * mask.grid_w + c / options.patch] = 1;
      }
    }
  }

  bool any = false;
  for (const char v : in_mask) {
    any |= v != 0;
  }
  if (!any) {
    // Fall back to the single most salient token.
    int best_token = 0;
    float best_value = -1.0f;
    for (int r = 0; r < image.rows(); ++r) {
      for (int c = 0; c < image.cols(); ++c) {
        if (detected.at(r, c) > best_value) {
          best_value = detected.at(r, c);
          best_token = (r / options.patch) * mask.grid_w + c / options.patch;
        }
      }
    }
    in_mask[best_token] = 1;
  }

  for (int t = 0; t < mask.total_tokens(); ++t) {
    if (in_mask[t]) {
      mask.masked_tokens.push_back(t);
    } else {
      mask.unmasked_tokens.push_back(t);
    }
  }
  return mask;
}

}  // namespace flashps::trace
