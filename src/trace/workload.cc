#include "src/trace/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace flashps::trace {

std::string ToString(TraceKind kind) {
  switch (kind) {
    case TraceKind::kProduction:
      return "production";
    case TraceKind::kPublic:
      return "public";
    case TraceKind::kVitonHd:
      return "viton-hd";
  }
  return "?";
}

MaskRatioDistribution::MaskRatioDistribution(TraceKind kind) : kind_(kind) {
  // Beta parameters chosen so the mean matches the paper's Fig. 3 statistics
  // and alpha < 1 (production/public) gives the mass-near-zero, long-tail
  // shape visible in the figure.
  switch (kind) {
    case TraceKind::kProduction:
      alpha_ = 0.80;
      beta_ = 6.47;  // mean = 0.11
      break;
    case TraceKind::kPublic:
      alpha_ = 0.90;
      beta_ = 3.83;  // mean = 0.19
      break;
    case TraceKind::kVitonHd:
      alpha_ = 3.50;
      beta_ = 6.50;  // mean = 0.35
      break;
  }
}

double MaskRatioDistribution::Sample(Rng& rng) const {
  // Clamp away from the degenerate endpoints: a ratio of exactly 0 would mean
  // no edit and exactly 1 full regeneration.
  const double r = rng.Beta(alpha_, beta_);
  return std::clamp(r, 0.005, 0.995);
}

namespace {

void FinalizeMask(Mask& mask, std::vector<char>& in_mask) {
  const int total = mask.total_tokens();
  mask.masked_tokens.clear();
  mask.unmasked_tokens.clear();
  for (int t = 0; t < total; ++t) {
    if (in_mask[t]) {
      mask.masked_tokens.push_back(t);
    } else {
      mask.unmasked_tokens.push_back(t);
    }
  }
}

}  // namespace

Mask GenerateBlobMask(int grid_h, int grid_w, double ratio, Rng& rng) {
  assert(grid_h > 0 && grid_w > 0);
  Mask mask;
  mask.grid_h = grid_h;
  mask.grid_w = grid_w;
  const int total = grid_h * grid_w;
  const int target =
      std::clamp(static_cast<int>(std::lround(ratio * total)), 1, total);

  std::vector<char> in_mask(total, 0);
  std::vector<int> frontier;
  const int seed_cell = static_cast<int>(rng.NextBelow(total));
  in_mask[seed_cell] = 1;
  frontier.push_back(seed_cell);
  int count = 1;

  while (count < target && !frontier.empty()) {
    // Pick a random frontier cell and try to grow into a random neighbour;
    // retire cells whose neighbourhood is exhausted.
    const size_t pick = rng.NextBelow(frontier.size());
    const int cell = frontier[pick];
    const int r = cell / grid_w;
    const int c = cell % grid_w;
    const int neighbours[4] = {
        r > 0 ? cell - grid_w : -1,
        r + 1 < grid_h ? cell + grid_w : -1,
        c > 0 ? cell - 1 : -1,
        c + 1 < grid_w ? cell + 1 : -1,
    };
    int candidates[4];
    int num_candidates = 0;
    for (int nb : neighbours) {
      if (nb >= 0 && !in_mask[nb]) {
        candidates[num_candidates++] = nb;
      }
    }
    if (num_candidates == 0) {
      frontier[pick] = frontier.back();
      frontier.pop_back();
      continue;
    }
    const int chosen = candidates[rng.NextBelow(num_candidates)];
    in_mask[chosen] = 1;
    frontier.push_back(chosen);
    ++count;
  }

  FinalizeMask(mask, in_mask);
  return mask;
}

Mask GenerateRectMask(int grid_h, int grid_w, double ratio, Rng& rng) {
  assert(grid_h > 0 && grid_w > 0);
  Mask mask;
  mask.grid_h = grid_h;
  mask.grid_w = grid_w;
  const int total = grid_h * grid_w;
  const int target =
      std::clamp(static_cast<int>(std::lround(ratio * total)), 1, total);

  // Pick an aspect-ratio-preserving rectangle of ~target cells.
  int rect_h = std::max(1, static_cast<int>(std::lround(
                               std::sqrt(static_cast<double>(target) * grid_h /
                                         grid_w))));
  rect_h = std::min(rect_h, grid_h);
  int rect_w = std::min(grid_w, std::max(1, (target + rect_h - 1) / rect_h));

  const int r0 = static_cast<int>(rng.NextBelow(grid_h - rect_h + 1));
  const int c0 = static_cast<int>(rng.NextBelow(grid_w - rect_w + 1));

  std::vector<char> in_mask(total, 0);
  for (int r = r0; r < r0 + rect_h; ++r) {
    for (int c = c0; c < c0 + rect_w; ++c) {
      in_mask[r * grid_w + c] = 1;
    }
  }
  FinalizeMask(mask, in_mask);
  return mask;
}

TemplateCatalog::TemplateCatalog(int num_templates, double zipf_exponent)
    : sampler_(num_templates, zipf_exponent) {}

int TemplateCatalog::SampleTemplate(Rng& rng) const {
  return sampler_.Sample(rng);
}

PoissonArrivals::PoissonArrivals(double rps, Rng rng) : rps_(rps), rng_(rng) {
  assert(rps > 0.0);
}

TimePoint PoissonArrivals::Next() {
  last_ = last_ + Duration::Seconds(rng_.Exponential(rps_));
  return last_;
}

BurstyArrivals::BurstyArrivals(double base_rps, double burst_rps,
                               Duration mean_phase, Rng rng)
    : base_rps_(base_rps),
      burst_rps_(burst_rps),
      mean_phase_(mean_phase),
      rng_(rng) {
  assert(base_rps > 0.0 && burst_rps > 0.0);
  phase_end_ = TimePoint() + Duration::Seconds(
                                 rng_.Exponential(1.0 / mean_phase_.seconds()));
}

TimePoint BurstyArrivals::Next() {
  for (;;) {
    const double rate = bursting_ ? burst_rps_ : base_rps_;
    const TimePoint candidate =
        last_ + Duration::Seconds(rng_.Exponential(rate));
    if (candidate <= phase_end_) {
      last_ = candidate;
      return last_;
    }
    // Phase switch: restart the draw from the phase boundary (memoryless).
    last_ = phase_end_;
    bursting_ = !bursting_;
    phase_end_ =
        phase_end_ +
        Duration::Seconds(rng_.Exponential(1.0 / mean_phase_.seconds()));
  }
}

bool ParseResolution(const std::string& text, int* grid_h, int* grid_w) {
  int h = 0;
  int w = 0;
  char trailing = 0;
  if (std::sscanf(text.c_str(), "%dx%d%c", &h, &w, &trailing) != 2) {
    return false;
  }
  if (h <= 0 || w <= 0) {
    return false;
  }
  *grid_h = h;
  *grid_w = w;
  return true;
}

std::vector<Request> GenerateWorkload(const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  Rng arrival_rng = rng.Split();
  Rng ratio_rng = rng.Split();
  Rng template_rng = rng.Split();
  // Split unconditionally so adding a mixture to a spec never perturbs the
  // arrival/ratio/template streams above (and an empty mixture reproduces
  // pre-mixture traces bit for bit).
  Rng resolution_rng = rng.Split();

  double total_weight = 0.0;
  for (const ResolutionWeight& rw : spec.resolutions) {
    if (rw.grid_h <= 0 || rw.grid_w <= 0 || rw.weight < 0.0) {
      throw std::runtime_error("workload: malformed resolution mixture entry");
    }
    total_weight += rw.weight;
  }
  if (!spec.resolutions.empty() && total_weight <= 0.0) {
    throw std::runtime_error("workload: resolution mixture has zero weight");
  }

  const MaskRatioDistribution ratios(spec.trace);
  const TemplateCatalog catalog(spec.num_templates, spec.zipf_exponent);
  PoissonArrivals arrivals(spec.rps, arrival_rng);

  std::vector<Request> out;
  out.reserve(spec.num_requests);
  for (int i = 0; i < spec.num_requests; ++i) {
    Request r;
    r.id = static_cast<uint64_t>(i);
    r.arrival = arrivals.Next();
    r.template_id = catalog.SampleTemplate(template_rng);
    r.mask_ratio = ratios.Sample(ratio_rng);
    r.denoise_steps = spec.denoise_steps;
    if (!spec.resolutions.empty()) {
      double u = resolution_rng.NextDouble() * total_weight;
      const ResolutionWeight* pick = &spec.resolutions.back();
      for (const ResolutionWeight& rw : spec.resolutions) {
        if (u < rw.weight) {
          pick = &rw;
          break;
        }
        u -= rw.weight;
      }
      r.grid_h = pick->grid_h;
      r.grid_w = pick->grid_w;
    }
    out.push_back(r);
  }
  return out;
}

std::string SerializeTraceCsv(const std::vector<Request>& requests) {
  std::string out =
      "id,arrival_us,template_id,mask_ratio,denoise_steps,grid_h,grid_w\n";
  char line[192];
  for (const Request& r : requests) {
    std::snprintf(line, sizeof(line), "%llu,%lld,%d,%.17g,%d,%d,%d\n",
                  static_cast<unsigned long long>(r.id),
                  static_cast<long long>(r.arrival.micros()), r.template_id,
                  r.mask_ratio, r.denoise_steps, r.grid_h, r.grid_w);
    out += line;
  }
  return out;
}

std::vector<Request> ParseTraceCsv(const std::string& csv) {
  std::vector<Request> out;
  size_t pos = 0;
  bool header = true;
  while (pos < csv.size()) {
    size_t end = csv.find('\n', pos);
    if (end == std::string::npos) {
      end = csv.size();
    }
    const std::string line = csv.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) {
      continue;
    }
    if (header) {
      header = false;
      continue;
    }
    Request r;
    unsigned long long id = 0;
    long long arrival_us = 0;
    const int fields = std::sscanf(
        line.c_str(), "%llu,%lld,%d,%lf,%d,%d,%d", &id, &arrival_us,
        &r.template_id, &r.mask_ratio, &r.denoise_steps, &r.grid_h, &r.grid_w);
    // 7 fields is the current format; 5 is a legacy pre-resolution row,
    // which decodes with grid 0,0 (the native-resolution sentinel).
    if (fields != 7 && fields != 5) {
      throw std::runtime_error("trace csv: malformed row: " + line);
    }
    if (fields == 5) {
      r.grid_h = 0;
      r.grid_w = 0;
    }
    if ((r.grid_h > 0) != (r.grid_w > 0) || r.grid_h < 0 || r.grid_w < 0) {
      throw std::runtime_error("trace csv: malformed grid in row: " + line);
    }
    r.id = id;
    r.arrival = TimePoint::FromMicros(arrival_us);
    out.push_back(r);
  }
  return out;
}

void WriteTraceFile(const std::string& path,
                    const std::vector<Request>& requests) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("trace csv: cannot open " + path);
  }
  out << SerializeTraceCsv(requests);
}

std::vector<Request> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("trace csv: cannot open " + path);
  }
  std::string csv((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return ParseTraceCsv(csv);
}

}  // namespace flashps::trace
