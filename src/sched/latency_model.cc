#include "src/sched/latency_model.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/pipeline/pipeline.h"

namespace flashps::sched {

namespace {
constexpr double kTera = 1e12;
constexpr double kMega = 1e6;
}  // namespace

LatencyModel LatencyModel::FitOffline(const model::TimingConfig& config,
                                      model::ComputeMode mode) {
  LatencyModel m;
  m.config_ = config;
  m.mode_ = mode;
  const auto spec = device::DeviceSpec::Get(config.gpu);

  std::vector<double> flops_x;
  std::vector<double> compute_y;
  std::vector<double> bytes_x;
  std::vector<double> load_y;

  // Profiling sweep: batch sizes 1..max, mask ratios over the operating
  // range. "Measurements" come from the device model, the substitute for
  // profiling runs on real GPUs.
  Rng rng(0x0FF1CE);
  for (int batch = 1; batch <= 8; ++batch) {
    for (double ratio = 0.02; ratio < 1.0; ratio += 0.06) {
      std::vector<double> ratios;
      for (int i = 0; i < batch; ++i) {
        // Jitter within the batch so samples cover mixed-ratio batches.
        ratios.push_back(
            std::clamp(ratio + rng.Uniform(-0.02, 0.02), 0.01, 0.99));
      }
      const auto workload = model::BuildStepWorkload(config, ratios, mode);
      const auto durations =
          model::ComputeStepDurations(config, spec, workload);
      for (size_t b = 0; b < workload.blocks.size(); ++b) {
        flops_x.push_back(workload.blocks[b].flops_with_cache / kTera);
        compute_y.push_back(durations.compute_with_cache[b].seconds());
        if (workload.blocks[b].load_bytes > 0) {
          bytes_x.push_back(
              static_cast<double>(workload.blocks[b].load_bytes) / kMega);
          load_y.push_back(durations.load[b].seconds());
        }
      }
      flops_x.push_back(workload.non_tf_flops / kTera);
      compute_y.push_back(durations.non_tf.seconds());
    }
  }

  m.compute_fit_ = FitLinear(flops_x, compute_y);
  m.load_fit_ = bytes_x.empty() ? LinearFit{} : FitLinear(bytes_x, load_y);
  return m;
}

LatencyModel LatencyModel::FromFits(const model::TimingConfig& config,
                                    model::ComputeMode mode,
                                    const LinearFit& compute_fit,
                                    const LinearFit& load_fit) {
  LatencyModel m;
  m.config_ = config;
  m.mode_ = mode;
  m.compute_fit_ = compute_fit;
  m.load_fit_ = load_fit;
  return m;
}

LatencyModel LatencyModel::FitProfiled(const model::TimingConfig& config,
                                       model::ComputeMode mode,
                                       const std::vector<double>& step_tflops,
                                       const std::vector<double>& step_seconds) {
  LatencyModel m;
  m.config_ = config;
  m.mode_ = mode;
  const LinearFit step_fit = FitLinear(step_tflops, step_seconds);
  // EstimateStepDurations applies the fit once per block group plus once for
  // the non-transformer work; spreading the whole-step intercept across
  // those terms makes the per-step estimate reproduce the fitted line.
  const double terms =
      static_cast<double>(config.EffectiveGroups().size()) + 1.0;
  m.compute_fit_.slope = step_fit.slope;
  m.compute_fit_.intercept = step_fit.intercept / terms;
  m.compute_fit_.r2 = step_fit.r2;
  m.load_fit_ = LinearFit{};  // Loads are inside the measured step.
  return m;
}

void LatencyModel::SetPrimaryGrid(int grid_h, int grid_w) {
  primary_grid_h_ = grid_h;
  primary_grid_w_ = grid_w;
}

void LatencyModel::AddResolutionFit(int grid_h, int grid_w,
                                    const LinearFit& fit) {
  for (ResolutionFit& rf : resolution_fits_) {
    if (rf.grid_h == grid_h && rf.grid_w == grid_w) {
      rf.fit = fit;
      return;
    }
  }
  resolution_fits_.push_back({grid_h, grid_w, fit});
}

double LatencyModel::TokenScale(int grid_h, int grid_w) const {
  if (primary_grid_h_ <= 0 || primary_grid_w_ <= 0 || grid_h <= 0 ||
      grid_w <= 0) {
    return 1.0;
  }
  return static_cast<double>(grid_h) * static_cast<double>(grid_w) /
         (static_cast<double>(primary_grid_h_) *
          static_cast<double>(primary_grid_w_));
}

double LatencyModel::EstimateRequestStepSeconds(
    const trace::Request& request) const {
  const double scaled_ratio =
      request.mask_ratio * TokenScale(request.grid_h, request.grid_w);
  if (request.has_resolution()) {
    for (const ResolutionFit& rf : resolution_fits_) {
      if (rf.grid_h == request.grid_h && rf.grid_w == request.grid_w) {
        return std::max(0.0,
                        rf.fit.slope * scaled_ratio + rf.fit.intercept);
      }
    }
  }
  const std::vector<double> one{scaled_ratio};
  return EstimateStepLatency(one).seconds();
}

model::StepDurations LatencyModel::EstimateStepDurations(
    std::span<const double> mask_ratios) const {
  const auto workload = model::BuildStepWorkload(config_, mask_ratios, mode_);
  model::StepDurations d;
  auto compute_secs = [this](double flops) {
    return std::max(0.0, compute_fit_.slope * (flops / kTera) +
                             compute_fit_.intercept);
  };
  auto load_secs = [this](uint64_t bytes) {
    if (bytes == 0) {
      return 0.0;
    }
    return std::max(0.0, load_fit_.slope * (static_cast<double>(bytes) / kMega) +
                             load_fit_.intercept);
  };
  for (const auto& block : workload.blocks) {
    d.compute_with_cache.push_back(
        Duration::Seconds(compute_secs(block.flops_with_cache)));
    d.compute_without_cache.push_back(
        Duration::Seconds(compute_secs(block.flops_without_cache)));
    d.load.push_back(Duration::Seconds(load_secs(block.load_bytes)));
  }
  d.non_tf = Duration::Seconds(compute_secs(workload.non_tf_flops));
  return d;
}

Duration LatencyModel::EstimateStepLatency(
    std::span<const double> mask_ratios) const {
  if (mask_ratios.empty()) {
    return Duration::Zero();
  }
  const auto d = EstimateStepDurations(mask_ratios);
  const bool mask_aware = mode_ == model::ComputeMode::kMaskAwareY ||
                          mode_ == model::ComputeMode::kMaskAwareKV;
  Duration blocks;
  if (mask_aware) {
    blocks = pipeline::PlanBubbleFree(d.compute_with_cache,
                                      d.compute_without_cache, d.load)
                 .latency;
  } else {
    for (const Duration c : d.compute_without_cache) {
      blocks += c;
    }
  }
  return blocks + d.non_tf;
}

}  // namespace flashps::sched
