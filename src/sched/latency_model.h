// Regression latency models (paper §4.4, Fig. 11).
//
// FlashPS's scheduler estimates a worker's load from the mask ratios of its
// requests: per-block FLOPs and cache bytes follow Table 1, and two linear
// regressions — fitted offline on profiled (FLOPs, latency) and (bytes,
// latency) samples — map them to time. The paper reports R^2 ~= 0.99; the
// residual here comes from SM-utilization effects the linear model cannot
// see, just as on real hardware.
#ifndef FLASHPS_SRC_SCHED_LATENCY_MODEL_H_
#define FLASHPS_SRC_SCHED_LATENCY_MODEL_H_

#include <span>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/device/device.h"
#include "src/model/timing.h"

namespace flashps::sched {

class LatencyModel {
 public:
  // Fits the two regressions from synthetic offline profiling: a sweep over
  // mask ratios and batch sizes, measured on the device model (standing in
  // for the paper's offline measurements on real GPUs).
  static LatencyModel FitOffline(const model::TimingConfig& config,
                                 model::ComputeMode mode);

  // Fits the compute regression from caller-provided profiled samples of a
  // *real* engine: step_tflops[i] is the whole-step TFLOPs of a profiled
  // batch (per Table 1 accounting under `mode`), step_seconds[i] its
  // measured wall-clock latency. This is the paper's actual methodology —
  // the offline sweep above substitutes for it only when no live engine is
  // available. The fitted whole-step line is distributed across the
  // config's block groups so EstimateStepDurations/EstimateStepLatency keep
  // working; load time is folded into compute (a real engine's measured
  // step includes its cache gathers).
  static LatencyModel FitProfiled(const model::TimingConfig& config,
                                  model::ComputeMode mode,
                                  const std::vector<double>& step_tflops,
                                  const std::vector<double>& step_seconds);

  // Reconstructs a model from already-fitted regression lines — the wire
  // path: a federated front fetches a node's fitted coefficients from its
  // MetricsJson at join time and rebuilds the node's model here, so the
  // cross-machine Algorithm-2 cost scores each node with the node's OWN
  // profiled line, not a locally re-fitted approximation.
  static LatencyModel FromFits(const model::TimingConfig& config,
                               model::ComputeMode mode,
                               const LinearFit& compute_fit,
                               const LinearFit& load_fit);

  // Per-block duration estimates for a hypothetical batch, suitable for
  // Algorithm 1 / Algorithm 2.
  model::StepDurations EstimateStepDurations(
      std::span<const double> mask_ratios) const;

  // One-step latency estimate: bubble-free DP over the estimated durations
  // (plus the non-maskable step work).
  Duration EstimateStepLatency(std::span<const double> mask_ratios) const;

  const LinearFit& compute_fit() const { return compute_fit_; }
  const LinearFit& load_fit() const { return load_fit_; }
  const model::TimingConfig& config() const { return config_; }
  model::ComputeMode mode() const { return mode_; }

 private:
  model::TimingConfig config_;
  model::ComputeMode mode_ = model::ComputeMode::kMaskAwareY;
  LinearFit compute_fit_;  // TFLOPs -> seconds.
  LinearFit load_fit_;     // MB -> seconds.
};

}  // namespace flashps::sched

#endif  // FLASHPS_SRC_SCHED_LATENCY_MODEL_H_
