// Regression latency models (paper §4.4, Fig. 11).
//
// FlashPS's scheduler estimates a worker's load from the mask ratios of its
// requests: per-block FLOPs and cache bytes follow Table 1, and two linear
// regressions — fitted offline on profiled (FLOPs, latency) and (bytes,
// latency) samples — map them to time. The paper reports R^2 ~= 0.99; the
// residual here comes from SM-utilization effects the linear model cannot
// see, just as on real hardware.
#ifndef FLASHPS_SRC_SCHED_LATENCY_MODEL_H_
#define FLASHPS_SRC_SCHED_LATENCY_MODEL_H_

#include <span>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/device/device.h"
#include "src/model/timing.h"
#include "src/trace/workload.h"

namespace flashps::sched {

class LatencyModel {
 public:
  // Fits the two regressions from synthetic offline profiling: a sweep over
  // mask ratios and batch sizes, measured on the device model (standing in
  // for the paper's offline measurements on real GPUs).
  static LatencyModel FitOffline(const model::TimingConfig& config,
                                 model::ComputeMode mode);

  // Fits the compute regression from caller-provided profiled samples of a
  // *real* engine: step_tflops[i] is the whole-step TFLOPs of a profiled
  // batch (per Table 1 accounting under `mode`), step_seconds[i] its
  // measured wall-clock latency. This is the paper's actual methodology —
  // the offline sweep above substitutes for it only when no live engine is
  // available. The fitted whole-step line is distributed across the
  // config's block groups so EstimateStepDurations/EstimateStepLatency keep
  // working; load time is folded into compute (a real engine's measured
  // step includes its cache gathers).
  static LatencyModel FitProfiled(const model::TimingConfig& config,
                                  model::ComputeMode mode,
                                  const std::vector<double>& step_tflops,
                                  const std::vector<double>& step_seconds);

  // Reconstructs a model from already-fitted regression lines — the wire
  // path: a federated front fetches a node's fitted coefficients from its
  // MetricsJson at join time and rebuilds the node's model here, so the
  // cross-machine Algorithm-2 cost scores each node with the node's OWN
  // profiled line, not a locally re-fitted approximation.
  static LatencyModel FromFits(const model::TimingConfig& config,
                               model::ComputeMode mode,
                               const LinearFit& compute_fit,
                               const LinearFit& load_fit);

  // Per-block duration estimates for a hypothetical batch, suitable for
  // Algorithm 1 / Algorithm 2.
  model::StepDurations EstimateStepDurations(
      std::span<const double> mask_ratios) const;

  // One-step latency estimate: bubble-free DP over the estimated durations
  // (plus the non-maskable step work).
  Duration EstimateStepLatency(std::span<const double> mask_ratios) const;

  // Hybrid-resolution serving: one whole-step fit per distinct non-primary
  // grid profiled at startup. The fit's x-axis is the request's
  // masked-token fraction OF THE PRIMARY GRID (mask_ratio * TokenScale),
  // so fits across resolutions share an axis with the primary regression.
  struct ResolutionFit {
    int grid_h = 0;
    int grid_w = 0;
    LinearFit fit;
  };

  // Names the grid the compute/load fits were profiled at (the anchor for
  // TokenScale). Unset (the default) disables all resolution scaling —
  // every estimate behaves exactly as before resolutions existed.
  void SetPrimaryGrid(int grid_h, int grid_w);
  // Adds (or replaces) the profiled whole-step fit for one grid.
  void AddResolutionFit(int grid_h, int grid_w, const LinearFit& fit);
  int primary_grid_h() const { return primary_grid_h_; }
  int primary_grid_w() const { return primary_grid_w_; }
  const std::vector<ResolutionFit>& resolution_fits() const {
    return resolution_fits_;
  }

  // Masked-token scale of `grid` relative to the primary grid: a ratio-r
  // request at that grid carries r * TokenScale(grid) masked tokens per
  // primary-grid token. 1.0 when either grid is unset.
  double TokenScale(int grid_h, int grid_w) const;

  // Solo per-step cost (seconds) of `request` under its own resolution:
  // the grid's profiled fit when one was added, else the primary
  // regression at the token-scaled ratio. For primary-grid or
  // resolution-less requests this is exactly
  // EstimateStepLatency({mask_ratio}) — the degenerate-mixture guarantee
  // the routers rely on.
  double EstimateRequestStepSeconds(const trace::Request& request) const;

  const LinearFit& compute_fit() const { return compute_fit_; }
  const LinearFit& load_fit() const { return load_fit_; }
  const model::TimingConfig& config() const { return config_; }
  model::ComputeMode mode() const { return mode_; }

 private:
  model::TimingConfig config_;
  model::ComputeMode mode_ = model::ComputeMode::kMaskAwareY;
  LinearFit compute_fit_;  // TFLOPs -> seconds.
  LinearFit load_fit_;     // MB -> seconds.
  int primary_grid_h_ = 0;  // 0 = resolution scaling off.
  int primary_grid_w_ = 0;
  std::vector<ResolutionFit> resolution_fits_;
};

}  // namespace flashps::sched

#endif  // FLASHPS_SRC_SCHED_LATENCY_MODEL_H_
