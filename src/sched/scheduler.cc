#include "src/sched/scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace flashps::sched {

std::string ToString(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kFirstFit:
      return "first-fit";
    case RoutePolicy::kRequestCount:
      return "request-count";
    case RoutePolicy::kTokenCount:
      return "token-count";
    case RoutePolicy::kMaskAware:
      return "mask-aware";
  }
  return "?";
}

bool ParseRoutePolicy(const std::string& name, RoutePolicy* out) {
  for (const RoutePolicy policy :
       {RoutePolicy::kRoundRobin, RoutePolicy::kFirstFit,
        RoutePolicy::kRequestCount, RoutePolicy::kTokenCount,
        RoutePolicy::kMaskAware}) {
    if (name == ToString(policy)) {
      *out = policy;
      return true;
    }
  }
  return false;
}

int RoundRobinRouter::Route(const trace::Request& request,
                            const std::vector<WorkerStatus>& statuses) {
  (void)request;
  assert(!statuses.empty());
  const int pick = static_cast<int>(next_ % statuses.size());
  ++next_;
  return statuses[pick].worker_id;
}

int FirstFitRouter::Route(const trace::Request& request,
                          const std::vector<WorkerStatus>& statuses) {
  (void)request;
  assert(!statuses.empty());
  for (const auto& s : statuses) {
    if (s.has_slack) {
      return s.worker_id;
    }
  }
  int best = statuses.front().worker_id;
  size_t fewest = std::numeric_limits<size_t>::max();
  for (const auto& s : statuses) {
    const size_t outstanding =
        s.running_ratios.size() + s.waiting_ratios.size();
    if (outstanding < fewest) {
      fewest = outstanding;
      best = s.worker_id;
    }
  }
  return best;
}

int RequestCountRouter::Route(const trace::Request& request,
                              const std::vector<WorkerStatus>& statuses) {
  (void)request;
  assert(!statuses.empty());
  int best = statuses.front().worker_id;
  int64_t best_count = std::numeric_limits<int64_t>::max();
  for (const auto& s : statuses) {
    const int64_t count = assigned_[s.worker_id];
    if (count < best_count) {
      best_count = count;
      best = s.worker_id;
    }
  }
  ++assigned_[best];
  return best;
}

int TokenCountRouter::Route(const trace::Request& request,
                            const std::vector<WorkerStatus>& statuses) {
  assert(!statuses.empty());
  int best = statuses.front().worker_id;
  double best_tokens = std::numeric_limits<double>::max();
  for (const auto& s : statuses) {
    const double tokens = assigned_tokens_[s.worker_id];
    if (tokens < best_tokens) {
      best_tokens = tokens;
      best = s.worker_id;
    }
  }
  // Masked-token count of the request at its OWN resolution (the
  // constructor's L is the fallback for resolution-less requests).
  const double request_tokens =
      request.has_resolution()
          ? request.mask_ratio * request.grid_h * request.grid_w
          : request.mask_ratio * tokens_per_image_;
  assigned_tokens_[best] += request_tokens;
  return best;
}

double EstimateDrainSeconds(const LatencyModel& latency_model,
                            const trace::Request& request,
                            const WorkerStatus& status) {
  // Hypothetical batch: everything outstanding plus the new request. The
  // new request joins at its effective ratio (masked tokens over the
  // primary grid), matching how hybrid-resolution publishers report their
  // outstanding ratios; TokenScale is 1.0 outside hybrid setups.
  std::vector<double> ratios = status.running_ratios;
  ratios.insert(ratios.end(), status.waiting_ratios.begin(),
                status.waiting_ratios.end());
  ratios.push_back(request.mask_ratio *
                   latency_model.TokenScale(request.grid_h, request.grid_w));

  // Estimated per-step pipeline latency of that batch (Algorithm 1 over
  // regression-estimated durations), amortized per request, times the steps
  // outstanding — an estimate of how long the worker takes to drain.
  const Duration step = latency_model.EstimateStepLatency(ratios);
  const double steps_outstanding =
      static_cast<double>(status.remaining_steps) +
      static_cast<double>(request.denoise_steps);
  // Requests beyond the batch capacity serialize into extra waves.
  const double waves =
      std::max(1.0, static_cast<double>(ratios.size()) /
                        static_cast<double>(std::max(1, status.max_batch)));
  return step.seconds() * steps_outstanding /
         static_cast<double>(ratios.size()) * waves;
}

double SerializedPlacementCost(const LatencyModel& latency_model,
                               double per_request_overhead_s,
                               const trace::Request& request,
                               const WorkerStatus& status) {
  // Serialized-batch engine: one denoise thread runs every batch member's
  // step math back to back, so a worker's remaining wall-clock work is the
  // sum of per-request step costs times their remaining steps. The cost of
  // a placement is the worker's remaining work after accepting the request
  // — join-shortest-workload in estimated seconds, the live decaying
  // counterpart of token-count's cumulative mask balance.
  auto step_cost_s = [&latency_model](double ratio) {
    const std::vector<double> one{ratio};
    return latency_model.EstimateStepLatency(one).seconds();
  };

  double backlog_work_s = 0.0;
  int64_t running_rem = 0;
  if (status.running_remaining_steps.size() == status.running_ratios.size()) {
    // Live publishers report per-member progress: exact remaining work.
    for (size_t i = 0; i < status.running_ratios.size(); ++i) {
      backlog_work_s += step_cost_s(status.running_ratios[i]) *
                        static_cast<double>(status.running_remaining_steps[i]);
      running_rem += status.running_remaining_steps[i];
    }
    const int64_t waiting_total =
        std::max<int64_t>(0, status.remaining_steps - running_rem);
    const size_t n_wait = status.waiting_ratios.size();
    for (size_t i = 0; i < n_wait; ++i) {
      backlog_work_s += step_cost_s(status.waiting_ratios[i]) *
                        (static_cast<double>(waiting_total) /
                         static_cast<double>(n_wait));
    }
  } else {
    // Aggregate-only publisher: spread remaining_steps uniformly.
    std::vector<double> ratios = status.running_ratios;
    ratios.insert(ratios.end(), status.waiting_ratios.begin(),
                  status.waiting_ratios.end());
    if (!ratios.empty()) {
      const double batch_step_s =
          latency_model.EstimateStepLatency(ratios).seconds();
      backlog_work_s = batch_step_s *
                       static_cast<double>(status.remaining_steps) /
                       static_cast<double>(ratios.size());
    }
  }

  // Co-batch penalty: once admitted, every one of the request's steps also
  // waits for the running batch's step math (and inflates theirs in turn).
  // This is what steers lights away from heavy batches and spreads heavies
  // apart even when the pure work balance would tie.
  const double running_step_s =
      status.running_ratios.empty()
          ? 0.0
          : latency_model.EstimateStepLatency(status.running_ratios).seconds();
  const double own_steps = static_cast<double>(request.denoise_steps);
  // Non-denoise load: every outstanding request still owes pre/post work on
  // the worker's CPU lanes, which the step regression cannot see.
  const double overhead_s =
      per_request_overhead_s *
      static_cast<double>(status.running_ratios.size() +
                          status.waiting_ratios.size());
  // The request's own per-step cost is resolution-aware: its grid's
  // profiled fit when the model carries one, else the primary regression
  // at the token-scaled ratio (identical to step_cost_s(mask_ratio) for
  // primary-grid requests).
  return backlog_work_s + overhead_s +
         latency_model.EstimateRequestStepSeconds(request) * own_steps +
         running_step_s * own_steps;
}

double MaskAwareRouter::CalcCost(const trace::Request& request,
                                 const WorkerStatus& status) const {
  if (!serialized_batches_) {
    return EstimateDrainSeconds(latency_model_, request, status);
  }
  return SerializedPlacementCost(latency_model_, per_request_overhead_s_,
                                 request, status);
}

int MaskAwareRouter::Route(const trace::Request& request,
                           const std::vector<WorkerStatus>& statuses) {
  assert(!statuses.empty());
  // Candidates: workers with slack in the running batch; fall back to all
  // workers when everything is saturated (Algorithm 2 line 7).
  std::vector<const WorkerStatus*> candidates;
  for (const auto& s : statuses) {
    if (s.has_slack) {
      candidates.push_back(&s);
    }
  }
  if (candidates.empty()) {
    for (const auto& s : statuses) {
      candidates.push_back(&s);
    }
  }
  const WorkerStatus* best = candidates.front();
  double best_cost = std::numeric_limits<double>::max();
  for (const WorkerStatus* s : candidates) {
    const double cost = CalcCost(request, *s);
    if (cost < best_cost) {
      best_cost = cost;
      best = s;
    }
  }
  if (serialized_batches_) {
    // Near-ties (within 5%) carry no cost signal; picking the first
    // candidate would pile them onto worker 0 like first-fit. Fall back to
    // the fewest-assigned worker among the near-tied so indifferent
    // decisions stay count-balanced.
    const WorkerStatus* pick = best;
    int64_t fewest = std::numeric_limits<int64_t>::max();
    for (const WorkerStatus* s : candidates) {
      if (CalcCost(request, *s) > best_cost * 1.05) {
        continue;
      }
      const int64_t count = assigned_[s->worker_id];
      if (count < fewest) {
        fewest = count;
        pick = s;
      }
    }
    best = pick;
  }
  ++assigned_[best->worker_id];
  return best->worker_id;
}

std::unique_ptr<Router> MakeRouter(RoutePolicy policy,
                                   const model::TimingConfig& config,
                                   model::ComputeMode mode) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouter>();
    case RoutePolicy::kFirstFit:
      return std::make_unique<FirstFitRouter>();
    case RoutePolicy::kRequestCount:
      return std::make_unique<RequestCountRouter>();
    case RoutePolicy::kTokenCount:
      return std::make_unique<TokenCountRouter>(config.tokens);
    case RoutePolicy::kMaskAware:
      return std::make_unique<MaskAwareRouter>(
          LatencyModel::FitOffline(config, mode));
  }
  return nullptr;
}

}  // namespace flashps::sched
