#include "src/sched/scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace flashps::sched {

std::string ToString(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kFirstFit:
      return "first-fit";
    case RoutePolicy::kRequestCount:
      return "request-count";
    case RoutePolicy::kTokenCount:
      return "token-count";
    case RoutePolicy::kMaskAware:
      return "mask-aware";
  }
  return "?";
}

int RoundRobinRouter::Route(const trace::Request& request,
                            const std::vector<WorkerStatus>& statuses) {
  (void)request;
  assert(!statuses.empty());
  const int pick = static_cast<int>(next_ % statuses.size());
  ++next_;
  return statuses[pick].worker_id;
}

int FirstFitRouter::Route(const trace::Request& request,
                          const std::vector<WorkerStatus>& statuses) {
  (void)request;
  assert(!statuses.empty());
  for (const auto& s : statuses) {
    if (s.has_slack) {
      return s.worker_id;
    }
  }
  int best = statuses.front().worker_id;
  size_t fewest = std::numeric_limits<size_t>::max();
  for (const auto& s : statuses) {
    const size_t outstanding =
        s.running_ratios.size() + s.waiting_ratios.size();
    if (outstanding < fewest) {
      fewest = outstanding;
      best = s.worker_id;
    }
  }
  return best;
}

int RequestCountRouter::Route(const trace::Request& request,
                              const std::vector<WorkerStatus>& statuses) {
  (void)request;
  assert(!statuses.empty());
  int best = statuses.front().worker_id;
  int64_t best_count = std::numeric_limits<int64_t>::max();
  for (const auto& s : statuses) {
    const int64_t count = assigned_[s.worker_id];
    if (count < best_count) {
      best_count = count;
      best = s.worker_id;
    }
  }
  ++assigned_[best];
  return best;
}

int TokenCountRouter::Route(const trace::Request& request,
                            const std::vector<WorkerStatus>& statuses) {
  assert(!statuses.empty());
  int best = statuses.front().worker_id;
  double best_tokens = std::numeric_limits<double>::max();
  for (const auto& s : statuses) {
    const double tokens = assigned_tokens_[s.worker_id];
    if (tokens < best_tokens) {
      best_tokens = tokens;
      best = s.worker_id;
    }
  }
  assigned_tokens_[best] += request.mask_ratio * tokens_per_image_;
  return best;
}

double MaskAwareRouter::CalcCost(const trace::Request& request,
                                 const WorkerStatus& status) const {
  // Hypothetical batch: everything outstanding plus the new request.
  std::vector<double> ratios = status.running_ratios;
  ratios.insert(ratios.end(), status.waiting_ratios.begin(),
                status.waiting_ratios.end());
  ratios.push_back(request.mask_ratio);

  // Estimated per-step pipeline latency of that batch (Algorithm 1 over
  // regression-estimated durations), amortized per request, times the steps
  // outstanding — an estimate of how long the worker takes to drain.
  const Duration step = latency_model_.EstimateStepLatency(ratios);
  const double steps_outstanding =
      static_cast<double>(status.remaining_steps) +
      static_cast<double>(request.denoise_steps);
  // Requests beyond the batch capacity serialize into extra waves.
  const double waves =
      std::max(1.0, static_cast<double>(ratios.size()) /
                        static_cast<double>(std::max(1, status.max_batch)));
  return step.seconds() * steps_outstanding /
         static_cast<double>(ratios.size()) * waves;
}

int MaskAwareRouter::Route(const trace::Request& request,
                           const std::vector<WorkerStatus>& statuses) {
  assert(!statuses.empty());
  // Candidates: workers with slack in the running batch; fall back to all
  // workers when everything is saturated (Algorithm 2 line 7).
  std::vector<const WorkerStatus*> candidates;
  for (const auto& s : statuses) {
    if (s.has_slack) {
      candidates.push_back(&s);
    }
  }
  if (candidates.empty()) {
    for (const auto& s : statuses) {
      candidates.push_back(&s);
    }
  }
  const WorkerStatus* best = candidates.front();
  double best_cost = std::numeric_limits<double>::max();
  for (const WorkerStatus* s : candidates) {
    const double cost = CalcCost(request, *s);
    if (cost < best_cost) {
      best_cost = cost;
      best = s;
    }
  }
  return best->worker_id;
}

std::unique_ptr<Router> MakeRouter(RoutePolicy policy,
                                   const model::TimingConfig& config,
                                   model::ComputeMode mode) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouter>();
    case RoutePolicy::kFirstFit:
      return std::make_unique<FirstFitRouter>();
    case RoutePolicy::kRequestCount:
      return std::make_unique<RequestCountRouter>();
    case RoutePolicy::kTokenCount:
      return std::make_unique<TokenCountRouter>(config.tokens);
    case RoutePolicy::kMaskAware:
      return std::make_unique<MaskAwareRouter>(
          LatencyModel::FitOffline(config, mode));
  }
  return nullptr;
}

}  // namespace flashps::sched
