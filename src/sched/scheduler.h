// Cluster request routing (paper §4.4, Algorithm 2) and baselines.
//
// The mask-aware policy scores each candidate worker by the Algorithm 1
// pipeline latency of its hypothetical batch (running + waiting + the new
// request), estimated via the offline regression models, scaled by the
// outstanding denoising steps — i.e. an estimate of the worker's drain time.
// Baselines score by request count or masked-token count, the
// LLM-serving-style signals the paper shows to be insufficient.
#ifndef FLASHPS_SRC_SCHED_SCHEDULER_H_
#define FLASHPS_SRC_SCHED_SCHEDULER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/sched/latency_model.h"
#include "src/trace/workload.h"

namespace flashps::sched {

// Snapshot of one worker the router can see (published by the cluster).
struct WorkerStatus {
  int worker_id = 0;
  std::vector<double> running_ratios;
  std::vector<double> waiting_ratios;
  int64_t remaining_steps = 0;
  int max_batch = 8;
  bool has_slack = true;
};

enum class RoutePolicy {
  kRoundRobin,
  kFirstFit,      // First worker with batch slack (§4.4's naive bin packing).
  kRequestCount,  // Fewest assigned requests (request-granularity LB).
  kTokenCount,    // Fewest assigned masked tokens (token-granularity LB).
  kMaskAware,     // Algorithm 2.
};

std::string ToString(RoutePolicy policy);

class Router {
 public:
  virtual ~Router() = default;
  // Picks a worker index in [0, statuses.size()).
  virtual int Route(const trace::Request& request,
                    const std::vector<WorkerStatus>& statuses) = 0;
};

class RoundRobinRouter : public Router {
 public:
  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;

 private:
  size_t next_ = 0;
};

// First-Fit bin packing: the first worker whose running batch has slack
// (falls back to fewest-outstanding when all are full). The paper notes
// this "naturally introduces load imbalances" under mask-aware serving.
class FirstFitRouter : public Router {
 public:
  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;
};

// Balances the cumulative number of requests *assigned* to each worker —
// the LLM-serving-style signal the paper describes ("the number of requests
// assigned to each server"), with no runtime feedback.
class RequestCountRouter : public Router {
 public:
  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;

 private:
  std::map<int, int64_t> assigned_;
};

// Balances the cumulative number of masked tokens assigned to each worker.
class TokenCountRouter : public Router {
 public:
  // `tokens_per_image`: full token length L, so a request contributes m*L.
  explicit TokenCountRouter(int tokens_per_image)
      : tokens_per_image_(tokens_per_image) {}
  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;

 private:
  int tokens_per_image_;
  std::map<int, double> assigned_tokens_;
};

// Algorithm 2.
class MaskAwareRouter : public Router {
 public:
  explicit MaskAwareRouter(LatencyModel latency_model)
      : latency_model_(std::move(latency_model)) {}

  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;

  // Exposed for tests/benches: the cost score of placing `request` on a
  // worker in the given state (estimated drain time, seconds).
  double CalcCost(const trace::Request& request,
                  const WorkerStatus& status) const;

 private:
  LatencyModel latency_model_;
};

std::unique_ptr<Router> MakeRouter(RoutePolicy policy,
                                   const model::TimingConfig& config,
                                   model::ComputeMode mode);

}  // namespace flashps::sched

#endif  // FLASHPS_SRC_SCHED_SCHEDULER_H_
