// Cluster request routing (paper §4.4, Algorithm 2) and baselines.
//
// The mask-aware policy scores each candidate worker by the Algorithm 1
// pipeline latency of its hypothetical batch (running + waiting + the new
// request), estimated via the offline regression models, scaled by the
// outstanding denoising steps — i.e. an estimate of the worker's drain time.
// Baselines score by request count or masked-token count, the
// LLM-serving-style signals the paper shows to be insufficient.
#ifndef FLASHPS_SRC_SCHED_SCHEDULER_H_
#define FLASHPS_SRC_SCHED_SCHEDULER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/sched/latency_model.h"
#include "src/trace/workload.h"

namespace flashps::sched {

// Snapshot of one worker the router can see (published by the cluster).
struct WorkerStatus {
  int worker_id = 0;
  std::vector<double> running_ratios;
  std::vector<double> waiting_ratios;
  int64_t remaining_steps = 0;
  int max_batch = 8;
  bool has_slack = true;
  // Per-running-request remaining denoise steps, parallel to
  // running_ratios. Optional: publishers that only track the aggregate
  // (the virtual-time sim) leave it empty and routers fall back to
  // remaining_steps.
  std::vector<int> running_remaining_steps;
};

enum class RoutePolicy {
  kRoundRobin,
  kFirstFit,      // First worker with batch slack (§4.4's naive bin packing).
  kRequestCount,  // Fewest assigned requests (request-granularity LB).
  kTokenCount,    // Fewest assigned masked tokens (token-granularity LB).
  kMaskAware,     // Algorithm 2.
};

std::string ToString(RoutePolicy policy);

// Parses the ToString() spelling ("round-robin", "first-fit",
// "request-count", "token-count", "mask-aware") — the shared `--route`
// vocabulary of the daemons. False on an unknown name (`*out` untouched).
bool ParseRoutePolicy(const std::string& name, RoutePolicy* out);

class Router {
 public:
  virtual ~Router() = default;
  // Picks a worker index in [0, statuses.size()).
  virtual int Route(const trace::Request& request,
                    const std::vector<WorkerStatus>& statuses) = 0;
};

class RoundRobinRouter : public Router {
 public:
  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;

 private:
  size_t next_ = 0;
};

// First-Fit bin packing: the first worker whose running batch has slack
// (falls back to fewest-outstanding when all are full). The paper notes
// this "naturally introduces load imbalances" under mask-aware serving.
class FirstFitRouter : public Router {
 public:
  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;
};

// Balances the cumulative number of requests *assigned* to each worker —
// the LLM-serving-style signal the paper describes ("the number of requests
// assigned to each server"), with no runtime feedback.
class RequestCountRouter : public Router {
 public:
  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;

 private:
  std::map<int, int64_t> assigned_;
};

// Balances the cumulative number of masked tokens assigned to each worker.
class TokenCountRouter : public Router {
 public:
  // `tokens_per_image`: full token length L, so a request contributes m*L.
  explicit TokenCountRouter(int tokens_per_image)
      : tokens_per_image_(tokens_per_image) {}
  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;

 private:
  int tokens_per_image_;
  std::map<int, double> assigned_tokens_;
};

// Estimated time (seconds) for a worker in state `status` to drain all its
// outstanding work plus `request`: Algorithm 1 pipeline latency of the
// hypothetical batch, amortized per request, times the outstanding steps,
// times the serialization waves beyond batch capacity. Shared by Algorithm 2
// routing (below) and the gateway's SLO admission control, which compares it
// against a request's deadline budget.
double EstimateDrainSeconds(const LatencyModel& latency_model,
                            const trace::Request& request,
                            const WorkerStatus& status);

// The serialized-batch Algorithm-2 placement cost (see MaskAwareRouter's
// class comment, `serialized_batches = true` reading): the candidate's
// remaining wall-clock work after accepting `request`, plus the co-batch
// slowdown and the per-request non-denoise overhead. A free function so
// the local MaskAwareRouter and the federated front tier score with the
// same arithmetic — the federated router calls it once per node with that
// node's own profiled latency model.
double SerializedPlacementCost(const LatencyModel& latency_model,
                               double per_request_overhead_s,
                               const trace::Request& request,
                               const WorkerStatus& status);

// Algorithm 2.
//
// Two cost readings, selected by `serialized_batches`:
//  - false (default, the virtual-time cluster sim): the new request's own
//    estimated drain time, EstimateDrainSeconds above. Matches a pipelined
//    engine where batch members share each step's latency.
//  - true (the live gateway's OnlineServer workers): batch members' step
//    math serializes on one denoise thread, so placing a request both waits
//    behind the worker's whole backlog each step AND slows every co-batched
//    request by its own per-step cost. The cost is that marginal total:
//    own completion plus the slowdown imposed on the worker's outstanding
//    steps. This is what makes heavy-mask requests cluster away from lights
//    instead of chasing the emptiest worker into their batches.
class MaskAwareRouter : public Router {
 public:
  // `per_request_overhead_s` (serialized mode only): estimated non-denoise
  // cost per request — pre/post-processing on the worker's CPU lanes. Charged
  // per outstanding request so that piling cheap-denoise requests onto one
  // worker still reads as load; without it, a queue of light-mask requests
  // looks nearly free and the router parks every light behind it.
  explicit MaskAwareRouter(LatencyModel latency_model,
                           bool serialized_batches = false,
                           double per_request_overhead_s = 0.0)
      : latency_model_(std::move(latency_model)),
        serialized_batches_(serialized_batches),
        per_request_overhead_s_(per_request_overhead_s) {}

  int Route(const trace::Request& request,
            const std::vector<WorkerStatus>& statuses) override;

  // Exposed for tests/benches: the cost score of placing `request` on a
  // worker in the given state (seconds; see the class comment for the two
  // readings).
  double CalcCost(const trace::Request& request,
                  const WorkerStatus& status) const;

 private:
  LatencyModel latency_model_;
  bool serialized_batches_ = false;
  double per_request_overhead_s_ = 0.0;
  // Near-tie fallback state (serialized mode): assignments per worker.
  std::map<int, int64_t> assigned_;
};

std::unique_ptr<Router> MakeRouter(RoutePolicy policy,
                                   const model::TimingConfig& config,
                                   model::ComputeMode mode);

}  // namespace flashps::sched

#endif  // FLASHPS_SRC_SCHED_SCHEDULER_H_
