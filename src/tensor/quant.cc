#include "src/tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace flashps::quant {

namespace {

// Largest finite magnitude a half can hold; beyond it F32ToF16 overflows
// to infinity by design.
constexpr uint32_t kF32ExpMask = 0xffu;

uint32_t F32Bits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

float BitsToF32(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace

std::string ToString(Dtype dtype) {
  switch (dtype) {
    case Dtype::kF32:
      return "f32";
    case Dtype::kF16:
      return "f16";
    case Dtype::kI8:
      return "i8";
  }
  return "?";
}

size_t DtypeBytes(Dtype dtype) {
  switch (dtype) {
    case Dtype::kF32:
      return 4;
    case Dtype::kF16:
      return 2;
    case Dtype::kI8:
      return 1;
  }
  return 0;
}

bool ValidDtypeTag(uint8_t tag) {
  return tag <= static_cast<uint8_t>(Dtype::kI8);
}

uint16_t F32ToF16(float f) {
  const uint32_t x = F32Bits(f);
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  const uint32_t exp32 = (x >> 23) & kF32ExpMask;
  uint32_t mant = x & 0x007fffffu;
  if (exp32 == kF32ExpMask) {
    // Inf / NaN: preserve NaN-ness (a NaN payload truncated to zero would
    // silently become infinity, so force the quiet bit).
    if (mant != 0) {
      return static_cast<uint16_t>(sign | 0x7c00u | 0x0200u | (mant >> 13));
    }
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  const int32_t exp = static_cast<int32_t>(exp32) - 127 + 15;
  if (exp >= 31) {
    return static_cast<uint16_t>(sign | 0x7c00u);  // Overflow to infinity.
  }
  if (exp <= 0) {
    if (exp < -10) {
      return sign;  // Underflows past the smallest subnormal: signed zero.
    }
    // Subnormal half: shift the (implicit-1) mantissa into place with
    // round-to-nearest-even on the bits shifted out.
    mant |= 0x00800000u;
    const uint32_t shift = static_cast<uint32_t>(14 - exp);
    uint16_t half = static_cast<uint16_t>(mant >> shift);
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1u))) {
      ++half;  // May carry into the exponent field; that is the correct
               // subnormal->normal promotion.
    }
    return static_cast<uint16_t>(sign | half);
  }
  uint16_t half = static_cast<uint16_t>(
      sign | (static_cast<uint32_t>(exp) << 10) | (mant >> 13));
  const uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) {
    ++half;  // Carry may roll into infinity; that rounds correctly too.
  }
  return half;
}

float F16ToF32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x03ffu;
  if (exp == 0) {
    if (mant == 0) {
      return BitsToF32(sign);  // Signed zero.
    }
    // Subnormal half: normalize into a f32 normal.
    int e = 0;
    while ((mant & 0x0400u) == 0) {
      mant <<= 1;
      ++e;
    }
    mant &= 0x03ffu;
    const uint32_t exp32 = static_cast<uint32_t>(127 - 15 - e + 1);
    return BitsToF32(sign | (exp32 << 23) | (mant << 13));
  }
  if (exp == 31) {
    return BitsToF32(sign | 0x7f800000u | (mant << 13));  // Inf / NaN.
  }
  return BitsToF32(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

EncodedMatrix Encode(const Matrix& m, Dtype dtype) {
  EncodedMatrix e;
  e.dtype = dtype;
  e.rows = m.rows();
  e.cols = m.cols();
  const size_t n = m.size();
  const float* data = m.data();
  switch (dtype) {
    case Dtype::kF32: {
      e.payload.resize(n * 4);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t bits = F32Bits(data[i]);
        e.payload[i * 4 + 0] = static_cast<uint8_t>(bits);
        e.payload[i * 4 + 1] = static_cast<uint8_t>(bits >> 8);
        e.payload[i * 4 + 2] = static_cast<uint8_t>(bits >> 16);
        e.payload[i * 4 + 3] = static_cast<uint8_t>(bits >> 24);
      }
      break;
    }
    case Dtype::kF16: {
      e.payload.resize(n * 2);
      for (size_t i = 0; i < n; ++i) {
        const uint16_t half = F32ToF16(data[i]);
        e.payload[i * 2 + 0] = static_cast<uint8_t>(half);
        e.payload[i * 2 + 1] = static_cast<uint8_t>(half >> 8);
      }
      break;
    }
    case Dtype::kI8: {
      const size_t cols = static_cast<size_t>(m.cols());
      e.scales.resize(static_cast<size_t>(m.rows()));
      e.payload.resize(n);
      for (int r = 0; r < m.rows(); ++r) {
        const float* row = m.row(r);
        float maxabs = 0.0f;
        for (size_t c = 0; c < cols; ++c) {
          maxabs = std::max(maxabs, std::fabs(row[c]));
        }
        const float scale = maxabs / 127.0f;
        e.scales[static_cast<size_t>(r)] = scale;
        uint8_t* out = e.payload.data() + static_cast<size_t>(r) * cols;
        if (scale == 0.0f || !std::isfinite(scale)) {
          // All-zero row (or non-finite garbage): quantize to zeros rather
          // than divide by zero / propagate NaN into the int domain.
          std::memset(out, 0, cols);
          continue;
        }
        for (size_t c = 0; c < cols; ++c) {
          const float q = std::nearbyint(row[c] / scale);
          const int32_t clamped =
              std::clamp(static_cast<int32_t>(q), -127, 127);
          out[c] = static_cast<uint8_t>(static_cast<int8_t>(clamped));
        }
      }
      break;
    }
  }
  return e;
}

bool Decode(const EncodedMatrix& e, Matrix* out, std::string* error) {
  auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!ValidDtypeTag(static_cast<uint8_t>(e.dtype))) {
    return fail("unknown dtype tag");
  }
  if (e.rows < 0 || e.cols < 0) {
    return fail("negative matrix dimensions");
  }
  const size_t n = static_cast<size_t>(e.rows) * static_cast<size_t>(e.cols);
  if (e.payload.size() != n * DtypeBytes(e.dtype)) {
    return fail("payload length does not match shape and dtype");
  }
  const size_t want_scales =
      e.dtype == Dtype::kI8 ? static_cast<size_t>(e.rows) : 0;
  if (e.scales.size() != want_scales) {
    return fail("scale count does not match dtype contract");
  }
  Matrix m(e.rows, e.cols);
  float* data = m.data();
  switch (e.dtype) {
    case Dtype::kF32: {
      for (size_t i = 0; i < n; ++i) {
        uint32_t bits = 0;
        for (int b = 0; b < 4; ++b) {
          bits |= static_cast<uint32_t>(e.payload[i * 4 + b]) << (8 * b);
        }
        data[i] = BitsToF32(bits);
      }
      break;
    }
    case Dtype::kF16: {
      for (size_t i = 0; i < n; ++i) {
        const uint16_t half =
            static_cast<uint16_t>(e.payload[i * 2]) |
            static_cast<uint16_t>(e.payload[i * 2 + 1]) << 8;
        data[i] = F16ToF32(half);
      }
      break;
    }
    case Dtype::kI8: {
      const size_t cols = static_cast<size_t>(e.cols);
      for (int r = 0; r < e.rows; ++r) {
        const float scale = e.scales[static_cast<size_t>(r)];
        const uint8_t* in = e.payload.data() + static_cast<size_t>(r) * cols;
        float* row = m.row(r);
        for (size_t c = 0; c < cols; ++c) {
          row[c] = static_cast<float>(static_cast<int8_t>(in[c])) * scale;
        }
      }
      break;
    }
  }
  *out = std::move(m);
  return true;
}

std::string ToString(PrecisionMode mode) {
  switch (mode) {
    case PrecisionMode::kLossless:
      return "lossless";
    case PrecisionMode::kF16:
      return "fp16";
    case PrecisionMode::kStaged:
      return "staged";
  }
  return "?";
}

bool ParsePrecisionMode(const std::string& text, PrecisionMode* out) {
  if (text == "lossless") {
    *out = PrecisionMode::kLossless;
  } else if (text == "fp16") {
    *out = PrecisionMode::kF16;
  } else if (text == "staged") {
    *out = PrecisionMode::kStaged;
  } else {
    return false;
  }
  return true;
}

Dtype DtypeForStep(PrecisionMode mode, int step, int num_steps) {
  switch (mode) {
    case PrecisionMode::kLossless:
      return Dtype::kF32;
    case PrecisionMode::kF16:
      return Dtype::kF16;
    case PrecisionMode::kStaged: {
      // First half (rounding up) f16, second half int8: early steps set
      // the denoise trajectory, late steps only refine detail.
      const int cutover = (std::max(1, num_steps) + 1) / 2;
      return step < cutover ? Dtype::kF16 : Dtype::kI8;
    }
  }
  return Dtype::kF32;
}

}  // namespace flashps::quant
