#include "src/tensor/naive.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/fast_tanh.h"

namespace flashps::naive {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (int i = 0; i < m; ++i) {
    float* out_row = out.row(i);
    const float* a_row = a.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = a_row[p];
      const float* b_row = b.row(p);
      for (int j = 0; j < n; ++j) {
        out_row[j] += av * b_row[j];
      }
    }
  }
  return out;
}

Matrix MatMulTransposed(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* a_row = a.row(i);
    float* out_row = out.row(i);
    for (int j = 0; j < n; ++j) {
      const float* b_row = b.row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      out_row[j] = acc;
    }
  }
  return out;
}

void SoftmaxRows(Matrix& m) {
  for (int i = 0; i < m.rows(); ++i) {
    float* row = m.row(i);
    float mx = row[0];
    for (int j = 1; j < m.cols(); ++j) {
      mx = std::max(mx, row[j]);
    }
    float sum = 0.0f;
    for (int j = 0; j < m.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < m.cols(); ++j) {
      row[j] *= inv;
    }
  }
}

Matrix LayerNorm(const Matrix& x, const std::vector<float>& gamma,
                 const std::vector<float>& beta, float eps) {
  assert(static_cast<int>(gamma.size()) == x.cols());
  assert(static_cast<int>(beta.size()) == x.cols());
  Matrix out(x.rows(), x.cols());
  const int c = x.cols();
  for (int i = 0; i < x.rows(); ++i) {
    const float* in_row = x.row(i);
    float* out_row = out.row(i);
    float mean = 0.0f;
    for (int j = 0; j < c; ++j) {
      mean += in_row[j];
    }
    mean /= static_cast<float>(c);
    float var = 0.0f;
    for (int j = 0; j < c; ++j) {
      const float d = in_row[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(c);
    const float inv_std = 1.0f / std::sqrt(var + eps);
    for (int j = 0; j < c; ++j) {
      out_row[j] = (in_row[j] - mean) * inv_std * gamma[j] + beta[j];
    }
  }
  return out;
}

void GeluInPlace(Matrix& m) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  for (size_t i = 0; i < m.size(); ++i) {
    const float x = m.data()[i];
    const float t = FastTanh(kSqrt2OverPi * (x + 0.044715f * x * x * x));
    m.data()[i] = 0.5f * x * (1.0f + t);
  }
}

}  // namespace flashps::naive
