// Vectorizable tanh for the GELU activation.
//
// std::tanh is a scalar libm call (~50 cycles/element) and was the single
// largest non-GEMM cost of a transformer block: at mask ratio 0.1 the
// gathered sparse compute path spends as long in the activation as in two
// of its panel GEMMs. This rational approximation (the widely used
// 7/6-degree fit over the clamped range, as in Eigen and XNNPACK) is pure
// elementwise float arithmetic, so the compiler vectorizes the GELU loop
// and the cost drops an order of magnitude.
//
// Accuracy: |FastTanh(x) - tanh(x)| stays within ~4 float ULPs of 1.0
// (absolute error < 5e-7, worst near the saturation knee |x| ~ 9) on the
// clamp range [-9, 9]; outside it tanh is 1 to float precision and the
// clamp returns exactly +/-tanh(9). tests/tensor_test.cc pins the error
// bound.
//
// Determinism: the optimized and naive GELU kernels both inline THIS
// function, so they agree bitwise; unlike libm's tanh the result does not
// depend on the host libc version.
#ifndef FLASHPS_SRC_TENSOR_FAST_TANH_H_
#define FLASHPS_SRC_TENSOR_FAST_TANH_H_

namespace flashps {

inline float FastTanh(float x) {
  // Clamp to where |tanh| == 1 in float; also bounds the polynomials.
  constexpr float kBound = 9.0f;
  x = x > kBound ? kBound : (x < -kBound ? -kBound : x);
  const float x2 = x * x;
  // Numerator (odd) and denominator (even) coefficients of the rational
  // fit; tanh(x) ~= x * P(x^2) / Q(x^2).
  float p = -2.76076847742355e-16f;
  p = p * x2 + 2.00018790482477e-13f;
  p = p * x2 + -8.60467152213735e-11f;
  p = p * x2 + 5.12229709037114e-08f;
  p = p * x2 + 1.48572235717979e-05f;
  p = p * x2 + 6.37261928875436e-04f;
  p = p * x2 + 4.89352455891786e-03f;
  p = p * x;
  float q = 1.19825839466702e-06f;
  q = q * x2 + 1.18534705686654e-04f;
  q = q * x2 + 2.26843463243900e-03f;
  q = q * x2 + 4.89352518554385e-03f;
  return p / q;
}

}  // namespace flashps

#endif  // FLASHPS_SRC_TENSOR_FAST_TANH_H_
