// Stage-wise multi-precision codec for cached activations.
//
// Cache-tier bytes, not compute, bound fleet scale: a template's
// ActivationRecord is steps x blocks fp32 matrices, and both the cache
// node's residency cap and the wire fetch cost are proportional to those
// bytes. Following MASQ's observation (PAPERS.md) that late diffusion
// steps tolerate reduced precision, each cached matrix can travel and
// rest as one of three encodings:
//
//   kF32 — raw IEEE-754 bit patterns; decode(encode(m)) is bitwise m.
//          The default, so bitwise-equivalence gates stay intact.
//   kF16 — IEEE-754 half precision, round-to-nearest-even. 2x smaller;
//          every half-representable value round-trips exactly.
//   kI8  — symmetric per-row int8: scale = maxabs/127 per row,
//          q = clamp(round(x/scale), -127, 127), decode = q*scale.
//          ~4x smaller (+ one f32 scale per row); per-element error is
//          bounded by scale/2.
//
// The *policy* maps a diffusion step to a dtype. Early steps shape the
// global structure of the denoise trajectory (errors there compound
// through every later step), late steps refine detail — so `kStaged`
// keeps the first half of the steps at f16 and drops the second half to
// int8, the stage-wise schedule that cuts record bytes ~2.6x while the
// quality harness (SSIM/FID/CLIP-proxy) keeps the Table-2 orderings.
//
// This layer is pure math + bytes: no wire framing, no checksums (the
// wire layer checksums the *encoded* form so nodes verify without
// decoding). It lives in flashps_tensor because every higher layer —
// net, cache, cache/ring — needs it.
#ifndef FLASHPS_SRC_TENSOR_QUANT_H_
#define FLASHPS_SRC_TENSOR_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"

namespace flashps::quant {

// Wire-stable dtype tags; never renumber.
enum class Dtype : uint8_t {
  kF32 = 0,
  kF16 = 1,
  kI8 = 2,
};

std::string ToString(Dtype dtype);
// Bytes per element on the wire/in residence.
size_t DtypeBytes(Dtype dtype);
// True iff `tag` names a Dtype (strict decoders reject anything else).
bool ValidDtypeTag(uint8_t tag);

// One matrix in encoded form: self-describing shape + dtype, per-row
// scales (kI8 only; exactly `rows` of them), and the element payload
// (rows*cols*DtypeBytes little-endian bytes).
struct EncodedMatrix {
  Dtype dtype = Dtype::kF32;
  int rows = 0;
  int cols = 0;
  std::vector<float> scales;     // Empty unless dtype == kI8.
  std::vector<uint8_t> payload;  // Element bytes, little-endian.

  // Bytes this encoding occupies at rest (scales + elements); the unit of
  // cache-node residency accounting and the wire-bytes counters.
  size_t StoredBytes() const {
    return payload.size() + scales.size() * sizeof(float);
  }
};

// IEEE-754 binary32 <-> binary16, explicit bit manipulation (no FP16
// hardware assumed). F32ToF16 rounds to nearest-even and overflows to
// infinity; F16ToF32 is exact for every half value including subnormals.
uint16_t F32ToF16(float f);
float F16ToF32(uint16_t h);

// Encodes `m` at the given dtype. Never fails: any shape (including
// empty) has a valid encoding; an all-zero row quantizes with scale 0.
EncodedMatrix Encode(const Matrix& m, Dtype dtype);

// Strict decode. False (with `error` filled when non-null) on any
// structural inconsistency: unknown dtype, negative dims, scale count not
// matching the dtype contract, payload length not rows*cols*DtypeBytes.
bool Decode(const EncodedMatrix& e, Matrix* out, std::string* error);

// --- stage policy ---------------------------------------------------------

enum class PrecisionMode : uint8_t {
  kLossless = 0,  // Every step f32; bitwise round-trip.
  kF16 = 1,       // Every step f16.
  kStaged = 2,    // First half of steps f16, second half int8 (MASQ).
};

std::string ToString(PrecisionMode mode);
// Parses the --cache-precision flag values: "lossless" | "fp16" | "staged".
bool ParsePrecisionMode(const std::string& text, PrecisionMode* out);

// The dtype that encodes step `step` of a `num_steps`-step record under
// `mode`. Steps outside [0, num_steps) clamp to the nearest stage.
Dtype DtypeForStep(PrecisionMode mode, int step, int num_steps);

}  // namespace flashps::quant

#endif  // FLASHPS_SRC_TENSOR_QUANT_H_
