// Reference implementations of the hot tensor kernels: the seed repo's
// single-threaded scalar loops, kept verbatim (minus the data-dependent
// zero-skip branch the dense MatMul once carried). The blocked/threaded
// kernels in matrix.h are validated against these in the kernel-equivalence
// suite, and bench_kernels measures blocked-vs-naive speedups against them.
// Never call these from serving paths.
#ifndef FLASHPS_SRC_TENSOR_NAIVE_H_
#define FLASHPS_SRC_TENSOR_NAIVE_H_

#include <vector>

#include "src/tensor/matrix.h"

namespace flashps::naive {

// out = a * b. Shapes: (m,k) x (k,n) -> (m,n). i-k-j scalar loop.
Matrix MatMul(const Matrix& a, const Matrix& b);

// out = a * b^T. Shapes: (m,k) x (n,k) -> (m,n). Scalar dot products.
Matrix MatMulTransposed(const Matrix& a, const Matrix& b);

// Row-wise softmax in place, one row at a time.
void SoftmaxRows(Matrix& m);

// Row-wise LayerNorm with per-channel gain/bias.
Matrix LayerNorm(const Matrix& x, const std::vector<float>& gamma,
                 const std::vector<float>& beta, float eps = 1e-5f);

// Element-wise GeLU (tanh approximation) in place.
void GeluInPlace(Matrix& m);

}  // namespace flashps::naive

#endif  // FLASHPS_SRC_TENSOR_NAIVE_H_
