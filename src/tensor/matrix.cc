#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>

namespace flashps {

void Matrix::FillNormal(Rng& rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
}

void Matrix::FillConstant(float v) { std::fill(data_.begin(), data_.end(), v); }

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (int i = 0; i < m; ++i) {
    float* out_row = out.row(i);
    const float* a_row = a.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) {
        continue;
      }
      const float* b_row = b.row(p);
      for (int j = 0; j < n; ++j) {
        out_row[j] += av * b_row[j];
      }
    }
  }
  return out;
}

Matrix MatMulTransposed(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* a_row = a.row(i);
    float* out_row = out.row(i);
    for (int j = 0; j < n; ++j) {
      const float* b_row = b.row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      out_row[j] = acc;
    }
  }
  return out;
}

void SoftmaxRows(Matrix& m) {
  for (int i = 0; i < m.rows(); ++i) {
    float* row = m.row(i);
    float mx = row[0];
    for (int j = 1; j < m.cols(); ++j) {
      mx = std::max(mx, row[j]);
    }
    float sum = 0.0f;
    for (int j = 0; j < m.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < m.cols(); ++j) {
      row[j] *= inv;
    }
  }
}

Matrix LayerNorm(const Matrix& x, const std::vector<float>& gamma,
                 const std::vector<float>& beta, float eps) {
  assert(static_cast<int>(gamma.size()) == x.cols());
  assert(static_cast<int>(beta.size()) == x.cols());
  Matrix out(x.rows(), x.cols());
  const int c = x.cols();
  for (int i = 0; i < x.rows(); ++i) {
    const float* in_row = x.row(i);
    float* out_row = out.row(i);
    float mean = 0.0f;
    for (int j = 0; j < c; ++j) {
      mean += in_row[j];
    }
    mean /= static_cast<float>(c);
    float var = 0.0f;
    for (int j = 0; j < c; ++j) {
      const float d = in_row[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(c);
    const float inv_std = 1.0f / std::sqrt(var + eps);
    for (int j = 0; j < c; ++j) {
      out_row[j] = (in_row[j] - mean) * inv_std * gamma[j] + beta[j];
    }
  }
  return out;
}

void GeluInPlace(Matrix& m) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  for (size_t i = 0; i < m.size(); ++i) {
    const float x = m.data()[i];
    const float t = std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x));
    m.data()[i] = 0.5f * x * (1.0f + t);
  }
}

Matrix Add(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] + b.data()[i];
  }
  return out;
}

void AddInPlace(Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] += b.data()[i];
  }
}

void ScaleInPlace(Matrix& m, float k) {
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] *= k;
  }
}

Matrix GatherRows(const Matrix& m, const std::vector<int>& indices) {
  Matrix out(static_cast<int>(indices.size()), m.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const float* src = m.row(indices[i]);
    std::copy(src, src + m.cols(), out.row(static_cast<int>(i)));
  }
  return out;
}

void ScatterRows(Matrix& dst, const Matrix& src, const std::vector<int>& indices) {
  assert(static_cast<int>(indices.size()) == src.rows());
  assert(dst.cols() == src.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const float* s = src.row(static_cast<int>(i));
    std::copy(s, s + src.cols(), dst.row(indices[i]));
  }
}

double CosineSimilarity(const Matrix& a, int r1, const Matrix& b, int r2) {
  assert(a.cols() == b.cols());
  const float* x = a.row(r1);
  const float* y = b.row(r2);
  double dot = 0.0;
  double nx = 0.0;
  double ny = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    dot += static_cast<double>(x[j]) * y[j];
    nx += static_cast<double>(x[j]) * x[j];
    ny += static_cast<double>(y[j]) * y[j];
  }
  if (nx == 0.0 || ny == 0.0) {
    return 0.0;
  }
  return dot / (std::sqrt(nx) * std::sqrt(ny));
}

double MeanAbsDiff(const Matrix& a, const Matrix& b) {
  assert(a.size() == b.size());
  if (a.size() == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += std::abs(static_cast<double>(a.data()[i]) - b.data()[i]);
  }
  return total / static_cast<double>(a.size());
}

double FrobeniusNorm(const Matrix& m) {
  double total = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    total += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  return std::sqrt(total);
}

}  // namespace flashps
