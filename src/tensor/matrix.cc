#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/common/parallel_for.h"
#include "src/tensor/fast_tanh.h"

namespace flashps {

void Matrix::FillNormal(Rng& rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
}

void Matrix::FillConstant(float v) { std::fill(data_.begin(), data_.end(), v); }

namespace {

// ---------------------------------------------------------------------------
// Blocked GEMM core. MatMul and MatMulTransposed share it: B (or B^T) is
// packed into kNr-wide column panels, and a kMr x kNr register-tiled
// micro-kernel accumulates C over k. The packed inner loop over the panel
// lanes is branch-free with unit stride, which the compiler auto-vectorizes;
// remainder rows/columns fall back to the generic tile. GEMMs with few
// logical rows — the gathered sparse compute path's panels — run the same
// tiling panel-at-a-time instead (see GemmPanelRangeImpl), which skips the
// whole-B pack those few rows cannot amortize without changing a bit of
// the result.
// ---------------------------------------------------------------------------

constexpr int kMr = 4;    // C rows per micro-kernel tile.
constexpr int kNr = 8;    // Panel width (vector lanes of the inner loop).
constexpr int kKc = 512;  // k-block height: one packed panel stays in L1.
// Serial fast path: below this many multiply-adds a fan-out/join costs more
// than the math it parallelizes.
constexpr int64_t kGemmParallelFlops = 1 << 18;
// Serial fast path for row-wise/element-wise kernels, in elements per chunk.
constexpr int64_t kRowwiseGrainElems = 1 << 13;
constexpr int64_t kElemwiseGrainElems = 1 << 15;

int NumPanels(int n) { return (n + kNr - 1) / kNr; }

// Packs one column panel of b[k0:k1) into `dst` (kc * kNr floats): columns
// [panel*kNr, panel*kNr + kNr) in k-major order, zero-padded past n.
void PackOnePanel(const Matrix& b, int k0, int k1, int n, int panel,
                  float* dst) {
  const int kc = k1 - k0;
  const int j0 = panel * kNr;
  const int jw = std::min(kNr, n - j0);
  if (jw < kNr) {
    std::fill(dst, dst + static_cast<size_t>(kc) * kNr, 0.0f);
  }
  for (int p = 0; p < kc; ++p) {
    const float* src = b.row(k0 + p) + j0;
    for (int c = 0; c < jw; ++c) {
      dst[p * kNr + c] = src[c];
    }
  }
}

// Same panel layout, but the packed "columns" are rows of b — packing b^T
// without materializing it. b is (n, k).
void PackOnePanelTransposed(const Matrix& b, int k0, int k1, int n, int panel,
                            float* dst) {
  const int kc = k1 - k0;
  const int j0 = panel * kNr;
  const int jw = std::min(kNr, n - j0);
  if (jw < kNr) {
    std::fill(dst, dst + static_cast<size_t>(kc) * kNr, 0.0f);
  }
  for (int c = 0; c < jw; ++c) {
    const float* src = b.row(j0 + c) + k0;
    for (int p = 0; p < kc; ++p) {
      dst[p * kNr + c] = src[p];
    }
  }
}

// Panels packed per pass over b's rows in the panel-at-a-time path. One
// pass per panel reads just kNr floats of every b row — a large-stride
// walk whose TLB cost repeats for each panel. Packing a group amortizes
// the walk: each row contributes kPanelGroup * kNr sequential floats per
// pass, and the per-panel layout (and thus every packed value) is
// unchanged.
constexpr int kPanelGroup = 8;

// Packs `np` consecutive column panels of row-major b[k0:k1) into `dst`
// (np buffers of kc * kNr floats each, laid out exactly as PackOnePanel
// would produce them) in a single pass over b's rows.
void PackPanelGroup(const Matrix& b, int k0, int k1, int n, int panel0,
                    int np, float* dst) {
  const int kc = k1 - k0;
  const int j0 = panel0 * kNr;
  const int jtotal = std::min(np * kNr, n - j0);
  if (jtotal < np * kNr) {
    std::fill(dst, dst + static_cast<size_t>(np) * kc * kNr, 0.0f);
  }
  for (int p = 0; p < kc; ++p) {
    const float* src = b.row(k0 + p) + j0;
    float* prow = dst + static_cast<size_t>(p) * kNr;
    for (int g = 0; g < np; ++g) {
      const int w = std::min(kNr, jtotal - g * kNr);
      float* d = prow + static_cast<size_t>(g) * kc * kNr;
      for (int c = 0; c < w; ++c) {
        d[c] = src[g * kNr + c];
      }
    }
  }
}

// Packs b[k0:k1) x [0:n) into column panels (see PackOnePanel for the
// layout of each).
void PackPanels(const Matrix& b, int k0, int k1, int n, bool b_transposed,
                std::vector<float>& packed) {
  const int kc = k1 - k0;
  const int panels = NumPanels(n);
  packed.assign(static_cast<size_t>(panels) * kc * kNr, 0.0f);
  for (int panel = 0; panel < panels; ++panel) {
    float* dst = packed.data() + static_cast<size_t>(panel) * kc * kNr;
    if (b_transposed) {
      PackOnePanelTransposed(b, k0, k1, n, panel, dst);
    } else {
      PackOnePanel(b, k0, k1, n, panel, dst);
    }
  }
}

// Forced inlining lets the micro-kernels be re-compiled inside each
// ISA-targeted GemmRowRange wrapper below, so one source vectorizes at
// SSE2, AVX2+FMA, and AVX-512 widths.
#define FLASHPS_ALWAYS_INLINE inline __attribute__((always_inline))

// One panel-width vector lane: the micro-kernel is written directly in GCC
// vector extensions rather than left to the loop auto-vectorizer, whose
// choices at the wider ISA levels (re-vectorizing the tile as spilled
// zmm temporaries) measured slower than its own SSE2 code. The extension
// lowers to whatever the enclosing function's target allows — two xmm
// mul+adds at baseline, one ymm FMA per row at x86-64-v3/v4.
typedef float VecNr __attribute__((vector_size(kNr * sizeof(float))));

FLASHPS_ALWAYS_INLINE VecNr LoadVec(const float* p) {
  VecNr v;
  __builtin_memcpy(&v, p, sizeof(VecNr));
  return v;
}

FLASHPS_ALWAYS_INLINE void StoreVec(float* p, VecNr v) {
  __builtin_memcpy(p, &v, sizeof(VecNr));
}

// Scalar-vector binop form so the broadcast lowers to one vbroadcastss
// (an explicit lane loop compiles to a vinsertps chain on GCC 12).
FLASHPS_ALWAYS_INLINE VecNr Splat(float s) { return s + VecNr{}; }

// C[rows i0..i0+mr) x [panel columns j0..j0+jw) += A-rows * B-panel.
// The accumulator tile lives in registers across the whole k-block.
// `ldb` is the float stride between consecutive k rows of the panel: kNr
// for a packed panel, b.cols() when the panel is read straight out of a
// row-major B (the panel-at-a-time path below). The loaded lane values and
// the accumulation order are the same either way, so the result bits do
// not depend on which layout fed the kernel.
template <int MR>
FLASHPS_ALWAYS_INLINE void MicroKernel(const float* a_rows[],
                                       const float* panel, int ldb, int kc,
                                       float* c_rows[], int jw) {
  VecNr acc[MR] = {};
  for (int p = 0; p < kc; ++p) {
    const VecNr bp = LoadVec(panel + static_cast<size_t>(p) * ldb);
    for (int r = 0; r < MR; ++r) {
      acc[r] += Splat(a_rows[r][p]) * bp;
    }
  }
  if (jw == kNr) {
    for (int r = 0; r < MR; ++r) {
      StoreVec(c_rows[r], LoadVec(c_rows[r]) + acc[r]);
    }
  } else {
    for (int r = 0; r < MR; ++r) {
      for (int c = 0; c < jw; ++c) {
        c_rows[r][c] += acc[r][c];
      }
    }
  }
}

// Tall row tile for the panel-at-a-time path below: with only a handful of
// logical rows, each packed panel is reused by few tiles, so the tile is
// made twice as tall to halve the panel passes (and the per-k bp loads).
// Row count never changes what a row accumulates — acc[r] depends only on
// its own A row and the panel — so tile height is bitwise-neutral. (A
// 16-row tile measured slower on AVX-512 hosts: the kernel is bound by the
// per-row broadcast loads, which taller tiles do not reduce.)
constexpr int kMrPanel = 2 * kMr;

// Two-panel tile for the panel-at-a-time path: one A broadcast feeds a
// FMA into each of two adjacent packed panels, halving the broadcast
// loads per flop the single-panel kernel is bound by. Needs 2*MR + 2
// live vector registers, so only the AVX-512 instantiation (32 registers)
// uses it. Each accumulator still sums its own A row against its own
// panel lane in the same p order, so pairing is bitwise-neutral.
template <int MR>
FLASHPS_ALWAYS_INLINE void MicroKernelPair(const float* a_rows[],
                                           const float* p0, const float* p1,
                                           int ldb, int kc, float* c_rows0[],
                                           float* c_rows1[]) {
  VecNr acc0[MR] = {};
  VecNr acc1[MR] = {};
  for (int p = 0; p < kc; ++p) {
    const VecNr b0 = LoadVec(p0 + static_cast<size_t>(p) * ldb);
    const VecNr b1 = LoadVec(p1 + static_cast<size_t>(p) * ldb);
    for (int r = 0; r < MR; ++r) {
      const VecNr s = Splat(a_rows[r][p]);
      acc0[r] += s * b0;
      acc1[r] += s * b1;
    }
  }
  for (int r = 0; r < MR; ++r) {
    StoreVec(c_rows0[r], LoadVec(c_rows0[r]) + acc0[r]);
    StoreVec(c_rows1[r], LoadVec(c_rows1[r]) + acc1[r]);
  }
}

// Remainder tile with runtime row count (mr < TM).
template <int TM>
FLASHPS_ALWAYS_INLINE void MicroKernelEdge(int mr, const float* a_rows[],
                                           const float* panel, int ldb, int kc,
                                           float* c_rows[], int jw) {
  VecNr acc[TM] = {};
  for (int p = 0; p < kc; ++p) {
    const VecNr bp = LoadVec(panel + static_cast<size_t>(p) * ldb);
    for (int r = 0; r < mr; ++r) {
      acc[r] += Splat(a_rows[r][p]) * bp;
    }
  }
  for (int r = 0; r < mr; ++r) {
    for (int c = 0; c < jw; ++c) {
      c_rows[r][c] += acc[r][c];
    }
  }
}

// One k-block pass over the row range [i0, i1): row tiles of kMr against
// every packed panel. Ranges from ParallelFor are grain-aligned with grain a
// multiple of kMr, so the tile decomposition — and with it the result bits —
// does not depend on the thread count.
//
// `a_idx`/`c_idx` are the gathered-panel hooks (null = identity): when set,
// logical row i reads a.row(a_idx[i]) and/or writes out.row(c_idx[i]).
// The per-row accumulation order is untouched, so a gathered row is
// bitwise-identical to the same row of the dense all-rows GEMM — the
// property the mask-aware sparse compute path is built on.
FLASHPS_ALWAYS_INLINE void GemmRowRangeImpl(const Matrix& a,
                                            const std::vector<float>& packed,
                                            int k0, int kc, int n, Matrix& out,
                                            const int* a_idx, const int* c_idx,
                                            int64_t i0, int64_t i1) {
  const int panels = NumPanels(n);
  const float* a_rows[kMr];
  float* c_rows[kMr];
  for (int64_t i = i0; i < i1; i += kMr) {
    const int mr = static_cast<int>(std::min<int64_t>(kMr, i1 - i));
    for (int r = 0; r < mr; ++r) {
      const int ar = static_cast<int>(i) + r;
      a_rows[r] = a.row(a_idx == nullptr ? ar : a_idx[ar]) + k0;
    }
    for (int panel = 0; panel < panels; ++panel) {
      const int j0 = panel * kNr;
      const int jw = std::min(kNr, n - j0);
      const float* pp = packed.data() + static_cast<size_t>(panel) * kc * kNr;
      for (int r = 0; r < mr; ++r) {
        const int cr = static_cast<int>(i) + r;
        c_rows[r] = out.row(c_idx == nullptr ? cr : c_idx[cr]) + j0;
      }
      if (mr == kMr) {
        MicroKernel<kMr>(a_rows, pp, kNr, kc, c_rows, jw);
      } else {
        MicroKernelEdge<kMr>(mr, a_rows, pp, kNr, kc, c_rows, jw);
      }
    }
  }
}

// Runtime ISA dispatch. The portable build targets baseline x86-64 (SSE2,
// no FMA), which leaves most of a modern core idle; instead of shipping
// per-host binaries, the row-range kernel is compiled three times — baseline,
// x86-64-v3 (AVX2+FMA), x86-64-v4 (AVX-512) — and the widest level the CPU
// reports is picked once per process. Explicit function-pointer dispatch
// (not ifunc/target_clones) keeps sanitizer builds and static init simple.
// The choice is process-wide and thread-count-independent, so the bitwise
// invariance guarantee above is unaffected.
using GemmRowRangeFn = void (*)(const Matrix&, const std::vector<float>&, int,
                                int, int, Matrix&, const int*, const int*,
                                int64_t, int64_t);

void GemmRowRangeGeneric(const Matrix& a, const std::vector<float>& packed,
                         int k0, int kc, int n, Matrix& out, const int* a_idx,
                         const int* c_idx, int64_t i0, int64_t i1) {
  GemmRowRangeImpl(a, packed, k0, kc, n, out, a_idx, c_idx, i0, i1);
}

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define FLASHPS_GEMM_MULTIVERSION 1
__attribute__((target("arch=x86-64-v3"))) void GemmRowRangeV3(
    const Matrix& a, const std::vector<float>& packed, int k0, int kc, int n,
    Matrix& out, const int* a_idx, const int* c_idx, int64_t i0, int64_t i1) {
  GemmRowRangeImpl(a, packed, k0, kc, n, out, a_idx, c_idx, i0, i1);
}

__attribute__((target("arch=x86-64-v4"))) void GemmRowRangeV4(
    const Matrix& a, const std::vector<float>& packed, int k0, int kc, int n,
    Matrix& out, const int* a_idx, const int* c_idx, int64_t i0, int64_t i1) {
  GemmRowRangeImpl(a, packed, k0, kc, n, out, a_idx, c_idx, i0, i1);
}
#endif

// Panel-at-a-time variant for GEMMs with few logical rows (the gathered
// sparse compute path's panels): packing all of B costs O(k·n) writes plus
// a second pass of reads, which only pays for itself when many row tiles
// reuse the packed image. Here the panel loop is outermost; a full-width
// panel of a row-major B needs no packing at all — the micro-kernel reads
// the kNr lanes straight out of B at stride b.cols() — and the remaining
// cases (B^T, or the ragged last panel) pack one small L1-resident buffer,
// use it against every row tile, and discard it. B streams through exactly
// once. The lane values and the per-element accumulation order are
// identical to the all-panels layout above, so results stay
// bitwise-identical to the dense kernel (and to this kernel at any thread
// count: panels write disjoint column ranges and each is computed
// identically wherever it lands).
template <int TM, int NP>
FLASHPS_ALWAYS_INLINE void GemmPanelRangeImpl(
    const Matrix& a, const Matrix& b, bool b_transposed, int k0, int kc, int m,
    int n, Matrix& out, const int* a_idx, const int* c_idx, float* panel_buf,
    int64_t panel0, int64_t panel1) {
  const float* a_rows[TM];
  float* c_rows[TM];
  float* c_rows1[TM];
  int64_t panel = panel0;
  while (panel < panel1) {
    const int j0 = static_cast<int>(panel) * kNr;
    const int jw = std::min(kNr, n - j0);
    int ng = 1;
    const float* pp0;
    int ldb;
    bool packed = false;
    if (!b_transposed && jw == kNr && m <= TM) {
      // One tile pass total: reading the lanes straight out of row-major B
      // beats packing, which would touch the same strided rows and then
      // round-trip them through a buffer for a single consumer.
      pp0 = b.row(k0) + j0;
      ldb = b.cols();
    } else {
      ng = static_cast<int>(std::min<int64_t>(kPanelGroup, panel1 - panel));
      if (b_transposed) {
        // b^T packing already reads b's rows contiguously; pack the group
        // panel by panel into the shared buffer.
        for (int g = 0; g < ng; ++g) {
          PackOnePanelTransposed(b, k0, k0 + kc, n, static_cast<int>(panel) + g,
                                 panel_buf + static_cast<size_t>(g) * kc * kNr);
        }
      } else {
        PackPanelGroup(b, k0, k0 + kc, n, static_cast<int>(panel), ng,
                       panel_buf);
      }
      pp0 = panel_buf;
      ldb = kNr;
      packed = true;
    }
    int g = 0;
    if (NP == 2 && packed) {
      // Packed-panel pairs, both full width: the paired kernel shares each
      // A broadcast between the two panels' FMAs.
      for (; g + 1 < ng && static_cast<int>(panel + g) * kNr + 2 * kNr <= n;
           g += 2) {
        const int gj0 = static_cast<int>(panel + g) * kNr;
        const float* gp0 = panel_buf + static_cast<size_t>(g) * kc * kNr;
        const float* gp1 = gp0 + static_cast<size_t>(kc) * kNr;
        for (int i = 0; i < m; i += TM) {
          const int mr = std::min(TM, m - i);
          for (int r = 0; r < mr; ++r) {
            a_rows[r] = a.row(a_idx == nullptr ? i + r : a_idx[i + r]) + k0;
            c_rows[r] = out.row(c_idx == nullptr ? i + r : c_idx[i + r]) + gj0;
            c_rows1[r] = c_rows[r] + kNr;
          }
          if (mr == TM) {
            MicroKernelPair<TM>(a_rows, gp0, gp1, ldb, kc, c_rows, c_rows1);
          } else {
            MicroKernelEdge<TM>(mr, a_rows, gp0, ldb, kc, c_rows, kNr);
            MicroKernelEdge<TM>(mr, a_rows, gp1, ldb, kc, c_rows1, kNr);
          }
        }
      }
    }
    for (; g < ng; ++g) {
      const int gj0 = static_cast<int>(panel + g) * kNr;
      const int gjw = std::min(kNr, n - gj0);
      const float* pp =
          packed ? panel_buf + static_cast<size_t>(g) * kc * kNr : pp0;
      for (int i = 0; i < m; i += TM) {
        const int mr = std::min(TM, m - i);
        for (int r = 0; r < mr; ++r) {
          a_rows[r] = a.row(a_idx == nullptr ? i + r : a_idx[i + r]) + k0;
          c_rows[r] = out.row(c_idx == nullptr ? i + r : c_idx[i + r]) + gj0;
        }
        if (mr == TM) {
          MicroKernel<TM>(a_rows, pp, ldb, kc, c_rows, gjw);
        } else {
          MicroKernelEdge<TM>(mr, a_rows, pp, ldb, kc, c_rows, gjw);
        }
      }
    }
    panel += ng;
  }
}

using GemmPanelRangeFn = void (*)(const Matrix&, const Matrix&, bool, int, int,
                                  int, int, Matrix&, const int*, const int*,
                                  float*, int64_t, int64_t);

void GemmPanelRangeGeneric(const Matrix& a, const Matrix& b, bool b_transposed,
                           int k0, int kc, int m, int n, Matrix& out,
                           const int* a_idx, const int* c_idx, float* panel_buf,
                           int64_t panel0, int64_t panel1) {
  GemmPanelRangeImpl<kMrPanel, 1>(a, b, b_transposed, k0, kc, m, n, out,
                                  a_idx, c_idx, panel_buf, panel0, panel1);
}

#ifdef FLASHPS_GEMM_MULTIVERSION
__attribute__((target("arch=x86-64-v3"))) void GemmPanelRangeV3(
    const Matrix& a, const Matrix& b, bool b_transposed, int k0, int kc, int m,
    int n, Matrix& out, const int* a_idx, const int* c_idx, float* panel_buf,
    int64_t panel0, int64_t panel1) {
  GemmPanelRangeImpl<kMrPanel, 1>(a, b, b_transposed, k0, kc, m, n, out,
                                  a_idx, c_idx, panel_buf, panel0, panel1);
}

__attribute__((target("arch=x86-64-v4"))) void GemmPanelRangeV4(
    const Matrix& a, const Matrix& b, bool b_transposed, int k0, int kc, int m,
    int n, Matrix& out, const int* a_idx, const int* c_idx, float* panel_buf,
    int64_t panel0, int64_t panel1) {
  GemmPanelRangeImpl<kMrPanel, 2>(a, b, b_transposed, k0, kc, m, n, out,
                                  a_idx, c_idx, panel_buf, panel0, panel1);
}
#endif

GemmPanelRangeFn ResolveGemmPanelRange() {
#ifdef FLASHPS_GEMM_MULTIVERSION
  const char* pin = std::getenv("FLASHPS_ISA");
  if (pin != nullptr) {
    if (std::strcmp(pin, "generic") == 0) {
      return GemmPanelRangeGeneric;
    }
    if (std::strcmp(pin, "v3") == 0 && __builtin_cpu_supports("x86-64-v3")) {
      return GemmPanelRangeV3;
    }
    if (std::strcmp(pin, "v4") == 0 && __builtin_cpu_supports("x86-64-v4")) {
      return GemmPanelRangeV4;
    }
  }
  if (__builtin_cpu_supports("x86-64-v4")) {
    return GemmPanelRangeV4;
  }
  if (__builtin_cpu_supports("x86-64-v3")) {
    return GemmPanelRangeV3;
  }
#endif
  return GemmPanelRangeGeneric;
}

GemmRowRangeFn ResolveGemmRowRange() {
#ifdef FLASHPS_GEMM_MULTIVERSION
  // FLASHPS_ISA=generic|v3|v4 pins the dispatch (perf debugging; the bench
  // uses it to compare ISA levels on one host).
  const char* pin = std::getenv("FLASHPS_ISA");
  if (pin != nullptr) {
    if (std::strcmp(pin, "generic") == 0) {
      return GemmRowRangeGeneric;
    }
    if (std::strcmp(pin, "v3") == 0 && __builtin_cpu_supports("x86-64-v3")) {
      return GemmRowRangeV3;
    }
    if (std::strcmp(pin, "v4") == 0 && __builtin_cpu_supports("x86-64-v4")) {
      return GemmRowRangeV4;
    }
  }
  if (__builtin_cpu_supports("x86-64-v4")) {
    return GemmRowRangeV4;
  }
  if (__builtin_cpu_supports("x86-64-v3")) {
    return GemmRowRangeV3;
  }
#endif
  return GemmRowRangeGeneric;
}

// Below this many logical rows the driver switches to the panel-at-a-time
// kernel: packing all of B costs ~2 extra passes over it plus a packed
// image that blows the cache, which this few row tiles cannot amortize.
// 64 rows is 8 tall tiles — the gathered sparse compute path's panels at
// the mask ratios it serves (m ~= 0.1..0.4) sit below this on every model
// grid in the repo, while the dense flows (full token counts) stay above.
constexpr int kPanelAtATimeMaxRows = 64;

// Shared blocked-GEMM driver. `m` is the logical row count; `a_idx`/`c_idx`
// (null = identity) remap logical rows to `a`/`out` rows, which is how the
// gathered-panel entry points below reuse this core without materializing
// the gathered operand or the scattered result.
void GemmBlockedInto(const Matrix& a, const Matrix& b, bool b_transposed,
                     int m, const int* a_idx, const int* c_idx, Matrix& out) {
  const int k = a.cols();
  const int n = b_transposed ? b.rows() : b.cols();
  if (m == 0 || n == 0 || k == 0) {
    return;
  }
  if (m <= kPanelAtATimeMaxRows) {
    static const GemmPanelRangeFn gemm_panel_range = ResolveGemmPanelRange();
    for (int k0 = 0; k0 < k; k0 += kKc) {
      const int kc = std::min(kKc, k - k0);
      // Panels per chunk sized so each chunk carries at least
      // kGemmParallelFlops work, rounded up to the pack-group width so
      // chunks can amortize B's row walk. Panels own disjoint column
      // ranges, so any split is race-free and thread-count-invariant.
      int64_t grain = std::max<int64_t>(
          1, kGemmParallelFlops / (2LL * kc * kNr * m + 1));
      grain = ((grain + kPanelGroup - 1) / kPanelGroup) * kPanelGroup;
      ParallelFor(NumPanels(n), grain, [&](int64_t p0, int64_t p1) {
        // Scratch for one packed panel group, reused across chunks and
        // calls — a per-chunk vector would zero-fill its floats every few
        // panels of work.
        thread_local std::vector<float> panel_buf;
        panel_buf.resize(static_cast<size_t>(kc) * kNr * kPanelGroup);
        gemm_panel_range(a, b, b_transposed, k0, kc, m, n, out, a_idx, c_idx,
                         panel_buf.data(), p0, p1);
      });
    }
    return;
  }
  std::vector<float> packed;
  for (int k0 = 0; k0 < k; k0 += kKc) {
    const int kc = std::min(kKc, k - k0);
    PackPanels(b, k0, k0 + kc, n, b_transposed, packed);
    // Rows per chunk sized so each chunk carries at least kGemmParallelFlops
    // work, rounded to the row-tile height for thread-count-invariant tiling.
    int64_t grain =
        std::max<int64_t>(kMr, kGemmParallelFlops / (2LL * kc * n + 1));
    grain = ((grain + kMr - 1) / kMr) * kMr;
    static const GemmRowRangeFn gemm_row_range = ResolveGemmRowRange();
    ParallelFor(m, grain, [&](int64_t i0, int64_t i1) {
      gemm_row_range(a, packed, k0, kc, n, out, a_idx, c_idx, i0, i1);
    });
  }
}

Matrix GemmBlocked(const Matrix& a, const Matrix& b, bool b_transposed) {
  const int n = b_transposed ? b.rows() : b.cols();
  Matrix out(a.rows(), n);
  GemmBlockedInto(a, b, b_transposed, a.rows(), nullptr, nullptr, out);
  return out;
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  return GemmBlocked(a, b, /*b_transposed=*/false);
}

Matrix MatMulTransposed(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  return GemmBlocked(a, b, /*b_transposed=*/true);
}

Matrix MatMulRows(const Matrix& a, const Matrix& b,
                  const std::vector<int>& rows) {
  assert(a.cols() == b.rows());
  Matrix out(static_cast<int>(rows.size()), b.cols());
  GemmBlockedInto(a, b, /*b_transposed=*/false, static_cast<int>(rows.size()),
                  rows.data(), nullptr, out);
  return out;
}

void MatMulScatterRows(const Matrix& a_panel, const Matrix& b,
                       const std::vector<int>& rows, Matrix& out) {
  assert(a_panel.cols() == b.rows());
  assert(static_cast<int>(rows.size()) == a_panel.rows());
  assert(out.cols() == b.cols());
  // The micro-kernel accumulates into C, so the target rows (and only
  // those — the replenished rows around them must survive) start from zero.
  for (const int r : rows) {
    assert(r >= 0 && r < out.rows());
    std::fill(out.row(r), out.row(r) + out.cols(), 0.0f);
  }
  GemmBlockedInto(a_panel, b, /*b_transposed=*/false, a_panel.rows(), nullptr,
                  rows.data(), out);
}

void SoftmaxRows(Matrix& m) {
  if (m.rows() == 0 || m.cols() == 0) {
    return;
  }
  const int cols = m.cols();
  const int64_t grain = std::max<int64_t>(1, kRowwiseGrainElems / cols);
  ParallelFor(m.rows(), grain, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* row = m.row(static_cast<int>(i));
      float mx = row[0];
      for (int j = 1; j < cols; ++j) {
        mx = std::max(mx, row[j]);
      }
      float sum = 0.0f;
      for (int j = 0; j < cols; ++j) {
        row[j] = std::exp(row[j] - mx);
        sum += row[j];
      }
      const float inv = 1.0f / sum;
      for (int j = 0; j < cols; ++j) {
        row[j] *= inv;
      }
    }
  });
}

Matrix LayerNorm(const Matrix& x, const std::vector<float>& gamma,
                 const std::vector<float>& beta, float eps) {
  assert(static_cast<int>(gamma.size()) == x.cols());
  assert(static_cast<int>(beta.size()) == x.cols());
  Matrix out(x.rows(), x.cols());
  const int c = x.cols();
  if (x.rows() == 0 || c == 0) {
    return out;
  }
  const int64_t grain = std::max<int64_t>(1, kRowwiseGrainElems / c);
  ParallelFor(x.rows(), grain, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* in_row = x.row(static_cast<int>(i));
      float* out_row = out.row(static_cast<int>(i));
      float mean = 0.0f;
      for (int j = 0; j < c; ++j) {
        mean += in_row[j];
      }
      mean /= static_cast<float>(c);
      float var = 0.0f;
      for (int j = 0; j < c; ++j) {
        const float d = in_row[j] - mean;
        var += d * d;
      }
      var /= static_cast<float>(c);
      const float inv_std = 1.0f / std::sqrt(var + eps);
      for (int j = 0; j < c; ++j) {
        out_row[j] = (in_row[j] - mean) * inv_std * gamma[j] + beta[j];
      }
    }
  });
  return out;
}

void GeluInPlace(Matrix& m) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  float* data = m.data();
  ParallelFor(static_cast<int64_t>(m.size()), kRowwiseGrainElems,
              [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) {
                  const float x = data[i];
                  const float t =
                      FastTanh(kSqrt2OverPi * (x + 0.044715f * x * x * x));
                  data[i] = 0.5f * x * (1.0f + t);
                }
              });
}

Matrix Add(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] + b.data()[i];
  }
  return out;
}

void AddInPlace(Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] += b.data()[i];
  }
}

void ScaleInPlace(Matrix& m, float k) {
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] *= k;
  }
}

void AxpyInPlace(Matrix& y, float alpha, const Matrix& x) {
  assert(y.rows() == x.rows() && y.cols() == x.cols());
  float* yd = y.data();
  const float* xd = x.data();
  ParallelFor(static_cast<int64_t>(y.size()), kElemwiseGrainElems,
              [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) {
                  yd[i] += alpha * xd[i];
                }
              });
}

Matrix GatherRows(const Matrix& m, const std::vector<int>& indices) {
  Matrix out(static_cast<int>(indices.size()), m.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const float* src = m.row(indices[i]);
    std::copy(src, src + m.cols(), out.row(static_cast<int>(i)));
  }
  return out;
}

void ScatterRows(Matrix& dst, const Matrix& src, const std::vector<int>& indices) {
  assert(static_cast<int>(indices.size()) == src.rows());
  assert(dst.cols() == src.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const float* s = src.row(static_cast<int>(i));
    std::copy(s, s + src.cols(), dst.row(indices[i]));
  }
}

Matrix GatherRowsMulti(const std::vector<RowRef>& rows, int cols) {
  Matrix out(static_cast<int>(rows.size()), cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i].m != nullptr && rows[i].m->cols() == cols);
    assert(rows[i].row >= 0 && rows[i].row < rows[i].m->rows());
    const float* src = rows[i].m->row(rows[i].row);
    std::copy(src, src + cols, out.row(static_cast<int>(i)));
  }
  return out;
}

void ScatterRowsMulti(const Matrix& src, const std::vector<RowRefMut>& rows) {
  assert(static_cast<int>(rows.size()) == src.rows());
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i].m != nullptr && rows[i].m->cols() == src.cols());
    assert(rows[i].row >= 0 && rows[i].row < rows[i].m->rows());
    const float* s = src.row(static_cast<int>(i));
    std::copy(s, s + src.cols(), rows[i].m->row(rows[i].row));
  }
}

double CosineSimilarity(const Matrix& a, int r1, const Matrix& b, int r2) {
  assert(a.cols() == b.cols());
  const float* x = a.row(r1);
  const float* y = b.row(r2);
  double dot = 0.0;
  double nx = 0.0;
  double ny = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    dot += static_cast<double>(x[j]) * y[j];
    nx += static_cast<double>(x[j]) * x[j];
    ny += static_cast<double>(y[j]) * y[j];
  }
  if (nx == 0.0 || ny == 0.0) {
    return 0.0;
  }
  return dot / (std::sqrt(nx) * std::sqrt(ny));
}

double MeanAbsDiff(const Matrix& a, const Matrix& b) {
  assert(a.size() == b.size());
  if (a.size() == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += std::abs(static_cast<double>(a.data()[i]) - b.data()[i]);
  }
  return total / static_cast<double>(a.size());
}

double FrobeniusNorm(const Matrix& m) {
  double total = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    total += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  return std::sqrt(total);
}

}  // namespace flashps
