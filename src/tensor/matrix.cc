#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/common/parallel_for.h"

namespace flashps {

void Matrix::FillNormal(Rng& rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
}

void Matrix::FillConstant(float v) { std::fill(data_.begin(), data_.end(), v); }

namespace {

// ---------------------------------------------------------------------------
// Blocked GEMM core. MatMul and MatMulTransposed share it: B (or B^T) is
// packed into kNr-wide column panels, and a kMr x kNr register-tiled
// micro-kernel accumulates C over k. The packed inner loop over the panel
// lanes is branch-free with unit stride, which the compiler auto-vectorizes;
// remainder rows/columns fall back to the generic tile.
// ---------------------------------------------------------------------------

constexpr int kMr = 4;    // C rows per micro-kernel tile.
constexpr int kNr = 8;    // Panel width (vector lanes of the inner loop).
constexpr int kKc = 512;  // k-block height: one packed panel stays in L1.
// Serial fast path: below this many multiply-adds a fan-out/join costs more
// than the math it parallelizes.
constexpr int64_t kGemmParallelFlops = 1 << 18;
// Serial fast path for row-wise/element-wise kernels, in elements per chunk.
constexpr int64_t kRowwiseGrainElems = 1 << 13;
constexpr int64_t kElemwiseGrainElems = 1 << 15;

int NumPanels(int n) { return (n + kNr - 1) / kNr; }

// Packs b[k0:k1) x [0:n) into column panels: panel j holds columns
// [j*kNr, j*kNr + kNr) in k-major order, zero-padded past n.
void PackPanels(const Matrix& b, int k0, int k1, int n,
                std::vector<float>& packed) {
  const int kc = k1 - k0;
  const int panels = NumPanels(n);
  packed.assign(static_cast<size_t>(panels) * kc * kNr, 0.0f);
  for (int panel = 0; panel < panels; ++panel) {
    const int j0 = panel * kNr;
    const int jw = std::min(kNr, n - j0);
    float* dst = packed.data() + static_cast<size_t>(panel) * kc * kNr;
    for (int p = 0; p < kc; ++p) {
      const float* src = b.row(k0 + p) + j0;
      for (int c = 0; c < jw; ++c) {
        dst[p * kNr + c] = src[c];
      }
    }
  }
}

// Same panel layout, but the packed "columns" are rows of b — packing b^T
// without materializing it. b is (n, k).
void PackPanelsTransposed(const Matrix& b, int k0, int k1, int n,
                          std::vector<float>& packed) {
  const int kc = k1 - k0;
  const int panels = NumPanels(n);
  packed.assign(static_cast<size_t>(panels) * kc * kNr, 0.0f);
  for (int panel = 0; panel < panels; ++panel) {
    const int j0 = panel * kNr;
    const int jw = std::min(kNr, n - j0);
    float* dst = packed.data() + static_cast<size_t>(panel) * kc * kNr;
    for (int c = 0; c < jw; ++c) {
      const float* src = b.row(j0 + c) + k0;
      for (int p = 0; p < kc; ++p) {
        dst[p * kNr + c] = src[p];
      }
    }
  }
}

// Forced inlining lets the micro-kernels be re-compiled inside each
// ISA-targeted GemmRowRange wrapper below, so one source vectorizes at
// SSE2, AVX2+FMA, and AVX-512 widths.
#define FLASHPS_ALWAYS_INLINE inline __attribute__((always_inline))

// One panel-width vector lane: the micro-kernel is written directly in GCC
// vector extensions rather than left to the loop auto-vectorizer, whose
// choices at the wider ISA levels (re-vectorizing the tile as spilled
// zmm temporaries) measured slower than its own SSE2 code. The extension
// lowers to whatever the enclosing function's target allows — two xmm
// mul+adds at baseline, one ymm FMA per row at x86-64-v3/v4.
typedef float VecNr __attribute__((vector_size(kNr * sizeof(float))));

FLASHPS_ALWAYS_INLINE VecNr LoadVec(const float* p) {
  VecNr v;
  __builtin_memcpy(&v, p, sizeof(VecNr));
  return v;
}

FLASHPS_ALWAYS_INLINE void StoreVec(float* p, VecNr v) {
  __builtin_memcpy(p, &v, sizeof(VecNr));
}

// Scalar-vector binop form so the broadcast lowers to one vbroadcastss
// (an explicit lane loop compiles to a vinsertps chain on GCC 12).
FLASHPS_ALWAYS_INLINE VecNr Splat(float s) { return s + VecNr{}; }

// C[rows i0..i0+mr) x [panel columns j0..j0+jw) += A-rows * packed-panel.
// The accumulator tile lives in registers across the whole k-block.
template <int MR>
FLASHPS_ALWAYS_INLINE void MicroKernel(const float* a_rows[],
                                       const float* panel, int kc,
                                       float* c_rows[], int jw) {
  VecNr acc[MR] = {};
  for (int p = 0; p < kc; ++p) {
    const VecNr bp = LoadVec(panel + p * kNr);
    for (int r = 0; r < MR; ++r) {
      acc[r] += Splat(a_rows[r][p]) * bp;
    }
  }
  if (jw == kNr) {
    for (int r = 0; r < MR; ++r) {
      StoreVec(c_rows[r], LoadVec(c_rows[r]) + acc[r]);
    }
  } else {
    for (int r = 0; r < MR; ++r) {
      for (int c = 0; c < jw; ++c) {
        c_rows[r][c] += acc[r][c];
      }
    }
  }
}

// Remainder tile with runtime row count (mr < kMr).
FLASHPS_ALWAYS_INLINE void MicroKernelEdge(int mr, const float* a_rows[],
                                           const float* panel, int kc,
                                           float* c_rows[], int jw) {
  VecNr acc[kMr] = {};
  for (int p = 0; p < kc; ++p) {
    const VecNr bp = LoadVec(panel + p * kNr);
    for (int r = 0; r < mr; ++r) {
      acc[r] += Splat(a_rows[r][p]) * bp;
    }
  }
  for (int r = 0; r < mr; ++r) {
    for (int c = 0; c < jw; ++c) {
      c_rows[r][c] += acc[r][c];
    }
  }
}

// One k-block pass over the row range [i0, i1): row tiles of kMr against
// every packed panel. Ranges from ParallelFor are grain-aligned with grain a
// multiple of kMr, so the tile decomposition — and with it the result bits —
// does not depend on the thread count.
FLASHPS_ALWAYS_INLINE void GemmRowRangeImpl(const Matrix& a,
                                            const std::vector<float>& packed,
                                            int k0, int kc, int n, Matrix& out,
                                            int64_t i0, int64_t i1) {
  const int panels = NumPanels(n);
  const float* a_rows[kMr];
  float* c_rows[kMr];
  for (int64_t i = i0; i < i1; i += kMr) {
    const int mr = static_cast<int>(std::min<int64_t>(kMr, i1 - i));
    for (int r = 0; r < mr; ++r) {
      a_rows[r] = a.row(static_cast<int>(i) + r) + k0;
    }
    for (int panel = 0; panel < panels; ++panel) {
      const int j0 = panel * kNr;
      const int jw = std::min(kNr, n - j0);
      const float* pp = packed.data() + static_cast<size_t>(panel) * kc * kNr;
      for (int r = 0; r < mr; ++r) {
        c_rows[r] = out.row(static_cast<int>(i) + r) + j0;
      }
      if (mr == kMr) {
        MicroKernel<kMr>(a_rows, pp, kc, c_rows, jw);
      } else {
        MicroKernelEdge(mr, a_rows, pp, kc, c_rows, jw);
      }
    }
  }
}

// Runtime ISA dispatch. The portable build targets baseline x86-64 (SSE2,
// no FMA), which leaves most of a modern core idle; instead of shipping
// per-host binaries, the row-range kernel is compiled three times — baseline,
// x86-64-v3 (AVX2+FMA), x86-64-v4 (AVX-512) — and the widest level the CPU
// reports is picked once per process. Explicit function-pointer dispatch
// (not ifunc/target_clones) keeps sanitizer builds and static init simple.
// The choice is process-wide and thread-count-independent, so the bitwise
// invariance guarantee above is unaffected.
using GemmRowRangeFn = void (*)(const Matrix&, const std::vector<float>&, int,
                                int, int, Matrix&, int64_t, int64_t);

void GemmRowRangeGeneric(const Matrix& a, const std::vector<float>& packed,
                         int k0, int kc, int n, Matrix& out, int64_t i0,
                         int64_t i1) {
  GemmRowRangeImpl(a, packed, k0, kc, n, out, i0, i1);
}

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define FLASHPS_GEMM_MULTIVERSION 1
__attribute__((target("arch=x86-64-v3"))) void GemmRowRangeV3(
    const Matrix& a, const std::vector<float>& packed, int k0, int kc, int n,
    Matrix& out, int64_t i0, int64_t i1) {
  GemmRowRangeImpl(a, packed, k0, kc, n, out, i0, i1);
}

__attribute__((target("arch=x86-64-v4"))) void GemmRowRangeV4(
    const Matrix& a, const std::vector<float>& packed, int k0, int kc, int n,
    Matrix& out, int64_t i0, int64_t i1) {
  GemmRowRangeImpl(a, packed, k0, kc, n, out, i0, i1);
}
#endif

GemmRowRangeFn ResolveGemmRowRange() {
#ifdef FLASHPS_GEMM_MULTIVERSION
  // FLASHPS_ISA=generic|v3|v4 pins the dispatch (perf debugging; the bench
  // uses it to compare ISA levels on one host).
  const char* pin = std::getenv("FLASHPS_ISA");
  if (pin != nullptr) {
    if (std::strcmp(pin, "generic") == 0) {
      return GemmRowRangeGeneric;
    }
    if (std::strcmp(pin, "v3") == 0 && __builtin_cpu_supports("x86-64-v3")) {
      return GemmRowRangeV3;
    }
    if (std::strcmp(pin, "v4") == 0 && __builtin_cpu_supports("x86-64-v4")) {
      return GemmRowRangeV4;
    }
  }
  if (__builtin_cpu_supports("x86-64-v4")) {
    return GemmRowRangeV4;
  }
  if (__builtin_cpu_supports("x86-64-v3")) {
    return GemmRowRangeV3;
  }
#endif
  return GemmRowRangeGeneric;
}

Matrix GemmBlocked(const Matrix& a, const Matrix& b, bool b_transposed) {
  const int m = a.rows();
  const int k = a.cols();
  const int n = b_transposed ? b.rows() : b.cols();
  Matrix out(m, n);
  if (m == 0 || n == 0 || k == 0) {
    return out;
  }
  std::vector<float> packed;
  for (int k0 = 0; k0 < k; k0 += kKc) {
    const int kc = std::min(kKc, k - k0);
    if (b_transposed) {
      PackPanelsTransposed(b, k0, k0 + kc, n, packed);
    } else {
      PackPanels(b, k0, k0 + kc, n, packed);
    }
    // Rows per chunk sized so each chunk carries at least kGemmParallelFlops
    // work, rounded to the row-tile height for thread-count-invariant tiling.
    int64_t grain =
        std::max<int64_t>(kMr, kGemmParallelFlops / (2LL * kc * n + 1));
    grain = ((grain + kMr - 1) / kMr) * kMr;
    static const GemmRowRangeFn gemm_row_range = ResolveGemmRowRange();
    ParallelFor(m, grain, [&](int64_t i0, int64_t i1) {
      gemm_row_range(a, packed, k0, kc, n, out, i0, i1);
    });
  }
  return out;
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  return GemmBlocked(a, b, /*b_transposed=*/false);
}

Matrix MatMulTransposed(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  return GemmBlocked(a, b, /*b_transposed=*/true);
}

void SoftmaxRows(Matrix& m) {
  if (m.rows() == 0 || m.cols() == 0) {
    return;
  }
  const int cols = m.cols();
  const int64_t grain = std::max<int64_t>(1, kRowwiseGrainElems / cols);
  ParallelFor(m.rows(), grain, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* row = m.row(static_cast<int>(i));
      float mx = row[0];
      for (int j = 1; j < cols; ++j) {
        mx = std::max(mx, row[j]);
      }
      float sum = 0.0f;
      for (int j = 0; j < cols; ++j) {
        row[j] = std::exp(row[j] - mx);
        sum += row[j];
      }
      const float inv = 1.0f / sum;
      for (int j = 0; j < cols; ++j) {
        row[j] *= inv;
      }
    }
  });
}

Matrix LayerNorm(const Matrix& x, const std::vector<float>& gamma,
                 const std::vector<float>& beta, float eps) {
  assert(static_cast<int>(gamma.size()) == x.cols());
  assert(static_cast<int>(beta.size()) == x.cols());
  Matrix out(x.rows(), x.cols());
  const int c = x.cols();
  if (x.rows() == 0 || c == 0) {
    return out;
  }
  const int64_t grain = std::max<int64_t>(1, kRowwiseGrainElems / c);
  ParallelFor(x.rows(), grain, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* in_row = x.row(static_cast<int>(i));
      float* out_row = out.row(static_cast<int>(i));
      float mean = 0.0f;
      for (int j = 0; j < c; ++j) {
        mean += in_row[j];
      }
      mean /= static_cast<float>(c);
      float var = 0.0f;
      for (int j = 0; j < c; ++j) {
        const float d = in_row[j] - mean;
        var += d * d;
      }
      var /= static_cast<float>(c);
      const float inv_std = 1.0f / std::sqrt(var + eps);
      for (int j = 0; j < c; ++j) {
        out_row[j] = (in_row[j] - mean) * inv_std * gamma[j] + beta[j];
      }
    }
  });
  return out;
}

void GeluInPlace(Matrix& m) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  float* data = m.data();
  ParallelFor(static_cast<int64_t>(m.size()), kRowwiseGrainElems,
              [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) {
                  const float x = data[i];
                  const float t =
                      std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x));
                  data[i] = 0.5f * x * (1.0f + t);
                }
              });
}

Matrix Add(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] + b.data()[i];
  }
  return out;
}

void AddInPlace(Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] += b.data()[i];
  }
}

void ScaleInPlace(Matrix& m, float k) {
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] *= k;
  }
}

void AxpyInPlace(Matrix& y, float alpha, const Matrix& x) {
  assert(y.rows() == x.rows() && y.cols() == x.cols());
  float* yd = y.data();
  const float* xd = x.data();
  ParallelFor(static_cast<int64_t>(y.size()), kElemwiseGrainElems,
              [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) {
                  yd[i] += alpha * xd[i];
                }
              });
}

Matrix GatherRows(const Matrix& m, const std::vector<int>& indices) {
  Matrix out(static_cast<int>(indices.size()), m.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const float* src = m.row(indices[i]);
    std::copy(src, src + m.cols(), out.row(static_cast<int>(i)));
  }
  return out;
}

void ScatterRows(Matrix& dst, const Matrix& src, const std::vector<int>& indices) {
  assert(static_cast<int>(indices.size()) == src.rows());
  assert(dst.cols() == src.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const float* s = src.row(static_cast<int>(i));
    std::copy(s, s + src.cols(), dst.row(indices[i]));
  }
}

double CosineSimilarity(const Matrix& a, int r1, const Matrix& b, int r2) {
  assert(a.cols() == b.cols());
  const float* x = a.row(r1);
  const float* y = b.row(r2);
  double dot = 0.0;
  double nx = 0.0;
  double ny = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    dot += static_cast<double>(x[j]) * y[j];
    nx += static_cast<double>(x[j]) * x[j];
    ny += static_cast<double>(y[j]) * y[j];
  }
  if (nx == 0.0 || ny == 0.0) {
    return 0.0;
  }
  return dot / (std::sqrt(nx) * std::sqrt(ny));
}

double MeanAbsDiff(const Matrix& a, const Matrix& b) {
  assert(a.size() == b.size());
  if (a.size() == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += std::abs(static_cast<double>(a.data()[i]) - b.data()[i]);
  }
  return total / static_cast<double>(a.size());
}

double FrobeniusNorm(const Matrix& m) {
  double total = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    total += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  return std::sqrt(total);
}

}  // namespace flashps
