// Dense row-major float32 matrix plus the kernel set a transformer block
// needs. Rows are tokens, columns are feature channels — matching the
// (B, H*W, C) layout the paper describes for diffusion transformer inputs
// (§2.1); batching is handled above this layer, so a Matrix is one request's
// token matrix.
#ifndef FLASHPS_SRC_TENSOR_MATRIX_H_
#define FLASHPS_SRC_TENSOR_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace flashps {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {
    assert(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // Fills with N(0, stddev) values from `rng` (row-major order).
  void FillNormal(Rng& rng, float stddev);
  void FillConstant(float v);

  // Size of the backing store in bytes (used for cache-size accounting).
  size_t bytes() const { return data_.size() * sizeof(float); }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// The kernels below are cache-blocked and register-tiled, and split row
// panels across threads via ParallelFor when the calling thread has a
// compute-thread budget (see src/common/parallel_for.h). Outputs are
// bitwise-identical at every thread count; they can differ from the scalar
// naive:: reference kernels only by FMA-contraction rounding. Small inputs
// take a serial fast path, so tiny mats never pay dispatch overhead.

// out = a * b. Shapes: (m,k) x (k,n) -> (m,n).
Matrix MatMul(const Matrix& a, const Matrix& b);

// out = a * b^T. Shapes: (m,k) x (n,k) -> (m,n). This is the QK^T kernel.
Matrix MatMulTransposed(const Matrix& a, const Matrix& b);

// Row-wise softmax in place.
void SoftmaxRows(Matrix& m);

// Row-wise LayerNorm with per-channel gain/bias. gamma/beta have size cols.
Matrix LayerNorm(const Matrix& x, const std::vector<float>& gamma,
                 const std::vector<float>& beta, float eps = 1e-5f);

// Element-wise GeLU (tanh approximation) in place.
void GeluInPlace(Matrix& m);

// out = a + b (same shape).
Matrix Add(const Matrix& a, const Matrix& b);
void AddInPlace(Matrix& a, const Matrix& b);
void ScaleInPlace(Matrix& m, float k);

// y += alpha * x (same shape). The denoise loop's latent update.
void AxpyInPlace(Matrix& y, float alpha, const Matrix& x);

// Gathers the given rows into a new (indices.size(), cols) matrix.
Matrix GatherRows(const Matrix& m, const std::vector<int>& indices);

// Scatters src's rows into dst at the given row indices.
void ScatterRows(Matrix& dst, const Matrix& src, const std::vector<int>& indices);

// Gathered-panel GEMM (the SIGE-style sparse compute path, one fused
// gather→GEMM): out.row(i) = a.row(rows[i]) * b for each i, without
// materializing the gathered operand. Row `i` of the result is
// bitwise-identical to row rows[i] of MatMul(a, b): the blocked kernel
// computes every output row from its own A row alone, in a fixed
// k-blocked accumulation order that does not depend on which other rows
// are present. Cost is O(|rows|·k·n) — proportional to the mask ratio
// when `rows` is a mask's token list. `rows` must hold valid, distinct
// row indices of `a`.
Matrix MatMulRows(const Matrix& a, const Matrix& b,
                  const std::vector<int>& rows);

// Scatter-back half of the sparse compute path (one fused GEMM→scatter):
// out.row(rows[i]) = a_panel.row(i) * b for each i; every other row of
// `out` is left untouched, so the caller can pre-fill it with replenished
// (cached) rows. The written rows are bitwise-identical to the same rows
// of MatMul(x, b) whenever a_panel holds the gathered rows of x (see
// MatMulRows). `rows` must hold valid, DISTINCT row indices of `out`
// (duplicates would race across row-panel threads).
void MatMulScatterRows(const Matrix& a_panel, const Matrix& b,
                       const std::vector<int>& rows, Matrix& out);

// One row of some source matrix, for multi-request panel assembly: the
// patch-granular batching path gathers masked rows from SEVERAL requests'
// latents (different Matrix objects, different shapes) into one dense
// panel. Column counts of all referenced matrices must agree.
struct RowRef {
  const Matrix* m = nullptr;
  int row = 0;
};

// Gathers rows[i] = rows[i].m->row(rows[i].row) into a new
// (rows.size(), cols) matrix. The multi-source generalization of
// GatherRows; each referenced matrix must have `cols` columns.
Matrix GatherRowsMulti(const std::vector<RowRef>& rows, int cols);

// Mutable counterpart of RowRef for multi-request scatter-back.
struct RowRefMut {
  Matrix* m = nullptr;
  int row = 0;
};

// Scatters src.row(i) into rows[i].m->row(rows[i].row) for each i. The
// multi-target generalization of ScatterRows: the patch panel's result
// rows return to their owning requests' matrices. Targets must be
// distinct (matrix, row) pairs; each referenced matrix must have
// src.cols() columns.
void ScatterRowsMulti(const Matrix& src, const std::vector<RowRefMut>& rows);

// Cosine similarity of row r1 of a and row r2 of b.
double CosineSimilarity(const Matrix& a, int r1, const Matrix& b, int r2);

// Mean absolute difference across all elements (same shape).
double MeanAbsDiff(const Matrix& a, const Matrix& b);

// Frobenius norm.
double FrobeniusNorm(const Matrix& m);

}  // namespace flashps

#endif  // FLASHPS_SRC_TENSOR_MATRIX_H_
