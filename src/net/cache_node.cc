#include "src/net/cache_node.h"

#include <sstream>
#include <utility>

namespace flashps::net {

namespace {

// The admit policy is a precision *floor* expressed as the laxest mode:
// each mode admits its own dtypes plus everything more precise.
bool DtypeAdmitted(quant::PrecisionMode admit, quant::Dtype dtype) {
  switch (admit) {
    case quant::PrecisionMode::kLossless:
      return dtype == quant::Dtype::kF32;
    case quant::PrecisionMode::kF16:
      return dtype == quant::Dtype::kF32 || dtype == quant::Dtype::kF16;
    case quant::PrecisionMode::kStaged:
      return true;
  }
  return false;
}

}  // namespace

CacheNode::CacheNode(CacheNodeOptions options) : options_(options) {}

void CacheNode::Touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void CacheNode::EvictToFit(size_t incoming) {
  if (options_.max_bytes == 0) {
    return;
  }
  while (!lru_.empty() && resident_bytes_ + incoming > options_.max_bytes) {
    const CacheKey victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    resident_bytes_ -= it->second.data.StoredBytes();
    entries_.erase(it);
    ++stats_.evictions;
  }
}

InlineReply CacheNode::Handle(const ParsedFrame& frame) {
  InlineReply reply;
  const uint64_t seq = frame.header.seq;
  switch (frame.type()) {
    case FrameType::kCacheFetch: {
      CacheFetchBody body;
      std::string error;
      if (!DecodeCacheFetch(frame, &body, &error)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.bad_frames;
        reply.frame = EncodeError(seq, WireError::kMalformedPayload, error);
        reply.close_connection = true;
        return reply;
      }
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(body.key);
      if (it == entries_.end()) {
        ++stats_.fetch_misses;
        reply.frame = EncodeCacheMiss(seq, body.key);
        return reply;
      }
      Touch(it->second);
      ++stats_.fetch_hits;
      stats_.bytes_served += it->second.data.StoredBytes();
      // Served exactly as it rests: no decode, no re-encode — the entry's
      // checksum still attests the bytes end to end.
      reply.frame = EncodeCacheHit(seq, body.key, it->second.checksum,
                                   &it->second.data);
      return reply;
    }
    case FrameType::kCachePut: {
      CachePutBody body;
      std::string error;
      // DecodeCachePut verifies the declared checksum against the decoded
      // bytes, so corruption in flight never becomes a resident entry.
      if (!DecodeCachePut(frame, &body, &error)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.bad_frames;
        reply.frame = EncodeError(seq, WireError::kMalformedPayload, error);
        reply.close_connection = true;
        return reply;
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (!DtypeAdmitted(options_.admit, body.data.dtype)) {
        ++stats_.bad_frames;
        ++stats_.precision_rejects;
        reply.frame = EncodeError(
            seq, WireError::kMalformedPayload,
            "put dtype " + quant::ToString(body.data.dtype) +
                " not admitted by node precision policy (--cache-precision)");
        reply.close_connection = true;
        return reply;
      }
      const size_t incoming = body.data.StoredBytes();
      auto it = entries_.find(body.key);
      if (it != entries_.end()) {
        ++stats_.put_overwrites;
        resident_bytes_ -= it->second.data.StoredBytes();
        lru_.erase(it->second.lru_it);
        entries_.erase(it);
      }
      EvictToFit(incoming);
      Entry entry;
      entry.checksum = body.checksum;
      entry.data = std::move(body.data);
      lru_.push_front(body.key);
      entry.lru_it = lru_.begin();
      resident_bytes_ += incoming;
      entries_.emplace(body.key, std::move(entry));
      ++stats_.puts;
      stats_.bytes_stored += incoming;
      // Payload-less hit: the ack echoing the key + the checksum now
      // resident on the node.
      reply.frame = EncodeCacheHit(seq, body.key, body.checksum, nullptr);
      return reply;
    }
    case FrameType::kMetricsQuery: {
      reply.frame = EncodeMetricsReport(seq, MetricsJson());
      return reply;
    }
    default: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_frames;
      reply.frame = EncodeError(seq, WireError::kBadType,
                                "frame type not valid for a cache node");
      reply.close_connection = true;
      return reply;
    }
  }
}

InlineService CacheNode::Service() {
  return [this](const ParsedFrame& frame) { return Handle(frame); };
}

bool CacheNode::Contains(const CacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) > 0;
}

CacheNodeStats CacheNode::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheNodeStats out = stats_;
  out.entries = entries_.size();
  out.resident_bytes = resident_bytes_;
  for (const auto& [key, entry] : entries_) {
    switch (entry.data.dtype) {
      case quant::Dtype::kF32:
        ++out.entries_f32;
        break;
      case quant::Dtype::kF16:
        ++out.entries_f16;
        break;
      case quant::Dtype::kI8:
        ++out.entries_i8;
        break;
    }
  }
  return out;
}

std::string CacheNode::MetricsJson() const {
  const CacheNodeStats s = Stats();
  std::ostringstream os;
  os << "{\"cache_node\":{"
     << "\"fetch_hits\":" << s.fetch_hits
     << ",\"fetch_misses\":" << s.fetch_misses
     << ",\"puts\":" << s.puts
     << ",\"put_overwrites\":" << s.put_overwrites
     << ",\"bad_frames\":" << s.bad_frames
     << ",\"precision_rejects\":" << s.precision_rejects
     << ",\"admit\":\"" << quant::ToString(options_.admit) << "\""
     << ",\"bytes_served\":" << s.bytes_served
     << ",\"bytes_stored\":" << s.bytes_stored
     << ",\"evictions\":" << s.evictions
     << ",\"entries\":" << s.entries
     << ",\"entries_f32\":" << s.entries_f32
     << ",\"entries_f16\":" << s.entries_f16
     << ",\"entries_i8\":" << s.entries_i8
     << ",\"resident_bytes\":" << s.resident_bytes << "}}";
  return os.str();
}

}  // namespace flashps::net
