#include "src/net/socket_util.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

namespace flashps::net {

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

UniqueFd OpenListener(uint16_t port, int backlog, uint16_t* bound_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return UniqueFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd.get(), backlog) != 0 || !SetNonBlocking(fd.get())) {
    return UniqueFd();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return UniqueFd();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

UniqueFd ConnectTcp(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &result) != 0) {
    return UniqueFd();
  }
  UniqueFd fd;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    UniqueFd candidate(
        ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      continue;
    }
    if (::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(candidate.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one));
      fd = std::move(candidate);
      break;
    }
  }
  ::freeaddrinfo(result);
  return fd;
}

UniqueFd ConnectTcpWithRetry(const std::string& host, uint16_t port,
                             int attempts, std::chrono::milliseconds backoff) {
  for (int attempt = 0; attempt < std::max(1, attempts); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    UniqueFd fd = ConnectTcp(host, port);
    if (fd.valid()) {
      return fd;
    }
  }
  return UniqueFd();
}

bool WakePipe::Open() {
  int fds[2];
  if (::pipe(fds) != 0) {
    return false;
  }
  read_end.Reset(fds[0]);
  write_end.Reset(fds[1]);
  return SetNonBlocking(fds[0]) && SetNonBlocking(fds[1]);
}

void WakePipe::Wake() const {
  const char byte = 1;
  // Non-blocking: a full pipe already guarantees a pending wake-up.
  [[maybe_unused]] const ssize_t n = ::write(write_end.get(), &byte, 1);
}

void WakePipe::Drain() const {
  char buf[64];
  while (::read(read_end.get(), buf, sizeof(buf)) > 0) {
  }
}

bool SendAll(int fd, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) {
    return -1;
  }
  int count = 0;
  while (::readdir(dir) != nullptr) {
    ++count;
  }
  ::closedir(dir);
  // Subtract ".", "..", and the DIR's own fd.
  return count - 3;
}

}  // namespace flashps::net
