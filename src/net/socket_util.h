// Thin POSIX socket helpers shared by the TCP server and client: RAII fd
// ownership, listener/connect setup, and the self-pipe used to wake a
// poll() loop from another thread. Linux/POSIX only (the only platform the
// reproduction targets); nothing here knows about the wire protocol.
#ifndef FLASHPS_SRC_NET_SOCKET_UTIL_H_
#define FLASHPS_SRC_NET_SOCKET_UTIL_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

namespace flashps::net {

// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& o) noexcept : fd_(o.Release()) {}
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) {
      Reset(o.Release());
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Opens a non-blocking listener on 127.0.0.1:`port` (0 = ephemeral) with
// SO_REUSEADDR. On success fills `*bound_port` with the actual port.
// Returns an invalid fd on failure.
UniqueFd OpenListener(uint16_t port, int backlog, uint16_t* bound_port);

// Blocking TCP connect to host:port (numeric IP or hostname). Returns an
// invalid fd on failure.
UniqueFd ConnectTcp(const std::string& host, uint16_t port);

// ConnectTcp with bounded retries: up to max(1, attempts) tries, sleeping
// `backoff` before the second try and doubling it per attempt (50, 100,
// 200, ... ms). The shared connect policy of every wire client — so a
// client started before its daemon can still win the race, and the retry
// shape cannot drift between client implementations.
UniqueFd ConnectTcpWithRetry(const std::string& host, uint16_t port,
                             int attempts, std::chrono::milliseconds backoff);

bool SetNonBlocking(int fd);

// A pipe whose read end a poll() loop watches; writing one byte wakes it.
struct WakePipe {
  UniqueFd read_end;
  UniqueFd write_end;

  bool Open();
  // Async-signal- and thread-safe wake; coalesces (a full pipe is fine).
  void Wake() const;
  // Drains pending wake bytes (called by the poll loop).
  void Drain() const;
};

// Writes all of [data, data+size) to a blocking socket, retrying on EINTR
// and suppressing SIGPIPE. Returns false once the peer is gone.
bool SendAll(int fd, const void* data, size_t size);

// Counts open file descriptors of this process (via /proc/self/fd); -1 if
// unavailable. Used by tests to assert the server leaks no sockets.
int CountOpenFds();

}  // namespace flashps::net

#endif  // FLASHPS_SRC_NET_SOCKET_UTIL_H_
