// TCP frontier for the FlashPS wire protocol, serving one of two backends:
//
//   gateway mode   (TcpServer(gateway, ...)) — the serving daemon: submit
//                  frames dispatch through gateway::Gateway and complete
//                  asynchronously; metrics queries return the gateway's
//                  registry JSON. This is flashps_served.
//   service mode   (TcpServer(service, ...)) — every valid client-to-server
//                  frame (cache fetch/put, metrics query, even submits) is
//                  answered *synchronously* on the poll thread by the
//                  pluggable InlineService. This is how flashps_cached
//                  reuses the whole server — poll loop, back-pressure,
//                  drain, error taxonomy — for the shared cache tier, whose
//                  handlers are memcpy-scale and need no completer.
//
// Threading model (two threads + the gateway's own):
//
//   poll thread      one poll() loop owning the listener, the wake pipe,
//                    and every connection fd (all non-blocking). It reads,
//                    frames, and validates incoming bytes, answers
//                    rejections and metrics queries inline, and flushes
//                    per-connection write buffers.
//   completer thread waits on the gateway futures of accepted requests
//                    (completion order, not submission order), encodes
//                    result frames into the owning connection's write
//                    buffer, and wakes the poll loop via the pipe.
//
// Back-pressure: each connection may have at most
// `max_inflight_per_conn` accepted requests outstanding. At the cap the
// poll loop stops reading that connection (its POLLIN interest is
// dropped and buffered frames stay unparsed), so pressure propagates to
// the client through TCP flow control instead of unbounded queueing.
//
// Failure policy: any malformed frame (bad magic/version/type, size cap,
// malformed payload) gets a kError frame naming the distinct WireError,
// then the connection closes after the write buffer flushes. A peer that
// disconnects mid-request never wedges the server: its in-flight
// completions are counted `orphaned_completions` and dropped.
//
// Stop() is a graceful drain: the listener closes, reading stops,
// accepted requests finish, replies flush (bounded by
// `drain_timeout`), then every fd closes and both threads join.
#ifndef FLASHPS_SRC_NET_TCP_SERVER_H_
#define FLASHPS_SRC_NET_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/concurrent_queue.h"
#include "src/gateway/gateway.h"
#include "src/net/frontend.h"
#include "src/net/socket_util.h"
#include "src/net/wire.h"

namespace flashps::net {

struct TcpServerOptions {
  uint16_t port = 0;  // 0 = ephemeral; read the bound port via port().
  int backlog = 64;
  // Bounded in-flight accepted requests per connection (back-pressure cap).
  int max_inflight_per_conn = 32;
  // Upper bound on Stop()'s wait for in-flight work and unflushed replies.
  std::chrono::milliseconds drain_timeout{10000};
  // When non-empty, every connection must open with a kAuth frame carrying
  // exactly this token before any other frame; violations get
  // kError(kUnauthorized) and the connection closes. Empty = open frontier
  // (kAuth frames are still acknowledged so clients can send one blindly).
  std::string auth_token;
};

// The synchronous reply of an InlineService to one frame: the encoded
// reply frame, plus whether the connection should close after it flushes
// (set for protocol errors, mirroring the gateway path's policy).
struct InlineReply {
  std::vector<uint8_t> frame;
  bool close_connection = false;
};

// A backend that answers each frame inline on the poll thread. Must be
// cheap (no blocking, no heavy compute) and thread-compatible with being
// called from exactly one thread.
using InlineService = std::function<InlineReply(const ParsedFrame&)>;

// Monotonic counters; every protocol failure mode is distinct.
struct TcpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t responses_sent = 0;
  uint64_t submits_accepted = 0;
  uint64_t submits_rejected = 0;  // Valid frames the gateway turned away.
  uint64_t service_replies = 0;   // Frames answered by the InlineService.
  uint64_t bad_magic = 0;
  uint64_t bad_version = 0;
  uint64_t bad_type = 0;
  uint64_t oversized = 0;
  uint64_t malformed = 0;
  uint64_t truncated = 0;  // Peer closed with a partial frame buffered.
  uint64_t orphaned_completions = 0;
  uint64_t backpressure_stalls = 0;
  uint64_t auth_ok = 0;        // Successful kAuth handshakes.
  uint64_t unauthorized = 0;   // Wrong token, or a frame before kAuth.
};

class TcpServer {
 public:
  // Gateway mode. The gateway must outlive the server. (Sugar for
  // frontend mode over an internally owned GatewayFrontend.)
  TcpServer(gateway::Gateway& gateway, TcpServerOptions options = {});
  // Frontend mode: submits dispatch through any WireFrontend — the local
  // gateway or the federated front tier. The frontend must outlive the
  // server.
  TcpServer(WireFrontend& frontend, TcpServerOptions options = {});
  // Service mode: `service` answers every valid frame inline on the poll
  // thread (no completer dispatch). Anything the service must outlive the
  // server too.
  TcpServer(InlineService service, TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds, listens, and spawns the threads. False if the port is taken.
  bool Start();
  // Graceful drain then full shutdown. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  TcpServerStats Stats() const;
  // Accepted requests whose replies have not been written out yet.
  uint64_t inflight() const { return total_inflight_.load(); }

 private:
  struct Conn {
    uint64_t id = 0;
    UniqueFd fd;
    std::vector<uint8_t> inbuf;
    // Reply bytes; appended by both threads under out_mu, drained by the
    // poll thread.
    std::mutex out_mu;
    std::deque<uint8_t> outbuf;
    std::atomic<int> inflight{0};
    // Poll-thread-only state.
    bool read_closed = false;
    bool close_after_flush = false;
    bool stalled = false;  // At the in-flight cap (for stall accounting).
    bool authed = false;   // Completed the kAuth handshake.
  };

  struct PendingCompletion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::unique_ptr<WireCompletion> completion;
  };

  void PollLoop();
  void CompleterLoop();
  void AcceptNewConnections();
  // Reads available bytes; returns false once the connection is dead.
  void HandleReadable(Conn& conn);
  void HandleWritable(Conn& conn);
  void ParseFrames(Conn& conn);
  void DispatchFrame(Conn& conn, const ParsedFrame& frame);
  // Auth gate: handles kAuth frames and rejects anything else on an
  // unauthenticated connection when a token is required. True if the
  // frame was consumed (handled or rejected) here.
  bool HandleAuthGate(Conn& conn, const ParsedFrame& frame);
  void HandleSubmit(Conn& conn, const ParsedFrame& frame);
  // Appends bytes to a connection's write buffer (any thread).
  void QueueBytes(Conn& conn, const std::vector<uint8_t>& bytes);
  // Completer-side delivery by connection id; false if the peer is gone.
  bool DeliverToConn(uint64_t conn_id, const std::vector<uint8_t>& bytes);
  void CountWireError(WireError error);
  bool ShouldClose(const Conn& conn) const;

  // Exactly one backend is set: frontend mode (frontend_ != nullptr;
  // gateway mode is frontend mode over owned_frontend_) or service mode
  // (service_ is callable).
  WireFrontend* frontend_ = nullptr;
  std::unique_ptr<WireFrontend> owned_frontend_;
  InlineService service_;
  TcpServerOptions options_;
  uint16_t port_ = 0;

  UniqueFd listener_;
  WakePipe wake_;
  std::thread poll_thread_;
  std::thread completer_thread_;

  // Connection registry: mutated only by the poll thread; the lock makes
  // completer-side lookups safe against removal.
  mutable std::mutex conns_mu_;
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  ConcurrentQueue<PendingCompletion> completions_;
  std::atomic<uint64_t> total_inflight_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> poll_stop_{false};
  // Set when the drain deadline expires: the completer abandons futures
  // that never resolved instead of scanning them forever.
  std::atomic<bool> completer_abandon_{false};
  std::mutex stop_mu_;
  bool stopped_ = false;

  mutable std::mutex stats_mu_;
  TcpServerStats stats_;
};

}  // namespace flashps::net

#endif  // FLASHPS_SRC_NET_TCP_SERVER_H_
