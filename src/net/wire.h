// The FlashPS wire protocol: length-prefixed binary frames over TCP.
//
// Every frame is a fixed 20-byte header followed by a typed payload, all
// integers explicit little-endian (src/common/bytes.h) — nothing is ever
// reinterpret_cast off a socket buffer:
//
//   offset  size  field
//        0     4  magic    "FPS1" (0x31535046 LE)
//        4     2  version  kWireVersion
//        6     2  type     FrameType
//        8     8  seq      correlation id, echoed verbatim in the reply
//       16     4  len      payload bytes, <= kMaxPayloadBytes
//
// Request pipelining works by seq: a client may have many frames in
// flight on one connection and match replies by correlation id — replies
// are written in completion order, not submission order. Frames failing
// any header check (magic, version, type, size cap) or any payload check
// are rejected with a distinct WireError; the peer receives a kError frame
// where possible and the connection is closed. The per-frame size cap
// bounds both decoder memory and read-buffer growth.
#ifndef FLASHPS_SRC_NET_WIRE_H_
#define FLASHPS_SRC_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/gateway/gateway.h"
#include "src/runtime/serde.h"
#include "src/tensor/matrix.h"

namespace flashps::net {

inline constexpr uint32_t kWireMagic = 0x31535046u;  // "FPS1" on the wire.
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
// Hard cap on one frame's payload: bounds decoder allocations and makes
// oversized/garbage length fields detectable before any buffering happens.
inline constexpr uint32_t kMaxPayloadBytes = 4u << 20;

enum class FrameType : uint16_t {
  kSubmit = 1,         // client -> server: WireRequest
  kSubmitResult = 2,   // server -> client: WireResponse
  kMetricsQuery = 3,   // client -> server: empty payload
  kMetricsReport = 4,  // server -> client: MetricsJson() bytes
  kError = 5,          // server -> client: WireErrorBody
};

// Every way a frame or a call can fail, each distinct. kNeedMore is the
// one non-error: the stream decoder has a plausible prefix and wants more
// bytes.
enum class WireError : uint8_t {
  kOk = 0,
  kNeedMore = 1,
  kBadMagic = 2,
  kBadVersion = 3,
  kBadType = 4,
  kOversizedFrame = 5,
  kMalformedPayload = 6,
  kTruncatedFrame = 7,    // Peer closed mid-frame.
  kTimeout = 8,           // Client-side per-call deadline.
  kConnectionClosed = 9,  // Client-side: socket gone.
};

std::string ToString(WireError error);

struct FrameHeader {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  uint16_t type = 0;
  uint64_t seq = 0;
  uint32_t payload_len = 0;
};

struct ParsedFrame {
  FrameHeader header;
  std::vector<uint8_t> payload;

  FrameType type() const { return static_cast<FrameType>(header.type); }
};

// One editing request as it travels: the runtime request (template id,
// mask, relative SLO — see src/runtime/serde.h for its layout) plus two
// advisory fields the serving side validates but does not obey (the
// daemon's gateway configuration is authoritative for both).
struct WireRequest {
  uint8_t engine_mode = 1;  // 0 = full recompute, 1 = mask-aware.
  int32_t denoise_steps = 50;
  runtime::OnlineRequest request;
};

// The reply to one WireRequest: the gateway's admission outcome, the
// worker it ran on, per-stage latencies, and a checksum of the output
// latent image so remote callers can assert end-to-end bit-equality
// without shipping the pixels.
struct WireResponse {
  uint8_t status = 0;  // gateway::SubmitStatus.
  int32_t worker_id = -1;
  int64_t estimated_wall_us = 0;
  int64_t queueing_us = 0;
  int64_t denoise_us = 0;
  int64_t post_us = 0;
  int64_t e2e_us = 0;
  uint64_t latent_checksum = 0;

  gateway::SubmitStatus submit_status() const {
    return static_cast<gateway::SubmitStatus>(status);
  }
  bool accepted() const {
    return submit_status() == gateway::SubmitStatus::kAccepted;
  }
};

struct WireErrorBody {
  uint8_t code = 0;  // WireError.
  std::string message;
};

// --- frame assembly -------------------------------------------------------

std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t seq,
                                 const std::vector<uint8_t>& payload);
std::vector<uint8_t> EncodeSubmit(uint64_t seq, const WireRequest& request);
std::vector<uint8_t> EncodeSubmitResult(uint64_t seq,
                                        const WireResponse& response);
std::vector<uint8_t> EncodeMetricsQuery(uint64_t seq);
std::vector<uint8_t> EncodeMetricsReport(uint64_t seq,
                                         const std::string& json);
std::vector<uint8_t> EncodeError(uint64_t seq, WireError code,
                                 const std::string& message);

// Incremental stream decode: inspects the prefix of [data, data+size).
// Returns kOk with `*out` and `*consumed` filled when one whole valid
// frame is available; kNeedMore when the prefix is valid but incomplete;
// a distinct error as soon as the header is provably bad (nothing is
// consumed on error — the connection is unrecoverable and must close).
WireError TryParseFrame(const uint8_t* data, size_t size, ParsedFrame* out,
                        size_t* consumed);

// --- payload decode -------------------------------------------------------

// Each returns false on malformed payloads (and fills `error` when
// non-null); the frame-level result is then kMalformedPayload.
bool DecodeSubmit(const ParsedFrame& frame, WireRequest* out,
                  std::string* error);
bool DecodeSubmitResult(const ParsedFrame& frame, WireResponse* out);
bool DecodeError(const ParsedFrame& frame, WireErrorBody* out);

// --- checksums ------------------------------------------------------------

// FNV-1a over arbitrary bytes; stable across hosts.
uint64_t Fnv1a64(const void* data, size_t size);
// Checksum of a latent/image matrix: shape plus the float bit patterns,
// each float hashed as its little-endian IEEE-754 encoding.
uint64_t LatentChecksum(const Matrix& m);

}  // namespace flashps::net

#endif  // FLASHPS_SRC_NET_WIRE_H_
