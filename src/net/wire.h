// The FlashPS wire protocol: length-prefixed binary frames over TCP.
//
// Every frame is a fixed 20-byte header followed by a typed payload, all
// integers explicit little-endian (src/common/bytes.h) — nothing is ever
// reinterpret_cast off a socket buffer:
//
//   offset  size  field
//        0     4  magic    "FPS1" (0x31535046 LE)
//        4     2  version  kWireVersion
//        6     2  type     FrameType
//        8     8  seq      correlation id, echoed verbatim in the reply
//       16     4  len      payload bytes, <= kMaxPayloadBytes
//
// Request pipelining works by seq: a client may have many frames in
// flight on one connection and match replies by correlation id — replies
// are written in completion order, not submission order. Frames failing
// any header check (magic, version, type, size cap) or any payload check
// are rejected with a distinct WireError; the peer receives a kError frame
// where possible and the connection is closed. The per-frame size cap
// bounds both decoder memory and read-buffer growth.
//
// Two services speak this protocol (one per daemon, both over TcpServer):
// the *serving* tier (submit / metrics frames, flashps_served) and the
// *cache* tier (cache fetch / put frames, flashps_cached) — the shared
// cache node that serves template activations to a whole worker fleet.
#ifndef FLASHPS_SRC_NET_WIRE_H_
#define FLASHPS_SRC_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/gateway/gateway.h"
#include "src/runtime/serde.h"
#include "src/tensor/matrix.h"
#include "src/tensor/quant.h"

namespace flashps::net {

inline constexpr uint32_t kWireMagic = 0x31535046u;  // "FPS1" on the wire.
// v2: cache matrices travel encoded (self-describing dtype tag + per-row
// scale metadata, src/tensor/quant.h) instead of raw fp32.
// v3: submit payloads append the request's resolution (res_h/res_w i32,
// validated equal to the mask grid) for hybrid-resolution serving.
inline constexpr uint16_t kWireVersion = 3;
// Oldest frame version this release still decodes: v2 submits carry no
// resolution fields and decode with resolution = mask grid. Frames older
// than this (or newer than kWireVersion) are kBadVersion.
inline constexpr uint16_t kMinWireVersion = 2;
// First version whose submit payload carries the resolution fields.
inline constexpr uint16_t kResolutionWireVersion = 3;
inline constexpr size_t kFrameHeaderBytes = 20;
// Hard cap on one frame's payload: bounds decoder allocations and makes
// oversized/garbage length fields detectable before any buffering happens.
inline constexpr uint32_t kMaxPayloadBytes = 4u << 20;

// Every frame type, each documented with its direction and payload. "client"
// is whichever peer opened the connection; "server" is the daemon behind
// TcpServer (a serving gateway or a cache node).
enum class FrameType : uint16_t {
  // client -> server: one editing request (WireRequest: engine mode, step
  // count, and the serialized runtime::OnlineRequest). Answered by exactly
  // one kSubmitResult carrying the same seq.
  kSubmit = 1,
  // server -> client: the outcome of one kSubmit (WireResponse: admission
  // status, worker id, per-stage latencies, output latent checksum).
  // Written in completion order, not submission order.
  kSubmitResult = 2,
  // client -> server: empty payload; asks the daemon for its metrics JSON.
  kMetricsQuery = 3,
  // server -> client: MetricsJson() bytes of the daemon (gateway registry
  // for flashps_served, cache-node counters for flashps_cached).
  kMetricsReport = 4,
  // server -> client: WireErrorBody naming the distinct WireError that
  // doomed the connection; the server closes after flushing it.
  kError = 5,
  // client -> cache node: CacheFetchBody — one content-addressed activation
  // matrix, keyed by (template_id, step, block, kind). Answered by
  // kCacheHit (payload attached) or kCacheMiss.
  kCacheFetch = 6,
  // client -> cache node: CachePutBody — stores one activation matrix under
  // its content address, FNV-1a checksum verified server-side before the
  // entry is admitted. Acknowledged by a payload-less kCacheHit echoing the
  // key and the stored checksum.
  kCachePut = 7,
  // cache node -> client: CacheHitBody. Reply to a kCacheFetch that found
  // the entry (matrix payload attached) or to a kCachePut that stored it
  // (no payload; rows == cols == 0). Always carries the entry's checksum.
  kCacheHit = 8,
  // cache node -> client: CacheMissBody — the fetched key is not resident.
  // The worker falls back to local registration (and usually puts the
  // freshly computed record so the next worker hits).
  kCacheMiss = 9,
  // client -> server: AuthBody carrying the cluster's shared secret. When
  // a daemon is started with --auth-token, this MUST be the first frame on
  // every connection; anything else (or a wrong token) is answered with a
  // kError(kUnauthorized) and the connection closes. Daemons without a
  // token still ack the frame, so a uniformly configured client fleet
  // works against both.
  kAuth = 10,
  // server -> client: empty payload acknowledging a kAuth; the session is
  // authenticated from here on.
  kAuthOk = 11,
};

// Every way a frame or a call can fail, each distinct, each produced by
// exactly the condition documented here. kNeedMore is the one non-error:
// the stream decoder has a plausible prefix and wants more bytes.
enum class WireError : uint8_t {
  // No failure; the parse/call succeeded.
  kOk = 0,
  // Stream decoder: the buffered prefix is valid but shorter than one whole
  // frame — read more bytes and retry. Never sent on the wire.
  kNeedMore = 1,
  // The first four bytes are not "FPS1": the peer is not speaking this
  // protocol (or the stream desynchronized). Checked the moment four bytes
  // exist, before waiting for a full header.
  kBadMagic = 2,
  // Header version field outside [kMinWireVersion, kWireVersion]: an
  // incompatible peer release.
  kBadVersion = 3,
  // Header type field names no FrameType, or a structurally valid type
  // arrived in the wrong direction (e.g. a kSubmitResult sent *to* a
  // server, or a cache frame sent to a daemon with no cache service).
  kBadType = 4,
  // Header length field exceeds kMaxPayloadBytes: rejected before any
  // payload buffering happens (bounds decoder memory against garbage).
  kOversizedFrame = 5,
  // The frame parsed but its payload failed a typed decode — short fields,
  // out-of-range values, trailing bytes, or a cache-put whose payload bytes
  // do not hash to the checksum it declared.
  kMalformedPayload = 6,
  // Peer closed the connection with a partial frame still buffered: those
  // bytes can never complete. Counted server-side.
  kTruncatedFrame = 7,
  // Client-side: the per-call deadline lapsed before the matching reply
  // arrived.
  kTimeout = 8,
  // Client-side: the socket is gone — connect failed after its bounded
  // retries, the peer hung up, or a send hit a dead connection.
  kConnectionClosed = 9,
  // The daemon requires a shared-secret handshake (--auth-token) and this
  // session either skipped it or presented the wrong token. The frame that
  // triggered it is never dispatched.
  kUnauthorized = 10,
};

std::string ToString(WireError error);

struct FrameHeader {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  uint16_t type = 0;
  uint64_t seq = 0;
  uint32_t payload_len = 0;
};

struct ParsedFrame {
  FrameHeader header;
  std::vector<uint8_t> payload;

  FrameType type() const { return static_cast<FrameType>(header.type); }
};

// One editing request as it travels: the runtime request (template id,
// mask, relative SLO — see src/runtime/serde.h for its layout) plus two
// advisory fields the serving side validates but does not obey (the
// daemon's gateway configuration is authoritative for both).
struct WireRequest {
  uint8_t engine_mode = 1;  // 0 = full recompute, 1 = mask-aware.
  int32_t denoise_steps = 50;
  runtime::OnlineRequest request;
};

// The reply to one WireRequest: the gateway's admission outcome, the
// worker it ran on, per-stage latencies, and a checksum of the output
// latent image so remote callers can assert end-to-end bit-equality
// without shipping the pixels.
struct WireResponse {
  uint8_t status = 0;  // gateway::SubmitStatus.
  int32_t worker_id = -1;
  int64_t estimated_wall_us = 0;
  int64_t queueing_us = 0;
  int64_t denoise_us = 0;
  int64_t post_us = 0;
  int64_t e2e_us = 0;
  uint64_t latent_checksum = 0;

  gateway::SubmitStatus submit_status() const {
    return static_cast<gateway::SubmitStatus>(status);
  }
  bool accepted() const {
    return submit_status() == gateway::SubmitStatus::kAccepted;
  }
};

struct WireErrorBody {
  uint8_t code = 0;  // WireError.
  std::string message;
};

// Payload of kAuth: the shared secret, verbatim. (The reproduction's
// transport is plaintext TCP; the handshake gates access, it does not
// hide the token from the wire — TLS is out of scope here.)
struct AuthBody {
  std::string token;
};

// --- cache-tier frames ----------------------------------------------------

// The content address of one cached activation matrix: which template, which
// denoising step, which transformer block, and which of the per-block
// matrices (the paper's §3 cache holds the Y output per (step, block); the
// Fig. 7 KV alternative additionally holds K and V). One address maps to
// exactly one matrix in model::ActivationRecord:
//   kind 0 -> record.steps[step].y[block]
//   kind 1 -> record.steps[step].k[block]
//   kind 2 -> record.steps[step].v[block]
struct CacheKey {
  int32_t template_id = 0;
  int32_t step = 0;
  int32_t block = 0;
  uint8_t kind = 0;  // 0 = Y, 1 = K, 2 = V.

  bool operator==(const CacheKey& o) const {
    return template_id == o.template_id && step == o.step &&
           block == o.block && kind == o.kind;
  }
  bool operator<(const CacheKey& o) const {
    if (template_id != o.template_id) return template_id < o.template_id;
    if (step != o.step) return step < o.step;
    if (block != o.block) return block < o.block;
    return kind < o.kind;
  }
};

inline constexpr uint8_t kCacheKindY = 0;
inline constexpr uint8_t kCacheKindK = 1;
inline constexpr uint8_t kCacheKindV = 2;

// Payload of kCacheFetch: just the key.
struct CacheFetchBody {
  CacheKey key;
};

// Payload of kCachePut: the key, the *encoded* matrix (dtype tag + scale
// metadata + element bytes, src/tensor/quant.h), and the sender's FNV-1a
// checksum of that encoded form (EncodedChecksum). The node recomputes and
// rejects a mismatch as kMalformedPayload, so a bit flipped in flight can
// never become a resident cache entry — and it never has to decode to
// verify, so lossy entries rest exactly as they traveled.
struct CachePutBody {
  CacheKey key;
  uint64_t checksum = 0;
  quant::EncodedMatrix data;
};

// Payload of kCacheHit: fetch replies carry the encoded matrix; put acks
// carry only the key + checksum (rows == cols == 0, no dtype, no data).
// The checksum always describes the entry as resident on the node, so the
// client can verify the bytes it received (or confirm what it stored) end
// to end.
struct CacheHitBody {
  CacheKey key;
  uint64_t checksum = 0;
  quant::EncodedMatrix data;  // Empty (0x0) for a put acknowledgement.

  bool has_payload() const { return data.rows > 0 && data.cols > 0; }
};

// Payload of kCacheMiss: the key that was not resident.
struct CacheMissBody {
  CacheKey key;
};

// --- frame assembly -------------------------------------------------------

std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t seq,
                                 const std::vector<uint8_t>& payload);
std::vector<uint8_t> EncodeSubmit(uint64_t seq, const WireRequest& request);
std::vector<uint8_t> EncodeSubmitResult(uint64_t seq,
                                        const WireResponse& response);
std::vector<uint8_t> EncodeMetricsQuery(uint64_t seq);
std::vector<uint8_t> EncodeMetricsReport(uint64_t seq,
                                         const std::string& json);
std::vector<uint8_t> EncodeError(uint64_t seq, WireError code,
                                 const std::string& message);
std::vector<uint8_t> EncodeCacheFetch(uint64_t seq, const CacheKey& key);
// Computes the checksum itself (EncodedChecksum of `data`).
std::vector<uint8_t> EncodeCachePut(uint64_t seq, const CacheKey& key,
                                    const quant::EncodedMatrix& data);
// Lossless convenience: encodes `data` as f32 (bitwise round-trip) first.
std::vector<uint8_t> EncodeCachePut(uint64_t seq, const CacheKey& key,
                                    const Matrix& data);
// `data` may be null: a payload-less put acknowledgement.
std::vector<uint8_t> EncodeCacheHit(uint64_t seq, const CacheKey& key,
                                    uint64_t checksum,
                                    const quant::EncodedMatrix* data);
std::vector<uint8_t> EncodeCacheMiss(uint64_t seq, const CacheKey& key);
std::vector<uint8_t> EncodeAuth(uint64_t seq, const std::string& token);
std::vector<uint8_t> EncodeAuthOk(uint64_t seq);

// Exact payload size of the kCachePut frame EncodeCachePut would build for
// `data` — lets a client refuse an oversized put (> kMaxPayloadBytes)
// before any bytes hit the socket, instead of desyncing server-side.
size_t CachePutPayloadBytes(const quant::EncodedMatrix& data);

// Incremental stream decode: inspects the prefix of [data, data+size).
// Returns kOk with `*out` and `*consumed` filled when one whole valid
// frame is available; kNeedMore when the prefix is valid but incomplete;
// a distinct error as soon as the header is provably bad (nothing is
// consumed on error — the connection is unrecoverable and must close).
WireError TryParseFrame(const uint8_t* data, size_t size, ParsedFrame* out,
                        size_t* consumed);

// --- payload decode -------------------------------------------------------

// Each returns false on malformed payloads (and fills `error` when
// non-null); the frame-level result is then kMalformedPayload.
bool DecodeSubmit(const ParsedFrame& frame, WireRequest* out,
                  std::string* error);
bool DecodeSubmitResult(const ParsedFrame& frame, WireResponse* out);
bool DecodeError(const ParsedFrame& frame, WireErrorBody* out);
bool DecodeCacheFetch(const ParsedFrame& frame, CacheFetchBody* out,
                      std::string* error);
// Validates the declared checksum against the decoded matrix bytes; a
// mismatch is a malformed payload (it means corruption in flight).
bool DecodeCachePut(const ParsedFrame& frame, CachePutBody* out,
                    std::string* error);
bool DecodeCacheHit(const ParsedFrame& frame, CacheHitBody* out,
                    std::string* error);
bool DecodeCacheMiss(const ParsedFrame& frame, CacheMissBody* out);
bool DecodeAuth(const ParsedFrame& frame, AuthBody* out, std::string* error);

// --- checksums ------------------------------------------------------------

// FNV-1a over arbitrary bytes; stable across hosts.
uint64_t Fnv1a64(const void* data, size_t size);
// Checksum of a latent/image matrix: shape plus the float bit patterns,
// each float hashed as its little-endian IEEE-754 encoding. Used where a
// *decoded* matrix is attested: submit-result latents.
uint64_t LatentChecksum(const Matrix& m);
// Checksum of an *encoded* matrix: shape, dtype tag, scale bits, and the
// element payload bytes. This is what cache puts and hits carry — the node
// verifies and re-serves entries without ever decoding them. For an f32
// encoding it covers exactly the same float bit patterns as LatentChecksum
// (plus the dtype tag), so lossless mode keeps end-to-end bit attestation.
uint64_t EncodedChecksum(const quant::EncodedMatrix& e);

}  // namespace flashps::net

#endif  // FLASHPS_SRC_NET_WIRE_H_
