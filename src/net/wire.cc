#include "src/net/wire.h"

#include <cstring>

namespace flashps::net {

namespace {

constexpr int32_t kMaxDenoiseSteps = 1000;

void AppendHeader(ByteWriter& w, FrameType type, uint64_t seq,
                  uint32_t payload_len) {
  w.U32(kWireMagic);
  w.U16(kWireVersion);
  w.U16(static_cast<uint16_t>(type));
  w.U64(seq);
  w.U32(payload_len);
}

bool ValidFrameType(uint16_t type) {
  return type >= static_cast<uint16_t>(FrameType::kSubmit) &&
         type <= static_cast<uint16_t>(FrameType::kAuthOk);
}

// Upper bound on either dimension of a matrix accepted off the wire.
// Generous next to real activation shapes (tokens <= kMaxGridSide^2 would
// overflow the frame cap long before this), but keeps rows*cols arithmetic
// safely inside 32 bits.
constexpr uint32_t kMaxMatrixSide = 1u << 20;

void AppendCacheKey(ByteWriter& w, const CacheKey& key) {
  w.I32(key.template_id);
  w.I32(key.step);
  w.I32(key.block);
  w.U8(key.kind);
}

CacheKey ReadCacheKey(ByteReader& r) {
  CacheKey key;
  key.template_id = r.I32();
  key.step = r.I32();
  key.block = r.I32();
  key.kind = r.U8();
  return key;
}

bool ValidCacheKey(const CacheKey& key, std::string* error) {
  if (key.template_id < 0 || key.step < 0 || key.block < 0) {
    if (error != nullptr) *error = "cache key field negative";
    return false;
  }
  if (key.kind > kCacheKindV) {
    if (error != nullptr) *error = "cache key kind out of range";
    return false;
  }
  return true;
}

// Encoded matrices travel as rows, cols, the dtype tag, a scale count,
// each scale's IEEE-754 bit pattern as a little-endian u32, then the
// element payload bytes (already little-endian by construction in
// quant::Encode) — the same byte-by-byte discipline as every other wire
// integer.
void AppendEncodedMatrixLe(ByteWriter& w, const quant::EncodedMatrix& m) {
  w.U32(static_cast<uint32_t>(m.rows));
  w.U32(static_cast<uint32_t>(m.cols));
  w.U8(static_cast<uint8_t>(m.dtype));
  w.U32(static_cast<uint32_t>(m.scales.size()));
  for (const float scale : m.scales) {
    uint32_t bits;
    std::memcpy(&bits, &scale, sizeof(bits));
    w.U32(bits);
  }
  w.Bytes(m.payload.data(), m.payload.size());
}

// Reads the encoded body of a matrix whose shape header (rows, cols) was
// already consumed. Strict: every dtype/scale-count/length combination
// that quant::Decode would reject is rejected here, before any bytes are
// believed.
bool ReadEncodedMatrixBody(ByteReader& r, uint32_t rows, uint32_t cols,
                           quant::EncodedMatrix* out, std::string* error) {
  if (rows == 0 || cols == 0 || rows > kMaxMatrixSide ||
      cols > kMaxMatrixSide) {
    if (error != nullptr) *error = "matrix dimensions out of range";
    return false;
  }
  const uint8_t dtype_tag = r.U8();
  const uint32_t scale_count = r.U32();
  if (!r.ok()) {
    if (error != nullptr) *error = "matrix header shorter than declared";
    return false;
  }
  if (!quant::ValidDtypeTag(dtype_tag)) {
    if (error != nullptr) *error = "unknown matrix dtype tag";
    return false;
  }
  quant::EncodedMatrix m;
  m.dtype = static_cast<quant::Dtype>(dtype_tag);
  m.rows = static_cast<int>(rows);
  m.cols = static_cast<int>(cols);
  const uint32_t want_scales = m.dtype == quant::Dtype::kI8 ? rows : 0;
  if (scale_count != want_scales) {
    if (error != nullptr) *error = "scale count does not match dtype";
    return false;
  }
  if (static_cast<uint64_t>(scale_count) * sizeof(float) > r.remaining()) {
    if (error != nullptr) *error = "matrix scales truncated";
    return false;
  }
  m.scales.resize(scale_count);
  for (uint32_t i = 0; i < scale_count; ++i) {
    const uint32_t bits = r.U32();
    std::memcpy(&m.scales[i], &bits, sizeof(bits));
  }
  const uint64_t payload_bytes = static_cast<uint64_t>(rows) * cols *
                                 quant::DtypeBytes(m.dtype);
  if (payload_bytes > r.remaining()) {
    if (error != nullptr) *error = "matrix payload shorter than its shape";
    return false;
  }
  m.payload.resize(payload_bytes);
  for (uint64_t i = 0; i < payload_bytes; ++i) {
    m.payload[i] = r.U8();
  }
  if (!r.ok()) {
    if (error != nullptr) *error = "matrix payload truncated";
    return false;
  }
  *out = std::move(m);
  return true;
}

bool ReadEncodedMatrixLe(ByteReader& r, quant::EncodedMatrix* out,
                         std::string* error) {
  const uint32_t rows = r.U32();
  const uint32_t cols = r.U32();
  if (!r.ok()) {
    if (error != nullptr) *error = "matrix header shorter than declared";
    return false;
  }
  return ReadEncodedMatrixBody(r, rows, cols, out, error);
}

}  // namespace

std::string ToString(WireError error) {
  switch (error) {
    case WireError::kOk:
      return "ok";
    case WireError::kNeedMore:
      return "need-more";
    case WireError::kBadMagic:
      return "bad-magic";
    case WireError::kBadVersion:
      return "bad-version";
    case WireError::kBadType:
      return "bad-type";
    case WireError::kOversizedFrame:
      return "oversized-frame";
    case WireError::kMalformedPayload:
      return "malformed-payload";
    case WireError::kTruncatedFrame:
      return "truncated-frame";
    case WireError::kTimeout:
      return "timeout";
    case WireError::kConnectionClosed:
      return "connection-closed";
    case WireError::kUnauthorized:
      return "unauthorized";
  }
  return "?";
}

std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t seq,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  ByteWriter w(out);
  AppendHeader(w, type, seq, static_cast<uint32_t>(payload.size()));
  w.Bytes(payload.data(), payload.size());
  return out;
}

std::vector<uint8_t> EncodeSubmit(uint64_t seq, const WireRequest& request) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U8(request.engine_mode);
  w.I32(request.denoise_steps);
  runtime::AppendOnlineRequest(request.request, payload);
  return EncodeFrame(FrameType::kSubmit, seq, payload);
}

std::vector<uint8_t> EncodeSubmitResult(uint64_t seq,
                                        const WireResponse& response) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U8(response.status);
  w.I32(response.worker_id);
  w.I64(response.estimated_wall_us);
  w.I64(response.queueing_us);
  w.I64(response.denoise_us);
  w.I64(response.post_us);
  w.I64(response.e2e_us);
  w.U64(response.latent_checksum);
  return EncodeFrame(FrameType::kSubmitResult, seq, payload);
}

std::vector<uint8_t> EncodeMetricsQuery(uint64_t seq) {
  return EncodeFrame(FrameType::kMetricsQuery, seq, {});
}

std::vector<uint8_t> EncodeMetricsReport(uint64_t seq,
                                         const std::string& json) {
  std::vector<uint8_t> payload(json.begin(), json.end());
  return EncodeFrame(FrameType::kMetricsReport, seq, payload);
}

std::vector<uint8_t> EncodeError(uint64_t seq, WireError code,
                                 const std::string& message) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U8(static_cast<uint8_t>(code));
  w.String(message);
  return EncodeFrame(FrameType::kError, seq, payload);
}

WireError TryParseFrame(const uint8_t* data, size_t size, ParsedFrame* out,
                        size_t* consumed) {
  // Reject garbage as early as possible: the magic is checked the moment
  // four bytes exist, before waiting for a full header.
  if (size >= 4) {
    ByteReader magic_probe(data, size);
    if (magic_probe.U32() != kWireMagic) {
      return WireError::kBadMagic;
    }
  }
  if (size < kFrameHeaderBytes) {
    return WireError::kNeedMore;
  }
  ByteReader r(data, size);
  FrameHeader header;
  header.magic = r.U32();
  header.version = r.U16();
  header.type = r.U16();
  header.seq = r.U64();
  header.payload_len = r.U32();
  if (header.version < kMinWireVersion || header.version > kWireVersion) {
    return WireError::kBadVersion;
  }
  if (!ValidFrameType(header.type)) {
    return WireError::kBadType;
  }
  if (header.payload_len > kMaxPayloadBytes) {
    return WireError::kOversizedFrame;
  }
  if (size < kFrameHeaderBytes + header.payload_len) {
    return WireError::kNeedMore;
  }
  out->header = header;
  out->payload.assign(data + kFrameHeaderBytes,
                      data + kFrameHeaderBytes + header.payload_len);
  *consumed = kFrameHeaderBytes + header.payload_len;
  return WireError::kOk;
}

bool DecodeSubmit(const ParsedFrame& frame, WireRequest* out,
                  std::string* error) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  WireRequest request;
  request.engine_mode = r.U8();
  request.denoise_steps = r.I32();
  if (!r.ok()) {
    if (error != nullptr) *error = "submit payload shorter than its header";
    return false;
  }
  if (request.engine_mode > 1) {
    if (error != nullptr) *error = "unknown engine mode";
    return false;
  }
  if (request.denoise_steps <= 0 ||
      request.denoise_steps > kMaxDenoiseSteps) {
    if (error != nullptr) *error = "denoise step count out of range";
    return false;
  }
  if (!runtime::ReadOnlineRequest(
          r, &request.request, error,
          /*with_resolution=*/frame.header.version >= kResolutionWireVersion)) {
    return false;
  }
  if (r.remaining() != 0) {
    if (error != nullptr) *error = "trailing bytes after submit payload";
    return false;
  }
  *out = std::move(request);
  return true;
}

bool DecodeSubmitResult(const ParsedFrame& frame, WireResponse* out) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  WireResponse response;
  response.status = r.U8();
  response.worker_id = r.I32();
  response.estimated_wall_us = r.I64();
  response.queueing_us = r.I64();
  response.denoise_us = r.I64();
  response.post_us = r.I64();
  response.e2e_us = r.I64();
  response.latent_checksum = r.U64();
  if (!r.ok() || r.remaining() != 0) {
    return false;
  }
  *out = response;
  return true;
}

bool DecodeError(const ParsedFrame& frame, WireErrorBody* out) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  WireErrorBody body;
  body.code = r.U8();
  body.message = r.String();
  if (!r.ok()) {
    return false;
  }
  *out = std::move(body);
  return true;
}

std::vector<uint8_t> EncodeCacheFetch(uint64_t seq, const CacheKey& key) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  AppendCacheKey(w, key);
  return EncodeFrame(FrameType::kCacheFetch, seq, payload);
}

std::vector<uint8_t> EncodeCachePut(uint64_t seq, const CacheKey& key,
                                    const quant::EncodedMatrix& data) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  AppendCacheKey(w, key);
  w.U64(EncodedChecksum(data));
  AppendEncodedMatrixLe(w, data);
  return EncodeFrame(FrameType::kCachePut, seq, payload);
}

std::vector<uint8_t> EncodeCachePut(uint64_t seq, const CacheKey& key,
                                    const Matrix& data) {
  return EncodeCachePut(seq, key, quant::Encode(data, quant::Dtype::kF32));
}

std::vector<uint8_t> EncodeCacheHit(uint64_t seq, const CacheKey& key,
                                    uint64_t checksum,
                                    const quant::EncodedMatrix* data) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  AppendCacheKey(w, key);
  w.U64(checksum);
  if (data != nullptr) {
    AppendEncodedMatrixLe(w, *data);
  } else {
    // A put acknowledgement: shape 0x0, nothing else.
    w.U32(0);
    w.U32(0);
  }
  return EncodeFrame(FrameType::kCacheHit, seq, payload);
}

size_t CachePutPayloadBytes(const quant::EncodedMatrix& data) {
  // Key (4+4+4+1) + checksum (8) + matrix header (4+4+1+4) + scale bits +
  // element payload; must mirror EncodeCachePut exactly.
  return 13 + 8 + 13 + data.scales.size() * sizeof(float) +
         data.payload.size();
}

std::vector<uint8_t> EncodeCacheMiss(uint64_t seq, const CacheKey& key) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  AppendCacheKey(w, key);
  return EncodeFrame(FrameType::kCacheMiss, seq, payload);
}

bool DecodeCacheFetch(const ParsedFrame& frame, CacheFetchBody* out,
                      std::string* error) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  CacheFetchBody body;
  body.key = ReadCacheKey(r);
  if (!r.ok() || r.remaining() != 0) {
    if (error != nullptr) *error = "cache fetch payload malformed";
    return false;
  }
  if (!ValidCacheKey(body.key, error)) {
    return false;
  }
  *out = body;
  return true;
}

bool DecodeCachePut(const ParsedFrame& frame, CachePutBody* out,
                    std::string* error) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  CachePutBody body;
  body.key = ReadCacheKey(r);
  body.checksum = r.U64();
  if (!r.ok()) {
    if (error != nullptr) *error = "cache put payload shorter than its header";
    return false;
  }
  if (!ValidCacheKey(body.key, error)) {
    return false;
  }
  if (!ReadEncodedMatrixLe(r, &body.data, error)) {
    return false;
  }
  if (r.remaining() != 0) {
    if (error != nullptr) *error = "trailing bytes after cache put payload";
    return false;
  }
  if (EncodedChecksum(body.data) != body.checksum) {
    if (error != nullptr) *error = "cache put checksum mismatch";
    return false;
  }
  *out = std::move(body);
  return true;
}

bool DecodeCacheHit(const ParsedFrame& frame, CacheHitBody* out,
                    std::string* error) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  CacheHitBody body;
  body.key = ReadCacheKey(r);
  body.checksum = r.U64();
  const uint32_t rows = r.U32();
  const uint32_t cols = r.U32();
  if (!r.ok()) {
    if (error != nullptr) *error = "cache hit payload shorter than its header";
    return false;
  }
  if (!ValidCacheKey(body.key, error)) {
    return false;
  }
  if (rows == 0 && cols == 0) {
    // Put acknowledgement: no payload follows.
    if (r.remaining() != 0) {
      if (error != nullptr) *error = "trailing bytes after cache put ack";
      return false;
    }
    *out = std::move(body);
    return true;
  }
  if (!ReadEncodedMatrixBody(r, rows, cols, &body.data, error)) {
    return false;
  }
  if (r.remaining() != 0) {
    if (error != nullptr) *error = "trailing bytes after cache hit payload";
    return false;
  }
  if (EncodedChecksum(body.data) != body.checksum) {
    if (error != nullptr) *error = "cache hit checksum mismatch";
    return false;
  }
  *out = std::move(body);
  return true;
}

std::vector<uint8_t> EncodeAuth(uint64_t seq, const std::string& token) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.String(token);
  return EncodeFrame(FrameType::kAuth, seq, payload);
}

std::vector<uint8_t> EncodeAuthOk(uint64_t seq) {
  return EncodeFrame(FrameType::kAuthOk, seq, {});
}

bool DecodeAuth(const ParsedFrame& frame, AuthBody* out, std::string* error) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  AuthBody body;
  body.token = r.String();
  if (!r.ok() || r.remaining() != 0) {
    if (error != nullptr) *error = "auth payload malformed";
    return false;
  }
  *out = std::move(body);
  return true;
}

bool DecodeCacheMiss(const ParsedFrame& frame, CacheMissBody* out) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  CacheMissBody body;
  body.key = ReadCacheKey(r);
  if (!r.ok() || r.remaining() != 0) {
    return false;
  }
  *out = body;
  return true;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t LatentChecksum(const Matrix& m) {
  uint64_t hash = 0xcbf29ce484222325ull;
  auto mix = [&hash](uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= static_cast<uint8_t>(v >> shift);
      hash *= 0x100000001b3ull;
    }
  };
  mix(static_cast<uint32_t>(m.rows()));
  mix(static_cast<uint32_t>(m.cols()));
  const size_t n = m.size();
  const float* data = m.data();
  for (size_t i = 0; i < n; ++i) {
    uint32_t bits;
    std::memcpy(&bits, &data[i], sizeof(bits));
    mix(bits);
  }
  return hash;
}

uint64_t EncodedChecksum(const quant::EncodedMatrix& e) {
  uint64_t hash = 0xcbf29ce484222325ull;
  auto mix_byte = [&hash](uint8_t b) {
    hash ^= b;
    hash *= 0x100000001b3ull;
  };
  auto mix = [&mix_byte](uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      mix_byte(static_cast<uint8_t>(v >> shift));
    }
  };
  mix(static_cast<uint32_t>(e.rows));
  mix(static_cast<uint32_t>(e.cols));
  mix_byte(static_cast<uint8_t>(e.dtype));
  for (const float scale : e.scales) {
    uint32_t bits;
    std::memcpy(&bits, &scale, sizeof(bits));
    mix(bits);
  }
  for (const uint8_t b : e.payload) {
    mix_byte(b);
  }
  return hash;
}

}  // namespace flashps::net
