#include "src/net/wire.h"

#include <cstring>

namespace flashps::net {

namespace {

constexpr int32_t kMaxDenoiseSteps = 1000;

void AppendHeader(ByteWriter& w, FrameType type, uint64_t seq,
                  uint32_t payload_len) {
  w.U32(kWireMagic);
  w.U16(kWireVersion);
  w.U16(static_cast<uint16_t>(type));
  w.U64(seq);
  w.U32(payload_len);
}

bool ValidFrameType(uint16_t type) {
  return type >= static_cast<uint16_t>(FrameType::kSubmit) &&
         type <= static_cast<uint16_t>(FrameType::kError);
}

}  // namespace

std::string ToString(WireError error) {
  switch (error) {
    case WireError::kOk:
      return "ok";
    case WireError::kNeedMore:
      return "need-more";
    case WireError::kBadMagic:
      return "bad-magic";
    case WireError::kBadVersion:
      return "bad-version";
    case WireError::kBadType:
      return "bad-type";
    case WireError::kOversizedFrame:
      return "oversized-frame";
    case WireError::kMalformedPayload:
      return "malformed-payload";
    case WireError::kTruncatedFrame:
      return "truncated-frame";
    case WireError::kTimeout:
      return "timeout";
    case WireError::kConnectionClosed:
      return "connection-closed";
  }
  return "?";
}

std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t seq,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  ByteWriter w(out);
  AppendHeader(w, type, seq, static_cast<uint32_t>(payload.size()));
  w.Bytes(payload.data(), payload.size());
  return out;
}

std::vector<uint8_t> EncodeSubmit(uint64_t seq, const WireRequest& request) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U8(request.engine_mode);
  w.I32(request.denoise_steps);
  runtime::AppendOnlineRequest(request.request, payload);
  return EncodeFrame(FrameType::kSubmit, seq, payload);
}

std::vector<uint8_t> EncodeSubmitResult(uint64_t seq,
                                        const WireResponse& response) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U8(response.status);
  w.I32(response.worker_id);
  w.I64(response.estimated_wall_us);
  w.I64(response.queueing_us);
  w.I64(response.denoise_us);
  w.I64(response.post_us);
  w.I64(response.e2e_us);
  w.U64(response.latent_checksum);
  return EncodeFrame(FrameType::kSubmitResult, seq, payload);
}

std::vector<uint8_t> EncodeMetricsQuery(uint64_t seq) {
  return EncodeFrame(FrameType::kMetricsQuery, seq, {});
}

std::vector<uint8_t> EncodeMetricsReport(uint64_t seq,
                                         const std::string& json) {
  std::vector<uint8_t> payload(json.begin(), json.end());
  return EncodeFrame(FrameType::kMetricsReport, seq, payload);
}

std::vector<uint8_t> EncodeError(uint64_t seq, WireError code,
                                 const std::string& message) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U8(static_cast<uint8_t>(code));
  w.String(message);
  return EncodeFrame(FrameType::kError, seq, payload);
}

WireError TryParseFrame(const uint8_t* data, size_t size, ParsedFrame* out,
                        size_t* consumed) {
  // Reject garbage as early as possible: the magic is checked the moment
  // four bytes exist, before waiting for a full header.
  if (size >= 4) {
    ByteReader magic_probe(data, size);
    if (magic_probe.U32() != kWireMagic) {
      return WireError::kBadMagic;
    }
  }
  if (size < kFrameHeaderBytes) {
    return WireError::kNeedMore;
  }
  ByteReader r(data, size);
  FrameHeader header;
  header.magic = r.U32();
  header.version = r.U16();
  header.type = r.U16();
  header.seq = r.U64();
  header.payload_len = r.U32();
  if (header.version != kWireVersion) {
    return WireError::kBadVersion;
  }
  if (!ValidFrameType(header.type)) {
    return WireError::kBadType;
  }
  if (header.payload_len > kMaxPayloadBytes) {
    return WireError::kOversizedFrame;
  }
  if (size < kFrameHeaderBytes + header.payload_len) {
    return WireError::kNeedMore;
  }
  out->header = header;
  out->payload.assign(data + kFrameHeaderBytes,
                      data + kFrameHeaderBytes + header.payload_len);
  *consumed = kFrameHeaderBytes + header.payload_len;
  return WireError::kOk;
}

bool DecodeSubmit(const ParsedFrame& frame, WireRequest* out,
                  std::string* error) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  WireRequest request;
  request.engine_mode = r.U8();
  request.denoise_steps = r.I32();
  if (!r.ok()) {
    if (error != nullptr) *error = "submit payload shorter than its header";
    return false;
  }
  if (request.engine_mode > 1) {
    if (error != nullptr) *error = "unknown engine mode";
    return false;
  }
  if (request.denoise_steps <= 0 ||
      request.denoise_steps > kMaxDenoiseSteps) {
    if (error != nullptr) *error = "denoise step count out of range";
    return false;
  }
  if (!runtime::ReadOnlineRequest(r, &request.request, error)) {
    return false;
  }
  if (r.remaining() != 0) {
    if (error != nullptr) *error = "trailing bytes after submit payload";
    return false;
  }
  *out = std::move(request);
  return true;
}

bool DecodeSubmitResult(const ParsedFrame& frame, WireResponse* out) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  WireResponse response;
  response.status = r.U8();
  response.worker_id = r.I32();
  response.estimated_wall_us = r.I64();
  response.queueing_us = r.I64();
  response.denoise_us = r.I64();
  response.post_us = r.I64();
  response.e2e_us = r.I64();
  response.latent_checksum = r.U64();
  if (!r.ok() || r.remaining() != 0) {
    return false;
  }
  *out = response;
  return true;
}

bool DecodeError(const ParsedFrame& frame, WireErrorBody* out) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  WireErrorBody body;
  body.code = r.U8();
  body.message = r.String();
  if (!r.ok()) {
    return false;
  }
  *out = std::move(body);
  return true;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t LatentChecksum(const Matrix& m) {
  uint64_t hash = 0xcbf29ce484222325ull;
  auto mix = [&hash](uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= static_cast<uint8_t>(v >> shift);
      hash *= 0x100000001b3ull;
    }
  };
  mix(static_cast<uint32_t>(m.rows()));
  mix(static_cast<uint32_t>(m.cols()));
  const size_t n = m.size();
  const float* data = m.data();
  for (size_t i = 0; i < n; ++i) {
    uint32_t bits;
    std::memcpy(&bits, &data[i], sizeof(bits));
    mix(bits);
  }
  return hash;
}

}  // namespace flashps::net
