// Remote client for the FlashPS wire protocol.
//
// Single-threaded by design: one blocking socket, one read buffer, and a
// response map keyed by correlation id. Pipelining falls out of that —
// Send() fires any number of requests down the connection without
// waiting, the server replies in completion order, and Await(seq) pumps
// the socket until the wanted reply (which may arrive after others)
// shows up or the per-call timeout lapses. Instances are not thread-safe;
// drive one client per thread.
//
// Connect() retries with exponential backoff (connect_attempts /
// connect_backoff), so a client can be started before its daemon and
// still win the race.
#ifndef FLASHPS_SRC_NET_CLIENT_H_
#define FLASHPS_SRC_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/net/socket_util.h"
#include "src/net/wire.h"

namespace flashps::net {

struct ClientOptions {
  int connect_attempts = 1;
  // First retry delay; doubles per attempt (50, 100, 200, ... ms).
  std::chrono::milliseconds connect_backoff{50};
  std::chrono::milliseconds default_timeout{30000};
  // When non-empty, Connect() opens every session with a kAuth handshake
  // carrying this token and fails unless the daemon acknowledges it.
  std::string auth_token;
};

class Client {
 public:
  Client(std::string host, uint16_t port, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects (with backoff retries). True when the socket is up.
  bool Connect();
  void Close();
  bool connected() const { return fd_.valid(); }

  // Pipelined fire-and-forget submit. Returns the correlation id to pass
  // to Await()/TryTake(), or 0 on failure (see last_error()).
  uint64_t Send(const WireRequest& request);

  // Blocks until the reply for `seq` arrives or `timeout` lapses (the
  // Options default when omitted). Pumps the socket, so replies for other
  // sequences are banked for their own Await() calls.
  std::optional<WireResponse> Await(
      uint64_t seq, std::optional<std::chrono::milliseconds> timeout = {});

  // Send + Await in one call.
  std::optional<WireResponse> Call(
      const WireRequest& request,
      std::optional<std::chrono::milliseconds> timeout = {});

  // Fetches the daemon's MetricsJson() via a metrics frame.
  std::optional<std::string> QueryMetrics(
      std::optional<std::chrono::milliseconds> timeout = {});

  // Drains whatever the socket has ready, waiting at most `budget` for
  // the first byte. Use between open-loop sends to harvest replies early.
  void Pump(std::chrono::milliseconds budget);

  // Takes an already-received reply without touching the socket.
  std::optional<WireResponse> TryTake(uint64_t seq);

  WireError last_error() const { return last_error_; }
  size_t banked_responses() const { return responses_.size(); }

 private:
  // Reads once (bounded by `budget` waiting for readability) and parses
  // every complete frame into the response maps. False when the
  // connection is gone or the stream is unframeable.
  bool PumpOnce(std::chrono::milliseconds budget);
  bool SendFrame(const std::vector<uint8_t>& frame);
  // Runs the kAuth handshake (options_.auth_token) to completion.
  bool Authenticate();

  std::string host_;
  uint16_t port_;
  ClientOptions options_;
  UniqueFd fd_;
  uint64_t next_seq_ = 1;
  std::vector<uint8_t> inbuf_;
  std::map<uint64_t, WireResponse> responses_;
  std::map<uint64_t, std::string> metrics_;
  std::set<uint64_t> auth_acks_;
  WireError last_error_ = WireError::kOk;
};

}  // namespace flashps::net

#endif  // FLASHPS_SRC_NET_CLIENT_H_
