#include "src/net/cache_client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <thread>
#include <utility>

namespace flashps::net {

namespace {

constexpr size_t kReadChunk = 4096;

}  // namespace

CacheClient::CacheClient(std::string host, uint16_t port,
                         CacheClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

CacheClient::~CacheClient() { Close(); }

bool CacheClient::Connect() {
  if (connected()) {
    return true;
  }
  fd_ = ConnectTcpWithRetry(host_, port_, options_.connect_attempts,
                            options_.connect_backoff);
  last_error_ = fd_.valid() ? WireError::kOk : WireError::kConnectionClosed;
  if (fd_.valid() && !options_.auth_token.empty() && !Authenticate()) {
    Close();  // last_error_ already names the reason (e.g. kUnauthorized).
    return false;
  }
  return fd_.valid();
}

bool CacheClient::Authenticate() {
  const uint64_t seq = next_seq_++;
  if (!SendFrame(EncodeAuth(seq, options_.auth_token))) {
    return false;
  }
  const auto deadline = std::chrono::steady_clock::now() + options_.call_timeout;
  while (auth_acks_.find(seq) == auth_acks_.end()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      last_error_ = WireError::kTimeout;
      return false;
    }
    const auto budget = std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(50));
    if (!PumpOnce(std::max(budget, std::chrono::milliseconds(1)))) {
      return false;
    }
  }
  auth_acks_.erase(seq);
  return true;
}

void CacheClient::Close() {
  fd_.Reset();
  inbuf_.clear();
  replies_.clear();
  metrics_.clear();
  auth_acks_.clear();
}

bool CacheClient::SendFrame(const std::vector<uint8_t>& frame) {
  if (!connected()) {
    last_error_ = WireError::kConnectionClosed;
    return false;
  }
  if (!SendAll(fd_.get(), frame.data(), frame.size())) {
    last_error_ = WireError::kConnectionClosed;
    Close();
    return false;
  }
  return true;
}

bool CacheClient::PumpOnce(std::chrono::milliseconds budget) {
  if (!connected()) {
    last_error_ = WireError::kConnectionClosed;
    return false;
  }
  pollfd pfd{fd_.get(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(budget.count()));
  if (ready <= 0) {
    return true;  // Nothing arrived within the budget; not an error.
  }
  uint8_t chunk[kReadChunk];
  const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
  if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR)) {
    last_error_ = WireError::kConnectionClosed;
    Close();
    return false;
  }
  if (n > 0) {
    inbuf_.insert(inbuf_.end(), chunk, chunk + n);
  }
  size_t offset = 0;
  for (;;) {
    ParsedFrame frame;
    size_t consumed = 0;
    const WireError err = TryParseFrame(inbuf_.data() + offset,
                                        inbuf_.size() - offset, &frame,
                                        &consumed);
    if (err == WireError::kNeedMore) {
      break;
    }
    if (err != WireError::kOk) {
      last_error_ = err;
      Close();
      return false;
    }
    offset += consumed;
    switch (frame.type()) {
      case FrameType::kCacheHit: {
        CacheReply reply;
        reply.hit = true;
        std::string error;
        // The decoder verifies the payload against its checksum; a
        // corrupted matrix never reaches the reply bank.
        if (!DecodeCacheHit(frame, &reply.body, &error)) {
          last_error_ = WireError::kMalformedPayload;
          Close();
          return false;
        }
        replies_[frame.header.seq] = std::move(reply);
        break;
      }
      case FrameType::kCacheMiss: {
        CacheReply reply;
        CacheMissBody body;
        if (!DecodeCacheMiss(frame, &body)) {
          last_error_ = WireError::kMalformedPayload;
          Close();
          return false;
        }
        reply.hit = false;
        reply.body.key = body.key;
        replies_[frame.header.seq] = std::move(reply);
        break;
      }
      case FrameType::kMetricsReport:
        metrics_[frame.header.seq] =
            std::string(frame.payload.begin(), frame.payload.end());
        break;
      case FrameType::kAuthOk:
        auth_acks_.insert(frame.header.seq);
        break;
      case FrameType::kError: {
        WireErrorBody body;
        last_error_ = DecodeError(frame, &body)
                          ? static_cast<WireError>(body.code)
                          : WireError::kMalformedPayload;
        Close();
        return false;
      }
      default:
        last_error_ = WireError::kBadType;
        Close();
        return false;
    }
  }
  if (offset > 0) {
    inbuf_.erase(inbuf_.begin(),
                 inbuf_.begin() + static_cast<ptrdiff_t>(offset));
  }
  return true;
}

FetchRecordResult CacheClient::FetchRecord(int template_id, int steps,
                                           int blocks, bool want_kv) {
  FetchRecordResult result;
  if (!Connect()) {
    return result;
  }
  auto record = std::make_shared<model::ActivationRecord>();
  record->steps.resize(static_cast<size_t>(steps));
  for (auto& step : record->steps) {
    step.y.resize(static_cast<size_t>(blocks));
    if (want_kv) {
      step.k.resize(static_cast<size_t>(blocks));
      step.v.resize(static_cast<size_t>(blocks));
    }
  }
  // Fire every fetch before awaiting any reply.
  std::map<uint64_t, CacheKey> outstanding;
  const int kinds = want_kv ? 3 : 1;
  for (int step = 0; step < steps; ++step) {
    for (int block = 0; block < blocks; ++block) {
      for (int kind = 0; kind < kinds; ++kind) {
        CacheKey key;
        key.template_id = template_id;
        key.step = step;
        key.block = block;
        key.kind = static_cast<uint8_t>(kind);
        const uint64_t seq = next_seq_++;
        if (!SendFrame(EncodeCacheFetch(seq, key))) {
          return result;
        }
        outstanding.emplace(seq, key);
      }
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + options_.call_timeout;
  while (!outstanding.empty()) {
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      auto rit = replies_.find(it->first);
      if (rit == replies_.end()) {
        ++it;
        continue;
      }
      if (rit->second.hit) {
        const CacheKey& key = it->second;
        auto& step = record->steps[static_cast<size_t>(key.step)];
        Matrix& slot = key.kind == kCacheKindY
                           ? step.y[static_cast<size_t>(key.block)]
                           : key.kind == kCacheKindK
                                 ? step.k[static_cast<size_t>(key.block)]
                                 : step.v[static_cast<size_t>(key.block)];
        // Decode-on-fetch: the wire decoder already validated the
        // structure and checksum, so a failure here means a broken
        // encoder — treat it like any other malformed payload.
        Matrix decoded;
        if (!quant::Decode(rit->second.body.data, &decoded, nullptr)) {
          last_error_ = WireError::kMalformedPayload;
          Close();
          return result;
        }
        result.wire_bytes += rit->second.body.data.StoredBytes();
        result.bytes += decoded.bytes();
        slot = std::move(decoded);
        ++result.hits;
      } else {
        ++result.misses;
      }
      replies_.erase(rit);
      it = outstanding.erase(it);
    }
    if (outstanding.empty()) {
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      last_error_ = WireError::kTimeout;
      return result;
    }
    const auto budget = std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(50));
    if (!PumpOnce(std::max(budget, std::chrono::milliseconds(1)))) {
      return result;
    }
  }
  result.transport_ok = true;
  result.complete = result.misses == 0;
  if (result.complete) {
    result.record = std::move(record);
  }
  return result;
}

PutRecordResult CacheClient::PutRecord(int template_id,
                                       const model::ActivationRecord& record,
                                       quant::PrecisionMode precision) {
  PutRecordResult result;
  if (!Connect()) {
    return result;
  }
  const bool has_kv = record.has_kv();
  const int num_steps = static_cast<int>(record.steps.size());
  // seq -> checksum the ack must echo back.
  std::map<uint64_t, uint64_t> outstanding;
  auto fire = [&](int step, int block, uint8_t kind,
                  const Matrix& m) -> bool {
    CacheKey key;
    key.template_id = template_id;
    key.step = step;
    key.block = block;
    key.kind = kind;
    const quant::EncodedMatrix encoded =
        quant::Encode(m, quant::DtypeForStep(precision, step, num_steps));
    // Refuse client-side before any bytes hit the socket: a frame the
    // node would reject as oversized can only desync the stream.
    if (CachePutPayloadBytes(encoded) > kMaxPayloadBytes) {
      last_error_ = WireError::kOversizedFrame;
      return false;
    }
    const uint64_t seq = next_seq_++;
    if (!SendFrame(EncodeCachePut(seq, key, encoded))) {
      return false;
    }
    outstanding.emplace(seq, EncodedChecksum(encoded));
    result.bytes += m.bytes();
    result.wire_bytes += encoded.StoredBytes();
    return true;
  };
  for (size_t step = 0; step < record.steps.size(); ++step) {
    const auto& acts = record.steps[step];
    for (size_t block = 0; block < acts.y.size(); ++block) {
      if (!fire(static_cast<int>(step), static_cast<int>(block), kCacheKindY,
                acts.y[block])) {
        return result;
      }
      if (has_kv) {
        if (!fire(static_cast<int>(step), static_cast<int>(block),
                  kCacheKindK, acts.k[block]) ||
            !fire(static_cast<int>(step), static_cast<int>(block),
                  kCacheKindV, acts.v[block])) {
          return result;
        }
      }
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + options_.call_timeout;
  while (!outstanding.empty()) {
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      auto rit = replies_.find(it->first);
      if (rit == replies_.end()) {
        ++it;
        continue;
      }
      // The ack must be a payload-less hit echoing the checksum of the
      // bytes we shipped; anything else means the entry did not land.
      if (!rit->second.hit || rit->second.body.has_payload() ||
          rit->second.body.checksum != it->second) {
        last_error_ = WireError::kMalformedPayload;
        replies_.erase(rit);
        return result;
      }
      ++result.puts;
      replies_.erase(rit);
      it = outstanding.erase(it);
    }
    if (outstanding.empty()) {
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      last_error_ = WireError::kTimeout;
      return result;
    }
    const auto budget = std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(50));
    if (!PumpOnce(std::max(budget, std::chrono::milliseconds(1)))) {
      return result;
    }
  }
  result.transport_ok = true;
  return result;
}

CacheClientPool::CacheClientPool(std::string host, uint16_t port,
                                 CacheClientOptions options, int size) {
  const int n = std::max(1, size);
  clients_.reserve(static_cast<size_t>(n));
  idle_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    clients_.push_back(std::make_unique<CacheClient>(host, port, options));
    idle_.push_back(clients_.back().get());
  }
}

CacheClientPool::Lease CacheClientPool::Checkout() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !idle_.empty(); });
  CacheClient* client = idle_.back();
  idle_.pop_back();
  return Lease(this, client);
}

void CacheClientPool::Return(CacheClient* client) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(client);
  }
  cv_.notify_one();
}

std::optional<std::string> CacheClient::QueryMetrics(
    std::optional<std::chrono::milliseconds> timeout) {
  if (!Connect()) {
    return std::nullopt;
  }
  const uint64_t seq = next_seq_++;
  if (!SendFrame(EncodeMetricsQuery(seq))) {
    return std::nullopt;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        timeout.value_or(options_.call_timeout);
  for (;;) {
    auto it = metrics_.find(seq);
    if (it != metrics_.end()) {
      std::string json = std::move(it->second);
      metrics_.erase(it);
      return json;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      last_error_ = WireError::kTimeout;
      return std::nullopt;
    }
    const auto budget = std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(50));
    if (!PumpOnce(std::max(budget, std::chrono::milliseconds(1)))) {
      return std::nullopt;
    }
  }
}

bool CacheClient::Probe(std::chrono::milliseconds timeout) {
  return QueryMetrics(timeout).has_value();
}

}  // namespace flashps::net
