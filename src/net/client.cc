#include "src/net/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <thread>
#include <utility>

namespace flashps::net {

namespace {

constexpr size_t kReadChunk = 4096;

}  // namespace

Client::Client(std::string host, uint16_t port, ClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

Client::~Client() { Close(); }

bool Client::Connect() {
  if (connected()) {
    return true;
  }
  fd_ = ConnectTcpWithRetry(host_, port_, options_.connect_attempts,
                            options_.connect_backoff);
  last_error_ = fd_.valid() ? WireError::kOk : WireError::kConnectionClosed;
  if (fd_.valid() && !options_.auth_token.empty() && !Authenticate()) {
    Close();  // last_error_ already names the reason (e.g. kUnauthorized).
    return false;
  }
  return fd_.valid();
}

bool Client::Authenticate() {
  const uint64_t seq = next_seq_++;
  if (!SendFrame(EncodeAuth(seq, options_.auth_token))) {
    return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + options_.default_timeout;
  while (auth_acks_.find(seq) == auth_acks_.end()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      last_error_ = WireError::kTimeout;
      return false;
    }
    const auto budget = std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(50));
    if (!PumpOnce(std::max(budget, std::chrono::milliseconds(1)))) {
      return false;
    }
  }
  auth_acks_.erase(seq);
  return true;
}

void Client::Close() {
  fd_.Reset();
  inbuf_.clear();
  auth_acks_.clear();
}

bool Client::SendFrame(const std::vector<uint8_t>& frame) {
  if (!connected()) {
    last_error_ = WireError::kConnectionClosed;
    return false;
  }
  if (!SendAll(fd_.get(), frame.data(), frame.size())) {
    last_error_ = WireError::kConnectionClosed;
    Close();
    return false;
  }
  return true;
}

uint64_t Client::Send(const WireRequest& request) {
  const uint64_t seq = next_seq_++;
  if (!SendFrame(EncodeSubmit(seq, request))) {
    return 0;
  }
  return seq;
}

bool Client::PumpOnce(std::chrono::milliseconds budget) {
  if (!connected()) {
    last_error_ = WireError::kConnectionClosed;
    return false;
  }
  pollfd pfd{fd_.get(), POLLIN, 0};
  const int ready =
      ::poll(&pfd, 1, static_cast<int>(budget.count()));
  if (ready <= 0) {
    return true;  // Nothing arrived within the budget; not an error.
  }
  uint8_t chunk[kReadChunk];
  const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
  if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR)) {
    last_error_ = WireError::kConnectionClosed;
    Close();
    return false;
  }
  if (n > 0) {
    inbuf_.insert(inbuf_.end(), chunk, chunk + n);
  }
  size_t offset = 0;
  for (;;) {
    ParsedFrame frame;
    size_t consumed = 0;
    const WireError err = TryParseFrame(inbuf_.data() + offset,
                                        inbuf_.size() - offset, &frame,
                                        &consumed);
    if (err == WireError::kNeedMore) {
      break;
    }
    if (err != WireError::kOk) {
      last_error_ = err;
      Close();
      return false;
    }
    offset += consumed;
    switch (frame.type()) {
      case FrameType::kSubmitResult: {
        WireResponse response;
        if (!DecodeSubmitResult(frame, &response)) {
          last_error_ = WireError::kMalformedPayload;
          Close();
          return false;
        }
        responses_[frame.header.seq] = response;
        break;
      }
      case FrameType::kMetricsReport:
        metrics_[frame.header.seq] = std::string(frame.payload.begin(),
                                                 frame.payload.end());
        break;
      case FrameType::kAuthOk:
        auth_acks_.insert(frame.header.seq);
        break;
      case FrameType::kError: {
        // The server names the reason and will close on us; surface the
        // distinct code to the caller.
        WireErrorBody body;
        last_error_ = DecodeError(frame, &body)
                          ? static_cast<WireError>(body.code)
                          : WireError::kMalformedPayload;
        Close();
        return false;
      }
      default:
        last_error_ = WireError::kBadType;
        Close();
        return false;
    }
  }
  if (offset > 0) {
    inbuf_.erase(inbuf_.begin(),
                 inbuf_.begin() + static_cast<ptrdiff_t>(offset));
  }
  return true;
}

void Client::Pump(std::chrono::milliseconds budget) { PumpOnce(budget); }

std::optional<WireResponse> Client::TryTake(uint64_t seq) {
  auto it = responses_.find(seq);
  if (it == responses_.end()) {
    return std::nullopt;
  }
  WireResponse response = it->second;
  responses_.erase(it);
  return response;
}

std::optional<WireResponse> Client::Await(
    uint64_t seq, std::optional<std::chrono::milliseconds> timeout) {
  const auto deadline = std::chrono::steady_clock::now() +
                        timeout.value_or(options_.default_timeout);
  for (;;) {
    if (auto response = TryTake(seq)) {
      return response;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      last_error_ = WireError::kTimeout;
      return std::nullopt;
    }
    const auto budget = std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(50));
    if (!PumpOnce(std::max(budget, std::chrono::milliseconds(1)))) {
      return std::nullopt;
    }
  }
}

std::optional<WireResponse> Client::Call(
    const WireRequest& request,
    std::optional<std::chrono::milliseconds> timeout) {
  const uint64_t seq = Send(request);
  if (seq == 0) {
    return std::nullopt;
  }
  return Await(seq, timeout);
}

std::optional<std::string> Client::QueryMetrics(
    std::optional<std::chrono::milliseconds> timeout) {
  const uint64_t seq = next_seq_++;
  if (!SendFrame(EncodeMetricsQuery(seq))) {
    return std::nullopt;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        timeout.value_or(options_.default_timeout);
  for (;;) {
    auto it = metrics_.find(seq);
    if (it != metrics_.end()) {
      std::string json = std::move(it->second);
      metrics_.erase(it);
      return json;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      last_error_ = WireError::kTimeout;
      return std::nullopt;
    }
    const auto budget = std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(50));
    if (!PumpOnce(std::max(budget, std::chrono::milliseconds(1)))) {
      return std::nullopt;
    }
  }
}

}  // namespace flashps::net
