// Backend seam between the TCP frontier and whatever fulfils submits.
//
// TcpServer's completer thread does not care whether a submit runs on the
// local gateway's worker pool or is proxied to another machine; it only
// needs to (a) offer the decoded request somewhere, (b) poll for the
// reply, and (c) encode a WireResponse. WireFrontend is that contract.
// Two implementations exist:
//
//   GatewayFrontend   the single-machine backend — wraps gateway::Gateway
//                     and renders OnlineResponse into wire terms (timings
//                     in µs, latent checksum). This is flashps_served.
//   fed::FedGateway   the federated front tier (src/fed) — routes each
//                     request to a fleet node over the wire protocol and
//                     passes the node's WireResponse through verbatim, so
//                     checksums survive machine hops untouched.
#ifndef FLASHPS_SRC_NET_FRONTEND_H_
#define FLASHPS_SRC_NET_FRONTEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/gateway/gateway.h"
#include "src/net/wire.h"
#include "src/runtime/online_server.h"

namespace flashps::net {

// One accepted submit's eventual reply. The server's completer thread
// polls Ready() (never blocks) so one slow backend cannot wedge the scan
// over every other pending completion.
class WireCompletion {
 public:
  virtual ~WireCompletion() = default;
  // Non-blocking readiness probe.
  virtual bool Ready() = 0;
  // The reply, rendered in wire terms. Call at most once, and only after
  // Ready() has returned true. Must not throw: backend failures become a
  // status code in the response, not an exception.
  virtual WireResponse Take() = 0;
};

// Outcome of offering one decoded submit to the backend.
struct WireSubmission {
  gateway::SubmitStatus status = gateway::SubmitStatus::kRejectedShutdown;
  int worker_id = -1;
  int64_t estimated_wall_us = 0;
  // Non-null iff the submit was accepted and a reply will follow.
  std::unique_ptr<WireCompletion> completion;
  bool accepted() const { return completion != nullptr; }
};

// What a TcpServer needs from an asynchronous backend. Thread-safety
// contract: Submit and MetricsJson may be called concurrently (the poll
// thread submits while metrics queries race in from other connections).
class WireFrontend {
 public:
  virtual ~WireFrontend() = default;
  // Takes the whole decoded wire request: the local gateway only needs the
  // embedded OnlineRequest, but a federating frontend forwards engine_mode
  // and denoise_steps to the chosen node verbatim.
  virtual WireSubmission Submit(WireRequest request) = 0;
  virtual std::string MetricsJson() = 0;
};

// The single-machine backend: submits dispatch through gateway::Gateway;
// completions translate OnlineResponse into the wire reply exactly as the
// serving daemon has always answered (including the shutdown-race catch).
class GatewayFrontend : public WireFrontend {
 public:
  explicit GatewayFrontend(gateway::Gateway& gateway) : gateway_(&gateway) {}

  WireSubmission Submit(WireRequest request) override;
  std::string MetricsJson() override;

 private:
  gateway::Gateway* gateway_;
};

}  // namespace flashps::net

#endif  // FLASHPS_SRC_NET_FRONTEND_H_
