#include "src/net/tcp_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

namespace flashps::net {

namespace {

constexpr int kPollTimeoutMs = 50;
constexpr size_t kReadChunk = 4096;
constexpr size_t kMaxReadPerEvent = 256 * 1024;
constexpr size_t kMaxWritePerEvent = 256 * 1024;
// Sentinel ids in the pollfd index for the two non-connection fds.
constexpr uint64_t kWakeId = 0;
constexpr uint64_t kListenerId = ~0ull;

}  // namespace

TcpServer::TcpServer(gateway::Gateway& gateway, TcpServerOptions options)
    : owned_frontend_(std::make_unique<GatewayFrontend>(gateway)),
      options_(options) {
  frontend_ = owned_frontend_.get();
}

TcpServer::TcpServer(WireFrontend& frontend, TcpServerOptions options)
    : frontend_(&frontend), options_(options) {}

TcpServer::TcpServer(InlineService service, TcpServerOptions options)
    : service_(std::move(service)), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

bool TcpServer::Start() {
  listener_ = OpenListener(options_.port, options_.backlog, &port_);
  if (!listener_.valid() || !wake_.Open()) {
    return false;
  }
  running_.store(true);
  poll_thread_ = std::thread([this] { PollLoop(); });
  completer_thread_ = std::thread([this] { CompleterLoop(); });
  return true;
}

TcpServerStats TcpServer::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void TcpServer::CountWireError(WireError error) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  switch (error) {
    case WireError::kBadMagic:
      ++stats_.bad_magic;
      break;
    case WireError::kBadVersion:
      ++stats_.bad_version;
      break;
    case WireError::kBadType:
      ++stats_.bad_type;
      break;
    case WireError::kOversizedFrame:
      ++stats_.oversized;
      break;
    case WireError::kMalformedPayload:
      ++stats_.malformed;
      break;
    case WireError::kTruncatedFrame:
      ++stats_.truncated;
      break;
    default:
      break;
  }
}

void TcpServer::QueueBytes(Conn& conn, const std::vector<uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(conn.out_mu);
  conn.outbuf.insert(conn.outbuf.end(), bytes.begin(), bytes.end());
}

bool TcpServer::DeliverToConn(uint64_t conn_id,
                              const std::vector<uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return false;
  }
  QueueBytes(*it->second, bytes);
  return true;
}

void TcpServer::AcceptNewConnections() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or a transient error; poll() will retry.
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd.Reset(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_[conn->id] = std::move(conn);
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

void TcpServer::HandleReadable(Conn& conn) {
  size_t total = 0;
  while (total < kMaxReadPerEvent) {
    uint8_t chunk[kReadChunk];
    const ssize_t n = ::recv(conn.fd.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.inbuf.insert(conn.inbuf.end(), chunk, chunk + n);
      total += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    // EOF or a hard error: no more bytes will ever arrive.
    conn.read_closed = true;
    break;
  }
  ParseFrames(conn);
}

void TcpServer::ParseFrames(Conn& conn) {
  size_t offset = 0;
  bool partial = false;
  while (!conn.close_after_flush) {
    if (conn.inflight.load() >= options_.max_inflight_per_conn) {
      // Back-pressure: stop consuming; POLLIN interest drops until the
      // completer retires some of this connection's requests.
      if (!conn.stalled) {
        conn.stalled = true;
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.backpressure_stalls;
      }
      break;
    }
    conn.stalled = false;
    ParsedFrame frame;
    size_t consumed = 0;
    const WireError err = TryParseFrame(conn.inbuf.data() + offset,
                                        conn.inbuf.size() - offset, &frame,
                                        &consumed);
    if (err == WireError::kNeedMore) {
      partial = conn.inbuf.size() - offset > 0;
      break;
    }
    if (err != WireError::kOk) {
      CountWireError(err);
      QueueBytes(conn, EncodeError(0, err, ToString(err)));
      conn.close_after_flush = true;
      // Whatever follows the bad bytes is unframeable; drop it.
      conn.inbuf.clear();
      HandleWritable(conn);
      return;
    }
    offset += consumed;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.frames_received;
    }
    DispatchFrame(conn, frame);
  }
  if (offset > 0) {
    conn.inbuf.erase(conn.inbuf.begin(),
                     conn.inbuf.begin() + static_cast<ptrdiff_t>(offset));
  }
  if (conn.read_closed && partial) {
    // The peer closed with a frame prefix buffered: a truncated frame,
    // counted distinctly. Those bytes can never complete.
    CountWireError(WireError::kTruncatedFrame);
    conn.inbuf.clear();
  }
  HandleWritable(conn);
}

bool TcpServer::HandleAuthGate(Conn& conn, const ParsedFrame& frame) {
  if (frame.type() == FrameType::kAuth) {
    AuthBody body;
    std::string error;
    if (!DecodeAuth(frame, &body, &error)) {
      CountWireError(WireError::kMalformedPayload);
      QueueBytes(conn, EncodeError(frame.header.seq,
                                   WireError::kMalformedPayload, error));
      conn.close_after_flush = true;
      return true;
    }
    if (!options_.auth_token.empty() && body.token != options_.auth_token) {
      QueueBytes(conn, EncodeError(frame.header.seq, WireError::kUnauthorized,
                                   "auth token rejected"));
      conn.close_after_flush = true;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.unauthorized;
      return true;
    }
    // Tokenless daemons still acknowledge so clients can handshake blindly.
    conn.authed = true;
    QueueBytes(conn, EncodeAuthOk(frame.header.seq));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.auth_ok;
    ++stats_.responses_sent;
    return true;
  }
  if (!options_.auth_token.empty() && !conn.authed) {
    QueueBytes(conn, EncodeError(frame.header.seq, WireError::kUnauthorized,
                                 "this daemon requires a kAuth handshake"));
    conn.close_after_flush = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.unauthorized;
    return true;
  }
  return false;
}

void TcpServer::DispatchFrame(Conn& conn, const ParsedFrame& frame) {
  // The auth gate sits in front of both backends: the cache daemon's
  // whole-activation records need the handshake as much as submits do.
  if (HandleAuthGate(conn, frame)) {
    return;
  }
  if (service_) {
    // Service mode: the backend answers every client-to-server frame
    // synchronously; its handlers are memcpy-scale, so no completer.
    InlineReply reply = service_(frame);
    if (reply.close_connection) {
      // The service replies with a kError frame on protocol failures;
      // mirror the gateway path's malformed-payload accounting and policy.
      CountWireError(WireError::kMalformedPayload);
      conn.close_after_flush = true;
    }
    QueueBytes(conn, reply.frame);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.service_replies;
    ++stats_.responses_sent;
    return;
  }
  switch (frame.type()) {
    case FrameType::kSubmit:
      HandleSubmit(conn, frame);
      return;
    case FrameType::kMetricsQuery: {
      QueueBytes(conn, EncodeMetricsReport(frame.header.seq,
                                           frontend_->MetricsJson()));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.responses_sent;
      return;
    }
    case FrameType::kCacheFetch:
    case FrameType::kCachePut: {
      // Structurally valid cache-tier frames sent to a serving daemon
      // that has no cache service behind it.
      CountWireError(WireError::kBadType);
      QueueBytes(conn,
                 EncodeError(frame.header.seq, WireError::kBadType,
                             "cache frame sent to a daemon with no cache "
                             "service"));
      conn.close_after_flush = true;
      return;
    }
    default: {
      // Structurally valid but not a client-to-server type.
      CountWireError(WireError::kBadType);
      QueueBytes(conn, EncodeError(frame.header.seq, WireError::kBadType,
                                   "frame type not valid for this direction"));
      conn.close_after_flush = true;
      return;
    }
  }
}

void TcpServer::HandleSubmit(Conn& conn, const ParsedFrame& frame) {
  WireRequest request;
  std::string error;
  if (!DecodeSubmit(frame, &request, &error)) {
    CountWireError(WireError::kMalformedPayload);
    QueueBytes(conn, EncodeError(frame.header.seq,
                                 WireError::kMalformedPayload, error));
    conn.close_after_flush = true;
    return;
  }
  WireResponse rejection;
  if (draining_.load()) {
    rejection.status =
        static_cast<uint8_t>(gateway::SubmitStatus::kRejectedShutdown);
  } else {
    WireSubmission sub = frontend_->Submit(std::move(request));
    if (sub.accepted()) {
      conn.inflight.fetch_add(1);
      total_inflight_.fetch_add(1);
      PendingCompletion pending;
      pending.conn_id = conn.id;
      pending.seq = frame.header.seq;
      pending.completion = std::move(sub.completion);
      completions_.Push(std::move(pending));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.submits_accepted;
      return;
    }
    rejection.status = static_cast<uint8_t>(sub.status);
    rejection.worker_id = sub.worker_id;
    rejection.estimated_wall_us = sub.estimated_wall_us;
  }
  QueueBytes(conn, EncodeSubmitResult(frame.header.seq, rejection));
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.submits_rejected;
  ++stats_.responses_sent;
}

void TcpServer::HandleWritable(Conn& conn) {
  size_t written = 0;
  while (written < kMaxWritePerEvent) {
    std::vector<uint8_t> chunk;
    {
      std::lock_guard<std::mutex> lock(conn.out_mu);
      if (conn.outbuf.empty()) {
        return;
      }
      const size_t n = std::min(conn.outbuf.size(), kReadChunk * 8);
      chunk.assign(conn.outbuf.begin(),
                   conn.outbuf.begin() + static_cast<ptrdiff_t>(n));
    }
    const ssize_t n =
        ::send(conn.fd.get(), chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n > 0) {
      std::lock_guard<std::mutex> lock(conn.out_mu);
      conn.outbuf.erase(conn.outbuf.begin(),
                        conn.outbuf.begin() + static_cast<ptrdiff_t>(n));
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    // Peer is gone; nothing queued can ever be delivered.
    conn.read_closed = true;
    conn.close_after_flush = true;
    std::lock_guard<std::mutex> lock(conn.out_mu);
    conn.outbuf.clear();
    return;
  }
}

bool TcpServer::ShouldClose(const Conn& conn) const {
  if (conn.read_closed) {
    // EOF means the peer is gone — clients hold their socket open until
    // every reply lands and never half-close. Retire the connection now;
    // the completer counts whatever it still owed as orphaned.
    return true;
  }
  if (!conn.close_after_flush) {
    return false;
  }
  if (conn.inflight.load() > 0) {
    return false;  // Replies still owed; the completer will deliver them.
  }
  std::lock_guard<std::mutex> lock(
      const_cast<std::mutex&>(conn.out_mu));
  return conn.outbuf.empty();
}

void TcpServer::PollLoop() {
  bool listener_open = true;
  std::vector<pollfd> fds;
  std::vector<uint64_t> ids;
  for (;;) {
    if (poll_stop_.load()) {
      break;
    }
    if (draining_.load() && listener_open) {
      listener_.Reset();
      listener_open = false;
    }
    fds.clear();
    ids.clear();
    fds.push_back({wake_.read_end.get(), POLLIN, 0});
    ids.push_back(kWakeId);
    if (listener_open) {
      fds.push_back({listener_.get(), POLLIN, 0});
      ids.push_back(kListenerId);
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [id, conn] : conns_) {
        short events = 0;
        const bool can_read = !conn->read_closed && !conn->close_after_flush &&
                              !draining_.load() &&
                              conn->inflight.load() <
                                  options_.max_inflight_per_conn;
        if (can_read) {
          events |= POLLIN;
        }
        {
          std::lock_guard<std::mutex> out_lock(conn->out_mu);
          if (!conn->outbuf.empty()) {
            events |= POLLOUT;
          }
        }
        fds.push_back({conn->fd.get(), events, 0});
        ids.push_back(id);
      }
    }
    ::poll(fds.data(), fds.size(), kPollTimeoutMs);

    for (size_t i = 0; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      if (revents == 0) {
        continue;
      }
      if (ids[i] == kWakeId) {
        wake_.Drain();
        continue;
      }
      if (ids[i] == kListenerId) {
        if (!draining_.load()) {
          AcceptNewConnections();
        }
        continue;
      }
      Conn* conn = nullptr;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(ids[i]);
        if (it != conns_.end()) {
          conn = it->second.get();
        }
      }
      if (conn == nullptr) {
        continue;
      }
      if (revents & POLLERR) {
        conn->read_closed = true;
        conn->close_after_flush = true;
        std::lock_guard<std::mutex> lock(conn->out_mu);
        conn->outbuf.clear();
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        HandleReadable(*conn);
      }
      if (revents & POLLOUT) {
        HandleWritable(*conn);
      }
    }

    // Re-parse buffered frames for connections whose in-flight count
    // dropped below the cap (the completer wakes us for this), flush
    // anything newly queued, and retire dead connections.
    std::vector<uint64_t> closable;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [id, conn] : conns_) {
        if (!conn->close_after_flush && !conn->inbuf.empty() &&
            conn->inflight.load() < options_.max_inflight_per_conn) {
          ParseFrames(*conn);
        }
        HandleWritable(*conn);
        if (ShouldClose(*conn)) {
          closable.push_back(id);
        }
      }
      for (const uint64_t id : closable) {
        conns_.erase(id);
      }
    }
    if (!closable.empty()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.connections_closed += closable.size();
    }
  }
  // Shutdown: close everything still open.
  std::lock_guard<std::mutex> lock(conns_mu_);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.connections_closed += conns_.size();
  }
  conns_.clear();
  listener_.Reset();
}

void TcpServer::CompleterLoop() {
  std::vector<PendingCompletion> pending;
  for (;;) {
    if (completer_abandon_.load()) {
      return;
    }
    if (pending.empty()) {
      auto item = completions_.Pop();  // Blocks; nullopt once closed+drained.
      if (!item.has_value()) {
        return;
      }
      pending.push_back(std::move(*item));
    }
    while (auto more = completions_.TryPop()) {
      pending.push_back(std::move(*more));
    }
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      if (!it->completion->Ready()) {
        ++it;
        continue;
      }
      progressed = true;
      const WireResponse response = it->completion->Take();
      const bool delivered =
          DeliverToConn(it->conn_id, EncodeSubmitResult(it->seq, response));
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto conn_it = conns_.find(it->conn_id);
        if (conn_it != conns_.end()) {
          conn_it->second->inflight.fetch_sub(1);
        }
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (delivered) {
          ++stats_.responses_sent;
        } else {
          ++stats_.orphaned_completions;
        }
      }
      total_inflight_.fetch_sub(1);
      wake_.Wake();
      it = pending.erase(it);
    }
    if (!pending.empty() && !progressed) {
      // Futures resolve on gateway threads; a short nap keeps this scan
      // cheap without adding meaningful completion latency.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
}

void TcpServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  if (!running_.load()) {
    return;
  }

  draining_.store(true);
  wake_.Wake();

  // Drain: let accepted requests finish and their replies flush, bounded
  // by the configured timeout.
  const auto deadline =
      std::chrono::steady_clock::now() + options_.drain_timeout;
  while (total_inflight_.load() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto unflushed = [this] {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      std::lock_guard<std::mutex> out_lock(conn->out_mu);
      if (!conn->outbuf.empty()) {
        return true;
      }
    }
    return false;
  };
  while (unflushed() && std::chrono::steady_clock::now() < deadline) {
    wake_.Wake();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  if (total_inflight_.load() > 0) {
    // Drain deadline expired with unresolved futures; don't wait on them.
    completer_abandon_.store(true);
  }
  completions_.Close();
  if (completer_thread_.joinable()) {
    completer_thread_.join();
  }
  poll_stop_.store(true);
  wake_.Wake();
  if (poll_thread_.joinable()) {
    poll_thread_.join();
  }
  running_.store(false);
}

}  // namespace flashps::net
