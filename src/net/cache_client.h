// Client for the cache tier: fetches and stores whole activation records
// against a flashps_cached node, one matrix per wire frame.
//
// Like net::Client, this is single-threaded by design — one blocking
// socket, pipelined frames matched to replies by correlation id. A record
// of S steps x B blocks is S*B fetches (3x that with K/V), all fired
// before the first reply is awaited, so a whole-record fetch costs one
// round trip plus the transfer, not S*B round trips.
//
// Every payload that arrives is checksum-verified by the wire decoder
// before it is placed into the record, and every put acknowledgement is
// checked against the checksum of the bytes that were sent — a corrupted
// matrix can neither enter a record nor be believed stored.
#ifndef FLASHPS_SRC_NET_CACHE_CLIENT_H_
#define FLASHPS_SRC_NET_CACHE_CLIENT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/model/diffusion_model.h"
#include "src/net/socket_util.h"
#include "src/net/wire.h"

namespace flashps::net {

struct CacheClientOptions {
  int connect_attempts = 1;
  // First retry delay; doubles per attempt.
  std::chrono::milliseconds connect_backoff{50};
  // Deadline for one whole-record fetch or put (all frames + all replies).
  std::chrono::milliseconds call_timeout{5000};
  // When non-empty, Connect() opens every session with a kAuth handshake
  // carrying this token and fails unless the node acknowledges it.
  std::string auth_token;
};

// Outcome of one whole-record fetch. `transport_ok` distinguishes "the
// node answered" from "the socket/protocol died mid-call": misses with a
// healthy transport mean the record simply is not resident yet, while a
// dead transport means the caller should count a fallback and consider
// the node unreachable.
struct FetchRecordResult {
  bool transport_ok = false;
  bool complete = false;  // Every key hit; `record` holds the whole record.
  std::shared_ptr<model::ActivationRecord> record;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes = 0;       // Decoded fp32 bytes placed into the record.
  uint64_t wire_bytes = 0;  // Encoded bytes received in hits (post-codec).
};

struct PutRecordResult {
  bool transport_ok = false;  // Every matrix acked with a matching checksum.
  uint64_t puts = 0;
  uint64_t bytes = 0;       // Decoded fp32 bytes the record holds.
  uint64_t wire_bytes = 0;  // Encoded bytes shipped (post-codec).
};

class CacheClient {
 public:
  CacheClient(std::string host, uint16_t port, CacheClientOptions options = {});
  ~CacheClient();

  CacheClient(const CacheClient&) = delete;
  CacheClient& operator=(const CacheClient&) = delete;

  bool Connect();
  void Close();
  bool connected() const { return fd_.valid(); }

  // Fetches every matrix of one template's record: `steps` x `blocks` Y
  // matrices, plus K and V when `want_kv`. Pipelined; blocks until every
  // reply lands or the call deadline lapses. Payloads arrive encoded
  // (self-describing dtype) and are decoded into the record here.
  FetchRecordResult FetchRecord(int template_id, int steps, int blocks,
                                bool want_kv);

  // Stores every matrix of `record` under its content address, each step
  // encoded at the dtype `precision` assigns it (default: lossless f32).
  // Pipelined; blocks until every ack lands. A matrix whose encoded put
  // frame would exceed kMaxPayloadBytes fails the call with
  // kOversizedFrame *before* any of its bytes hit the socket.
  PutRecordResult PutRecord(
      int template_id, const model::ActivationRecord& record,
      quant::PrecisionMode precision = quant::PrecisionMode::kLossless);

  // Fetches the cache node's MetricsJson().
  std::optional<std::string> QueryMetrics(
      std::optional<std::chrono::milliseconds> timeout = {});

  // Liveness probe: rides the metrics frame (no dedicated wire type) with
  // a short deadline. True iff the node answered in time. Used by the
  // cache ring to report member health; the per-member circuit breakers
  // remain the live signal on the fetch path.
  bool Probe(std::chrono::milliseconds timeout = std::chrono::milliseconds(250));

  WireError last_error() const { return last_error_; }

 private:
  struct CacheReply {
    bool hit = false;
    CacheHitBody body;  // Valid when hit.
  };

  bool SendFrame(const std::vector<uint8_t>& frame);
  // One bounded read + parse pass banking cache replies by seq. False when
  // the connection died or the stream is unframeable.
  bool PumpOnce(std::chrono::milliseconds budget);
  // Runs the kAuth handshake (options_.auth_token) to completion.
  bool Authenticate();

  std::string host_;
  uint16_t port_;
  CacheClientOptions options_;
  UniqueFd fd_;
  uint64_t next_seq_ = 1;
  std::vector<uint8_t> inbuf_;
  std::map<uint64_t, CacheReply> replies_;
  std::map<uint64_t, std::string> metrics_;
  std::set<uint64_t> auth_acks_;
  WireError last_error_ = WireError::kOk;
};

// A small pool of CacheClient connections to one node, so concurrent
// whole-record transfers (foreground fetches, background prefetches)
// ride separate sockets instead of serializing behind one call. Each
// client is still single-threaded; the pool hands out exclusive leases.
// Checkout() blocks until a connection is free — the pool size is the
// concurrency cap, and pressure beyond it queues at the checkout.
class CacheClientPool {
 public:
  CacheClientPool(std::string host, uint16_t port, CacheClientOptions options,
                  int size);

  CacheClientPool(const CacheClientPool&) = delete;
  CacheClientPool& operator=(const CacheClientPool&) = delete;

  // Exclusive lease on one pooled connection; returns it on destruction.
  class Lease {
   public:
    Lease(CacheClientPool* pool, CacheClient* client)
        : pool_(pool), client_(client) {}
    ~Lease() {
      if (pool_ != nullptr) {
        pool_->Return(client_);
      }
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& o) noexcept
        : pool_(std::exchange(o.pool_, nullptr)),
          client_(std::exchange(o.client_, nullptr)) {}

    CacheClient* operator->() const { return client_; }
    CacheClient& operator*() const { return *client_; }

   private:
    CacheClientPool* pool_;
    CacheClient* client_;
  };

  Lease Checkout();
  int size() const { return static_cast<int>(clients_.size()); }

 private:
  friend class Lease;
  void Return(CacheClient* client);

  std::vector<std::unique_ptr<CacheClient>> clients_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<CacheClient*> idle_;
};

}  // namespace flashps::net

#endif  // FLASHPS_SRC_NET_CACHE_CLIENT_H_
