#include "src/net/frontend.h"

#include <chrono>
#include <future>
#include <utility>

namespace flashps::net {

namespace {

class GatewayCompletion : public WireCompletion {
 public:
  GatewayCompletion(int worker_id, int64_t estimated_wall_us,
                    std::future<runtime::OnlineResponse> future)
      : worker_id_(worker_id),
        estimated_wall_us_(estimated_wall_us),
        future_(std::move(future)) {}

  bool Ready() override {
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  WireResponse Take() override {
    WireResponse response;
    response.worker_id = worker_id_;
    response.estimated_wall_us = estimated_wall_us_;
    try {
      runtime::OnlineResponse done = future_.get();
      response.status = static_cast<uint8_t>(gateway::SubmitStatus::kAccepted);
      response.queueing_us = static_cast<int64_t>(done.queueing_ms() * 1e3);
      response.denoise_us = static_cast<int64_t>(done.denoise_ms() * 1e3);
      response.post_us = static_cast<int64_t>(done.post_ms() * 1e3);
      response.e2e_us = static_cast<int64_t>(done.total_ms() * 1e3);
      response.latent_checksum = LatentChecksum(done.image);
    } catch (const std::exception&) {
      // The worker died under the request (shutdown race).
      response.status =
          static_cast<uint8_t>(gateway::SubmitStatus::kRejectedShutdown);
    }
    return response;
  }

 private:
  int worker_id_;
  int64_t estimated_wall_us_;
  std::future<runtime::OnlineResponse> future_;
};

}  // namespace

WireSubmission GatewayFrontend::Submit(WireRequest request) {
  gateway::SubmitResult result = gateway_->Submit(std::move(request.request));
  WireSubmission sub;
  sub.status = result.status;
  sub.worker_id = result.worker_id;
  sub.estimated_wall_us = static_cast<int64_t>(result.estimated_wall_s * 1e6);
  if (result.accepted()) {
    sub.completion = std::make_unique<GatewayCompletion>(
        sub.worker_id, sub.estimated_wall_us, std::move(result.future));
  }
  return sub;
}

std::string GatewayFrontend::MetricsJson() { return gateway_->MetricsJson(); }

}  // namespace flashps::net
