// The shared cache node: the server side of the cache tier.
//
// A CacheNode is a thread-safe content-addressed store of activation
// matrices, keyed by CacheKey (template, step, block, kind) — the unit the
// paper's §3 cache is indexed by. It answers the cache-tier wire frames:
//
//   kCacheFetch  -> kCacheHit (matrix + checksum) or kCacheMiss
//   kCachePut    -> checksum-verified store, acked by a payload-less
//                   kCacheHit; a put whose bytes fail their declared
//                   FNV-1a checksum is rejected as kMalformedPayload
//   kMetricsQuery-> kMetricsReport carrying MetricsJson()
//   anything else-> kError(kBadType): a cache node serves no submits
//
// Handle() is pure request->reply; Service() adapts it to TcpServer's
// InlineService so flashps_cached reuses the whole serving frontier (poll
// loop, back-pressure, drain, error taxonomy) with memcpy-scale handlers.
//
// Capacity: `max_bytes` (0 = unbounded) bounds resident payload bytes with
// LRU eviction — fetch hits and put upserts both refresh recency, so a hot
// fleet's working set stays resident while one-shot templates age out.
#ifndef FLASHPS_SRC_NET_CACHE_NODE_H_
#define FLASHPS_SRC_NET_CACHE_NODE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "src/net/tcp_server.h"
#include "src/net/wire.h"
#include "src/tensor/matrix.h"
#include "src/tensor/quant.h"

namespace flashps::net {

struct CacheNodeOptions {
  // Resident payload-byte cap; 0 = unbounded. Exceeding it evicts the
  // least-recently-used entries until the new entry fits. Entries rest in
  // their *encoded* (wire) form, so the cap counts compressed bytes — a
  // staged-precision fleet fits ~2-4x more templates per node.
  size_t max_bytes = 0;
  // Laxest encoding this node admits: kLossless accepts only f32 puts,
  // kF16 adds f16, kStaged (the default) accepts everything. An operator
  // running a lossless (bitwise-attested) fleet sets this down so a
  // misconfigured lossy worker is rejected loudly instead of silently
  // polluting the cache.
  quant::PrecisionMode admit = quant::PrecisionMode::kStaged;
};

// Monotonic counters plus the current residency snapshot. Byte counters
// are over the encoded (wire) representation — the bytes that actually
// crossed the socket and sit resident.
struct CacheNodeStats {
  uint64_t fetch_hits = 0;
  uint64_t fetch_misses = 0;
  uint64_t puts = 0;          // Admitted puts (including overwrites).
  uint64_t put_overwrites = 0;
  uint64_t bad_frames = 0;    // Malformed payloads + wrong-direction types.
  uint64_t precision_rejects = 0;  // Puts refused by the admit policy.
  uint64_t bytes_served = 0;  // Encoded payload bytes shipped in fetch hits.
  uint64_t bytes_stored = 0;  // Encoded payload bytes admitted by puts.
  uint64_t evictions = 0;
  uint64_t entries = 0;        // Resident entries right now.
  uint64_t resident_bytes = 0;  // Resident encoded bytes right now.
  uint64_t entries_f32 = 0;    // Residency split by dtype (gauges).
  uint64_t entries_f16 = 0;
  uint64_t entries_i8 = 0;
};

class CacheNode {
 public:
  explicit CacheNode(CacheNodeOptions options = {});

  CacheNode(const CacheNode&) = delete;
  CacheNode& operator=(const CacheNode&) = delete;

  // Answers one parsed frame (any thread). The reply's close flag is set
  // exactly when the reply is a kError frame.
  InlineReply Handle(const ParsedFrame& frame);

  // Adapter for TcpServer's service mode. The node must outlive the server.
  InlineService Service();

  // Direct (non-wire) accessors for tests and the daemon's final dump.
  bool Contains(const CacheKey& key) const;
  CacheNodeStats Stats() const;
  // Flat JSON of Stats(), served to kMetricsQuery.
  std::string MetricsJson() const;

 private:
  struct Entry {
    quant::EncodedMatrix data;  // Resident exactly as it traveled.
    uint64_t checksum = 0;
    std::list<CacheKey>::iterator lru_it;
  };

  // All under mu_. Touch() moves a key to the LRU front; EvictToFit()
  // drops tail entries until `incoming` more bytes fit under max_bytes.
  void Touch(Entry& entry);
  void EvictToFit(size_t incoming);

  CacheNodeOptions options_;
  mutable std::mutex mu_;
  std::map<CacheKey, Entry> entries_;
  std::list<CacheKey> lru_;  // Front = most recently used.
  size_t resident_bytes_ = 0;
  CacheNodeStats stats_;
};

}  // namespace flashps::net

#endif  // FLASHPS_SRC_NET_CACHE_NODE_H_
