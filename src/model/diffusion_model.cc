#include "src/model/diffusion_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flashps::model {

NumericsConfig NumericsConfig::ForTests() { return NumericsConfig{}; }

NumericsConfig NumericsConfig::ForModelKind(ModelKind kind) {
  NumericsConfig c;
  // Benchmark-scale configs use stronger attention locality and gentler
  // denoising steps than the unit-test config: this is the regime of
  // trained editing models (paper Fig. 6), where cached-activation reuse is
  // nearly exact (Table 2 reports SSIM up to 0.99).
  c.attn_bias_strength = 1.6f;
  c.residual_scale = 0.2f;
  switch (kind) {
    case ModelKind::kSd21:
      c.grid_h = c.grid_w = 12;
      c.hidden = 48;
      c.num_blocks = 4;
      c.num_steps = 8;
      c.weight_seed = 210;
      break;
    case ModelKind::kSdxl:
      c.grid_h = c.grid_w = 16;
      c.hidden = 64;
      c.num_blocks = 6;
      c.num_steps = 10;
      c.weight_seed = 1024;
      break;
    case ModelKind::kFlux:
      c.grid_h = c.grid_w = 16;
      c.hidden = 64;
      c.num_blocks = 8;
      c.num_steps = 7;
      c.weight_seed = 2024;
      break;
  }
  return c;
}

size_t ActivationRecord::TotalBytes() const {
  size_t total = 0;
  for (const auto& step : steps) {
    for (const auto& m : step.y) {
      total += m.bytes();
    }
    for (const auto& m : step.k) {
      total += m.bytes();
    }
    for (const auto& m : step.v) {
      total += m.bytes();
    }
  }
  return total;
}

DiffusionModel::DiffusionModel(const NumericsConfig& config) : config_(config) {
  Rng rng(config.weight_seed);
  blocks_.reserve(static_cast<size_t>(config.num_blocks));
  for (int i = 0; i < config.num_blocks; ++i) {
    blocks_.push_back(BlockWeights::Random(config.hidden, rng));
  }
  attn_bias_ =
      MakeDistanceBias(config.grid_h, config.grid_w, config.attn_bias_strength);
  temb_freq_ = Matrix(2, config.hidden);
  temb_freq_.FillNormal(rng, 1.0f);
  decode_w_ = Matrix(config.hidden, config.patch * config.patch);
  decode_w_.FillNormal(rng, 1.0f / std::sqrt(static_cast<float>(config.hidden)));
}

Matrix DiffusionModel::EncodeTemplate(int template_id) const {
  // Low-rank smooth field: 4 spatial sinusoid modes x random channel mixes.
  constexpr int kModes = 4;
  Rng rng(0x7E3A14u + static_cast<uint64_t>(template_id) * 0x9E3779B9u);
  Matrix spatial(config_.tokens(), kModes);
  for (int k = 0; k < kModes; ++k) {
    const double fr = rng.Uniform(0.2, 1.2);
    const double fc = rng.Uniform(0.2, 1.2);
    const double phase = rng.Uniform(0.0, 2.0 * M_PI);
    for (int t = 0; t < config_.tokens(); ++t) {
      const int r = t / config_.grid_w;
      const int c = t % config_.grid_w;
      spatial.at(t, k) = static_cast<float>(std::sin(fr * r + fc * c + phase));
    }
  }
  Matrix mix(kModes, config_.hidden);
  mix.FillNormal(rng, 0.7f);
  return MatMul(spatial, mix);
}

Matrix DiffusionModel::InitEditLatent(const Matrix& template_latent,
                                      const trace::Mask& mask,
                                      uint64_t prompt_seed) const {
  assert(template_latent.rows() == config_.tokens());
  Rng rng(prompt_seed);
  Matrix prompt(1, config_.hidden);
  prompt.FillNormal(rng, 0.8f);

  Matrix latent = template_latent;
  for (const int t : mask.masked_tokens) {
    float* row = latent.row(t);
    for (int j = 0; j < config_.hidden; ++j) {
      const float noise = static_cast<float>(rng.Normal(0.0, 0.5));
      row[j] = 0.4f * row[j] + 0.6f * (prompt.at(0, j) + noise);
    }
  }
  return latent;
}

Matrix DiffusionModel::TimestepEmbedding(int step) const {
  // Cosine sigma schedule: embeddings change fastest near the start/end of
  // the trajectory, which is what gives TeaCache its skippable mid-steps.
  const double sigma =
      std::cos(0.5 * M_PI * static_cast<double>(step) /
               static_cast<double>(config_.num_steps));
  Matrix e(1, config_.hidden);
  for (int j = 0; j < config_.hidden; ++j) {
    e.at(0, j) = 0.3f * static_cast<float>(
                            std::sin(sigma * 6.0 * temb_freq_.at(0, j) +
                                     temb_freq_.at(1, j)));
  }
  return e;
}

namespace {

void AddRowBroadcast(Matrix& m, const Matrix& row_vec) {
  assert(row_vec.rows() == 1 && row_vec.cols() == m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    for (int j = 0; j < m.cols(); ++j) {
      r[j] += row_vec.at(0, j);
    }
  }
}

double RelChangeL1(const Matrix& a, const Matrix& b) {
  assert(a.size() == b.size());
  double num = 0.0;
  double den = 1e-9;
  for (size_t i = 0; i < a.size(); ++i) {
    num += std::abs(static_cast<double>(a.data()[i]) - b.data()[i]);
    den += std::abs(static_cast<double>(b.data()[i]));
  }
  return num / den;
}

}  // namespace

Matrix DiffusionModel::StepEpsilon(const Matrix& h0, int step,
                                   const RunOptions& options,
                                   const std::vector<bool>& use_cache,
                                   bool* unmasked_pristine) const {
  Matrix h = h0;
  const bool mask_aware = options.mode == ComputeMode::kMaskAwareY ||
                          options.mode == ComputeMode::kMaskAwareKV;
  // Whether the unmasked rows of the current block input still equal the
  // registration run's activations bit-for-bit. A cached block restores
  // the invariant (its output replenishes those rows from the record); a
  // full-computed block breaks it for the next block's input. In
  // kMaskAwareY mode the gathered sparse path reuses the cached K/V rows
  // instead of recomputing them from the input, which is only bitwise-safe
  // while this holds; in kMaskAwareKV mode the dense flow reuses them too,
  // so the gathered path is valid for any input.
  bool block_pristine = *unmasked_pristine;
  for (int b = 0; b < config_.num_blocks; ++b) {
    if (mask_aware && use_cache[b]) {
      const StepActivations& acts = options.cache->steps[step];
      const bool has_kv = !acts.k.empty();
      const bool gathered =
          options.sparse_compute && has_kv &&
          (options.mode == ComputeMode::kMaskAwareKV || block_pristine);
      if (gathered) {
        h = BlockForwardMaskedGathered(blocks_[b], h, attn_bias_,
                                       *options.mask, acts.y[b], acts.k[b],
                                       acts.v[b]);
      } else if (options.mode == ComputeMode::kMaskAwareY) {
        h = BlockForwardMaskedY(blocks_[b], h, attn_bias_, *options.mask,
                                acts.y[b]);
      } else {
        h = BlockForwardMaskedKV(blocks_[b], h, attn_bias_, *options.mask,
                                 acts.y[b], acts.k[b], acts.v[b]);
      }
      block_pristine = true;
    } else {
      h = BlockForwardFull(blocks_[b], h, attn_bias_);
      block_pristine = false;
    }
    if (options.record != nullptr) {
      options.record->steps[step].y[b] = h;
    }
  }
  // latent' = latent + scale * (y_last - h0): its unmasked rows match the
  // registration trajectory only if both the incoming latent did and the
  // last block's output was replenished.
  *unmasked_pristine = *unmasked_pristine && block_pristine;
  Matrix eps = h;
  for (size_t i = 0; i < eps.size(); ++i) {
    eps.data()[i] -= h0.data()[i];
  }
  return eps;
}

DiffusionModel::RunResult DiffusionModel::RunDenoise(
    Matrix latent, const RunOptions& options) const {
  const bool mask_aware = options.mode == ComputeMode::kMaskAwareY ||
                          options.mode == ComputeMode::kMaskAwareKV;
  if (mask_aware) {
    assert(options.cache != nullptr && options.mask != nullptr);
    assert(static_cast<int>(options.cache->steps.size()) == config_.num_steps);
    if (options.mode == ComputeMode::kMaskAwareKV) {
      assert(options.cache->has_kv());
    }
  }
  std::vector<bool> use_cache = options.use_cache_blocks;
  if (use_cache.empty()) {
    use_cache.assign(static_cast<size_t>(config_.num_blocks), true);
  }
  assert(static_cast<int>(use_cache.size()) == config_.num_blocks);
  if (options.record != nullptr) {
    options.record->steps.assign(static_cast<size_t>(config_.num_steps),
                                 StepActivations{});
    for (auto& step : options.record->steps) {
      step.y.assign(static_cast<size_t>(config_.num_blocks), Matrix());
    }
  }

  RunResult result;

  if (options.mode == ComputeMode::kSparse) {
    // FISEdit: only masked rows exist; unmasked rows pass through untouched.
    assert(options.mask != nullptr);
    const Matrix masked_bias_rows =
        GatherRows(attn_bias_, options.mask->masked_tokens);
    Matrix masked_bias(static_cast<int>(options.mask->masked_tokens.size()),
                       static_cast<int>(options.mask->masked_tokens.size()));
    for (int i = 0; i < masked_bias.rows(); ++i) {
      for (int j = 0; j < masked_bias.cols(); ++j) {
        masked_bias.at(i, j) =
            masked_bias_rows.at(i, options.mask->masked_tokens[j]);
      }
    }
    Matrix xm = GatherRows(latent, options.mask->masked_tokens);
    for (int s = 0; s < config_.num_steps; ++s) {
      Matrix h0 = xm;
      AddRowBroadcast(h0, TimestepEmbedding(s));
      Matrix h = h0;
      for (int b = 0; b < config_.num_blocks; ++b) {
        h = BlockForwardSparse(blocks_[b], h, masked_bias);
      }
      for (size_t i = 0; i < xm.size(); ++i) {
        xm.data()[i] += config_.residual_scale * (h.data()[i] - h0.data()[i]);
      }
      ++result.computed_steps;
    }
    ScatterRows(latent, xm, options.mask->masked_tokens);
    result.final_latent = std::move(latent);
    return result;
  }

  Matrix prev_eps;
  Matrix last_computed_temb;
  double accumulated_change = 0.0;
  // Replenish invariant at entry: InitEditLatent copies the unmasked rows
  // straight from the template latent, which is exactly the latent the
  // registration pass started from — so mask-aware runs begin pristine.
  bool unmasked_pristine = true;
  for (int s = 0; s < config_.num_steps; ++s) {
    const Matrix temb = TimestepEmbedding(s);
    bool skip = false;
    if (options.mode == ComputeMode::kTeaCache && !prev_eps.empty()) {
      accumulated_change += RelChangeL1(temb, last_computed_temb);
      skip = accumulated_change < options.teacache_threshold;
    }
    Matrix eps;
    if (skip) {
      eps = prev_eps;
      ++result.skipped_steps;
    } else {
      Matrix h0 = latent;
      AddRowBroadcast(h0, temb);
      eps = StepEpsilon(h0, s, options, use_cache, &unmasked_pristine);
      prev_eps = eps;
      last_computed_temb = temb;
      accumulated_change = 0.0;
      ++result.computed_steps;
    }
    AxpyInPlace(latent, config_.residual_scale, eps);
  }
  result.final_latent = std::move(latent);
  return result;
}

Matrix DiffusionModel::RunStepRange(Matrix latent, const RunOptions& options,
                                    int begin_step, int end_step) const {
  assert(options.mode == ComputeMode::kFull ||
         options.mode == ComputeMode::kMaskAwareY ||
         options.mode == ComputeMode::kMaskAwareKV);
  assert(begin_step >= 0 && end_step <= config_.num_steps);
  std::vector<bool> use_cache = options.use_cache_blocks;
  if (use_cache.empty()) {
    use_cache.assign(static_cast<size_t>(config_.num_blocks), true);
  }
  // Chunked engines re-enter mid-trajectory, so the replenish invariant at
  // begin_step holds iff every preceding step replenished the unmasked
  // rows — under a fixed per-block plan, iff every block used the cache.
  // (Conservative: a plan whose last block caches also preserves it, but a
  // dense fallback there only costs speed, never correctness.)
  bool unmasked_pristine =
      std::all_of(use_cache.begin(), use_cache.end(),
                  [](bool use) { return use; });
  for (int s = begin_step; s < end_step; ++s) {
    Matrix h0 = latent;
    AddRowBroadcast(h0, TimestepEmbedding(s));
    const Matrix eps = StepEpsilon(h0, s, options, use_cache,
                                   &unmasked_pristine);
    AxpyInPlace(latent, config_.residual_scale, eps);
  }
  return latent;
}

void DiffusionModel::RunStepBatchGathered(
    const std::vector<StepBatchMember>& members) {
  if (members.empty()) {
    return;
  }
  const DiffusionModel& canon = *members.front().model;
  for (const StepBatchMember& m : members) {
    assert(m.model != nullptr && m.latent != nullptr && m.mask != nullptr);
    assert(m.cache != nullptr && m.cache->has_kv());
    assert(m.step >= 0 && m.step < m.model->config_.num_steps);
    // Shared weight family: the batch runs every member through ONE set of
    // block weights, which is only sound when all members' models drew the
    // same blocks.
    assert(m.model->config_.weight_seed == canon.config_.weight_seed);
    assert(m.model->config_.hidden == canon.config_.hidden);
    assert(m.model->config_.num_blocks == canon.config_.num_blocks);
    (void)canon;
  }

  // Per-member h0 = latent + temb(step), each under its member's own model
  // (temb depends on the member's step count and schedule).
  std::vector<Matrix> h0;
  std::vector<Matrix> h;
  h0.reserve(members.size());
  for (const StepBatchMember& m : members) {
    Matrix x = *m.latent;
    AddRowBroadcast(x, m.model->TimestepEmbedding(m.step));
    h0.push_back(std::move(x));
  }
  h = h0;

  // Block stack: one cross-request gathered panel per block. Ping-pong
  // between h and h_next so an item's input never aliases its output.
  std::vector<Matrix> h_next(members.size());
  for (int b = 0; b < canon.config_.num_blocks; ++b) {
    std::vector<GatheredBatchItem> items;
    items.reserve(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      const StepBatchMember& m = members[i];
      const StepActivations& acts = m.cache->steps[static_cast<size_t>(m.step)];
      items.push_back({&h[i], &m.model->attn_bias_, m.mask, &acts.y[b],
                       &acts.k[b], &acts.v[b], &h_next[i]});
    }
    BlockForwardMaskedGatheredBatch(canon.blocks_[static_cast<size_t>(b)],
                                    items);
    h.swap(h_next);
  }

  // latent += scale * (h - h0), per member, under the member's own scale.
  for (size_t i = 0; i < members.size(); ++i) {
    Matrix eps = std::move(h[i]);
    for (size_t j = 0; j < eps.size(); ++j) {
      eps.data()[j] -= h0[i].data()[j];
    }
    AxpyInPlace(*members[i].latent, members[i].model->config_.residual_scale,
                eps);
  }
}

ActivationRecord DiffusionModel::Register(int template_id,
                                          bool record_kv) const {
  ActivationRecord record;
  record.steps.assign(static_cast<size_t>(config_.num_steps),
                      StepActivations{});
  for (auto& step : record.steps) {
    step.y.assign(static_cast<size_t>(config_.num_blocks), Matrix());
    if (record_kv) {
      step.k.assign(static_cast<size_t>(config_.num_blocks), Matrix());
      step.v.assign(static_cast<size_t>(config_.num_blocks), Matrix());
    }
  }

  Matrix latent = EncodeTemplate(template_id);
  for (int s = 0; s < config_.num_steps; ++s) {
    Matrix h0 = latent;
    AddRowBroadcast(h0, TimestepEmbedding(s));
    Matrix h = h0;
    for (int b = 0; b < config_.num_blocks; ++b) {
      Matrix* k_out = record_kv ? &record.steps[s].k[b] : nullptr;
      Matrix* v_out = record_kv ? &record.steps[s].v[b] : nullptr;
      h = BlockForwardFull(blocks_[b], h, attn_bias_, k_out, v_out);
      record.steps[s].y[b] = h;
    }
    for (size_t i = 0; i < latent.size(); ++i) {
      latent.data()[i] += config_.residual_scale * (h.data()[i] - h0.data()[i]);
    }
  }
  return record;
}

Matrix DiffusionModel::EditImage(int template_id, const trace::Mask& mask,
                                 uint64_t prompt_seed,
                                 const RunOptions& options) const {
  const Matrix tmpl = EncodeTemplate(template_id);
  Matrix latent = InitEditLatent(tmpl, mask, prompt_seed);
  RunResult result = RunDenoise(std::move(latent), options);
  return DecodeLatent(result.final_latent);
}

Matrix DiffusionModel::PromptTexture(uint64_t prompt_seed) const {
  // Matches InitEditLatent's prompt-vector construction.
  Rng rng(prompt_seed);
  Matrix prompt(1, config_.hidden);
  prompt.FillNormal(rng, 0.8f);
  Matrix latent(config_.tokens(), config_.hidden);
  for (int t = 0; t < config_.tokens(); ++t) {
    std::copy(prompt.row(0), prompt.row(0) + config_.hidden, latent.row(t));
  }
  return DecodeLatent(latent);
}

Matrix DiffusionModel::DecodeLatent(const Matrix& latent) const {
  assert(latent.rows() == config_.tokens());
  const int p = config_.patch;
  Matrix image(config_.image_h(), config_.image_w());
  const Matrix patches = MatMul(latent, decode_w_);
  for (int t = 0; t < config_.tokens(); ++t) {
    const int gr = t / config_.grid_w;
    const int gc = t % config_.grid_w;
    for (int pr = 0; pr < p; ++pr) {
      for (int pc = 0; pc < p; ++pc) {
        const float v = patches.at(t, pr * p + pc);
        image.at(gr * p + pr, gc * p + pc) = 0.5f + 0.5f * std::tanh(v);
      }
    }
  }
  return image;
}

}  // namespace flashps::model
