#include "src/model/transformer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/parallel_for.h"

namespace flashps::model {

namespace {

// Weight scale ~ 1/sqrt(fan_in) keeps activations O(1) through the stack.
Matrix RandomWeight(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  m.FillNormal(rng, 1.0f / std::sqrt(static_cast<float>(rows)));
  return m;
}

// Adds the attention-score bias rows for query set `q_rows` (or all rows when
// empty) to `scores` whose columns span all tokens.
void AddBiasRows(Matrix& scores, const Matrix& bias,
                 const std::vector<int>* q_rows) {
  const int cols = scores.cols();
  const int64_t grain = std::max<int64_t>(1, (int64_t{1} << 14) / (cols + 1));
  ParallelFor(scores.rows(), grain, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const int row = static_cast<int>(i);
      const int src_row = q_rows == nullptr ? row : (*q_rows)[row];
      const float* b = bias.row(src_row);
      float* s = scores.row(row);
      for (int j = 0; j < cols; ++j) {
        s[j] += b[j];
      }
    }
  });
}

// The token-wise tail of a block given the attention output rows: residual
// add, LayerNorm, feed-forward, residual add.
Matrix BlockTail(const BlockWeights& w, const Matrix& x_rows,
                 const Matrix& attn_out_rows) {
  Matrix x1 = Add(x_rows, attn_out_rows);
  Matrix x1n = LayerNorm(x1, w.ln2_gamma, w.ln2_beta);
  Matrix ff = MatMul(x1n, w.w1);
  GeluInPlace(ff);
  Matrix y = MatMul(ff, w.w2);
  AddInPlace(y, x1);
  return y;
}

}  // namespace

BlockWeights BlockWeights::Random(int hidden, Rng& rng) {
  BlockWeights w;
  w.wq = RandomWeight(hidden, hidden, rng);
  w.wk = RandomWeight(hidden, hidden, rng);
  w.wv = RandomWeight(hidden, hidden, rng);
  w.wo = RandomWeight(hidden, hidden, rng);
  w.w1 = RandomWeight(hidden, 4 * hidden, rng);
  w.w2 = RandomWeight(4 * hidden, hidden, rng);
  w.ln1_gamma.assign(hidden, 1.0f);
  w.ln1_beta.assign(hidden, 0.0f);
  w.ln2_gamma.assign(hidden, 1.0f);
  w.ln2_beta.assign(hidden, 0.0f);
  // Mild per-channel gain diversity so LayerNorm is not an exact identity.
  for (int i = 0; i < hidden; ++i) {
    w.ln1_gamma[i] = 1.0f + 0.1f * static_cast<float>(rng.Normal());
    w.ln2_gamma[i] = 1.0f + 0.1f * static_cast<float>(rng.Normal());
  }
  return w;
}

Matrix MakeDistanceBias(int grid_h, int grid_w, float strength) {
  const int n = grid_h * grid_w;
  Matrix bias(n, n);
  for (int i = 0; i < n; ++i) {
    const int ri = i / grid_w;
    const int ci = i % grid_w;
    for (int j = 0; j < n; ++j) {
      const int rj = j / grid_w;
      const int cj = j % grid_w;
      const float dr = static_cast<float>(ri - rj);
      const float dc = static_cast<float>(ci - cj);
      bias.at(i, j) = -strength * std::sqrt(dr * dr + dc * dc);
    }
  }
  return bias;
}

Matrix BlockForwardFull(const BlockWeights& w, const Matrix& x,
                        const Matrix& attn_bias, Matrix* k_out, Matrix* v_out) {
  const float inv_sqrt_h = 1.0f / std::sqrt(static_cast<float>(x.cols()));
  Matrix xn = LayerNorm(x, w.ln1_gamma, w.ln1_beta);
  Matrix q = MatMul(xn, w.wq);
  Matrix k = MatMul(xn, w.wk);
  Matrix v = MatMul(xn, w.wv);
  Matrix scores = MatMulTransposed(q, k);
  ScaleInPlace(scores, inv_sqrt_h);
  AddBiasRows(scores, attn_bias, nullptr);
  SoftmaxRows(scores);
  Matrix attn = MatMul(MatMul(scores, v), w.wo);
  // Both projections are dead after `attn`; move them out instead of
  // deep-copying K.
  if (k_out != nullptr) {
    *k_out = std::move(k);
  }
  if (v_out != nullptr) {
    *v_out = std::move(v);
  }
  return BlockTail(w, x, attn);
}

Matrix BlockForwardMaskedY(const BlockWeights& w, const Matrix& x,
                           const Matrix& attn_bias, const trace::Mask& mask,
                           const Matrix& cached_y) {
  assert(cached_y.rows() == x.rows() && cached_y.cols() == x.cols());
  const float inv_sqrt_h = 1.0f / std::sqrt(static_cast<float>(x.cols()));

  // K/V for *all* tokens are recomputed from the replenished input; Q only
  // for the masked tokens (paper Fig. 5-Bottom, Table 1 row QK^T).
  Matrix xn = LayerNorm(x, w.ln1_gamma, w.ln1_beta);
  Matrix k = MatMul(xn, w.wk);
  Matrix v = MatMul(xn, w.wv);
  Matrix xn_masked = GatherRows(xn, mask.masked_tokens);
  Matrix q = MatMul(xn_masked, w.wq);
  Matrix scores = MatMulTransposed(q, k);
  ScaleInPlace(scores, inv_sqrt_h);
  AddBiasRows(scores, attn_bias, &mask.masked_tokens);
  SoftmaxRows(scores);
  Matrix attn = MatMul(MatMul(scores, v), w.wo);

  Matrix x_masked = GatherRows(x, mask.masked_tokens);
  Matrix y_masked = BlockTail(w, x_masked, attn);

  // Replenish: unmasked rows come from the cache, masked rows are fresh.
  Matrix y = cached_y;
  ScatterRows(y, y_masked, mask.masked_tokens);
  return y;
}

Matrix BlockForwardMaskedKV(const BlockWeights& w, const Matrix& x,
                            const Matrix& attn_bias, const trace::Mask& mask,
                            const Matrix& cached_y, const Matrix& cached_k,
                            const Matrix& cached_v) {
  assert(cached_k.rows() == x.rows() && cached_v.rows() == x.rows());
  const float inv_sqrt_h = 1.0f / std::sqrt(static_cast<float>(x.cols()));

  // Only masked rows are projected; unmasked K/V rows come from the cache.
  Matrix x_masked = GatherRows(x, mask.masked_tokens);
  Matrix xn_masked = LayerNorm(x_masked, w.ln1_gamma, w.ln1_beta);
  Matrix q = MatMul(xn_masked, w.wq);
  Matrix k_masked = MatMul(xn_masked, w.wk);
  Matrix v_masked = MatMul(xn_masked, w.wv);

  Matrix k = cached_k;
  Matrix v = cached_v;
  ScatterRows(k, k_masked, mask.masked_tokens);
  ScatterRows(v, v_masked, mask.masked_tokens);

  Matrix scores = MatMulTransposed(q, k);
  ScaleInPlace(scores, inv_sqrt_h);
  AddBiasRows(scores, attn_bias, &mask.masked_tokens);
  SoftmaxRows(scores);
  Matrix attn = MatMul(MatMul(scores, v), w.wo);

  Matrix y_masked = BlockTail(w, x_masked, attn);
  Matrix y = cached_y;
  ScatterRows(y, y_masked, mask.masked_tokens);
  return y;
}

Matrix BlockForwardMaskedGathered(const BlockWeights& w, const Matrix& x,
                                  const Matrix& attn_bias,
                                  const trace::Mask& mask,
                                  const Matrix& cached_y,
                                  const Matrix& cached_k,
                                  const Matrix& cached_v) {
  assert(cached_y.rows() == x.rows() && cached_y.cols() == x.cols());
  assert(cached_k.rows() == x.rows() && cached_v.rows() == x.rows());
  const float inv_sqrt_h = 1.0f / std::sqrt(static_cast<float>(x.cols()));

  // Gather: one dense panel of the masked rows; every kernel below runs on
  // it. LayerNorm is row-wise, so the panel's normalized rows equal the
  // corresponding rows of LayerNorm(x) bit-for-bit.
  Matrix x_masked = GatherRows(x, mask.masked_tokens);
  Matrix xn_masked = LayerNorm(x_masked, w.ln1_gamma, w.ln1_beta);
  Matrix q = MatMul(xn_masked, w.wq);

  // Panel GEMM + scatter-back: masked K/V rows are computed on the panel
  // and scattered into a copy of the cached projections, which replenish
  // the unmasked rows the dense flow would recompute.
  Matrix k = cached_k;
  Matrix v = cached_v;
  MatMulScatterRows(xn_masked, w.wk, mask.masked_tokens, k);
  MatMulScatterRows(xn_masked, w.wv, mask.masked_tokens, v);

  Matrix scores = MatMulTransposed(q, k);
  ScaleInPlace(scores, inv_sqrt_h);
  AddBiasRows(scores, attn_bias, &mask.masked_tokens);
  SoftmaxRows(scores);
  Matrix attn = MatMul(MatMul(scores, v), w.wo);

  Matrix y_masked = BlockTail(w, x_masked, attn);
  Matrix y = cached_y;
  ScatterRows(y, y_masked, mask.masked_tokens);
  return y;
}

void BlockForwardMaskedGatheredBatch(
    const BlockWeights& w, const std::vector<GatheredBatchItem>& items) {
  const int hidden = w.wq.rows();
  const float inv_sqrt_h = 1.0f / std::sqrt(static_cast<float>(hidden));

  // Panel assembly: every item's masked rows, item-major in ascending token
  // order — each item's segment is laid out exactly as its solo gathered
  // panel would be.
  std::vector<RowRef> panel_rows;
  std::vector<size_t> offsets(items.size() + 1, 0);
  for (size_t i = 0; i < items.size(); ++i) {
    const GatheredBatchItem& item = items[i];
    assert(item.x != nullptr && item.x->cols() == hidden);
    assert(item.cached_y != nullptr && item.cached_k != nullptr &&
           item.cached_v != nullptr);
    assert(item.y != nullptr);
    for (const int t : item.mask->masked_tokens) {
      panel_rows.push_back({item.x, t});
    }
    offsets[i + 1] = panel_rows.size();
  }
  Matrix x_panel = GatherRowsMulti(panel_rows, hidden);
  Matrix xn_panel = LayerNorm(x_panel, w.ln1_gamma, w.ln1_beta);

  // Batched token-wise projections: one GEMM each across all requests.
  Matrix q_panel = MatMul(xn_panel, w.wq);
  Matrix k_panel = MatMul(xn_panel, w.wk);
  Matrix v_panel = MatMul(xn_panel, w.wv);

  // Per-item attention: replenish K/V from the item's cache, scatter in the
  // panel's fresh masked rows, score against the item's own bias.
  Matrix ctx_panel(x_panel.rows(), hidden);
  for (size_t i = 0; i < items.size(); ++i) {
    const GatheredBatchItem& item = items[i];
    const int m = static_cast<int>(offsets[i + 1] - offsets[i]);
    if (m == 0) {
      *item.y = *item.cached_y;
      continue;
    }
    Matrix q(m, hidden);
    Matrix k = *item.cached_k;
    Matrix v = *item.cached_v;
    for (int r = 0; r < m; ++r) {
      const int pr = static_cast<int>(offsets[i]) + r;
      const int token = item.mask->masked_tokens[static_cast<size_t>(r)];
      std::copy(q_panel.row(pr), q_panel.row(pr) + hidden, q.row(r));
      std::copy(k_panel.row(pr), k_panel.row(pr) + hidden, k.row(token));
      std::copy(v_panel.row(pr), v_panel.row(pr) + hidden, v.row(token));
    }
    Matrix scores = MatMulTransposed(q, k);
    ScaleInPlace(scores, inv_sqrt_h);
    AddBiasRows(scores, *item.attn_bias, &item.mask->masked_tokens);
    SoftmaxRows(scores);
    Matrix ctx = MatMul(scores, v);
    for (int r = 0; r < m; ++r) {
      const int pr = static_cast<int>(offsets[i]) + r;
      std::copy(ctx.row(r), ctx.row(r) + hidden, ctx_panel.row(pr));
    }
  }

  // Batched tail: the wo projection and the whole feed-forward run once on
  // the concatenated context rows.
  Matrix attn_panel = MatMul(ctx_panel, w.wo);
  Matrix y_panel = BlockTail(w, x_panel, attn_panel);

  // Scatter back: each item's output is its cached Y with the fresh masked
  // rows written over it.
  std::vector<RowRefMut> out_rows;
  out_rows.reserve(panel_rows.size());
  for (const GatheredBatchItem& item : items) {
    if (item.mask->masked_tokens.empty()) {
      continue;  // Already handled above; y_panel holds no rows for it.
    }
    *item.y = *item.cached_y;
    for (const int t : item.mask->masked_tokens) {
      out_rows.push_back({item.y, t});
    }
  }
  ScatterRowsMulti(y_panel, out_rows);
}

Matrix BlockForwardSparse(const BlockWeights& w, const Matrix& x_masked,
                          const Matrix& masked_bias) {
  const float inv_sqrt_h = 1.0f / std::sqrt(static_cast<float>(x_masked.cols()));
  Matrix xn = LayerNorm(x_masked, w.ln1_gamma, w.ln1_beta);
  Matrix q = MatMul(xn, w.wq);
  Matrix k = MatMul(xn, w.wk);
  Matrix v = MatMul(xn, w.wv);
  Matrix scores = MatMulTransposed(q, k);
  ScaleInPlace(scores, inv_sqrt_h);
  AddBiasRows(scores, masked_bias, nullptr);
  SoftmaxRows(scores);
  Matrix attn = MatMul(MatMul(scores, v), w.wo);
  return BlockTail(w, x_masked, attn);
}

Matrix AttentionMatrix(const BlockWeights& w, const Matrix& x,
                       const Matrix& attn_bias) {
  const float inv_sqrt_h = 1.0f / std::sqrt(static_cast<float>(x.cols()));
  Matrix xn = LayerNorm(x, w.ln1_gamma, w.ln1_beta);
  Matrix q = MatMul(xn, w.wq);
  Matrix k = MatMul(xn, w.wk);
  Matrix scores = MatMulTransposed(q, k);
  ScaleInPlace(scores, inv_sqrt_h);
  AddBiasRows(scores, attn_bias, nullptr);
  SoftmaxRows(scores);
  return scores;
}

}  // namespace flashps::model
