// Timing-side model descriptions: full-scale dimensions of the three
// evaluated diffusion models and the per-step workload builder that turns a
// batch of mask ratios into per-block compute/load costs for the device
// model. The numerics-side (real math) counterpart lives in
// diffusion_model.h; both share the FLOP formulas in flops.h.
#ifndef FLASHPS_SRC_MODEL_TIMING_H_
#define FLASHPS_SRC_MODEL_TIMING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/device/device.h"

namespace flashps::model {

// How a serving engine computes a denoising step.
enum class ComputeMode {
  kFull,         // Diffusers baseline: all tokens, no cache.
  kMaskAwareY,   // FlashPS: cached Y activations (Fig. 5-Bottom).
  kMaskAwareKV,  // Ablation: cached K/V (Fig. 7), 2x cache size.
  kSparse,       // FISEdit baseline: masked tokens only, no global context.
  kTeaCache,     // TeaCache baseline: full compute, step skipping.
};

std::string ToString(ComputeMode mode);

enum class ModelKind { kSd21, kSdxl, kFlux };

std::string ToString(ModelKind kind);

// Full-scale dimensions used for FLOP/byte accounting. A "group" is the
// caching granularity: one cached Y per group, covering `layers_per_group`
// real transformer layers (§4.2 caches at transformer-block granularity; we
// let a group stand for several consecutive layers so cache sizes match the
// paper's 2.6 GiB SDXL figure while FLOPs match the 676 TFLOP figure).
// Dimensions of one cached block-group. UNet models attend at several
// latent resolutions; a group carries its own token length and width.
struct GroupDims {
  int tokens = 1024;
  int hidden = 1280;
  double layers = 1.0;
};

struct TimingConfig {
  ModelKind kind = ModelKind::kSdxl;
  std::string name;
  int num_groups = 20;
  int tokens = 1024;
  int hidden = 1280;
  double layers_per_group = 3.5;
  // Optional per-group dimensions for multi-resolution models. When empty,
  // all groups use (tokens, hidden, layers_per_group). The presets use the
  // dominant resolution uniformly (that is where the calibration anchors
  // live); custom configs may mix resolutions freely.
  std::vector<GroupDims> groups;
  int denoise_steps = 50;
  // 2.0 when classifier-free guidance doubles the denoiser work.
  double cfg_factor = 2.0;
  // Share of per-step compute in transformer blocks (maskable); the rest
  // (UNet convs/resnets, or embedders) is always computed in full.
  double transformer_fraction = 0.82;
  int cache_bytes_per_elem = 2;  // fp16 activations
  device::GpuKind gpu = device::GpuKind::kH800;
  // Fixed per-request work outside the denoise loop (VAE encode/decode,
  // text encoding), charged once per request on the compute stream.
  Duration pre_latency = Duration::Millis(120);
  Duration post_latency = Duration::Millis(180);
  // Tokens needed to saturate the GPU's SMs to half efficiency. Models the
  // paper's observation that mask-aware computation under-utilizes SMs at
  // batch size 1 and that batching restores utilization (§6.2, Fig. 14).
  // Calibrated to ~6% of the full token length, which reproduces both the
  // ~1.29x batching gain at batch 4 and TeaCache's edge at batch 1.
  double sm_half_sat_tokens = 45.0;
  // Fixed per-step engine overhead (scheduler sync, launch chains), shared
  // by the whole batch — the residual batching benefit full-compute engines
  // see before plateauing (Fig. 14).
  Duration step_overhead = Duration::Millis(1);
  // kMaskAwareY only: price cached blocks at the gathered-panel sparse
  // compute path's cost (see BlockForwardMaskedGathered) — the O(m·L)
  // FlopsYCacheGatheredBlock with every phase running at the masked-token
  // occupancy, loading 3x the Y-only cache bytes (Y + K + V rows). Must
  // mirror the serving engine's OnlineServer::Options::sparse_compute so
  // routing/admission price steps the way the workers execute them.
  bool sparse_compute = false;
  // Relative throughput of gather/GEMM/scatter sparse kernels vs the dense
  // path. Measured, not hand-tuned: bench_kernels times this repo's
  // gathered block kernel (BlockForwardMaskedGathered) against the dense
  // reference at m = 0.1 and emits the achieved-FLOP/s ratio as
  // "sparse_kernel_efficiency_measured" in BENCH_kernels.json. With panel
  // group packing and the paired micro-kernel the gathered panels reach
  // dense parity (runs cluster around 1.0, roughly 0.9-1.15 depending on
  // host noise), so the analytic model uses 1.0. FISEdit-style custom GPU
  // kernels historically ran well below dense-library rates (§2.4, §6.2);
  // lower this to model such a backend.
  double sparse_kernel_efficiency = 1.0;
  // Fraction of the mask-aware token-wise work that pads to the batch's
  // largest masked-token count (ragged batches under static-shape kernels).
  // This is why mixing very different mask ratios in one batch is costly
  // and why the mask-aware scheduler outperforms count-based balancing
  // (§4.4, Fig. 16-Right).
  double ragged_pad_fraction = 0.15;

  // Per-group dimensions after defaulting (size == num_groups or
  // groups.size() when explicitly set).
  std::vector<GroupDims> EffectiveGroups() const;
  // Transformer FLOPs for one full-compute step (all groups, CFG included).
  double TfFlopsPerStepFull() const;
  // Non-maskable FLOPs per step.
  double NonTfFlopsPerStep() const;
  // Stored cache size for one template (all groups x all steps).
  uint64_t TemplateCacheStoreBytes(ComputeMode mode = ComputeMode::kMaskAwareY) const;

  static TimingConfig Get(ModelKind kind);
};

// Per-block-group costs for one denoising step of a *batch* of requests.
struct BlockWork {
  double flops_with_cache = 0.0;     // Summed over the batch.
  double flops_without_cache = 0.0;  // Summed over the batch.
  uint64_t load_bytes = 0;           // Cached activations to gather-load.
  double tokens_with_cache = 0.0;    // Active tokens (for SM utilization).
  double tokens_without_cache = 0.0;
};

struct StepWorkload {
  std::vector<BlockWork> blocks;
  // Non-maskable work executed once per step (before the block pipeline).
  double non_tf_flops = 0.0;
  double non_tf_tokens = 0.0;
};

// Builds the per-step workload for a batch of requests with the given mask
// ratios under `mode`. For kFull/kSparse/kTeaCache, load_bytes is zero and
// with/without-cache costs coincide (no cache decision to make).
StepWorkload BuildStepWorkload(const TimingConfig& config,
                               std::span<const double> mask_ratios,
                               ComputeMode mode);

// SM-utilization-adjusted compute latency: the device's effective rate is
// scaled by u = t / (t + half_sat) where t is the number of active tokens.
Duration UtilizedComputeLatency(const device::DeviceSpec& spec,
                                const TimingConfig& config, double flops,
                                double active_tokens);

// Per-block duration vectors consumed by the pipeline DP (Algorithm 1).
struct StepDurations {
  std::vector<Duration> compute_with_cache;     // C_w^m per block.
  std::vector<Duration> compute_without_cache;  // C_w/o per block.
  std::vector<Duration> load;                   // L^m per block.
  Duration non_tf;                              // Always-computed step work.
};

StepDurations ComputeStepDurations(const TimingConfig& config,
                                   const device::DeviceSpec& spec,
                                   const StepWorkload& workload);

}  // namespace flashps::model

#endif  // FLASHPS_SRC_MODEL_TIMING_H_
