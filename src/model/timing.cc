#include "src/model/timing.h"

#include <algorithm>
#include <cassert>

#include "src/model/flops.h"

namespace flashps::model {

std::string ToString(ComputeMode mode) {
  switch (mode) {
    case ComputeMode::kFull:
      return "full";
    case ComputeMode::kMaskAwareY:
      return "mask-aware-y";
    case ComputeMode::kMaskAwareKV:
      return "mask-aware-kv";
    case ComputeMode::kSparse:
      return "sparse";
    case ComputeMode::kTeaCache:
      return "teacache";
  }
  return "?";
}

std::string ToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kSd21:
      return "SD2.1";
    case ModelKind::kSdxl:
      return "SDXL";
    case ModelKind::kFlux:
      return "Flux";
  }
  return "?";
}

std::vector<GroupDims> TimingConfig::EffectiveGroups() const {
  if (!groups.empty()) {
    return groups;
  }
  return std::vector<GroupDims>(
      static_cast<size_t>(num_groups),
      GroupDims{tokens, hidden, layers_per_group});
}

double TimingConfig::TfFlopsPerStepFull() const {
  double total = 0.0;
  for (const GroupDims& g : EffectiveGroups()) {
    total += FlopsFullBlock(g.tokens, g.hidden, g.layers);
  }
  return cfg_factor * total;
}

double TimingConfig::NonTfFlopsPerStep() const {
  assert(transformer_fraction > 0.0 && transformer_fraction <= 1.0);
  return TfFlopsPerStepFull() * (1.0 / transformer_fraction - 1.0);
}

uint64_t TimingConfig::TemplateCacheStoreBytes(ComputeMode mode) const {
  uint64_t per_step = 0;
  for (const GroupDims& g : EffectiveGroups()) {
    if (mode == ComputeMode::kMaskAwareKV) {
      per_step += KvCacheStoreBytes(g.tokens, g.hidden, cache_bytes_per_elem);
    } else if (mode == ComputeMode::kMaskAwareY && sparse_compute) {
      // Gathered Y-mode records carry K/V alongside Y.
      per_step +=
          GatheredCacheStoreBytes(g.tokens, g.hidden, cache_bytes_per_elem);
    } else {
      per_step += YCacheStoreBytes(g.tokens, g.hidden, cache_bytes_per_elem);
    }
  }
  return per_step * static_cast<uint64_t>(denoise_steps);
}

TimingConfig TimingConfig::Get(ModelKind kind) {
  TimingConfig c;
  c.kind = kind;
  switch (kind) {
    case ModelKind::kSd21:
      // UNet at 768x768; attention mostly at the 48x48 latent level. The
      // small model leaves the A10 under-occupied at batch 1 (large
      // half-saturation constant), which is what keeps the single-request
      // speedup at the paper's ~1.3x while batching pays off strongly —
      // FlashPS's batch-4 throughput overtakes FISEdit's batch-1 engine.
      c.name = "SD2.1";
      c.num_groups = 16;
      c.tokens = 48 * 48;
      c.hidden = 640;
      c.layers_per_group = 1.0;
      c.denoise_steps = 50;
      c.cfg_factor = 2.0;
      c.transformer_fraction = 0.42;
      c.gpu = device::GpuKind::kA10;
      c.pre_latency = Duration::Millis(80);
      c.post_latency = Duration::Millis(120);
      c.sm_half_sat_tokens = 1200.0;
      break;
    case ModelKind::kSdxl:
      // UNet at 1024x1024; transformer work is 82% of a step (paper §2.1
      // footnote). 20 cached groups x 3.5 layers reproduces both the
      // ~676 TFLOP/image cost (§1) and the ~2.6 GiB template cache (§4.2).
      c.name = "SDXL";
      c.num_groups = 20;
      c.tokens = 32 * 32;
      c.hidden = 1280;
      c.layers_per_group = 3.5;
      c.denoise_steps = 50;
      c.cfg_factor = 2.0;
      c.transformer_fraction = 0.82;
      c.gpu = device::GpuKind::kH800;
      c.pre_latency = Duration::Millis(120);
      c.post_latency = Duration::Millis(180);
      c.sm_half_sat_tokens = 190.0;
      break;
    case ModelKind::kFlux:
      // Guidance-distilled DiT at 1024x1024 (64x64 latent tokens), no CFG,
      // 28 steps. Nearly all compute is transformer blocks; the large
      // per-step cache (~200 MB) makes cache loading the binding resource,
      // which is what exercises the bubble-free DP's selective caching.
      c.name = "Flux";
      c.num_groups = 18;
      c.tokens = 64 * 64;
      c.hidden = 2048;
      c.layers_per_group = 1.47;
      c.denoise_steps = 28;
      c.cfg_factor = 1.0;
      c.transformer_fraction = 0.94;
      c.gpu = device::GpuKind::kH800;
      c.pre_latency = Duration::Millis(150);
      c.post_latency = Duration::Millis(200);
      c.sm_half_sat_tokens = 1400.0;
      break;
  }
  return c;
}

StepWorkload BuildStepWorkload(const TimingConfig& config,
                               std::span<const double> mask_ratios,
                               ComputeMode mode) {
  const std::vector<GroupDims> dims = config.EffectiveGroups();
  StepWorkload w;
  w.blocks.resize(dims.size());
  w.non_tf_flops = config.NonTfFlopsPerStep() * static_cast<double>(mask_ratios.size());
  w.non_tf_tokens = static_cast<double>(config.tokens) *
                    static_cast<double>(mask_ratios.size());

  const double cfg = config.cfg_factor;

  // Ragged-batch padding: a share of the mask-aware token-wise work runs at
  // the batch's largest masked-token count rather than each request's own
  // (static-shape kernels). Mixing very different mask ratios in one batch
  // is therefore costly, which is what the mask-aware scheduler exploits
  // over count-based balancing (Fig. 16-Right).
  double max_ratio = 0.0;
  for (const double m : mask_ratios) {
    max_ratio = std::max(max_ratio, m);
  }
  const bool mask_aware_mode =
      mode == ComputeMode::kMaskAwareY || mode == ComputeMode::kMaskAwareKV;
  const double pad = mask_aware_mode && mask_ratios.size() > 1
                         ? config.ragged_pad_fraction
                         : 0.0;

  for (size_t g = 0; g < w.blocks.size(); ++g) {
    BlockWork& block = w.blocks[g];
    const double L = dims[g].tokens;
    const double H = dims[g].hidden;
    const double layers = dims[g].layers;
    for (const double raw_m : mask_ratios) {
      const double m = (1.0 - pad) * raw_m + pad * max_ratio;
      double with_cache = 0.0;
      double full = cfg * FlopsFullBlock(L, H, layers);
      uint64_t load = 0;
      double active_cached = m * L;
      double active_full = L;
      switch (mode) {
        case ComputeMode::kFull:
        case ComputeMode::kTeaCache:
          with_cache = full;
          active_cached = L;
          break;
        case ComputeMode::kMaskAwareY: {
          if (config.sparse_compute) {
            // Gathered-panel sparse path: no O(L) K/V recompute phase, so
            // the whole block runs at the masked-token occupancy, and the
            // cache load carries K/V rows alongside Y.
            with_cache = cfg * FlopsYCacheGatheredBlock(L, H, m, layers);
            load = GatheredCacheLoadBytes(dims[g].tokens, dims[g].hidden, m,
                                          config.cache_bytes_per_elem);
            break;
          }
          with_cache = cfg * FlopsYCacheBlock(L, H, m, layers);
          load = YCacheLoadBytes(dims[g].tokens, dims[g].hidden, m,
                                 config.cache_bytes_per_elem);
          // The block is two phases: the K/V recompute spans all L tokens
          // (full SM occupancy) while Q/attention/FF run on the masked
          // subset (low occupancy at batch 1). Their latencies add, so the
          // effective occupancy is the latency-weighted harmonic mix; we
          // fold it back into an equivalent active-token count.
          const double k_sat = config.sm_half_sat_tokens;
          const double kv_flops = 4.0 * L * H * H;
          const double masked_flops = FlopsYCacheBlock(L, H, m) - kv_flops;
          const double lat_units = kv_flops * (L + k_sat) / L +
                                   masked_flops * (m * L + k_sat) / (m * L);
          const double u_eff = (kv_flops + masked_flops) / lat_units;
          active_cached = k_sat * u_eff / std::max(1e-9, 1.0 - u_eff);
          break;
        }
        case ComputeMode::kMaskAwareKV:
          with_cache = cfg * FlopsKvCacheBlock(L, H, m, layers);
          load = KvCacheLoadBytes(dims[g].tokens, dims[g].hidden, m,
                                  config.cache_bytes_per_elem);
          break;
        case ComputeMode::kSparse:
          // FISEdit never loads a cache and cannot fall back to full
          // computation; with/without coincide. Its custom sparse kernels
          // run below dense-library throughput.
          with_cache = cfg * FlopsSparseBlock(L, H, m, layers) /
                       config.sparse_kernel_efficiency;
          full = with_cache;
          active_full = m * L;  // Sparse kernels touch masked tokens only.
          break;
      }
      block.flops_with_cache += with_cache;
      block.flops_without_cache += full;
      block.load_bytes += load;
      block.tokens_with_cache += active_cached;
      block.tokens_without_cache += active_full;
    }
  }
  return w;
}

Duration UtilizedComputeLatency(const device::DeviceSpec& spec,
                                const TimingConfig& config, double flops,
                                double active_tokens) {
  const double u =
      active_tokens / (active_tokens + config.sm_half_sat_tokens);
  return spec.launch_overhead + Duration::Seconds(flops / (spec.compute_flops * u));
}

StepDurations ComputeStepDurations(const TimingConfig& config,
                                   const device::DeviceSpec& spec,
                                   const StepWorkload& workload) {
  StepDurations d;
  d.compute_with_cache.reserve(workload.blocks.size());
  d.compute_without_cache.reserve(workload.blocks.size());
  d.load.reserve(workload.blocks.size());
  for (const auto& block : workload.blocks) {
    d.compute_with_cache.push_back(UtilizedComputeLatency(
        spec, config, block.flops_with_cache, block.tokens_with_cache));
    d.compute_without_cache.push_back(UtilizedComputeLatency(
        spec, config, block.flops_without_cache, block.tokens_without_cache));
    d.load.push_back(spec.GatherLoadLatency(block.load_bytes));
  }
  d.non_tf = workload.non_tf_flops > 0.0
                 ? UtilizedComputeLatency(spec, config, workload.non_tf_flops,
                                          workload.non_tf_tokens)
                 : Duration::Zero();
  return d;
}

}  // namespace flashps::model
