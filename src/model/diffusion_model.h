// Scaled-down diffusion-model substrate with real numerics.
//
// A fixed seeded-random transformer stack denoises a latent over N steps:
//   x_{s+1} = x_s + scale * (f(x_s + temb(s)) - (x_s + temb(s)))
// where f is the block stack. Image editing initializes the unmasked tokens
// from the template's latent and the masked tokens from prompt-conditioned
// noise. A *registration* pass (full compute on the raw template) records
// every block's Y output per step; mask-aware runs replenish unmasked
// activations from that record, exactly as FlashPS's cache engine does.
//
// What this substrate preserves from the paper (see DESIGN.md): the
// approximation error each serving policy introduces relative to exact
// (Diffusers) computation through the same network, which is what Table 2,
// Fig. 6 and Fig. 13 measure.
#ifndef FLASHPS_SRC_MODEL_DIFFUSION_MODEL_H_
#define FLASHPS_SRC_MODEL_DIFFUSION_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/model/timing.h"
#include "src/model/transformer.h"
#include "src/tensor/matrix.h"
#include "src/trace/workload.h"

namespace flashps::model {

struct NumericsConfig {
  int grid_h = 12;
  int grid_w = 12;
  int hidden = 48;
  int num_blocks = 4;
  int num_steps = 8;
  uint64_t weight_seed = 1234;
  float residual_scale = 0.25f;
  float attn_bias_strength = 1.0f;
  int patch = 4;  // Pixels per token side when decoding to an image.

  int tokens() const { return grid_h * grid_w; }
  int image_h() const { return grid_h * patch; }
  int image_w() const { return grid_w * patch; }

  // Small config used by unit tests.
  static NumericsConfig ForTests();
  // Per-model scaled-down configs used by quality benchmarks.
  static NumericsConfig ForModelKind(ModelKind kind);
};

// Per-template activation record: y[step][block] is the Y output over the
// recording model's OWN token count — (grid_h*grid_w x hidden) of the
// NumericsConfig that ran Register(), so records from different-resolution
// models differ in row count and are not interchangeable. K/V are recorded
// only when requested (the Fig. 7 alternative needs them and doubles the
// record size).
struct ActivationRecord {
  std::vector<StepActivations> steps;

  size_t TotalBytes() const;
  bool has_kv() const {
    return !steps.empty() && !steps.front().k.empty();
  }
};

class DiffusionModel {
 public:
  explicit DiffusionModel(const NumericsConfig& config);

  const NumericsConfig& config() const { return config_; }
  const Matrix& attention_bias() const { return attn_bias_; }
  const BlockWeights& block(int i) const { return blocks_[i]; }

  // Deterministic smooth latent for an image template.
  Matrix EncodeTemplate(int template_id) const;

  // Initial latent for an edit: unmasked rows from the template latent,
  // masked rows from prompt-conditioned noise blended with the template.
  Matrix InitEditLatent(const Matrix& template_latent, const trace::Mask& mask,
                        uint64_t prompt_seed) const;

  // Registration pass: full-compute denoising of the raw template latent,
  // recording per-step per-block activations (the template's cache entry).
  ActivationRecord Register(int template_id, bool record_kv = false) const;

  struct RunOptions {
    ComputeMode mode = ComputeMode::kFull;
    // Required for mask-aware modes; must come from Register() of the same
    // template (with record_kv for kMaskAwareKV).
    const ActivationRecord* cache = nullptr;
    // Required for mask-aware and sparse modes.
    const trace::Mask* mask = nullptr;
    // Per-block cache decisions from the pipeline planner; empty means all
    // blocks use the cache. Ignored outside mask-aware modes.
    std::vector<bool> use_cache_blocks;
    // TeaCache accumulation threshold; larger skips more steps.
    double teacache_threshold = 0.12;
    // Mask-aware modes only: run cached blocks through the gathered-panel
    // sparse compute path (BlockForwardMaskedGathered), making block
    // compute O(m·L) instead of O(L). Output is bitwise-identical to the
    // dense mask-aware flows; the step loop falls back to the dense path
    // for any block whose input's unmasked rows may have drifted from the
    // registration latent (a preceding full-compute block under a partial
    // `use_cache_blocks` plan) and, in kMaskAwareY mode, whenever the
    // cache record carries no K/V to replenish from — so kMaskAwareY with
    // sparse_compute wants a cache from Register(record_kv=true).
    // Assumes the unmasked rows of the initial latent equal the template's
    // registration latent, which InitEditLatent guarantees.
    bool sparse_compute = false;
    // Optional: record this run's activations (for the Fig. 6 analysis).
    ActivationRecord* record = nullptr;
  };

  struct RunResult {
    Matrix final_latent;
    int computed_steps = 0;
    int skipped_steps = 0;
  };

  RunResult RunDenoise(Matrix latent, const RunOptions& options) const;

  // Incremental denoising for step-level (continuous-batching) engines:
  // advances `latent` through steps [begin_step, end_step). Supports the
  // kFull and mask-aware modes (step-wise engines never use TeaCache's
  // cross-step state or the sparse flow).
  Matrix RunStepRange(Matrix latent, const RunOptions& options,
                      int begin_step, int end_step) const;

  // One request's slice of a cross-request patch-batched step. Members may
  // come from models of DIFFERENT resolutions as long as the models share a
  // weight family (equal weight_seed, hidden, num_blocks — their block
  // weights are then bitwise-identical, because the constructor draws them
  // first from Rng(weight_seed) before any grid-dependent state).
  struct StepBatchMember {
    const DiffusionModel* model = nullptr;
    Matrix* latent = nullptr;  // In/out; advanced by one step.
    const trace::Mask* mask = nullptr;
    // Must carry K/V (Register(record_kv=true)) from `model`'s resolution.
    const ActivationRecord* cache = nullptr;
    int step = 0;
  };

  // Patch-granular hybrid-resolution step: advances every member's latent
  // by its own step, running all members' masked tokens through ONE
  // gathered panel per block (BlockForwardMaskedGatheredBatch) so the
  // token-wise GEMMs batch across requests and resolutions. Each member's
  // latent update is bitwise-identical to a solo
  // RunStepRange(mode=kMaskAwareY, sparse_compute=true, full-cache plan)
  // call on that member, for any batch composition — the property the
  // degenerate-mixture gate asserts. Requires the replenish invariant for
  // every member (all-cache plans only), as solo gathered serving does.
  static void RunStepBatchGathered(const std::vector<StepBatchMember>& members);

  // Convenience: end-to-end edit (init + denoise + decode) for a template.
  Matrix EditImage(int template_id, const trace::Mask& mask,
                   uint64_t prompt_seed, const RunOptions& options) const;

  // Decodes a latent to a grayscale image in [0, 1] of size
  // (grid_h*patch) x (grid_w*patch).
  Matrix DecodeLatent(const Matrix& latent) const;

  // Timestep embedding (1 x hidden) at step s; exposed for TeaCache tests.
  Matrix TimestepEmbedding(int step) const;

  // The prompt's target texture: the decode of a latent whose every token is
  // the prompt vector InitEditLatent uses for this seed. The CLIP-proxy
  // metric measures how well the edited region realizes this texture.
  Matrix PromptTexture(uint64_t prompt_seed) const;

 private:
  // `unmasked_pristine` (in/out) tracks the replenish invariant: on entry,
  // whether the unmasked rows of the latent behind `h0` still equal the
  // registration run's latent at this step; on exit, whether they will
  // after the caller applies this epsilon. Gates the gathered sparse path
  // in kMaskAwareY mode (see RunOptions::sparse_compute).
  Matrix StepEpsilon(const Matrix& h0, int step, const RunOptions& options,
                     const std::vector<bool>& use_cache,
                     bool* unmasked_pristine) const;

  NumericsConfig config_;
  std::vector<BlockWeights> blocks_;
  Matrix attn_bias_;
  Matrix temb_freq_;   // 2 x hidden: frequencies and phases.
  Matrix decode_w_;    // hidden x patch^2 decode projection.
};

}  // namespace flashps::model

#endif  // FLASHPS_SRC_MODEL_DIFFUSION_MODEL_H_
