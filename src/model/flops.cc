#include "src/model/flops.h"

#include <cassert>
#include <cmath>

namespace flashps::model {

double FlopsFullBlock(double tokens, double hidden, double layers) {
  const double proj = 8.0 * tokens * hidden * hidden;
  const double attn = 4.0 * tokens * tokens * hidden;
  const double ff = 16.0 * tokens * hidden * hidden;
  return layers * (proj + attn + ff);
}

// The cached-flow costs take mask_ratio > 1.0: hybrid-resolution engines
// charge a request at a grid larger than `tokens` its EFFECTIVE ratio
// (masked tokens over the profiled image), so the masked-token terms
// extrapolate linearly past 1. The per-image terms (Y-cache kv_all) stay at
// the profiled size — an approximation; wall-clock serving prices
// resolutions with per-grid profiled fits instead (sched::LatencyModel).
double FlopsYCacheBlock(double tokens, double hidden, double mask_ratio,
                        double layers) {
  assert(mask_ratio >= 0.0);
  const double kv_all = 4.0 * tokens * hidden * hidden;
  const double q_and_out = 4.0 * mask_ratio * tokens * hidden * hidden;
  const double attn = 4.0 * mask_ratio * tokens * tokens * hidden;
  const double ff = 16.0 * mask_ratio * tokens * hidden * hidden;
  return layers * (kv_all + q_and_out + attn + ff);
}

double FlopsKvCacheBlock(double tokens, double hidden, double mask_ratio,
                         double layers) {
  assert(mask_ratio >= 0.0);
  const double proj = 8.0 * mask_ratio * tokens * hidden * hidden;
  const double attn = 4.0 * mask_ratio * tokens * tokens * hidden;
  const double ff = 16.0 * mask_ratio * tokens * hidden * hidden;
  return layers * (proj + attn + ff);
}

double FlopsYCacheGatheredBlock(double tokens, double hidden,
                                double mask_ratio, double layers) {
  // Identical cost structure to the K/V-cache mode: the gathered path
  // replenishes K/V from the cache instead of recomputing them.
  return FlopsKvCacheBlock(tokens, hidden, mask_ratio, layers);
}

double FlopsSparseBlock(double tokens, double hidden, double mask_ratio,
                        double layers) {
  assert(mask_ratio >= 0.0);
  const double proj = 8.0 * mask_ratio * tokens * hidden * hidden;
  const double attn = 4.0 * mask_ratio * mask_ratio * tokens * tokens * hidden;
  const double ff = 16.0 * mask_ratio * tokens * hidden * hidden;
  return layers * (proj + attn + ff);
}

uint64_t YCacheLoadBytes(int tokens, int hidden, double mask_ratio,
                         int bytes_per_elem) {
  const double rows = (1.0 - mask_ratio) * tokens;
  return static_cast<uint64_t>(std::llround(rows)) *
         static_cast<uint64_t>(hidden) * static_cast<uint64_t>(bytes_per_elem);
}

uint64_t YCacheStoreBytes(int tokens, int hidden, int bytes_per_elem) {
  return static_cast<uint64_t>(tokens) * static_cast<uint64_t>(hidden) *
         static_cast<uint64_t>(bytes_per_elem);
}

uint64_t KvCacheLoadBytes(int tokens, int hidden, double mask_ratio,
                          int bytes_per_elem) {
  return 2 * YCacheLoadBytes(tokens, hidden, mask_ratio, bytes_per_elem);
}

uint64_t KvCacheStoreBytes(int tokens, int hidden, int bytes_per_elem) {
  return 2 * YCacheStoreBytes(tokens, hidden, bytes_per_elem);
}

uint64_t GatheredCacheLoadBytes(int tokens, int hidden, double mask_ratio,
                                int bytes_per_elem) {
  return 3 * YCacheLoadBytes(tokens, hidden, mask_ratio, bytes_per_elem);
}

uint64_t GatheredCacheStoreBytes(int tokens, int hidden, int bytes_per_elem) {
  return 3 * YCacheStoreBytes(tokens, hidden, bytes_per_elem);
}

}  // namespace flashps::model
