// Transformer-block numerics: real float math for every compute flow in the
// paper's Fig. 5 / Fig. 7. Quality and similarity experiments run on these;
// timing experiments use the analytic accounting in timing.h.
#ifndef FLASHPS_SRC_MODEL_TRANSFORMER_H_
#define FLASHPS_SRC_MODEL_TRANSFORMER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/tensor/matrix.h"
#include "src/trace/workload.h"

namespace flashps::model {

// Weights of one pre-norm transformer block (single attention head; the
// FLOP structure is head-count independent).
struct BlockWeights {
  Matrix wq, wk, wv, wo;           // hidden x hidden
  Matrix w1;                       // hidden x 4*hidden
  Matrix w2;                       // 4*hidden x hidden
  std::vector<float> ln1_gamma, ln1_beta;
  std::vector<float> ln2_gamma, ln2_beta;

  static BlockWeights Random(int hidden, Rng& rng);
};

// Distance-decay additive attention bias over an h x w token grid:
// bias(i, j) = -strength * euclidean_distance(grid(i), grid(j)).
//
// Stands in for the attention locality of trained editing models: the paper
// observes (Fig. 6-Right, and OOTDiffusion reports the same) that masked
// tokens attend mostly to masked tokens and unmasked to unmasked, which is
// what makes cached-activation reuse accurate.
Matrix MakeDistanceBias(int grid_h, int grid_w, float strength);

// Y activations (and optionally K/V) of each block for one denoising step.
struct StepActivations {
  std::vector<Matrix> y;  // Per block: tokens x hidden.
  std::vector<Matrix> k;  // Filled only when K/V recording is on.
  std::vector<Matrix> v;
};

// Full computation of one block (Fig. 5-Top). If `k_out`/`v_out` are
// non-null, the projected K/V are copied out for KV-cache registration.
Matrix BlockForwardFull(const BlockWeights& w, const Matrix& x,
                        const Matrix& attn_bias, Matrix* k_out = nullptr,
                        Matrix* v_out = nullptr);

// Mask-aware flow with cached Y (Fig. 5-Bottom): K/V are recomputed for all
// tokens from the replenished input, Q/attention/FF run on masked rows only,
// and the unmasked rows of the output are replenished from `cached_y`.
Matrix BlockForwardMaskedY(const BlockWeights& w, const Matrix& x,
                           const Matrix& attn_bias, const trace::Mask& mask,
                           const Matrix& cached_y);

// Mask-aware flow with cached K/V (Fig. 7 alternative): unmasked K/V rows
// come from the cache instead of being recomputed; everything else runs on
// masked rows only. Output unmasked rows are replenished from `cached_y`.
Matrix BlockForwardMaskedKV(const BlockWeights& w, const Matrix& x,
                            const Matrix& attn_bias, const trace::Mask& mask,
                            const Matrix& cached_y, const Matrix& cached_k,
                            const Matrix& cached_v);

// FISEdit-style sparse flow: input holds masked rows only; attention spans
// only those rows (`masked_bias` is the gathered bias submatrix). No global
// context is available — this is what distorts its outputs.
Matrix BlockForwardSparse(const BlockWeights& w, const Matrix& x_masked,
                          const Matrix& masked_bias);

// Post-softmax attention matrix of a block (for the Fig. 6 analysis).
Matrix AttentionMatrix(const BlockWeights& w, const Matrix& x,
                       const Matrix& attn_bias);

}  // namespace flashps::model

#endif  // FLASHPS_SRC_MODEL_TRANSFORMER_H_
