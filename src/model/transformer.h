// Transformer-block numerics: real float math for every compute flow in the
// paper's Fig. 5 / Fig. 7. Quality and similarity experiments run on these;
// timing experiments use the analytic accounting in timing.h.
#ifndef FLASHPS_SRC_MODEL_TRANSFORMER_H_
#define FLASHPS_SRC_MODEL_TRANSFORMER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/tensor/matrix.h"
#include "src/trace/workload.h"

namespace flashps::model {

// Weights of one pre-norm transformer block (single attention head; the
// FLOP structure is head-count independent).
struct BlockWeights {
  Matrix wq, wk, wv, wo;           // hidden x hidden
  Matrix w1;                       // hidden x 4*hidden
  Matrix w2;                       // 4*hidden x hidden
  std::vector<float> ln1_gamma, ln1_beta;
  std::vector<float> ln2_gamma, ln2_beta;

  static BlockWeights Random(int hidden, Rng& rng);
};

// Distance-decay additive attention bias over an h x w token grid:
// bias(i, j) = -strength * euclidean_distance(grid(i), grid(j)).
//
// Stands in for the attention locality of trained editing models: the paper
// observes (Fig. 6-Right, and OOTDiffusion reports the same) that masked
// tokens attend mostly to masked tokens and unmasked to unmasked, which is
// what makes cached-activation reuse accurate.
Matrix MakeDistanceBias(int grid_h, int grid_w, float strength);

// Y activations (and optionally K/V) of each block for one denoising step.
struct StepActivations {
  std::vector<Matrix> y;  // Per block: tokens x hidden.
  std::vector<Matrix> k;  // Filled only when K/V recording is on.
  std::vector<Matrix> v;
};

// Compute-cost summary (L = tokens, m = mask ratio; see flops.h for the
// exact Table 1 formulas):
//   BlockForwardFull           O(L)    — every token, every op.
//   BlockForwardMaskedY        O(L)+O(m·L) — the K/V projections and the
//                              first LayerNorm span all L tokens; only
//                              Q/attention/FF are proportional to m.
//   BlockForwardMaskedKV       O(m·L)  — all GEMMs on masked rows, at the
//                              price of a 2x cache record.
//   BlockForwardMaskedGathered O(m·L)  — the sparse compute path: every
//                              GEMM runs on a gathered dense panel of the
//                              masked rows; unmasked K/V/Y rows are
//                              replenished from the cache.
//   BlockForwardSparse         O(m·L + m^2·L^2/H·…) — FISEdit: masked rows
//                              only, no global attention context.
// Attention scores are (m·L x L) in every mask-aware flow — masked queries
// attend to ALL tokens — so the attention term is O(m·L·L) throughout.

// Full computation of one block (Fig. 5-Top). If `k_out`/`v_out` are
// non-null, the projected K/V are copied out for KV-cache registration.
Matrix BlockForwardFull(const BlockWeights& w, const Matrix& x,
                        const Matrix& attn_bias, Matrix* k_out = nullptr,
                        Matrix* v_out = nullptr);

// Mask-aware flow with cached Y (Fig. 5-Bottom): K/V are recomputed for all
// tokens from the replenished input, Q/attention/FF run on masked rows only,
// and the unmasked rows of the output are replenished from `cached_y`.
// Compute is O(L): the two K/V projections (4LH^2 FLOPs) dominate at small
// mask ratios. The gathered variant below removes exactly that term.
Matrix BlockForwardMaskedY(const BlockWeights& w, const Matrix& x,
                           const Matrix& attn_bias, const trace::Mask& mask,
                           const Matrix& cached_y);

// Mask-aware flow with cached K/V (Fig. 7 alternative): unmasked K/V rows
// come from the cache instead of being recomputed; everything else runs on
// masked rows only. Output unmasked rows are replenished from `cached_y`.
// Compute is O(m·L).
Matrix BlockForwardMaskedKV(const BlockWeights& w, const Matrix& x,
                            const Matrix& attn_bias, const trace::Mask& mask,
                            const Matrix& cached_y, const Matrix& cached_k,
                            const Matrix& cached_v);

// Gathered-panel sparse compute path (SIGE's gather→GEMM→scatter applied to
// the mask-aware flows): the masked rows are gathered into a dense panel,
// every GEMM (LayerNorm, Q, K, V, FF) runs on that panel with the blocked
// kernels, and the unmasked rows of K, V and the output are replenished
// from the cache. Compute is O(m·L) — proportional to the mask ratio.
//
// Bitwise guarantees (sparse_compute's gate in diffusion_model.cc):
//  - vs BlockForwardMaskedKV: identical for ANY input — it is the same
//    computation with the gather/scatter fused into the GEMMs.
//  - vs BlockForwardMaskedY: identical exactly when the unmasked rows of
//    `x` equal the registration pass's input at this step/block (the
//    "replenish invariant"): then the K/V rows the dense flow recomputes
//    are bit-for-bit the cached registration rows, because LayerNorm is
//    row-wise and the blocked GEMM computes each row independently of the
//    others (see MatMulRows in src/tensor/matrix.h).
Matrix BlockForwardMaskedGathered(const BlockWeights& w, const Matrix& x,
                                  const Matrix& attn_bias,
                                  const trace::Mask& mask,
                                  const Matrix& cached_y,
                                  const Matrix& cached_k,
                                  const Matrix& cached_v);

// One request's slice of a cross-request patch panel (the patch-granular
// hybrid-resolution batching unit). Requests may differ in grid size —
// `x`, `attn_bias` and the cached activations are per-request shapes —
// but must share the block's hidden width.
struct GatheredBatchItem {
  const Matrix* x = nullptr;          // tokens_i x hidden (latent + temb).
  const Matrix* attn_bias = nullptr;  // tokens_i x tokens_i.
  const trace::Mask* mask = nullptr;  // Ascending masked token list.
  const Matrix* cached_y = nullptr;   // Registration activations, this block.
  const Matrix* cached_k = nullptr;
  const Matrix* cached_v = nullptr;
  Matrix* y = nullptr;                // Out: tokens_i x hidden.
};

// Cross-request batched form of BlockForwardMaskedGathered: the masked rows
// of EVERY item are gathered into ONE dense panel (per-row source offsets
// across requests, via GatherRowsMulti), all token-wise GEMMs — LayerNorm,
// Q/K/V projections, the wo projection, the feed-forward — run once on that
// panel, and results scatter back per item. Attention stays per-item (its
// scores are (m_i x L_i) against the item's own token length and bias), so
// only the token-wise work batches — exactly the PatchedServe framing.
//
// Each item's written `y` is bitwise-identical to what a solo
// BlockForwardMaskedGathered call on that item would produce, at ANY
// composition of the batch: the blocked GEMM computes every output row from
// its own A row alone in a fixed k-blocked accumulation order (see
// MatMulRows in src/tensor/matrix.h), and LayerNorm/GeLU/Add are row- or
// element-wise — so which other requests' rows share the panel never
// changes a bit. This is the property the degenerate-mixture gate in
// bench_hybrid_resolution asserts end to end.
//
// Items may alias nothing with each other; every item needs a K/V-bearing
// cache record. Empty-mask items are legal (their y is the cached_y copy).
void BlockForwardMaskedGatheredBatch(const BlockWeights& w,
                                     const std::vector<GatheredBatchItem>& items);

// FISEdit-style sparse flow: input holds masked rows only; attention spans
// only those rows (`masked_bias` is the gathered bias submatrix). No global
// context is available — this is what distorts its outputs.
Matrix BlockForwardSparse(const BlockWeights& w, const Matrix& x_masked,
                          const Matrix& masked_bias);

// Post-softmax attention matrix of a block (for the Fig. 6 analysis).
// Compute is O(L) — it exists for offline analysis, not serving.
Matrix AttentionMatrix(const BlockWeights& w, const Matrix& x,
                       const Matrix& attn_bias);

}  // namespace flashps::model

#endif  // FLASHPS_SRC_MODEL_TRANSFORMER_H_
