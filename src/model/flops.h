// FLOP and cache-size accounting for transformer blocks under each compute
// policy. This is Table 1 of the paper made executable: per-op costs are
// linear in the mask ratio m, speedup is 1/m, and the cached activation for
// a block has shape (B, (1-m)*L, H).
//
// Conventions: one multiply-add counts as 2 FLOPs; L = token length,
// H = hidden dim, m = mask ratio in (0, 1]. The feed-forward expands to 4H.
// `layers` scales the cost when one cached block-group stands for several
// consecutive real layers (caching happens at group granularity, §4.2).
#ifndef FLASHPS_SRC_MODEL_FLOPS_H_
#define FLASHPS_SRC_MODEL_FLOPS_H_

#include <cstdint>

namespace flashps::model {

// Full computation: QKV+output projections (8LH^2), attention scores and
// value aggregation (4L^2H), feed-forward (16LH^2). O(L): every term spans
// all tokens.
double FlopsFullBlock(double tokens, double hidden, double layers = 1.0);

// Mask-aware with cached Y activations (paper Fig. 5-Bottom): K and V are
// recomputed for all tokens from the replenished input, Q / output projection
// / feed-forward run on masked tokens only, attention scores are
// (mL x L): 4LH^2 + (4m)LH^2 + 16mLH^2 + 4mL^2H. O(L), not O(m·L): the
// 4LH^2 K/V term is mask-independent and dominates as m -> 0, which is why
// the gathered path below exists.
double FlopsYCacheBlock(double tokens, double hidden, double mask_ratio,
                        double layers = 1.0);

// Mask-aware with cached K and V (paper Fig. 7 alternative): all projections
// and the feed-forward run on masked tokens only; attention still spans all
// tokens: 24mLH^2 + 4mL^2H. Pure 1/m on the token-wise ops, at the price of
// a 2x larger cache.
double FlopsKvCacheBlock(double tokens, double hidden, double mask_ratio,
                         double layers = 1.0);

// Gathered-panel sparse compute path over the Y-cache mode (SIGE-style
// gather→GEMM→scatter, see BlockForwardMaskedGathered): the 4LH^2 K/V
// recompute of FlopsYCacheBlock disappears — unmasked K/V rows are
// replenished from the cache — leaving exactly the K/V-cache cost,
// 24mLH^2 + 4mL^2H. Every term is O(m·L); this is what makes step compute
// proportional to the mask ratio. The price is loading 3x the Y-only
// cache bytes (Y + K + V rows of the unmasked tokens).
double FlopsYCacheGatheredBlock(double tokens, double hidden,
                                double mask_ratio, double layers = 1.0);

// FISEdit-style sparse computation: masked tokens only, attending only to
// each other (no global context): 24mLH^2 + 4m^2L^2H.
double FlopsSparseBlock(double tokens, double hidden, double mask_ratio,
                        double layers = 1.0);

// Bytes of cached activations *loaded* per block per denoising step for one
// request: the unmasked (1-m)*L rows of one Y matrix.
uint64_t YCacheLoadBytes(int tokens, int hidden, double mask_ratio,
                         int bytes_per_elem);

// Bytes *stored* per block per step for a template (all L rows, so any
// request's unmasked subset can be served).
uint64_t YCacheStoreBytes(int tokens, int hidden, int bytes_per_elem);

// KV alternative loads/stores two matrices instead of one.
uint64_t KvCacheLoadBytes(int tokens, int hidden, double mask_ratio,
                          int bytes_per_elem);
uint64_t KvCacheStoreBytes(int tokens, int hidden, int bytes_per_elem);

// Gathered Y-mode path loads/stores three matrices (Y, K, V): the Y rows
// that replenish the block output plus the K/V rows that replenish the
// projections the dense Y-mode flow would recompute.
uint64_t GatheredCacheLoadBytes(int tokens, int hidden, double mask_ratio,
                                int bytes_per_elem);
uint64_t GatheredCacheStoreBytes(int tokens, int hidden, int bytes_per_elem);

}  // namespace flashps::model

#endif  // FLASHPS_SRC_MODEL_FLOPS_H_
