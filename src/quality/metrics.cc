#include "src/quality/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/rng.h"

namespace flashps::quality {

namespace {

std::vector<double> GaussianKernel1D(int size, double sigma) {
  std::vector<double> k(size);
  const double mid = (size - 1) / 2.0;
  double sum = 0.0;
  for (int i = 0; i < size; ++i) {
    k[i] = std::exp(-(i - mid) * (i - mid) / (2.0 * sigma * sigma));
    sum += k[i];
  }
  for (double& v : k) {
    v /= sum;
  }
  return k;
}

}  // namespace

double Ssim(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  const int h = a.rows();
  const int w = a.cols();
  const int win = std::min({11, h, w});
  const std::vector<double> kernel = GaussianKernel1D(win, 1.5);

  constexpr double kC1 = 0.01 * 0.01;  // (K1 * L)^2 with L = 1.
  constexpr double kC2 = 0.03 * 0.03;

  double total = 0.0;
  int count = 0;
  for (int r = 0; r + win <= h; ++r) {
    for (int c = 0; c + win <= w; ++c) {
      double mu_a = 0.0;
      double mu_b = 0.0;
      double aa = 0.0;
      double bb = 0.0;
      double ab = 0.0;
      for (int i = 0; i < win; ++i) {
        for (int j = 0; j < win; ++j) {
          const double wgt = kernel[i] * kernel[j];
          const double va = a.at(r + i, c + j);
          const double vb = b.at(r + i, c + j);
          mu_a += wgt * va;
          mu_b += wgt * vb;
          aa += wgt * va * va;
          bb += wgt * vb * vb;
          ab += wgt * va * vb;
        }
      }
      const double var_a = aa - mu_a * mu_a;
      const double var_b = bb - mu_b * mu_b;
      const double cov = ab - mu_a * mu_b;
      const double num = (2.0 * mu_a * mu_b + kC1) * (2.0 * cov + kC2);
      const double den =
          (mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2);
      total += num / den;
      ++count;
    }
  }
  return count == 0 ? 1.0 : total / count;
}

double Psnr(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double mse = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.size());
  if (mse < 1e-12) {
    return 99.0;
  }
  return 10.0 * std::log10(1.0 / mse);
}

FeatureExtractor::FeatureExtractor(int patch, int stride, int dims,
                                   uint64_t seed)
    : patch_(patch), stride_(stride), dims_(dims) {
  Rng rng(seed);
  weights_ = Matrix(patch * patch, dims);
  weights_.FillNormal(rng, 1.0f / std::sqrt(static_cast<float>(patch)));
}

std::vector<std::vector<double>> FeatureExtractor::Extract(
    const Matrix& image) const {
  std::vector<std::vector<double>> features;
  for (int r = 0; r + patch_ <= image.rows(); r += stride_) {
    for (int c = 0; c + patch_ <= image.cols(); c += stride_) {
      std::vector<double> f(dims_, 0.0);
      for (int i = 0; i < patch_; ++i) {
        for (int j = 0; j < patch_; ++j) {
          const float v = image.at(r + i, c + j);
          const float* wrow = weights_.row(i * patch_ + j);
          for (int d = 0; d < dims_; ++d) {
            f[d] += v * wrow[d];
          }
        }
      }
      for (double& v : f) {
        v = std::tanh(v);  // Mild nonlinearity, as in learned features.
      }
      features.push_back(std::move(f));
    }
  }
  return features;
}

FeatureStats ComputeFeatureStats(const std::vector<Matrix>& images,
                                 const FeatureExtractor& extractor) {
  const int d = extractor.dims();
  FeatureStats stats;
  stats.mean.assign(d, 0.0);
  stats.cov.assign(d, std::vector<double>(d, 0.0));

  size_t n = 0;
  std::vector<std::vector<double>> all;
  for (const Matrix& img : images) {
    auto fs = extractor.Extract(img);
    n += fs.size();
    for (auto& f : fs) {
      for (int i = 0; i < d; ++i) {
        stats.mean[i] += f[i];
      }
      all.push_back(std::move(f));
    }
  }
  assert(n > 1);
  for (double& m : stats.mean) {
    m /= static_cast<double>(n);
  }
  for (const auto& f : all) {
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        stats.cov[i][j] += (f[i] - stats.mean[i]) * (f[j] - stats.mean[j]);
      }
    }
  }
  for (auto& row : stats.cov) {
    for (double& v : row) {
      v /= static_cast<double>(n - 1);
    }
  }
  return stats;
}

void SymmetricEigen(const std::vector<std::vector<double>>& m,
                    std::vector<double>& eigenvalues,
                    std::vector<std::vector<double>>& eigenvectors) {
  const int n = static_cast<int>(m.size());
  std::vector<std::vector<double>> a = m;
  eigenvectors.assign(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    eigenvectors[i][i] = 1.0;
  }

  // Cyclic Jacobi rotations.
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        off += a[p][q] * a[p][q];
      }
    }
    if (off < 1e-20) {
      break;
    }
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (std::abs(a[p][q]) < 1e-15) {
          continue;
        }
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = eigenvectors[k][p];
          const double vkq = eigenvectors[k][q];
          eigenvectors[k][p] = c * vkp - s * vkq;
          eigenvectors[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  eigenvalues.resize(n);
  for (int i = 0; i < n; ++i) {
    eigenvalues[i] = a[i][i];
  }
}

std::vector<std::vector<double>> SymmetricSqrt(
    const std::vector<std::vector<double>>& m) {
  const int n = static_cast<int>(m.size());
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  SymmetricEigen(m, evals, evecs);
  std::vector<std::vector<double>> out(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) {
        const double root = std::sqrt(std::max(0.0, evals[k]));
        acc += evecs[i][k] * root * evecs[j][k];
      }
      out[i][j] = acc;
    }
  }
  return out;
}

double FrechetDistance(const FeatureStats& a, const FeatureStats& b) {
  const int n = static_cast<int>(a.mean.size());
  assert(static_cast<int>(b.mean.size()) == n);

  double mean_dist = 0.0;
  for (int i = 0; i < n; ++i) {
    mean_dist += (a.mean[i] - b.mean[i]) * (a.mean[i] - b.mean[i]);
  }

  // tr(S1 + S2 - 2*sqrt(sqrt(S1) S2 sqrt(S1))).
  const auto sqrt_a = SymmetricSqrt(a.cov);
  std::vector<std::vector<double>> inner(n, std::vector<double>(n, 0.0));
  // inner = sqrt_a * b.cov * sqrt_a (symmetric by construction).
  std::vector<std::vector<double>> tmp(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) {
        acc += sqrt_a[i][k] * b.cov[k][j];
      }
      tmp[i][j] = acc;
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) {
        acc += tmp[i][k] * sqrt_a[k][j];
      }
      inner[i][j] = acc;
    }
  }
  // Symmetrize against numerical drift before the final root.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (inner[i][j] + inner[j][i]);
      inner[i][j] = avg;
      inner[j][i] = avg;
    }
  }
  const auto root = SymmetricSqrt(inner);

  double trace = 0.0;
  for (int i = 0; i < n; ++i) {
    trace += a.cov[i][i] + b.cov[i][i] - 2.0 * root[i][i];
  }
  return std::max(0.0, mean_dist + trace);
}

double FidScore(const std::vector<Matrix>& candidates,
                const std::vector<Matrix>& references) {
  const FeatureExtractor extractor;
  const FeatureStats a = ComputeFeatureStats(candidates, extractor);
  const FeatureStats b = ComputeFeatureStats(references, extractor);
  // Scaled into the familiar FID numeric range.
  return 1000.0 * FrechetDistance(a, b);
}

double ClipProxyScore(const Matrix& image, const Matrix& prompt_texture,
                      const trace::Mask& mask, int patch) {
  assert(image.rows() == prompt_texture.rows() &&
         image.cols() == prompt_texture.cols());
  // Correlation over the masked pixels only: the edit must realize the
  // prompt inside the mask (the unmasked region is template-constrained).
  double sa = 0.0;
  double sb = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  double sab = 0.0;
  int n = 0;
  for (const int t : mask.masked_tokens) {
    const int gr = t / mask.grid_w;
    const int gc = t % mask.grid_w;
    for (int i = 0; i < patch; ++i) {
      for (int j = 0; j < patch; ++j) {
        const double va = image.at(gr * patch + i, gc * patch + j);
        const double vb = prompt_texture.at(gr * patch + i, gc * patch + j);
        sa += va;
        sb += vb;
        saa += va * va;
        sbb += vb * vb;
        sab += va * vb;
        ++n;
      }
    }
  }
  if (n < 2) {
    return 0.0;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  const double corr = cov / std::sqrt(std::max(1e-12, var_a * var_b));
  // Map [-1, 1] correlation into a CLIP-score-like range around ~30.
  return 16.0 * (1.0 + corr);
}

}  // namespace flashps::quality
