// Image-quality metrics used by the Table 2 reproduction.
//
// SSIM is the standard Wang et al. 2004 formulation (11x11 Gaussian window,
// sigma 1.5, K1=0.01, K2=0.03). FID substitutes the trained Inception
// features with a fixed seeded random patch-feature extractor and computes
// the exact Frechet distance between the Gaussian statistics of two image
// sets. The CLIP proxy scores prompt alignment as the local correlation of
// the edited region against the prompt's decoded texture. All systems are
// scored by the same fixed extractors against the same references, so the
// *orderings* the paper's Table 2 compares are preserved (see DESIGN.md).
#ifndef FLASHPS_SRC_QUALITY_METRICS_H_
#define FLASHPS_SRC_QUALITY_METRICS_H_

#include <vector>

#include "src/tensor/matrix.h"
#include "src/trace/workload.h"

namespace flashps::quality {

// Mean SSIM between two grayscale images in [0, 1] (same shape). Uses the
// standard 11x11 Gaussian window where the image allows, shrinking it for
// very small images.
double Ssim(const Matrix& a, const Matrix& b);

// Peak signal-to-noise ratio in dB for images in [0, 1] (peak = 1).
// Returns +inf-ish (capped at 99 dB) for identical images.
double Psnr(const Matrix& a, const Matrix& b);

// Fixed random patch-feature extractor: overlapping patches -> feature
// vectors. Deterministic across processes.
class FeatureExtractor {
 public:
  FeatureExtractor(int patch = 8, int stride = 4, int dims = 12,
                   uint64_t seed = 0xFEA7);

  // One feature vector per patch position.
  std::vector<std::vector<double>> Extract(const Matrix& image) const;
  int dims() const { return dims_; }

 private:
  int patch_;
  int stride_;
  int dims_;
  Matrix weights_;  // (patch*patch) x dims
};

// Gaussian statistics of a set of images under an extractor.
struct FeatureStats {
  std::vector<double> mean;              // dims
  std::vector<std::vector<double>> cov;  // dims x dims
};

FeatureStats ComputeFeatureStats(const std::vector<Matrix>& images,
                                 const FeatureExtractor& extractor);

// Frechet distance between two Gaussians:
// |mu1-mu2|^2 + tr(S1 + S2 - 2*(S1^1/2 S2 S1^1/2)^1/2).
double FrechetDistance(const FeatureStats& a, const FeatureStats& b);

// Convenience: FID-style score between a candidate image set and a
// reference image set using the default extractor.
double FidScore(const std::vector<Matrix>& candidates,
                const std::vector<Matrix>& references);

// CLIP-proxy: alignment between the edited (masked) region of `image` and
// the prompt's texture rendered through the same decoder,
// as mean local correlation mapped to the familiar 0-100-ish CLIP range.
// `prompt_texture` must have the same shape as `image`; `mask` gives the
// token grid and patch size `patch` maps tokens to pixels.
double ClipProxyScore(const Matrix& image, const Matrix& prompt_texture,
                      const trace::Mask& mask, int patch);

// Symmetric-matrix helpers (exposed for tests).
// Jacobi eigendecomposition of a symmetric matrix: fills eigenvalues and the
// orthonormal eigenvector matrix (columns).
void SymmetricEigen(const std::vector<std::vector<double>>& m,
                    std::vector<double>& eigenvalues,
                    std::vector<std::vector<double>>& eigenvectors);

// Principal square root of a symmetric positive semi-definite matrix.
std::vector<std::vector<double>> SymmetricSqrt(
    const std::vector<std::vector<double>>& m);

}  // namespace flashps::quality

#endif  // FLASHPS_SRC_QUALITY_METRICS_H_
