// The federated front tier: a net::WireFrontend that fulfils submits by
// proxying them to a fleet of flashps_served nodes over the same wire
// protocol the nodes speak to ordinary clients.
//
// Control plane (NodeRegistry): explicit join/leave, heartbeat probes
// driving alive/suspect/dead, per-node circuit breakers, and per-node
// profiled latency models fetched from each node's MetricsJson at join
// time. Data plane: every accepted submit becomes a Ticket carrying its
// full WireRequest; a router (FedRouter, all five RoutePolicy values)
// assigns it a node, and per-node dispatcher threads — each owning one
// pipelined net::Client connection — drain the node's queue.
//
// Failover: a dispatch that fails in transport (connect refused, timeout,
// mid-call EOF from a killed daemon) re-routes the ticket to a sibling,
// excluding the failed node; the registry's on-dead callback re-routes a
// dead node's whole queue at once. Because node outputs are bitwise
// deterministic in (template, mask, seed, numerics) regardless of which
// machine runs them, a re-dispatched request returns the identical latent
// checksum it would have produced on the original node — failover is
// invisible to the client beyond latency. A ticket only fails after
// max_attempts transport failures; when no node is routable it parks and
// is flushed by the next on-alive transition.
//
// MetricsJson() answers with the cluster rollup: federation counters
// under "fed" plus a per-node "members" array (same shape the cache
// ring's members report) with each node's own MetricsJson spliced in.
#ifndef FLASHPS_SRC_FED_FED_GATEWAY_H_
#define FLASHPS_SRC_FED_FED_GATEWAY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/fed/fed_router.h"
#include "src/fed/node_registry.h"
#include "src/model/timing.h"
#include "src/net/frontend.h"
#include "src/net/wire.h"

namespace flashps::fed {

struct FedGatewayOptions {
  std::vector<FedNode> nodes;
  sched::RoutePolicy policy = sched::RoutePolicy::kMaskAware;
  model::TimingConfig timing = model::TimingConfig::Get(model::ModelKind::kSdxl);
  bool mask_aware = true;
  NodeRegistryOptions registry;
  // Dispatcher threads (= wire connections) per node.
  int connections_per_node = 2;
  // Per-dispatch reply deadline; a node slower than this is a transport
  // failure and the ticket fails over.
  std::chrono::milliseconds call_timeout{30000};
  // Transport failures before a ticket is failed. 0 = 3 * fleet size.
  int max_attempts = 0;
  // Fallback per-request overhead (seconds) for nodes without a profile.
  double default_overhead_s = 0.0;
  // Shared secret presented to every node.
  std::string auth_token;
};

class FedGateway : public net::WireFrontend {
 public:
  explicit FedGateway(FedGatewayOptions options);
  ~FedGateway() override;

  FedGateway(const FedGateway&) = delete;
  FedGateway& operator=(const FedGateway&) = delete;

  // Joins the configured nodes, starts the heartbeat prober and the
  // dispatcher threads. Call once before serving.
  void Start();
  // Stops accepting new submits; queued/in-flight work keeps draining.
  void StopAccepting();
  // Blocks until no ticket is queued, parked, or in flight. False if the
  // fleet could not drain within `timeout` (e.g. every node dead).
  bool Drain(std::chrono::milliseconds timeout = std::chrono::milliseconds(30000));
  // Stops dispatchers and the prober; fails any leftover tickets.
  void Stop();

  // WireFrontend. Submit is called from the TCP poll thread and must not
  // block on the fleet: it routes (or parks) and returns a completion.
  net::WireSubmission Submit(net::WireRequest request) override;
  std::string MetricsJson() override;

  NodeRegistry& registry() { return registry_; }

  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;       // Tickets fulfilled with kAccepted.
    uint64_t failed = 0;          // Tickets failed after max_attempts.
    uint64_t redispatched = 0;    // Failover re-routes.
    uint64_t rejected_by_node = 0;  // Node answered with a rejection.
    uint64_t parked = 0;          // Currently parked (no routable node).
    uint64_t outstanding = 0;     // Queued + in flight right now.
  };
  Stats stats() const;

 private:
  struct Ticket {
    uint64_t id = 0;
    net::WireRequest request;  // Kept whole for redispatch.
    double mask_ratio = 0.0;
    // The request's latent grid, so routing can token-scale its cost
    // against each node's profiled primary resolution.
    int grid_h = 0;
    int grid_w = 0;
    int denoise_steps = 50;
    int attempts = 0;
    int node = -1;
    std::promise<net::WireResponse> promise;
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  // Routes `ticket` to a node queue (or parks it). `exclude` = node index
  // to skip (the one that just failed), or -1. Caller holds mu_.
  int RouteTicketLocked(const TicketPtr& ticket, int exclude);
  // Builds the router's fleet view from the registry plus this
  // federation's own outstanding tickets. Caller holds mu_.
  std::vector<NodeSnapshot> SnapshotLocked(int exclude) const;
  // Resolves a ticket with a terminal transport failure. Caller holds mu_.
  void FailTicketLocked(const TicketPtr& ticket);
  void DispatcherLoop(int node);
  void OnNodeDead(int node);
  void OnNodeAlive(int node);
  int max_attempts() const;

  FedGatewayOptions options_;
  NodeRegistry registry_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  FedRouter router_;
  std::vector<std::deque<TicketPtr>> queues_;       // Per node.
  std::vector<std::map<uint64_t, TicketPtr>> inflight_;  // Per node.
  std::deque<TicketPtr> parked_;
  uint64_t next_id_ = 1;
  bool draining_ = false;
  bool stopped_ = false;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t redispatched_ = 0;
  uint64_t rejected_by_node_ = 0;

  std::vector<std::thread> dispatchers_;
  bool started_ = false;
};

}  // namespace flashps::fed

#endif  // FLASHPS_SRC_FED_FED_GATEWAY_H_
