// Fleet membership and health for the federated front tier (src/fed).
//
// The registry tracks a set of flashps_served nodes with explicit
// join/leave, drives per-node health (alive / suspect / dead) from
// periodic heartbeat probes — metrics frames with a short deadline, the
// same liveness signal the cache ring's ProbeMembers uses — and keeps a
// per-node circuit breaker fed by dispatch-path transport failures, so a
// node that stops answering submits stops receiving them before the
// prober has even noticed.
//
// At join time (and again on revival) the registry fetches the node's
// MetricsJson and rebuilds the node's own profiled LatencyModel from the
// "latency_model" splice, so the cross-machine Algorithm-2 router prices
// each node with that node's hardware line rather than a local guess.
//
// Health state machine, driven only by probe outcomes:
//
//   alive  --miss x suspect_after-->  suspect  --miss x dead_after--> dead
//   (any)  --probe answered-------->  alive    (refreshes the profile)
//
// Transitions to dead fire the on_dead callback (outside the registry
// lock) — the federated gateway uses it to re-route the dead node's
// queued work; transitions back to alive fire on_alive, which flushes
// requests parked while the whole fleet was unreachable.
#ifndef FLASHPS_SRC_FED_NODE_REGISTRY_H_
#define FLASHPS_SRC_FED_NODE_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/model/timing.h"
#include "src/net/client.h"
#include "src/sched/latency_model.h"

namespace flashps::fed {

struct FedNode {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string id() const { return host + ":" + std::to_string(port); }
};

enum class NodeHealth {
  kAlive,
  kSuspect,  // Missed probes, not yet written off; still routable.
  kDead,     // Written off; unroutable until a probe answers again.
};

std::string ToString(NodeHealth health);

struct NodeRegistryOptions {
  std::chrono::milliseconds probe_interval{200};
  // Per-probe reply deadline; a heartbeat slower than this is a miss.
  std::chrono::milliseconds probe_timeout{250};
  int suspect_after = 2;  // Consecutive misses before suspect.
  int dead_after = 4;     // Consecutive misses before dead.
  // Circuit breaker: consecutive dispatch-path transport failures against
  // one node open that node's circuit (unroutable) for the cooldown.
  int max_consecutive_dispatch_failures = 3;
  std::chrono::milliseconds circuit_cooldown{1000};
  // Transport knobs for probe/join connections.
  int connect_attempts = 2;
  std::chrono::milliseconds connect_backoff{50};
  // Shared secret presented to every node (see ClientOptions::auth_token).
  std::string auth_token;
  // Local timing config the fetched regression coefficients are rebuilt
  // over (the fleet serves one model family, so the block geometry is
  // shared; only the fitted lines are per-node).
  model::TimingConfig timing = model::TimingConfig::Get(model::ModelKind::kSdxl);
  bool mask_aware = true;
};

// Per-node view the gateway reads when building router snapshots.
struct NodeInfo {
  FedNode node;
  NodeHealth health = NodeHealth::kAlive;
  bool left = false;
  bool routable = false;
  bool circuit_open = false;
  bool profile_loaded = false;
  // Whether the node's gateway advertised the gathered sparse compute path
  // ("sparse_compute" in its latency_model splice). Informational for
  // fleet-consistency checks: a mixed fleet still routes correctly because
  // each node is priced by its own fitted line.
  bool sparse_compute = false;
  int workers = 1;
  int max_batch = 4;
  double per_request_overhead_s = 0.0;
  uint64_t probes_ok = 0;
  uint64_t probes_missed = 0;
  uint64_t dispatched = 0;
  uint64_t completed = 0;
  uint64_t redispatched = 0;
  uint64_t dispatch_failures = 0;
};

class NodeRegistry {
 public:
  explicit NodeRegistry(NodeRegistryOptions options);
  ~NodeRegistry();

  NodeRegistry(const NodeRegistry&) = delete;
  NodeRegistry& operator=(const NodeRegistry&) = delete;

  // Explicit join: registers the node and synchronously probes it once to
  // load its profiled latency model. Returns the node's registry index
  // (stable for the registry's lifetime). A node that does not answer the
  // join probe still joins — as suspect — and is picked up by the first
  // heartbeat that reaches it.
  int Join(const FedNode& node);
  // Explicit leave: administratively removes the node from routing and
  // probing. The index stays valid (never reused). False if out of range
  // or already left.
  bool Leave(int index);

  // Starts/stops the heartbeat prober. Start() is idempotent.
  void Start();
  void Stop();

  size_t size() const;
  NodeInfo Info(int index) const;
  FedNode node(int index) const;
  NodeHealth health(int index) const;
  // Alive or suspect, not left, circuit closed.
  bool Routable(int index) const;

  // Dispatch-path feedback (the gateway calls these around every wire
  // call). Failures feed the circuit breaker; successes reset it.
  void NoteDispatchFailure(int index);
  void NoteDispatchSuccess(int index);
  void NoteDispatched(int index);
  void NoteCompleted(int index);
  void NoteRedispatched(int index);

  // The node's own fitted regression model (null until a probe has loaded
  // it). The pointer stays valid while the registry lives; reloads swap
  // the shared_ptr, so hold a copy while scoring.
  std::shared_ptr<const sched::LatencyModel> model(int index) const;
  double per_request_overhead_s(int index) const;
  // workers * max_batch as reported by the node's MetricsJson splice.
  int capacity(int index) const;

  // The node's last probed MetricsJson ("" before the first answer).
  std::string last_metrics_json(int index) const;

  // Fired on health transitions, always outside the registry lock.
  void SetOnDead(std::function<void(int)> cb) { on_dead_ = std::move(cb); }
  void SetOnAlive(std::function<void(int)> cb) { on_alive_ = std::move(cb); }

  // One synchronous probe pass over every joined node (the prober's loop
  // body) — exposed so tests can step health deterministically.
  void ProbeOnce();

  // The cluster rollup's "members" array: per-node id, health, counters,
  // and the node's own last MetricsJson spliced under "metrics" — the
  // same shape the cache ring reports for its members.
  std::string MembersJson() const;

 private:
  struct NodeState {
    FedNode node;
    NodeHealth health = NodeHealth::kSuspect;  // Until the first answer.
    bool left = false;
    int missed = 0;
    int consecutive_dispatch_failures = 0;
    std::chrono::steady_clock::time_point circuit_open_until{};
    std::string last_metrics;
    std::shared_ptr<const sched::LatencyModel> model;
    bool sparse_compute = false;
    double per_request_overhead_s = 0.0;
    int workers = 1;
    int max_batch = 4;
    uint64_t probes_ok = 0;
    uint64_t probes_missed = 0;
    uint64_t dispatched = 0;
    uint64_t completed = 0;
    uint64_t redispatched = 0;
    uint64_t dispatch_failures = 0;
  };

  void ProbeLoop();
  // Probes one node with a fresh short-lived connection; updates health
  // and (on answer) the stored metrics + profile. Returns the callback to
  // fire, if any.
  std::function<void()> ProbeNode(int index);
  // Parses the "latency_model" splice of `json` into `state` (caller holds
  // mu_). False when the splice is missing/malformed.
  bool LoadProfile(NodeState& state, const std::string& json);

  NodeRegistryOptions options_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<NodeState>> nodes_;

  std::function<void(int)> on_dead_;
  std::function<void(int)> on_alive_;

  std::thread probe_thread_;
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
  bool probing_ = false;
};

}  // namespace flashps::fed

#endif  // FLASHPS_SRC_FED_NODE_REGISTRY_H_
