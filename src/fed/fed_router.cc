#include "src/fed/fed_router.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace flashps::fed {

FedRouter::FedRouter(sched::RoutePolicy policy,
                     const model::TimingConfig& config,
                     model::ComputeMode mode, double default_overhead_s)
    : policy_(policy),
      fallback_model_(sched::LatencyModel::FitOffline(config, mode)),
      default_overhead_s_(default_overhead_s) {
  if (policy != sched::RoutePolicy::kMaskAware) {
    base_ = sched::MakeRouter(policy, config, mode);
  }
}

sched::WorkerStatus FedRouter::ToWorkerStatus(const NodeSnapshot& node) {
  sched::WorkerStatus status;
  status.worker_id = node.node;
  status.max_batch = std::max(1, node.capacity);
  const size_t n = node.outstanding_ratios.size();
  const size_t running = std::min(n, static_cast<size_t>(status.max_batch));
  status.running_ratios.assign(node.outstanding_ratios.begin(),
                               node.outstanding_ratios.begin() + running);
  status.waiting_ratios.assign(node.outstanding_ratios.begin() + running,
                               node.outstanding_ratios.end());
  status.running_remaining_steps.assign(
      node.outstanding_steps.begin(), node.outstanding_steps.begin() + running);
  status.remaining_steps = 0;
  for (int steps : node.outstanding_steps) {
    status.remaining_steps += steps;
  }
  status.has_slack = n < static_cast<size_t>(status.max_batch);
  return status;
}

double FedRouter::CalcCost(const trace::Request& request,
                           const NodeSnapshot& node) const {
  const sched::LatencyModel& model =
      node.model != nullptr ? *node.model : fallback_model_;
  const double overhead = node.model != nullptr ? node.per_request_overhead_s
                                                : default_overhead_s_;
  return sched::SerializedPlacementCost(model, overhead, request,
                                        ToWorkerStatus(node));
}

int FedRouter::Route(const trace::Request& request,
                     const std::vector<NodeSnapshot>& nodes) {
  std::vector<const NodeSnapshot*> routable;
  for (const auto& node : nodes) {
    if (node.routable) {
      routable.push_back(&node);
    }
  }
  if (routable.empty()) {
    return -1;
  }

  if (base_ != nullptr) {
    std::vector<sched::WorkerStatus> statuses;
    statuses.reserve(routable.size());
    for (const NodeSnapshot* node : routable) {
      statuses.push_back(ToWorkerStatus(*node));
    }
    return base_->Route(request, statuses);
  }

  // Algorithm 2 across machines: slack candidates first, every routable
  // node once the fleet is saturated (Algorithm 2 line 7).
  std::vector<const NodeSnapshot*> candidates;
  for (const NodeSnapshot* node : routable) {
    if (node->outstanding_ratios.size() <
        static_cast<size_t>(std::max(1, node->capacity))) {
      candidates.push_back(node);
    }
  }
  if (candidates.empty()) {
    candidates = routable;
  }
  double best_cost = std::numeric_limits<double>::max();
  for (const NodeSnapshot* node : candidates) {
    best_cost = std::min(best_cost, CalcCost(request, *node));
  }
  // Near-ties carry no cost signal; mirror MaskAwareRouter's serialized
  // mode and keep indifferent decisions count-balanced across the fleet.
  const NodeSnapshot* pick = nullptr;
  int64_t fewest = std::numeric_limits<int64_t>::max();
  for (const NodeSnapshot* node : candidates) {
    if (CalcCost(request, *node) > best_cost * 1.05) {
      continue;
    }
    const int64_t count = assigned_[node->node];
    if (count < fewest) {
      fewest = count;
      pick = node;
    }
  }
  ++assigned_[pick->node];
  return pick->node;
}

}  // namespace flashps::fed
