#include "src/fed/node_registry.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

namespace flashps::fed {

namespace {

// Minimal scanner for the flat {"key":number,...} splices this registry
// reads back out of a node's MetricsJson. Searches within [from, to).
bool FindNumber(const std::string& json, size_t from, size_t to,
                const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle, from);
  if (pos == std::string::npos || pos >= to) {
    return false;
  }
  const char* start = json.c_str() + pos + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

std::string ToString(NodeHealth health) {
  switch (health) {
    case NodeHealth::kAlive:
      return "alive";
    case NodeHealth::kSuspect:
      return "suspect";
    case NodeHealth::kDead:
      return "dead";
  }
  return "?";
}

NodeRegistry::NodeRegistry(NodeRegistryOptions options)
    : options_(std::move(options)) {}

NodeRegistry::~NodeRegistry() { Stop(); }

int NodeRegistry::Join(const FedNode& node) {
  int index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto state = std::make_unique<NodeState>();
    state->node = node;
    index = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(state));
  }
  // Synchronous join probe: loads the node's profile immediately so the
  // very first routed request can be mask-aware-scored. A node that is
  // not up yet simply stays suspect until a heartbeat reaches it.
  if (auto cb = ProbeNode(index)) {
    cb();
  }
  return index;
}

bool NodeRegistry::Leave(int index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || index >= static_cast<int>(nodes_.size()) ||
      nodes_[static_cast<size_t>(index)]->left) {
    return false;
  }
  nodes_[static_cast<size_t>(index)]->left = true;
  return true;
}

void NodeRegistry::Start() {
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (probing_) {
    return;
  }
  probing_ = true;
  probe_stop_ = false;
  probe_thread_ = std::thread([this] { ProbeLoop(); });
}

void NodeRegistry::Stop() {
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    if (!probing_) {
      return;
    }
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) {
    probe_thread_.join();
  }
  std::lock_guard<std::mutex> lock(probe_mu_);
  probing_ = false;
}

void NodeRegistry::ProbeLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(probe_mu_);
      if (probe_stop_) {
        return;
      }
    }
    ProbeOnce();
    std::unique_lock<std::mutex> lock(probe_mu_);
    probe_cv_.wait_for(lock, options_.probe_interval,
                       [this] { return probe_stop_; });
    if (probe_stop_) {
      return;
    }
  }
}

void NodeRegistry::ProbeOnce() {
  size_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = nodes_.size();
  }
  for (size_t i = 0; i < n; ++i) {
    if (auto cb = ProbeNode(static_cast<int>(i))) {
      cb();
    }
  }
}

std::function<void()> NodeRegistry::ProbeNode(int index) {
  FedNode target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    NodeState& state = *nodes_[static_cast<size_t>(index)];
    if (state.left) {
      return nullptr;
    }
    target = state.node;
  }

  // Fresh short-lived connection per probe: a heartbeat must measure the
  // node's frontier end to end (accept, auth, metrics), and a dead node
  // must not wedge a long-lived socket for every later probe.
  net::ClientOptions copts;
  copts.connect_attempts = 1;
  copts.connect_backoff = options_.connect_backoff;
  copts.default_timeout = options_.probe_timeout;
  copts.auth_token = options_.auth_token;
  net::Client client(target.host, target.port, copts);
  std::optional<std::string> metrics;
  if (client.Connect()) {
    metrics = client.QueryMetrics(options_.probe_timeout);
  }

  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = *nodes_[static_cast<size_t>(index)];
  if (state.left) {
    return nullptr;
  }
  if (metrics.has_value()) {
    ++state.probes_ok;
    state.missed = 0;
    state.last_metrics = *metrics;
    if (state.model == nullptr) {
      LoadProfile(state, *metrics);
    }
    if (state.health != NodeHealth::kAlive) {
      state.health = NodeHealth::kAlive;
      // Revival clears the dispatch breaker too: the failures it counted
      // belong to the outage the probe just ended.
      state.consecutive_dispatch_failures = 0;
      state.circuit_open_until = {};
      if (on_alive_) {
        auto cb = on_alive_;
        return [cb, index] { cb(index); };
      }
    }
    return nullptr;
  }
  ++state.probes_missed;
  ++state.missed;
  if (state.missed >= options_.dead_after &&
      state.health != NodeHealth::kDead) {
    state.health = NodeHealth::kDead;
    if (on_dead_) {
      auto cb = on_dead_;
      return [cb, index] { cb(index); };
    }
  } else if (state.missed >= options_.suspect_after &&
             state.health == NodeHealth::kAlive) {
    state.health = NodeHealth::kSuspect;
  }
  return nullptr;
}

bool NodeRegistry::LoadProfile(NodeState& state, const std::string& json) {
  const size_t obj = json.find("\"latency_model\":{");
  if (obj == std::string::npos) {
    return false;
  }
  const size_t end = json.find('}', obj);
  if (end == std::string::npos) {
    return false;
  }
  double compute_slope = 0.0, compute_intercept = 0.0, compute_r2 = 0.0;
  double load_slope = 0.0, load_intercept = 0.0, load_r2 = 0.0;
  if (!FindNumber(json, obj, end, "compute_slope", &compute_slope) ||
      !FindNumber(json, obj, end, "compute_intercept", &compute_intercept) ||
      !FindNumber(json, obj, end, "load_slope", &load_slope) ||
      !FindNumber(json, obj, end, "load_intercept", &load_intercept)) {
    return false;
  }
  FindNumber(json, obj, end, "compute_r2", &compute_r2);
  FindNumber(json, obj, end, "load_r2", &load_r2);
  double overhead = 0.0, workers = 1.0, max_batch = 4.0;
  FindNumber(json, obj, end, "per_request_overhead_s", &overhead);
  FindNumber(json, obj, end, "workers", &workers);
  FindNumber(json, obj, end, "max_batch", &max_batch);
  const bool node_mask_aware =
      json.find("\"mask_aware\":true", obj) != std::string::npos &&
      json.find("\"mask_aware\":true", obj) < end;
  const bool node_sparse =
      json.find("\"sparse_compute\":true", obj) != std::string::npos &&
      json.find("\"sparse_compute\":true", obj) < end;

  LinearFit compute_fit{compute_slope, compute_intercept, compute_r2};
  LinearFit load_fit{load_slope, load_intercept, load_r2};
  // Rebuild over the node's own compute path: its fitted line's x-axis is
  // gathered-path FLOPs when the node serves sparse_compute, so the local
  // cost model must use the same formulas when pricing requests for it.
  model::TimingConfig timing = options_.timing;
  timing.sparse_compute = node_mask_aware && node_sparse;
  sched::LatencyModel model = sched::LatencyModel::FromFits(
      timing,
      node_mask_aware ? model::ComputeMode::kMaskAwareY
                      : model::ComputeMode::kFull,
      compute_fit, load_fit);
  // Hybrid-resolution profile: the node's primary grid (flat numbers
  // inside latency_model) and its per-resolution whole-step fits (a
  // SEPARATE top-level array — this parser's flat-object scan stops at
  // the first '}', so the gateway never nests objects in latency_model).
  double grid_h = 0.0;
  double grid_w = 0.0;
  if (FindNumber(json, obj, end, "grid_h", &grid_h) &&
      FindNumber(json, obj, end, "grid_w", &grid_w)) {
    model.SetPrimaryGrid(static_cast<int>(grid_h), static_cast<int>(grid_w));
  }
  const size_t fits = json.find("\"resolution_fits\":[");
  if (fits != std::string::npos) {
    const size_t arr_end = json.find(']', fits);
    size_t pos = fits;
    while (arr_end != std::string::npos) {
      const size_t open = json.find('{', pos);
      if (open == std::string::npos || open > arr_end) {
        break;
      }
      const size_t close = json.find('}', open);
      if (close == std::string::npos || close > arr_end) {
        break;
      }
      double res_h = 0.0, res_w = 0.0, slope = 0.0, intercept = 0.0, r2 = 0.0;
      if (FindNumber(json, open, close, "grid_h", &res_h) &&
          FindNumber(json, open, close, "grid_w", &res_w) &&
          FindNumber(json, open, close, "slope", &slope) &&
          FindNumber(json, open, close, "intercept", &intercept)) {
        FindNumber(json, open, close, "r2", &r2);
        model.AddResolutionFit(static_cast<int>(res_h),
                               static_cast<int>(res_w),
                               LinearFit{slope, intercept, r2});
      }
      pos = close + 1;
    }
  }
  state.model = std::make_shared<const sched::LatencyModel>(std::move(model));
  state.sparse_compute = node_mask_aware && node_sparse;
  state.per_request_overhead_s = overhead;
  state.workers = std::max(1, static_cast<int>(workers));
  state.max_batch = std::max(1, static_cast<int>(max_batch));
  return true;
}

size_t NodeRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

NodeInfo NodeRegistry::Info(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState& state = *nodes_.at(static_cast<size_t>(index));
  NodeInfo info;
  info.node = state.node;
  info.health = state.health;
  info.left = state.left;
  info.circuit_open =
      state.circuit_open_until > std::chrono::steady_clock::now();
  info.routable =
      !state.left && state.health != NodeHealth::kDead && !info.circuit_open;
  info.profile_loaded = state.model != nullptr;
  info.sparse_compute = state.sparse_compute;
  info.workers = state.workers;
  info.max_batch = state.max_batch;
  info.per_request_overhead_s = state.per_request_overhead_s;
  info.probes_ok = state.probes_ok;
  info.probes_missed = state.probes_missed;
  info.dispatched = state.dispatched;
  info.completed = state.completed;
  info.redispatched = state.redispatched;
  info.dispatch_failures = state.dispatch_failures;
  return info;
}

FedNode NodeRegistry::node(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.at(static_cast<size_t>(index))->node;
}

NodeHealth NodeRegistry::health(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.at(static_cast<size_t>(index))->health;
}

bool NodeRegistry::Routable(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState& state = *nodes_.at(static_cast<size_t>(index));
  return !state.left && state.health != NodeHealth::kDead &&
         state.circuit_open_until <= std::chrono::steady_clock::now();
}

void NodeRegistry::NoteDispatchFailure(int index) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = *nodes_.at(static_cast<size_t>(index));
  ++state.dispatch_failures;
  if (++state.consecutive_dispatch_failures >=
      options_.max_consecutive_dispatch_failures) {
    state.circuit_open_until =
        std::chrono::steady_clock::now() + options_.circuit_cooldown;
  }
}

void NodeRegistry::NoteDispatchSuccess(int index) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = *nodes_.at(static_cast<size_t>(index));
  state.consecutive_dispatch_failures = 0;
  state.circuit_open_until = {};
}

void NodeRegistry::NoteDispatched(int index) {
  std::lock_guard<std::mutex> lock(mu_);
  ++nodes_.at(static_cast<size_t>(index))->dispatched;
}

void NodeRegistry::NoteCompleted(int index) {
  std::lock_guard<std::mutex> lock(mu_);
  ++nodes_.at(static_cast<size_t>(index))->completed;
}

void NodeRegistry::NoteRedispatched(int index) {
  std::lock_guard<std::mutex> lock(mu_);
  ++nodes_.at(static_cast<size_t>(index))->redispatched;
}

std::shared_ptr<const sched::LatencyModel> NodeRegistry::model(
    int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.at(static_cast<size_t>(index))->model;
}

double NodeRegistry::per_request_overhead_s(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.at(static_cast<size_t>(index))->per_request_overhead_s;
}

int NodeRegistry::capacity(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState& state = *nodes_.at(static_cast<size_t>(index));
  return state.workers * state.max_batch;
}

std::string NodeRegistry::last_metrics_json(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.at(static_cast<size_t>(index))->last_metrics;
}

std::string NodeRegistry::MembersJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  std::string out = "[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const NodeState& state = *nodes_[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"id\":\"" + state.node.id() + "\"";
    out += ",\"health\":\"" + ToString(state.health) + "\"";
    out += ",\"left\":" + std::string(state.left ? "true" : "false");
    out += ",\"circuit_open\":" +
           std::string(state.circuit_open_until > now ? "true" : "false");
    out += ",\"profile_loaded\":" +
           std::string(state.model != nullptr ? "true" : "false");
    out += ",\"probes_ok\":" + std::to_string(state.probes_ok);
    out += ",\"probes_missed\":" + std::to_string(state.probes_missed);
    out += ",\"dispatched\":" + std::to_string(state.dispatched);
    out += ",\"completed\":" + std::to_string(state.completed);
    out += ",\"redispatched\":" + std::to_string(state.redispatched);
    out += ",\"dispatch_failures\":" + std::to_string(state.dispatch_failures);
    // The node's own last probed MetricsJson, spliced verbatim — one
    // rollup query reports the whole fleet's serving + cache counters.
    out += ",\"metrics\":" +
           (state.last_metrics.empty() ? std::string("null")
                                       : state.last_metrics);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace flashps::fed
