#include "src/fed/fed_gateway.h"

#include <algorithm>
#include <utility>

namespace flashps::fed {

namespace {

// An accepted submit's reply slot. The promise is always fulfilled with a
// value (node reply, or a synthesized failure status), never an
// exception, so Take() honors WireCompletion's no-throw contract.
class FedCompletion : public net::WireCompletion {
 public:
  explicit FedCompletion(std::future<net::WireResponse> future)
      : future_(std::move(future)) {}

  bool Ready() override {
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  net::WireResponse Take() override { return future_.get(); }

 private:
  std::future<net::WireResponse> future_;
};

NodeRegistryOptions MakeRegistryOptions(const FedGatewayOptions& options) {
  NodeRegistryOptions r = options.registry;
  if (r.auth_token.empty()) {
    r.auth_token = options.auth_token;
  }
  r.timing = options.timing;
  r.mask_aware = options.mask_aware;
  return r;
}

}  // namespace

FedGateway::FedGateway(FedGatewayOptions options)
    : options_(std::move(options)),
      registry_(MakeRegistryOptions(options_)),
      router_(options_.policy, options_.timing,
              options_.mask_aware ? model::ComputeMode::kMaskAwareY
                                  : model::ComputeMode::kFull,
              options_.default_overhead_s) {}

FedGateway::~FedGateway() { Stop(); }

int FedGateway::max_attempts() const {
  if (options_.max_attempts > 0) {
    return options_.max_attempts;
  }
  return 3 * std::max<int>(1, static_cast<int>(options_.nodes.size()));
}

void FedGateway::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  registry_.SetOnDead([this](int node) { OnNodeDead(node); });
  registry_.SetOnAlive([this](int node) { OnNodeAlive(node); });
  for (const FedNode& node : options_.nodes) {
    registry_.Join(node);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_.resize(registry_.size());
    inflight_.resize(registry_.size());
  }
  registry_.Start();
  const int conns = std::max(1, options_.connections_per_node);
  for (size_t i = 0; i < registry_.size(); ++i) {
    for (int c = 0; c < conns; ++c) {
      dispatchers_.emplace_back(
          [this, i] { DispatcherLoop(static_cast<int>(i)); });
    }
  }
}

void FedGateway::StopAccepting() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool FedGateway::Drain(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [this] {
    if (!parked_.empty()) {
      return false;
    }
    for (const auto& q : queues_) {
      if (!q.empty()) {
        return false;
      }
    }
    for (const auto& m : inflight_) {
      if (!m.empty()) {
        return false;
      }
    }
    return true;
  });
}

void FedGateway::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) {
      t.join();
    }
  }
  dispatchers_.clear();
  registry_.Stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& q : queues_) {
      for (const TicketPtr& ticket : q) {
        FailTicketLocked(ticket);
      }
      q.clear();
    }
    for (const TicketPtr& ticket : parked_) {
      FailTicketLocked(ticket);
    }
    parked_.clear();
  }
  cv_.notify_all();
}

net::WireSubmission FedGateway::Submit(net::WireRequest request) {
  auto ticket = std::make_shared<Ticket>();
  ticket->mask_ratio = request.request.mask.ratio();
  ticket->grid_h = request.request.mask.grid_h;
  ticket->grid_w = request.request.mask.grid_w;
  ticket->denoise_steps = request.denoise_steps;
  std::future<net::WireResponse> future;
  int node = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || draining_) {
      return net::WireSubmission{};  // kRejectedShutdown, no completion.
    }
    ticket->id = next_id_++;
    ticket->request = std::move(request);
    future = ticket->promise.get_future();
    ++submitted_;
    node = RouteTicketLocked(ticket, /*exclude=*/-1);
  }
  cv_.notify_all();
  net::WireSubmission sub;
  sub.status = gateway::SubmitStatus::kAccepted;
  sub.worker_id = node;  // -1 while parked; the reply carries the truth.
  sub.completion = std::make_unique<FedCompletion>(std::move(future));
  return sub;
}

std::vector<NodeSnapshot> FedGateway::SnapshotLocked(int exclude) const {
  std::vector<NodeSnapshot> out(queues_.size());
  for (size_t i = 0; i < queues_.size(); ++i) {
    const int index = static_cast<int>(i);
    NodeSnapshot& snap = out[i];
    snap.node = index;
    snap.routable = index != exclude && registry_.Routable(index);
    snap.capacity = registry_.capacity(index);
    snap.model = registry_.model(index);
    snap.per_request_overhead_s = registry_.per_request_overhead_s(index);
    // Outstanding ratios are token-scaled against the node's profiled
    // primary grid, so mixed-resolution backlogs are priced comparably
    // (TokenScale is 1.0 without a profile or for primary-grid tickets).
    const auto effective_ratio = [&snap](const TicketPtr& t) {
      return snap.model == nullptr
                 ? t->mask_ratio
                 : t->mask_ratio * snap.model->TokenScale(t->grid_h, t->grid_w);
    };
    for (const TicketPtr& t : queues_[i]) {
      snap.outstanding_ratios.push_back(effective_ratio(t));
      snap.outstanding_steps.push_back(t->denoise_steps);
    }
    for (const auto& [id, t] : inflight_[i]) {
      (void)id;
      snap.outstanding_ratios.push_back(effective_ratio(t));
      snap.outstanding_steps.push_back(t->denoise_steps);
    }
  }
  return out;
}

int FedGateway::RouteTicketLocked(const TicketPtr& ticket, int exclude) {
  trace::Request request;
  request.id = ticket->id;
  request.template_id = ticket->request.request.template_id;
  request.mask_ratio = ticket->mask_ratio;
  request.grid_h = ticket->grid_h;
  request.grid_w = ticket->grid_w;
  request.denoise_steps = ticket->denoise_steps;
  const int node = router_.Route(request, SnapshotLocked(exclude));
  if (node < 0) {
    ticket->node = -1;
    parked_.push_back(ticket);
    return -1;
  }
  ticket->node = node;
  queues_[static_cast<size_t>(node)].push_back(ticket);
  registry_.NoteDispatched(node);
  return node;
}

void FedGateway::FailTicketLocked(const TicketPtr& ticket) {
  net::WireResponse response;
  response.status =
      static_cast<uint8_t>(gateway::SubmitStatus::kRejectedShutdown);
  response.worker_id = -1;
  ++failed_;
  ticket->promise.set_value(response);
}

void FedGateway::DispatcherLoop(int node) {
  const FedNode target = registry_.node(node);
  net::ClientOptions copts;
  copts.connect_attempts = 1;
  copts.connect_backoff = options_.registry.connect_backoff;
  copts.default_timeout = options_.call_timeout;
  copts.auth_token = options_.auth_token;
  net::Client client(target.host, target.port, copts);

  for (;;) {
    TicketPtr ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopped_ || !queues_[static_cast<size_t>(node)].empty();
      });
      if (stopped_) {
        return;  // Leftover queued tickets are failed by Stop().
      }
      ticket = queues_[static_cast<size_t>(node)].front();
      queues_[static_cast<size_t>(node)].pop_front();
      inflight_[static_cast<size_t>(node)][ticket->id] = ticket;
    }

    std::optional<net::WireResponse> reply;
    if (client.connected() || client.Connect()) {
      reply = client.Call(ticket->request, options_.call_timeout);
    }
    if (!reply.has_value()) {
      // Transport failure: connect refused, call timeout, or the node
      // died mid-call. Fail the ticket over to a sibling; determinism
      // makes the re-run bitwise identical, so the client never sees it.
      client.Close();
      registry_.NoteDispatchFailure(node);
      {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_[static_cast<size_t>(node)].erase(ticket->id);
        if (++ticket->attempts >= max_attempts()) {
          FailTicketLocked(ticket);
        } else {
          ++redispatched_;
          registry_.NoteRedispatched(node);
          RouteTicketLocked(ticket, /*exclude=*/node);
        }
      }
      cv_.notify_all();
      continue;
    }

    registry_.NoteDispatchSuccess(node);
    const bool accepted =
        reply->status == static_cast<uint8_t>(gateway::SubmitStatus::kAccepted);
    if (accepted) {
      registry_.NoteCompleted(node);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_[static_cast<size_t>(node)].erase(ticket->id);
      net::WireResponse response = *reply;
      response.worker_id = node;  // Surface which NODE served it.
      if (accepted) {
        ++completed_;
      } else {
        ++rejected_by_node_;
      }
      ticket->promise.set_value(response);
    }
    cv_.notify_all();
  }
}

void FedGateway::OnNodeDead(int node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (node < 0 || node >= static_cast<int>(queues_.size())) {
      return;
    }
    // Re-route the dead node's whole queue at once. Its in-flight calls
    // resolve through their dispatchers' transport failures.
    std::deque<TicketPtr> orphans;
    orphans.swap(queues_[static_cast<size_t>(node)]);
    for (const TicketPtr& ticket : orphans) {
      ++redispatched_;
      registry_.NoteRedispatched(node);
      RouteTicketLocked(ticket, /*exclude=*/node);
    }
  }
  cv_.notify_all();
}

void FedGateway::OnNodeAlive(int node) {
  (void)node;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Flush the parked queue; anything still unroutable parks again
    // (swap first, so a re-park cannot loop).
    std::deque<TicketPtr> parked;
    parked.swap(parked_);
    for (const TicketPtr& ticket : parked) {
      RouteTicketLocked(ticket, /*exclude=*/-1);
    }
  }
  cv_.notify_all();
}

FedGateway::Stats FedGateway::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.redispatched = redispatched_;
  s.rejected_by_node = rejected_by_node_;
  s.parked = parked_.size();
  for (const auto& q : queues_) {
    s.outstanding += q.size();
  }
  for (const auto& m : inflight_) {
    s.outstanding += m.size();
  }
  return s;
}

std::string FedGateway::MetricsJson() {
  const Stats s = stats();
  std::string json = "{\"fed\":{";
  json += "\"nodes\":" + std::to_string(registry_.size());
  json += ",\"policy\":\"" + sched::ToString(options_.policy) + "\"";
  json += ",\"submitted\":" + std::to_string(s.submitted);
  json += ",\"completed\":" + std::to_string(s.completed);
  json += ",\"failed\":" + std::to_string(s.failed);
  json += ",\"redispatched\":" + std::to_string(s.redispatched);
  json += ",\"rejected_by_node\":" + std::to_string(s.rejected_by_node);
  json += ",\"parked\":" + std::to_string(s.parked);
  json += ",\"outstanding\":" + std::to_string(s.outstanding);
  json += "},\"members\":" + registry_.MembersJson() + "}";
  return json;
}

}  // namespace flashps::fed
