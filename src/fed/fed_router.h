// Cross-machine routing for the federated front tier.
//
// Same policy vocabulary as the in-process cluster (sched::RoutePolicy),
// lifted one level: candidates are fleet nodes, not workers. A node is
// summarized as a NodeSnapshot — the federation's own outstanding tickets
// against that node (queued + in flight) plus the capacity and profiled
// latency model the registry fetched from the node at join time.
//
// The baseline policies (round-robin, first-fit, request-count,
// token-count) reuse the sched routers verbatim by mapping each snapshot
// to a WorkerStatus whose worker_id is the node's registry index — the
// sched routers return worker_id and key their assignment state by it, so
// membership changes (dead nodes dropping out of the candidate list)
// don't reshuffle history.
//
// The mask-aware policy is Algorithm 2 across machines: each candidate is
// priced with sched::SerializedPlacementCost under that node's OWN fitted
// latency model (from its MetricsJson splice) — a fleet of heterogeneous
// nodes is scored on each node's hardware line, which is the point of
// fetching profiles at join time. Nodes whose profile has not loaded yet
// fall back to a locally fitted offline model.
#ifndef FLASHPS_SRC_FED_FED_ROUTER_H_
#define FLASHPS_SRC_FED_FED_ROUTER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/model/timing.h"
#include "src/sched/latency_model.h"
#include "src/sched/scheduler.h"
#include "src/trace/workload.h"

namespace flashps::fed {

// One fleet node as the router sees it. `outstanding_ratios` /
// `outstanding_steps` are parallel arrays over the federation's own
// unfinished tickets dispatched (or queued) to this node.
struct NodeSnapshot {
  int node = 0;  // Registry index; stable across membership changes.
  bool routable = false;
  int capacity = 4;  // workers * max_batch reported by the node.
  std::vector<double> outstanding_ratios;
  std::vector<int> outstanding_steps;
  std::shared_ptr<const sched::LatencyModel> model;  // Null until profiled.
  double per_request_overhead_s = 0.0;
};

class FedRouter {
 public:
  FedRouter(sched::RoutePolicy policy, const model::TimingConfig& config,
            model::ComputeMode mode, double default_overhead_s);

  // Picks a registry node index, or -1 when no snapshot is routable.
  int Route(const trace::Request& request,
            const std::vector<NodeSnapshot>& nodes);

  // Exposed for tests: the serialized Algorithm-2 cost of placing
  // `request` on `node` (uses the node's model, or the fallback).
  double CalcCost(const trace::Request& request,
                  const NodeSnapshot& node) const;

  // Maps a snapshot to the WorkerStatus shape the sched routers consume.
  static sched::WorkerStatus ToWorkerStatus(const NodeSnapshot& node);

 private:
  sched::RoutePolicy policy_;
  // Baseline policies delegate here (null for mask-aware).
  std::unique_ptr<sched::Router> base_;
  // Fallback model for nodes that have not reported a profile yet.
  sched::LatencyModel fallback_model_;
  double default_overhead_s_;
  // Near-tie fallback state, mirroring MaskAwareRouter's serialized mode.
  std::map<int, int64_t> assigned_;
};

}  // namespace flashps::fed

#endif  // FLASHPS_SRC_FED_FED_ROUTER_H_
