#include "src/pipeline/pipeline.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>

namespace flashps::pipeline {

namespace {

// DP state after deciding a prefix of blocks.
//  load_sum: total copy-stream occupancy of cached blocks chosen so far
//            (loads run back-to-back from t=0, so the k-th cached block's
//            load finishes at the prefix sum of chosen loads).
//  slack:    compute_end - load_sum. Final latency = slack + load_sum.
// Transitions:
//  cache block:  compute_end' = max(compute_end, load_sum + L) + C_w
//                => slack' = max(slack + C_w - L, C_w)
//                   load_sum' = load_sum + L
//  recompute:    slack' = slack + C_wo, load_sum unchanged.
// Both coordinates are monotone under both transitions, so Pareto pruning on
// (slack, load_sum) preserves optimality.
struct State {
  int64_t slack_us;
  int64_t load_us;
  uint64_t choice_bits;  // Cache decisions for blocks decided so far.
};

void ParetoInsert(std::vector<State>& frontier, State s) {
  for (const State& other : frontier) {
    if (other.slack_us <= s.slack_us && other.load_us <= s.load_us) {
      return;  // Dominated.
    }
  }
  std::erase_if(frontier, [&](const State& other) {
    return s.slack_us <= other.slack_us && s.load_us <= other.load_us;
  });
  frontier.push_back(s);
}

}  // namespace

PipelinePlan PlanBubbleFree(std::span<const Duration> compute_with_cache,
                            std::span<const Duration> compute_without_cache,
                            std::span<const Duration> load) {
  const size_t n = compute_with_cache.size();
  assert(compute_without_cache.size() == n && load.size() == n);
  assert(n <= 64);

  std::vector<State> frontier;
  frontier.push_back(State{0, 0, 0});
  std::vector<State> next;
  for (size_t i = 0; i < n; ++i) {
    const int64_t cw = compute_with_cache[i].micros();
    const int64_t cwo = compute_without_cache[i].micros();
    const int64_t li = load[i].micros();
    next.clear();
    for (const State& s : frontier) {
      // Option A: use the cache.
      ParetoInsert(next, State{std::max(s.slack_us + cw - li, cw),
                               s.load_us + li, s.choice_bits | (1ULL << i)});
      // Option B: recompute in full.
      ParetoInsert(next, State{s.slack_us + cwo, s.load_us, s.choice_bits});
    }
    frontier.swap(next);
  }

  PipelinePlan plan;
  plan.use_cache.assign(n, false);
  int64_t best = std::numeric_limits<int64_t>::max();
  uint64_t best_bits = 0;
  for (const State& s : frontier) {
    const int64_t total = s.slack_us + s.load_us;
    if (total < best) {
      best = total;
      best_bits = s.choice_bits;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    plan.use_cache[i] = (best_bits >> i) & 1ULL;
  }
  plan.latency = Duration::Micros(best);
  return plan;
}

PipelinePlan PlanBruteForce(std::span<const Duration> compute_with_cache,
                            std::span<const Duration> compute_without_cache,
                            std::span<const Duration> load) {
  const size_t n = compute_with_cache.size();
  assert(n <= 20);
  PipelinePlan best;
  best.latency = Duration::Max();
  std::vector<bool> choice(n, false);
  for (uint64_t bits = 0; bits < (1ULL << n); ++bits) {
    for (size_t i = 0; i < n; ++i) {
      choice[i] = (bits >> i) & 1ULL;
    }
    const PipelineTrace trace =
        ExecutePlan(compute_with_cache, compute_without_cache, load, choice);
    if (trace.total < best.latency) {
      best.latency = trace.total;
      best.use_cache = choice;
    }
  }
  return best;
}

PipelineTrace ExecutePlan(std::span<const Duration> compute_with_cache,
                          std::span<const Duration> compute_without_cache,
                          std::span<const Duration> load,
                          const std::vector<bool>& use_cache) {
  const size_t n = compute_with_cache.size();
  assert(compute_without_cache.size() == n && load.size() == n &&
         use_cache.size() == n);

  device::StreamTimeline compute_stream;
  device::StreamTimeline copy_stream;
  PipelineTrace trace;
  trace.blocks.resize(n);

  // Issue all loads up front (the copy stream may run ahead of compute).
  for (size_t i = 0; i < n; ++i) {
    auto& b = trace.blocks[i];
    b.used_cache = use_cache[i];
    if (use_cache[i]) {
      const auto span = copy_stream.Enqueue(TimePoint(), load[i]);
      b.load_start = span.start;
      b.load_end = span.end;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    auto& b = trace.blocks[i];
    const TimePoint ready = b.used_cache ? b.load_end : TimePoint();
    const Duration cost =
        b.used_cache ? compute_with_cache[i] : compute_without_cache[i];
    const auto span = compute_stream.Enqueue(ready, cost);
    b.compute_start = span.start;
    b.compute_end = span.end;
  }

  trace.total = n == 0 ? Duration::Zero()
                       : trace.blocks.back().compute_end - TimePoint();
  trace.compute_idle = compute_stream.idle_time() +
                       (n > 0 ? trace.blocks.front().compute_start - TimePoint()
                              : Duration::Zero());
  trace.copy_idle = copy_stream.idle_time();
  return trace;
}

Duration NaiveSequentialLatency(std::span<const Duration> compute_with_cache,
                                std::span<const Duration> load) {
  Duration total;
  for (size_t i = 0; i < compute_with_cache.size(); ++i) {
    total += load[i] + compute_with_cache[i];
  }
  return total;
}

Duration StrawmanPipelineLatency(std::span<const Duration> compute_with_cache,
                                 std::span<const Duration> load) {
  std::vector<bool> all(compute_with_cache.size(), true);
  return ExecutePlan(compute_with_cache, compute_with_cache, load, all).total;
}

Duration IdealLatency(std::span<const Duration> compute_with_cache) {
  Duration total;
  for (const Duration d : compute_with_cache) {
    total += d;
  }
  return total;
}

}  // namespace flashps::pipeline
