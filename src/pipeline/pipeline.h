// Bubble-free pipeline planning (paper Algorithm 1).
//
// A denoising step runs N transformer block-groups in order on the compute
// stream. A block may either use cached activations (compute cost C_w, and
// its cache must first be gather-loaded, occupying the copy stream for L) or
// recompute everything (cost C_w/o, no load). Loads are issued in block order
// on the copy stream and may run arbitrarily far ahead. Block i's compute may
// start only when the compute stream is free and, if it uses the cache, its
// load has finished.
//
// The planner picks the subset of blocks that use the cache to minimize the
// step's end-to-end latency, eliminating the bubbles a strawman
// all-blocks-cached pipeline suffers when loading is slower than computing.
#ifndef FLASHPS_SRC_PIPELINE_PIPELINE_H_
#define FLASHPS_SRC_PIPELINE_PIPELINE_H_

#include <span>
#include <vector>

#include "src/common/time.h"
#include "src/device/device.h"

namespace flashps::pipeline {

struct PipelinePlan {
  std::vector<bool> use_cache;  // Per block.
  Duration latency;             // Minimal pipeline latency for one step.
};

// Exact dynamic program over Pareto-pruned (compute-slack, load-sum) states.
// Runs in O(N * |frontier|); the frontier stays tiny for the block counts
// diffusion models have (tens), matching the paper's "negligible overhead".
PipelinePlan PlanBubbleFree(std::span<const Duration> compute_with_cache,
                            std::span<const Duration> compute_without_cache,
                            std::span<const Duration> load);

// Exhaustive 2^N reference used to verify the DP in tests. N must be <= 20.
PipelinePlan PlanBruteForce(std::span<const Duration> compute_with_cache,
                            std::span<const Duration> compute_without_cache,
                            std::span<const Duration> load);

// Latency of a *given* cache assignment, simulated on two stream timelines.
struct PipelineTrace {
  struct BlockSpan {
    TimePoint load_start;
    TimePoint load_end;  // == load_start when the block does not load.
    TimePoint compute_start;
    TimePoint compute_end;
    bool used_cache = false;
  };
  std::vector<BlockSpan> blocks;
  Duration total;
  Duration compute_idle;  // Bubbles on the compute stream.
  Duration copy_idle;     // Idle time on the copy stream.
};

PipelineTrace ExecutePlan(std::span<const Duration> compute_with_cache,
                          std::span<const Duration> compute_without_cache,
                          std::span<const Duration> load,
                          const std::vector<bool>& use_cache);

// Reference schemes from Fig. 9 and Fig. 4-Left.
// Naive: each block loads its cache, then computes, strictly serialized.
Duration NaiveSequentialLatency(std::span<const Duration> compute_with_cache,
                                std::span<const Duration> load);
// Strawman: every block uses the cache, loads pipelined with compute.
Duration StrawmanPipelineLatency(std::span<const Duration> compute_with_cache,
                                 std::span<const Duration> load);
// Ideal: cache loading is free; every block computes with the cache.
Duration IdealLatency(std::span<const Duration> compute_with_cache);

}  // namespace flashps::pipeline

#endif  // FLASHPS_SRC_PIPELINE_PIPELINE_H_
