#include "src/cache/remote_store.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace flashps::cache {

RemoteActivationStore::RemoteActivationStore(RemoteStoreOptions options)
    : options_(std::move(options)) {
  net::CacheClientOptions copts;
  copts.connect_attempts = options_.connect_attempts;
  copts.connect_backoff = options_.connect_backoff;
  copts.call_timeout = options_.call_timeout;
  copts.auth_token = options_.auth_token;
  // Enough connections that every prefetch worker plus one foreground
  // fetch can be on the wire at once; otherwise a burst of prefetches
  // would queue a foreground Acquire() behind them at the checkout —
  // the exact head-of-line stall the pipeline exists to remove.
  int pool_size = std::max(1, options_.connection_pool);
  if (options_.prefetch_workers > 0) {
    pool_size = std::max(pool_size, options_.prefetch_workers + 1);
  }
  pool_ = std::make_unique<net::CacheClientPool>(options_.host, options_.port,
                                                 copts, pool_size);
  for (int i = 0; i < options_.prefetch_workers; ++i) {
    prefetch_threads_.emplace_back([this] { PrefetchLoop(); });
  }
}

RemoteActivationStore::~RemoteActivationStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    prefetch_stop_ = true;
    // Jobs still queued will never run: resolve their flights empty so no
    // waiter hangs on a fetch that is not coming.
    for (const PrefetchJob& job : prefetch_queue_) {
      auto it = flights_.find(job.flight_key);
      if (it != flights_.end()) {
        it->second->done = true;
        flights_.erase(it);
      }
    }
    prefetch_queue_.clear();
  }
  prefetch_cv_.notify_all();
  cv_.notify_all();
  for (std::thread& t : prefetch_threads_) {
    t.join();
  }
}

void RemoteActivationStore::InstallFront(
    int template_id, std::shared_ptr<const model::ActivationRecord> record) {
  // A staged copy this record satisfies will never be consumed now that
  // the front answers first — discard it as wasted rather than letting it
  // sit in staging until the cap pushes it out.
  auto sit = staged_.find(template_id);
  if (sit != staged_.end() &&
      (record->has_kv() || !sit->second.record->has_kv())) {
    staged_.erase(sit);
    ++stats_.prefetch_wasted;
  }
  if (options_.lru_capacity == 0) {
    return;
  }
  auto it = front_.find(template_id);
  if (it != front_.end()) {
    // Upgrade/refresh in place (e.g. a K/V record replacing a Y-only one).
    it->second.record = std::move(record);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (front_.size() >= options_.lru_capacity) {
    const int victim = lru_.back();
    lru_.pop_back();
    front_.erase(victim);
  }
  FrontEntry entry;
  entry.record = std::move(record);
  lru_.push_front(template_id);
  entry.lru_it = lru_.begin();
  front_.emplace(template_id, std::move(entry));
}

void RemoteActivationStore::InstallStaged(
    int template_id, std::shared_ptr<const model::ActivationRecord> record) {
  // The foreground may have satisfied the template while this fetch was
  // on the wire; a staged copy nothing will consume is just waste.
  auto fit = front_.find(template_id);
  if (fit != front_.end() &&
      (fit->second.record->has_kv() || !record->has_kv())) {
    ++stats_.prefetch_wasted;
    return;
  }
  auto sit = staged_.find(template_id);
  if (sit != staged_.end()) {
    // Replace (a K/V record superseding a Y-only one); the old copy was
    // fetched for nothing.
    ++stats_.prefetch_wasted;
    sit->second.record = std::move(record);
    sit->second.order = staged_order_++;
    return;
  }
  while (staged_.size() >= options_.prefetch_staging_cap &&
         !staged_.empty()) {
    auto oldest = staged_.begin();
    for (auto it = staged_.begin(); it != staged_.end(); ++it) {
      if (it->second.order < oldest->second.order) {
        oldest = it;
      }
    }
    staged_.erase(oldest);
    ++stats_.prefetch_wasted;
  }
  StagedEntry entry;
  entry.record = std::move(record);
  entry.order = staged_order_++;
  staged_.emplace(template_id, std::move(entry));
}

bool RemoteActivationStore::CircuitClosed() {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return std::chrono::steady_clock::now() >= degraded_until_;
}

void RemoteActivationStore::NoteTransport(bool ok) {
  bool tripped = false;
  {
    std::lock_guard<std::mutex> lock(breaker_mu_);
    if (ok) {
      consecutive_failures_ = 0;
    } else {
      ++consecutive_failures_;
      if (consecutive_failures_ >= options_.max_consecutive_failures) {
        degraded_until_ =
            std::chrono::steady_clock::now() + options_.degrade_cooldown;
        consecutive_failures_ = 0;
        tripped = true;
      }
    }
  }
  if (tripped) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.degrade_trips;
  }
}

std::shared_ptr<const model::ActivationRecord>
RemoteActivationStore::Acquire(const model::DiffusionModel& m,
                               int template_id, bool record_kv) {
  const int64_t flight_key = FlightKey(template_id, record_kv);
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto fit = front_.find(template_id);
      if (fit != front_.end() &&
          (!record_kv || fit->second.record->has_kv())) {
        ++stats_.front_hits;
        lru_.splice(lru_.begin(), lru_, fit->second.lru_it);
        return fit->second.record;
      }
      auto sit = staged_.find(template_id);
      if (sit != staged_.end() &&
          (!record_kv || sit->second.record->has_kv())) {
        // A prefetch landed here before we arrived: promote it to the
        // front (consumed, so no waste is charged) and take it.
        auto record = std::move(sit->second.record);
        staged_.erase(sit);
        ++stats_.prefetch_coalesced;
        InstallFront(template_id, record);
        return record;
      }
      auto flit = flights_.find(flight_key);
      if (flit == flights_.end()) {
        break;
      }
      // Someone — foreground or prefetch worker — is already fetching
      // this key; share their result. A prefetch flight may resolve
      // empty (miss or transport death); then loop and run the ladder
      // ourselves. The retry re-checks front/staging under the same
      // lock hold, so nothing can slip in between.
      std::shared_ptr<Flight> joined = flit->second;
      joined->joined = true;
      const bool was_prefetch = joined->prefetch;
      cv_.wait(lock, [&] { return joined->done; });
      if (joined->result != nullptr) {
        if (was_prefetch) {
          ++stats_.prefetch_coalesced;
        } else {
          ++stats_.singleflight_waits;
        }
        return joined->result;
      }
    }
    flight = std::make_shared<Flight>();
    flights_.emplace(flight_key, flight);
  }

  std::shared_ptr<const model::ActivationRecord> record =
      FetchOrRegister(m, template_id, record_kv);

  {
    std::lock_guard<std::mutex> lock(mu_);
    InstallFront(template_id, record);
    flight->result = record;
    flight->done = true;
    flights_.erase(flight_key);
  }
  cv_.notify_all();
  return record;
}

void RemoteActivationStore::Prefetch(const model::DiffusionModel& m,
                                     int template_id, bool record_kv) {
  if (options_.prefetch_workers <= 0) {
    return;
  }
  PrefetchJob job;
  job.flight_key = FlightKey(template_id, record_kv);
  job.template_id = template_id;
  job.steps = m.config().num_steps;
  job.blocks = m.config().num_blocks;
  job.want_kv = record_kv;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (prefetch_stop_) {
      return;
    }
    auto fit = front_.find(template_id);
    if (fit != front_.end() &&
        (!record_kv || fit->second.record->has_kv())) {
      ++stats_.prefetch_redundant;
      return;
    }
    auto sit = staged_.find(template_id);
    if (sit != staged_.end() &&
        (!record_kv || sit->second.record->has_kv())) {
      ++stats_.prefetch_redundant;
      return;
    }
    if (flights_.contains(job.flight_key)) {
      ++stats_.prefetch_redundant;
      return;
    }
    if (!CircuitClosed()) {
      // The node just proved unreachable; speculative fetches would only
      // hammer it (and burn a worker per timeout) for nothing.
      ++stats_.prefetch_suppressed;
      return;
    }
    if (prefetch_queue_.size() >= options_.prefetch_queue_cap) {
      ++stats_.prefetch_dropped;
      return;
    }
    // Open the flight *now*, before the job is even picked up: a
    // foreground Acquire() racing this hint deterministically joins the
    // prefetch instead of starting a duplicate fetch.
    auto flight = std::make_shared<Flight>();
    flight->prefetch = true;
    flights_.emplace(job.flight_key, flight);
    prefetch_queue_.push_back(job);
    ++stats_.prefetch_issued;
  }
  prefetch_cv_.notify_one();
}

void RemoteActivationStore::PrefetchLoop() {
  for (;;) {
    PrefetchJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      prefetch_cv_.wait(lock, [&] {
        return prefetch_stop_ || !prefetch_queue_.empty();
      });
      if (prefetch_stop_) {
        return;
      }
      job = prefetch_queue_.front();
      prefetch_queue_.pop_front();
    }

    std::shared_ptr<model::ActivationRecord> record;
    uint64_t bytes = 0;
    uint64_t wire_bytes = 0;
    double fetch_us = 0.0;
    bool remote_hit = false;
    bool remote_miss = false;
    if (CircuitClosed()) {
      net::CacheClientPool::Lease lease = pool_->Checkout();
      const auto t0 = std::chrono::steady_clock::now();
      net::FetchRecordResult fetched =
          lease->FetchRecord(job.template_id, job.steps, job.blocks,
                             job.want_kv);
      NoteTransport(fetched.transport_ok);
      if (fetched.transport_ok) {
        if (fetched.complete) {
          remote_hit = true;
          record = std::move(fetched.record);
          bytes = fetched.bytes;
          wire_bytes = fetched.wire_bytes;
          fetch_us = static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        } else {
          // Not resident. A prefetch cannot register locally (it has no
          // model); resolve empty and let the foreground run its ladder.
          remote_miss = true;
        }
      }
    }
    // Circuit opened after enqueue, or the transport died: same story —
    // resolve empty, foreground falls back. Counted below as a fallback.

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (remote_hit) {
        ++stats_.prefetch_remote_hits;
        stats_.prefetch_bytes_fetched += bytes;
        stats_.prefetch_wire_bytes_fetched += wire_bytes;
        prefetch_us_.Add(fetch_us);
      } else if (remote_miss) {
        ++stats_.prefetch_remote_misses;
      } else {
        ++stats_.prefetch_fallbacks;
      }
      auto it = flights_.find(job.flight_key);
      if (it != flights_.end()) {
        if (record != nullptr) {
          if (it->second->joined) {
            // A waiter is blocked on this flight — hand the record over
            // directly and put it in the front; staging is for records
            // whose consumer has not arrived yet.
            InstallFront(job.template_id, record);
          } else {
            InstallStaged(job.template_id, record);
          }
          it->second->result = std::move(record);
        }
        it->second->done = true;
        flights_.erase(it);
      }
    }
    cv_.notify_all();
  }
}

std::shared_ptr<const model::ActivationRecord>
RemoteActivationStore::FetchOrRegister(const model::DiffusionModel& m,
                                       int template_id, bool record_kv) {
  if (CircuitClosed()) {
    net::CacheClientPool::Lease lease = pool_->Checkout();
    const auto t0 = std::chrono::steady_clock::now();
    net::FetchRecordResult fetched = lease->FetchRecord(
        template_id, m.config().num_steps, m.config().num_blocks, record_kv);
    if (fetched.transport_ok) {
      NoteTransport(true);
      if (fetched.complete) {
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.remote_hits;
        stats_.remote_bytes_fetched += fetched.bytes;
        stats_.remote_wire_bytes_fetched += fetched.wire_bytes;
        fetch_us_.Add(static_cast<double>(us));
        return fetched.record;
      }
      // Reachable node, record not resident: register locally and publish
      // it so the next worker in the fleet hits.
      auto record = std::make_shared<model::ActivationRecord>(
          m.Register(template_id, record_kv));
      uint64_t put_bytes = 0;
      uint64_t put_wire_bytes = 0;
      bool put_ok = false;
      if (options_.put_on_miss) {
        net::PutRecordResult put =
            lease->PutRecord(template_id, *record, options_.precision);
        put_ok = put.transport_ok;
        put_bytes = put.bytes;
        put_wire_bytes = put.wire_bytes;
        if (!put_ok) {
          NoteTransport(false);
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.remote_misses;
      ++stats_.local_registrations;
      if (put_ok) {
        ++stats_.puts_ok;
        stats_.remote_bytes_put += put_bytes;
        stats_.remote_wire_bytes_put += put_wire_bytes;
      }
      return record;
    }
    // Transport failure: count toward the circuit breaker.
    NoteTransport(false);
  }

  // Degraded (circuit open) or the fetch transport just died: the worker
  // must never fail a request because the cache tier is down.
  auto record = std::make_shared<model::ActivationRecord>(
      m.Register(template_id, record_kv));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fallbacks;
  ++stats_.local_registrations;
  return record;
}

RemoteStoreStats RemoteActivationStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RemoteStoreStats out = stats_;
  out.front_size = front_.size();
  out.prefetch_staged = staged_.size();
  if (!fetch_us_.empty()) {
    out.fetch_p50_us = fetch_us_.P50();
    out.fetch_p99_us = fetch_us_.P99();
  }
  if (!prefetch_us_.empty()) {
    out.prefetch_p50_us = prefetch_us_.P50();
    out.prefetch_p99_us = prefetch_us_.P99();
  }
  return out;
}

std::string RemoteActivationStore::MetricsJson() const {
  const RemoteStoreStats s = Stats();
  std::ostringstream os;
  os << "{\"kind\":\"remote\""
     << ",\"front_hits\":" << s.front_hits
     << ",\"remote_hits\":" << s.remote_hits
     << ",\"remote_misses\":" << s.remote_misses
     << ",\"fallbacks\":" << s.fallbacks
     << ",\"singleflight_waits\":" << s.singleflight_waits
     << ",\"local_registrations\":" << s.local_registrations
     << ",\"puts_ok\":" << s.puts_ok
     << ",\"degrade_trips\":" << s.degrade_trips
     << ",\"remote_bytes_fetched\":" << s.remote_bytes_fetched
     << ",\"remote_bytes_put\":" << s.remote_bytes_put
     << ",\"remote_wire_bytes_fetched\":" << s.remote_wire_bytes_fetched
     << ",\"remote_wire_bytes_put\":" << s.remote_wire_bytes_put
     << ",\"precision\":\"" << quant::ToString(options_.precision) << "\""
     << ",\"front_size\":" << s.front_size
     << ",\"fetch_p50_us\":" << s.fetch_p50_us
     << ",\"fetch_p99_us\":" << s.fetch_p99_us
     << ",\"prefetch_issued\":" << s.prefetch_issued
     << ",\"prefetch_coalesced\":" << s.prefetch_coalesced
     << ",\"prefetch_wasted\":" << s.prefetch_wasted
     << ",\"prefetch_redundant\":" << s.prefetch_redundant
     << ",\"prefetch_suppressed\":" << s.prefetch_suppressed
     << ",\"prefetch_dropped\":" << s.prefetch_dropped
     << ",\"prefetch_remote_hits\":" << s.prefetch_remote_hits
     << ",\"prefetch_remote_misses\":" << s.prefetch_remote_misses
     << ",\"prefetch_fallbacks\":" << s.prefetch_fallbacks
     << ",\"prefetch_bytes_fetched\":" << s.prefetch_bytes_fetched
     << ",\"prefetch_wire_bytes_fetched\":" << s.prefetch_wire_bytes_fetched
     << ",\"prefetch_staged\":" << s.prefetch_staged
     << ",\"prefetch_p50_us\":" << s.prefetch_p50_us
     << ",\"prefetch_p99_us\":" << s.prefetch_p99_us << "}";
  return os.str();
}

}  // namespace flashps::cache
