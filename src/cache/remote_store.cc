#include "src/cache/remote_store.h"

#include <sstream>
#include <utility>

namespace flashps::cache {

RemoteActivationStore::RemoteActivationStore(RemoteStoreOptions options)
    : options_(std::move(options)) {
  net::CacheClientOptions copts;
  copts.connect_attempts = options_.connect_attempts;
  copts.connect_backoff = options_.connect_backoff;
  copts.call_timeout = options_.call_timeout;
  client_ = std::make_unique<net::CacheClient>(options_.host, options_.port,
                                               copts);
}

RemoteActivationStore::~RemoteActivationStore() = default;

void RemoteActivationStore::InstallFront(
    int template_id, std::shared_ptr<const model::ActivationRecord> record) {
  if (options_.lru_capacity == 0) {
    return;
  }
  auto it = front_.find(template_id);
  if (it != front_.end()) {
    // Upgrade/refresh in place (e.g. a K/V record replacing a Y-only one).
    it->second.record = std::move(record);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (front_.size() >= options_.lru_capacity) {
    const int victim = lru_.back();
    lru_.pop_back();
    front_.erase(victim);
  }
  FrontEntry entry;
  entry.record = std::move(record);
  lru_.push_front(template_id);
  entry.lru_it = lru_.begin();
  front_.emplace(template_id, std::move(entry));
}

std::shared_ptr<const model::ActivationRecord>
RemoteActivationStore::Acquire(const model::DiffusionModel& m,
                               int template_id, bool record_kv) {
  const int64_t flight_key =
      static_cast<int64_t>(template_id) * 2 + (record_kv ? 1 : 0);
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto fit = front_.find(template_id);
    if (fit != front_.end() &&
        (!record_kv || fit->second.record->has_kv())) {
      ++stats_.front_hits;
      lru_.splice(lru_.begin(), lru_, fit->second.lru_it);
      return fit->second.record;
    }
    auto flit = flights_.find(flight_key);
    if (flit != flights_.end()) {
      // Someone is already fetching this key; share their result.
      ++stats_.singleflight_waits;
      flight = flit->second;
      cv_.wait(lock, [&] { return flight->done; });
      return flight->result;
    }
    flight = std::make_shared<Flight>();
    flights_.emplace(flight_key, flight);
  }

  std::shared_ptr<const model::ActivationRecord> record =
      FetchOrRegister(m, template_id, record_kv);

  {
    std::lock_guard<std::mutex> lock(mu_);
    InstallFront(template_id, record);
    flight->result = record;
    flight->done = true;
    flights_.erase(flight_key);
  }
  cv_.notify_all();
  return record;
}

std::shared_ptr<const model::ActivationRecord>
RemoteActivationStore::FetchOrRegister(const model::DiffusionModel& m,
                                       int template_id, bool record_kv) {
  std::lock_guard<std::mutex> rpc_lock(rpc_mu_);
  const auto now = std::chrono::steady_clock::now();
  bool try_remote = now >= degraded_until_;

  if (try_remote) {
    const auto t0 = std::chrono::steady_clock::now();
    net::FetchRecordResult fetched = client_->FetchRecord(
        template_id, m.config().num_steps, m.config().num_blocks, record_kv);
    if (fetched.transport_ok) {
      consecutive_failures_ = 0;
      if (fetched.complete) {
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.remote_hits;
        stats_.remote_bytes_fetched += fetched.bytes;
        fetch_us_.Add(static_cast<double>(us));
        return fetched.record;
      }
      // Reachable node, record not resident: register locally and publish
      // it so the next worker in the fleet hits.
      auto record = std::make_shared<model::ActivationRecord>(
          m.Register(template_id, record_kv));
      uint64_t put_bytes = 0;
      bool put_ok = false;
      if (options_.put_on_miss) {
        net::PutRecordResult put = client_->PutRecord(template_id, *record);
        put_ok = put.transport_ok;
        put_bytes = put.bytes;
        if (!put_ok) {
          ++consecutive_failures_;
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.remote_misses;
      ++stats_.local_registrations;
      if (put_ok) {
        ++stats_.puts_ok;
        stats_.remote_bytes_put += put_bytes;
      }
      return record;
    }
    // Transport failure: count toward the circuit breaker.
    ++consecutive_failures_;
    if (consecutive_failures_ >= options_.max_consecutive_failures) {
      degraded_until_ =
          std::chrono::steady_clock::now() + options_.degrade_cooldown;
      consecutive_failures_ = 0;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.degrade_trips;
    }
  }

  // Degraded (circuit open) or the fetch transport just died: the worker
  // must never fail a request because the cache tier is down.
  auto record = std::make_shared<model::ActivationRecord>(
      m.Register(template_id, record_kv));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fallbacks;
  ++stats_.local_registrations;
  return record;
}

RemoteStoreStats RemoteActivationStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RemoteStoreStats out = stats_;
  out.front_size = front_.size();
  if (!fetch_us_.empty()) {
    out.fetch_p50_us = fetch_us_.P50();
    out.fetch_p99_us = fetch_us_.P99();
  }
  return out;
}

std::string RemoteActivationStore::MetricsJson() const {
  const RemoteStoreStats s = Stats();
  std::ostringstream os;
  os << "{\"kind\":\"remote\""
     << ",\"front_hits\":" << s.front_hits
     << ",\"remote_hits\":" << s.remote_hits
     << ",\"remote_misses\":" << s.remote_misses
     << ",\"fallbacks\":" << s.fallbacks
     << ",\"singleflight_waits\":" << s.singleflight_waits
     << ",\"local_registrations\":" << s.local_registrations
     << ",\"puts_ok\":" << s.puts_ok
     << ",\"degrade_trips\":" << s.degrade_trips
     << ",\"remote_bytes_fetched\":" << s.remote_bytes_fetched
     << ",\"remote_bytes_put\":" << s.remote_bytes_put
     << ",\"front_size\":" << s.front_size
     << ",\"fetch_p50_us\":" << s.fetch_p50_us
     << ",\"fetch_p99_us\":" << s.fetch_p99_us << "}";
  return os.str();
}

}  // namespace flashps::cache
