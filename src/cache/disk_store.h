// File-backed activation storage: the secondary tier of §4.2 with real I/O.
//
// Activation records serialize to a compact binary format (one file per
// template) under a spill directory. CacheEngine models the *timing* of this
// tier in virtual time; DiskActivationStore provides the actual bytes for
// the numerics path, so host memory can hold only the hot set even in real
// (non-simulated) use.
#ifndef FLASHPS_SRC_CACHE_DISK_STORE_H_
#define FLASHPS_SRC_CACHE_DISK_STORE_H_

#include <filesystem>
#include <optional>
#include <string>

#include "src/model/diffusion_model.h"

namespace flashps::cache {

// Binary (de)serialization of activation records. Format: a small header
// (magic, version, step/block counts, kv flag, matrix dims) followed by
// raw row-major float payloads. Throws std::runtime_error on malformed
// input.
std::string SerializeRecord(const model::ActivationRecord& record);
model::ActivationRecord DeserializeRecord(const std::string& bytes);

class DiskActivationStore {
 public:
  // Files live under `directory` (created if absent) as
  // `template_<id>.actv`.
  explicit DiskActivationStore(std::filesystem::path directory);

  // Writes (or overwrites) a template's record. Returns bytes written.
  size_t Put(int template_id, const model::ActivationRecord& record);

  // Reads a record back; nullopt if the template has never been stored.
  std::optional<model::ActivationRecord> Get(int template_id) const;

  bool Contains(int template_id) const;
  // Removes the file; no-op if absent.
  void Evict(int template_id);
  // Total bytes on disk across all stored templates.
  uint64_t DiskBytes() const;

  const std::filesystem::path& directory() const { return directory_; }

 private:
  std::filesystem::path PathFor(int template_id) const;

  std::filesystem::path directory_;
};

}  // namespace flashps::cache

#endif  // FLASHPS_SRC_CACHE_DISK_STORE_H_
