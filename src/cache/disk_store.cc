#include "src/cache/disk_store.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace flashps::cache {

namespace {

constexpr uint32_t kMagic = 0xF1A54A50;  // "FlAsHPS0"-ish tag.
constexpr uint32_t kVersion = 1;

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t ReadU32(const std::string& in, size_t& pos) {
  if (pos + sizeof(uint32_t) > in.size()) {
    throw std::runtime_error("activation record: truncated header");
  }
  uint32_t v = 0;
  std::memcpy(&v, in.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}

void AppendMatrix(std::string& out, const Matrix& m) {
  AppendU32(out, static_cast<uint32_t>(m.rows()));
  AppendU32(out, static_cast<uint32_t>(m.cols()));
  out.append(reinterpret_cast<const char*>(m.data()), m.bytes());
}

Matrix ReadMatrix(const std::string& in, size_t& pos) {
  const uint32_t rows = ReadU32(in, pos);
  const uint32_t cols = ReadU32(in, pos);
  Matrix m(static_cast<int>(rows), static_cast<int>(cols));
  if (pos + m.bytes() > in.size()) {
    throw std::runtime_error("activation record: truncated payload");
  }
  std::memcpy(m.data(), in.data() + pos, m.bytes());
  pos += m.bytes();
  return m;
}

}  // namespace

std::string SerializeRecord(const model::ActivationRecord& record) {
  std::string out;
  AppendU32(out, kMagic);
  AppendU32(out, kVersion);
  AppendU32(out, static_cast<uint32_t>(record.steps.size()));
  const uint32_t blocks =
      record.steps.empty() ? 0
                           : static_cast<uint32_t>(record.steps[0].y.size());
  AppendU32(out, blocks);
  AppendU32(out, record.has_kv() ? 1 : 0);
  for (const auto& step : record.steps) {
    if (step.y.size() != blocks ||
        (record.has_kv() && (step.k.size() != blocks || step.v.size() != blocks))) {
      throw std::runtime_error("activation record: ragged steps");
    }
    for (const auto& y : step.y) {
      AppendMatrix(out, y);
    }
    for (const auto& k : step.k) {
      AppendMatrix(out, k);
    }
    for (const auto& v : step.v) {
      AppendMatrix(out, v);
    }
  }
  return out;
}

model::ActivationRecord DeserializeRecord(const std::string& bytes) {
  size_t pos = 0;
  if (ReadU32(bytes, pos) != kMagic) {
    throw std::runtime_error("activation record: bad magic");
  }
  if (ReadU32(bytes, pos) != kVersion) {
    throw std::runtime_error("activation record: unsupported version");
  }
  const uint32_t steps = ReadU32(bytes, pos);
  const uint32_t blocks = ReadU32(bytes, pos);
  const bool has_kv = ReadU32(bytes, pos) != 0;

  model::ActivationRecord record;
  record.steps.resize(steps);
  for (auto& step : record.steps) {
    step.y.reserve(blocks);
    for (uint32_t b = 0; b < blocks; ++b) {
      step.y.push_back(ReadMatrix(bytes, pos));
    }
    if (has_kv) {
      for (uint32_t b = 0; b < blocks; ++b) {
        step.k.push_back(ReadMatrix(bytes, pos));
      }
      for (uint32_t b = 0; b < blocks; ++b) {
        step.v.push_back(ReadMatrix(bytes, pos));
      }
    }
  }
  if (pos != bytes.size()) {
    throw std::runtime_error("activation record: trailing bytes");
  }
  return record;
}

DiskActivationStore::DiskActivationStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::filesystem::path DiskActivationStore::PathFor(int template_id) const {
  return directory_ / ("template_" + std::to_string(template_id) + ".actv");
}

size_t DiskActivationStore::Put(int template_id,
                                const model::ActivationRecord& record) {
  const std::string bytes = SerializeRecord(record);
  std::ofstream out(PathFor(template_id), std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("disk store: cannot open file for write");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("disk store: short write");
  }
  return bytes.size();
}

std::optional<model::ActivationRecord> DiskActivationStore::Get(
    int template_id) const {
  std::ifstream in(PathFor(template_id), std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return DeserializeRecord(bytes);
}

bool DiskActivationStore::Contains(int template_id) const {
  return std::filesystem::exists(PathFor(template_id));
}

void DiskActivationStore::Evict(int template_id) {
  std::error_code ec;
  std::filesystem::remove(PathFor(template_id), ec);
}

uint64_t DiskActivationStore::DiskBytes() const {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.is_regular_file() && entry.path().extension() == ".actv") {
      total += entry.file_size();
    }
  }
  return total;
}

}  // namespace flashps::cache
