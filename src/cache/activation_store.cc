#include "src/cache/activation_store.h"

#include <sstream>

namespace flashps::cache {

std::shared_ptr<const model::ActivationRecord> ActivationStore::Acquire(
    const model::DiffusionModel& m, int template_id, bool record_kv) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(template_id);
  if (it != records_.end() && (!record_kv || it->second->has_kv())) {
    ++local_hits_;
    return it->second;
  }
  auto record = std::make_shared<model::ActivationRecord>(
      m.Register(template_id, record_kv));
  ++registrations_;
  auto& slot = records_[template_id];
  slot = std::move(record);
  return slot;
}

const model::ActivationRecord& ActivationStore::GetOrRegister(
    const model::DiffusionModel& m, int template_id, bool record_kv) {
  // The map retains its own reference, so the returned alias stays valid
  // for the store's lifetime (this store never evicts).
  return *Acquire(m, template_id, record_kv);
}

size_t ActivationStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [id, record] : records_) {
    total += record->TotalBytes();
  }
  return total;
}

std::string ActivationStore::MetricsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"kind\":\"local\",\"registrations\":" << registrations_
     << ",\"local_hits\":" << local_hits_
     << ",\"templates\":" << records_.size() << "}";
  return os.str();
}

}  // namespace flashps::cache
