#include "src/cache/activation_store.h"

namespace flashps::cache {

const model::ActivationRecord& ActivationStore::GetOrRegister(
    const model::DiffusionModel& m, int template_id, bool record_kv) {
  auto it = records_.find(template_id);
  if (it != records_.end() && (!record_kv || it->second->has_kv())) {
    return *it->second;
  }
  auto record = std::make_unique<model::ActivationRecord>(
      m.Register(template_id, record_kv));
  auto& slot = records_[template_id];
  slot = std::move(record);
  return *slot;
}

size_t ActivationStore::TotalBytes() const {
  size_t total = 0;
  for (const auto& [id, record] : records_) {
    total += record->TotalBytes();
  }
  return total;
}

}  // namespace flashps::cache
