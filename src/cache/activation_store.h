// In-memory store of real activation records keyed by template, used by the
// numerics path (examples, quality benchmarks) and — through the
// ActivationSource interface — by the online serving tier, where the
// records may instead come from a shared cache node over the wire
// (cache::RemoteActivationStore). The timing path uses CacheEngine, which
// manages the same caches as byte-sized resources in virtual time; this
// class holds the actual matrices.
#ifndef FLASHPS_SRC_CACHE_ACTIVATION_STORE_H_
#define FLASHPS_SRC_CACHE_ACTIVATION_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/model/diffusion_model.h"

namespace flashps::cache {

// Where a worker's template activations come from. The serving runtime
// programs against this, so the backing store can be the worker-local
// ActivationStore below or a RemoteActivationStore fronting a shared
// cache node — the denoise loop cannot tell the difference.
//
// Acquire() returns a shared_ptr pin: the caller holds the record for the
// lifetime of its request, so a source that evicts (LRU fronts, remote
// stores) can drop its own reference without invalidating in-flight work.
class ActivationSource {
 public:
  virtual ~ActivationSource() = default;

  // Returns the template's activation record, obtaining it however the
  // source does (local registration pass, remote fetch, ...). Never
  // returns null: every source must degrade to local registration rather
  // than fail the request.
  virtual std::shared_ptr<const model::ActivationRecord> Acquire(
      const model::DiffusionModel& m, int template_id, bool record_kv) = 0;

  // Hint that `template_id` will be Acquire()d soon (the request is queued
  // behind earlier work). Sources that can overlap a slow acquisition with
  // the predecessor's compute start it in the background — Algorithm 1's
  // load/compute overlap, extended past the step loop to the serving tier.
  // Must return fast and never block on the acquisition itself; `m` is
  // only read during the call (nothing may retain it — the hinting request
  // may outlive the hinted-at worker's model). Default: no-op, which is
  // always correct — a hint dropped on the floor just means the later
  // Acquire() pays the full cost, exactly as without prefetch.
  virtual void Prefetch(const model::DiffusionModel& m, int template_id,
                        bool record_kv) {
    (void)m;
    (void)template_id;
    (void)record_kv;
  }

  // Flat JSON of the source's counters, spliced into serving metrics.
  virtual std::string MetricsJson() const = 0;
};

// The worker-local source: records live in this process, registered on
// first use, never evicted.
class ActivationStore : public ActivationSource {
 public:
  // Returns the template's activation record, running a registration pass on
  // first use (the paper's observation: templates are reused ~35k times, so
  // registration cost amortizes to nothing).
  const model::ActivationRecord& GetOrRegister(const model::DiffusionModel& m,
                                               int template_id,
                                               bool record_kv = false);

  // ActivationSource: same records, pinned. Thread-safe like the rest of
  // this class (one mutex; registration runs under it, which is fine —
  // concurrent workers sharing one local store serialize registration
  // exactly like the single-owner case they replaced).
  std::shared_ptr<const model::ActivationRecord> Acquire(
      const model::DiffusionModel& m, int template_id,
      bool record_kv) override;
  std::string MetricsJson() const override;

  bool Contains(int template_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.contains(template_id);
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }
  size_t TotalBytes() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<int, std::shared_ptr<model::ActivationRecord>> records_;
  uint64_t registrations_ = 0;  // Under mu_.
  uint64_t local_hits_ = 0;     // Under mu_.
};

}  // namespace flashps::cache

#endif  // FLASHPS_SRC_CACHE_ACTIVATION_STORE_H_
