// In-memory store of real activation records keyed by template, used by the
// numerics path (examples, quality benchmarks). The timing path uses
// CacheEngine, which manages the same caches as byte-sized resources in
// virtual time; this class holds the actual matrices.
#ifndef FLASHPS_SRC_CACHE_ACTIVATION_STORE_H_
#define FLASHPS_SRC_CACHE_ACTIVATION_STORE_H_

#include <memory>
#include <unordered_map>

#include "src/model/diffusion_model.h"

namespace flashps::cache {

class ActivationStore {
 public:
  // Returns the template's activation record, running a registration pass on
  // first use (the paper's observation: templates are reused ~35k times, so
  // registration cost amortizes to nothing).
  const model::ActivationRecord& GetOrRegister(const model::DiffusionModel& m,
                                               int template_id,
                                               bool record_kv = false);

  bool Contains(int template_id) const {
    return records_.contains(template_id);
  }
  size_t size() const { return records_.size(); }
  size_t TotalBytes() const;

 private:
  std::unordered_map<int, std::unique_ptr<model::ActivationRecord>> records_;
};

}  // namespace flashps::cache

#endif  // FLASHPS_SRC_CACHE_ACTIVATION_STORE_H_
