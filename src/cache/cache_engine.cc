#include "src/cache/cache_engine.h"

#include <cassert>

namespace flashps::cache {

CacheEngine::CacheEngine(uint64_t host_capacity_bytes, device::DeviceSpec spec)
    : host_capacity_(host_capacity_bytes), spec_(spec) {}

void CacheEngine::RegisterTemplate(int template_id, uint64_t bytes,
                                   TimePoint now) {
  assert(bytes > 0);
  auto [it, inserted] = entries_.try_emplace(template_id);
  Entry& e = it->second;
  if (!inserted) {
    return;  // Already registered.
  }
  e.bytes = bytes;
  if (bytes <= host_capacity_) {
    EvictForSpace(bytes);
    e.host_resident = true;
    e.host_ready = now;
    lru_.push_front(template_id);
    e.lru_it = lru_.begin();
    host_bytes_used_ += bytes;
    stats_.host_bytes_used = host_bytes_used_;
  }
}

bool CacheEngine::IsRegistered(int template_id) const {
  return entries_.contains(template_id);
}

Tier CacheEngine::Locate(int template_id) const {
  const auto it = entries_.find(template_id);
  if (it == entries_.end()) {
    return Tier::kUnknown;
  }
  return it->second.host_resident ? Tier::kHost : Tier::kDisk;
}

TimePoint CacheEngine::EnsureHostResident(int template_id, TimePoint now) {
  auto it = entries_.find(template_id);
  assert(it != entries_.end() && "template not registered");
  Entry& e = it->second;
  if (e.host_resident) {
    // A hit is a use: refresh recency so hot templates stay resident.
    lru_.erase(e.lru_it);
    lru_.push_front(template_id);
    e.lru_it = lru_.begin();
    if (e.host_ready <= now) {
      ++stats_.host_hits;
      return now;
    }
    // Promotion still in flight.
    return e.host_ready;
  }
  // Start a promotion on the disk timeline (overlaps with queueing).
  assert(e.bytes <= host_capacity_ && "cache larger than host tier");
  EvictForSpace(e.bytes);
  const auto span = disk_timeline_.Enqueue(now, spec_.DiskLatency(e.bytes));
  e.host_resident = true;
  e.host_ready = span.end;
  lru_.push_front(template_id);
  e.lru_it = lru_.begin();
  host_bytes_used_ += e.bytes;
  stats_.host_bytes_used = host_bytes_used_;
  ++stats_.disk_promotions;
  return span.end;
}

void CacheEngine::Touch(int template_id, TimePoint now) {
  (void)now;
  auto it = entries_.find(template_id);
  if (it == entries_.end() || !it->second.host_resident) {
    return;
  }
  lru_.erase(it->second.lru_it);
  lru_.push_front(template_id);
  it->second.lru_it = lru_.begin();
}

void CacheEngine::EvictForSpace(uint64_t bytes) {
  while (host_bytes_used_ + bytes > host_capacity_ && !lru_.empty()) {
    const int victim = lru_.back();
    lru_.pop_back();
    Entry& e = entries_.at(victim);
    e.host_resident = false;
    host_bytes_used_ -= e.bytes;
    ++stats_.evictions;
  }
  stats_.host_bytes_used = host_bytes_used_;
}

}  // namespace flashps::cache
