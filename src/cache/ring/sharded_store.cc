#include "src/cache/ring/sharded_store.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace flashps::cache {

ShardedRemoteStore::ShardedRemoteStore(ShardedStoreOptions options)
    : options_(std::move(options)),
      ring_([this] {
        CacheRingOptions ring_options;
        ring_options.members = options_.nodes;
        ring_options.virtual_nodes = options_.virtual_nodes;
        return ring_options;
      }()) {
  replication_ = std::clamp(options_.replication, 1,
                            static_cast<int>(std::max<size_t>(1, ring_.size())));

  net::CacheClientOptions copts;
  copts.connect_attempts = options_.connect_attempts;
  copts.connect_backoff = options_.connect_backoff;
  copts.call_timeout = options_.call_timeout;
  copts.auth_token = options_.auth_token;
  // Per member: enough connections that every prefetch worker plus one
  // foreground fetch can be on the wire against the SAME member at once —
  // a Zipf head means bursts do concentrate on one node.
  int pool_size = std::max(1, options_.connections_per_member);
  if (options_.prefetch_workers > 0) {
    pool_size = std::max(pool_size, options_.prefetch_workers + 1);
  }
  members_.reserve(ring_.size());
  stats_.members.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    Member member;
    member.pool = std::make_unique<net::CacheClientPool>(
        ring_.member(i).host, ring_.member(i).port, copts, pool_size);
    members_.push_back(std::move(member));
    RingMemberStats member_stats;
    member_stats.id = ring_.member(i).id();
    stats_.members.push_back(std::move(member_stats));
  }
  for (int i = 0; i < options_.prefetch_workers; ++i) {
    prefetch_threads_.emplace_back([this] { PrefetchLoop(); });
  }
}

ShardedRemoteStore::~ShardedRemoteStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    prefetch_stop_ = true;
    for (const PrefetchJob& job : prefetch_queue_) {
      auto it = flights_.find(job.flight_key);
      if (it != flights_.end()) {
        it->second->done = true;
        flights_.erase(it);
      }
    }
    prefetch_queue_.clear();
  }
  prefetch_cv_.notify_all();
  cv_.notify_all();
  for (std::thread& t : prefetch_threads_) {
    t.join();
  }
}

void ShardedRemoteStore::InstallFront(
    int template_id, std::shared_ptr<const model::ActivationRecord> record) {
  auto sit = staged_.find(template_id);
  if (sit != staged_.end() &&
      (record->has_kv() || !sit->second.record->has_kv())) {
    staged_.erase(sit);
    ++stats_.prefetch_wasted;
  }
  if (options_.lru_capacity == 0) {
    return;
  }
  auto it = front_.find(template_id);
  if (it != front_.end()) {
    it->second.record = std::move(record);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (front_.size() >= options_.lru_capacity) {
    const int victim = lru_.back();
    lru_.pop_back();
    front_.erase(victim);
  }
  FrontEntry entry;
  entry.record = std::move(record);
  lru_.push_front(template_id);
  entry.lru_it = lru_.begin();
  front_.emplace(template_id, std::move(entry));
}

void ShardedRemoteStore::InstallStaged(
    int template_id, std::shared_ptr<const model::ActivationRecord> record) {
  auto fit = front_.find(template_id);
  if (fit != front_.end() &&
      (fit->second.record->has_kv() || !record->has_kv())) {
    ++stats_.prefetch_wasted;
    return;
  }
  auto sit = staged_.find(template_id);
  if (sit != staged_.end()) {
    ++stats_.prefetch_wasted;
    sit->second.record = std::move(record);
    sit->second.order = staged_order_++;
    return;
  }
  while (staged_.size() >= options_.prefetch_staging_cap && !staged_.empty()) {
    auto oldest = staged_.begin();
    for (auto it = staged_.begin(); it != staged_.end(); ++it) {
      if (it->second.order < oldest->second.order) {
        oldest = it;
      }
    }
    staged_.erase(oldest);
    ++stats_.prefetch_wasted;
  }
  StagedEntry entry;
  entry.record = std::move(record);
  entry.order = staged_order_++;
  staged_.emplace(template_id, std::move(entry));
}

bool ShardedRemoteStore::CircuitClosed(size_t member) {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return std::chrono::steady_clock::now() >= members_[member].degraded_until;
}

bool ShardedRemoteStore::AnyMemberReachable() {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(breaker_mu_);
  for (const Member& member : members_) {
    if (now >= member.degraded_until) {
      return true;
    }
  }
  return false;
}

void ShardedRemoteStore::NoteTransport(size_t member, bool ok) {
  bool tripped = false;
  {
    std::lock_guard<std::mutex> lock(breaker_mu_);
    Member& m = members_[member];
    if (ok) {
      m.consecutive_failures = 0;
    } else {
      ++m.consecutive_failures;
      if (m.consecutive_failures >= options_.max_consecutive_failures) {
        m.degraded_until =
            std::chrono::steady_clock::now() + options_.degrade_cooldown;
        m.consecutive_failures = 0;
        tripped = true;
      }
    }
  }
  if (!ok || tripped) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ok) {
      ++stats_.members[member].transport_failures;
    }
    if (tripped) {
      ++stats_.members[member].circuit_trips;
      ++stats_.degrade_trips;
    }
  }
}

ShardedRemoteStore::RingFetchResult ShardedRemoteStore::RingFetch(
    int template_id, int steps, int blocks, bool want_kv) {
  RingFetchResult result;
  const std::vector<int> prefs = ring_.PreferenceList(template_id);
  for (int idx : prefs) {
    if (result.record != nullptr || result.reachable >= replication_) {
      break;
    }
    const size_t member = static_cast<size_t>(idx);
    if (!CircuitClosed(member)) {
      // This member's ranges have shifted to its successors for the
      // duration of the cooldown.
      ++result.failovers;
      continue;
    }
    net::CacheClientPool::Lease lease = members_[member].pool->Checkout();
    const auto t0 = std::chrono::steady_clock::now();
    net::FetchRecordResult fetched =
        lease->FetchRecord(template_id, steps, blocks, want_kv);
    NoteTransport(member, fetched.transport_ok);
    if (!fetched.transport_ok) {
      ++result.failovers;
      continue;
    }
    ++result.reachable;
    if (fetched.complete) {
      result.record = std::move(fetched.record);
      result.hit_member = idx;
      result.bytes = fetched.bytes;
      result.wire_bytes = fetched.wire_bytes;
      result.fetch_us = static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      result.missed.push_back(idx);
    }
  }

  // Read repair: a hit on replica j back-fills every earlier reachable
  // replica that missed, so the next fetch for this template hits its
  // primary again. Best effort — a failed repair only counts against the
  // target's circuit.
  if (result.record != nullptr && options_.read_repair) {
    for (int idx : result.missed) {
      const size_t member = static_cast<size_t>(idx);
      net::CacheClientPool::Lease lease = members_[member].pool->Checkout();
      net::PutRecordResult put = lease->PutRecord(
          template_id, *result.record, options_.precision);
      NoteTransport(member, put.transport_ok);
      if (put.transport_ok) {
        ++result.repairs;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.members[member].read_repairs;
        stats_.members[member].bytes_put += put.bytes;
        stats_.members[member].wire_bytes_put += put.wire_bytes;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.hit_member >= 0) {
      RingMemberStats& hit = stats_.members[static_cast<size_t>(
          result.hit_member)];
      ++hit.remote_hits;
      hit.bytes_fetched += result.bytes;
      hit.wire_bytes_fetched += result.wire_bytes;
    }
    for (int idx : result.missed) {
      ++stats_.members[static_cast<size_t>(idx)].remote_misses;
    }
  }
  return result;
}

int ShardedRemoteStore::Replicate(int template_id,
                                  const model::ActivationRecord& record) {
  int acked = 0;
  for (int idx : ring_.PreferenceList(template_id)) {
    if (acked >= replication_) {
      break;
    }
    const size_t member = static_cast<size_t>(idx);
    if (!CircuitClosed(member)) {
      continue;
    }
    net::CacheClientPool::Lease lease = members_[member].pool->Checkout();
    net::PutRecordResult put =
        lease->PutRecord(template_id, record, options_.precision);
    NoteTransport(member, put.transport_ok);
    if (put.transport_ok) {
      ++acked;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.members[member].puts_ok;
      stats_.members[member].bytes_put += put.bytes;
      stats_.members[member].wire_bytes_put += put.wire_bytes;
      ++stats_.puts_ok;
      stats_.remote_bytes_put += put.bytes;
      stats_.remote_wire_bytes_put += put.wire_bytes;
    }
  }
  return acked;
}

std::shared_ptr<const model::ActivationRecord>
ShardedRemoteStore::FetchOrRegister(const model::DiffusionModel& m,
                                    int template_id, bool record_kv) {
  RingFetchResult fetched = RingFetch(template_id, m.config().num_steps,
                                      m.config().num_blocks, record_kv);
  if (fetched.record != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.remote_hits;
    stats_.remote_bytes_fetched += fetched.bytes;
    stats_.remote_wire_bytes_fetched += fetched.wire_bytes;
    stats_.failovers += static_cast<uint64_t>(fetched.failovers);
    stats_.read_repairs += static_cast<uint64_t>(fetched.repairs);
    fetch_us_.Add(fetched.fetch_us);
    return fetched.record;
  }

  // Miss (some member answered) or fallback (nobody reachable): either
  // way the worker must never fail the request.
  auto record = std::make_shared<model::ActivationRecord>(
      m.Register(template_id, record_kv));
  if (fetched.reachable > 0) {
    if (options_.put_on_miss) {
      Replicate(template_id, *record);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.remote_misses;
    ++stats_.local_registrations;
    stats_.failovers += static_cast<uint64_t>(fetched.failovers);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.fallbacks;
    ++stats_.local_registrations;
    stats_.failovers += static_cast<uint64_t>(fetched.failovers);
  }
  return record;
}

std::shared_ptr<const model::ActivationRecord> ShardedRemoteStore::Acquire(
    const model::DiffusionModel& m, int template_id, bool record_kv) {
  const int64_t flight_key = FlightKey(template_id, record_kv);
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto fit = front_.find(template_id);
      if (fit != front_.end() &&
          (!record_kv || fit->second.record->has_kv())) {
        ++stats_.front_hits;
        lru_.splice(lru_.begin(), lru_, fit->second.lru_it);
        return fit->second.record;
      }
      auto sit = staged_.find(template_id);
      if (sit != staged_.end() &&
          (!record_kv || sit->second.record->has_kv())) {
        auto record = std::move(sit->second.record);
        staged_.erase(sit);
        ++stats_.prefetch_coalesced;
        InstallFront(template_id, record);
        return record;
      }
      auto flit = flights_.find(flight_key);
      if (flit == flights_.end()) {
        break;
      }
      std::shared_ptr<Flight> joined = flit->second;
      joined->joined = true;
      const bool was_prefetch = joined->prefetch;
      cv_.wait(lock, [&] { return joined->done; });
      if (joined->result != nullptr) {
        if (was_prefetch) {
          ++stats_.prefetch_coalesced;
        } else {
          ++stats_.singleflight_waits;
        }
        return joined->result;
      }
    }
    flight = std::make_shared<Flight>();
    flights_.emplace(flight_key, flight);
  }

  std::shared_ptr<const model::ActivationRecord> record =
      FetchOrRegister(m, template_id, record_kv);

  {
    std::lock_guard<std::mutex> lock(mu_);
    InstallFront(template_id, record);
    flight->result = record;
    flight->done = true;
    flights_.erase(flight_key);
  }
  cv_.notify_all();
  return record;
}

void ShardedRemoteStore::Prefetch(const model::DiffusionModel& m,
                                  int template_id, bool record_kv) {
  if (options_.prefetch_workers <= 0) {
    return;
  }
  PrefetchJob job;
  job.flight_key = FlightKey(template_id, record_kv);
  job.template_id = template_id;
  job.steps = m.config().num_steps;
  job.blocks = m.config().num_blocks;
  job.want_kv = record_kv;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (prefetch_stop_) {
      return;
    }
    auto fit = front_.find(template_id);
    if (fit != front_.end() &&
        (!record_kv || fit->second.record->has_kv())) {
      ++stats_.prefetch_redundant;
      return;
    }
    auto sit = staged_.find(template_id);
    if (sit != staged_.end() &&
        (!record_kv || sit->second.record->has_kv())) {
      ++stats_.prefetch_redundant;
      return;
    }
    if (flights_.contains(job.flight_key)) {
      ++stats_.prefetch_redundant;
      return;
    }
    if (!AnyMemberReachable()) {
      // The whole ring just proved unreachable; speculative fetches would
      // only burn workers on timeouts.
      ++stats_.prefetch_suppressed;
      return;
    }
    if (prefetch_queue_.size() >= options_.prefetch_queue_cap) {
      ++stats_.prefetch_dropped;
      return;
    }
    auto flight = std::make_shared<Flight>();
    flight->prefetch = true;
    flights_.emplace(job.flight_key, flight);
    prefetch_queue_.push_back(job);
    ++stats_.prefetch_issued;
  }
  prefetch_cv_.notify_one();
}

void ShardedRemoteStore::PrefetchLoop() {
  for (;;) {
    PrefetchJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      prefetch_cv_.wait(lock, [&] {
        return prefetch_stop_ || !prefetch_queue_.empty();
      });
      if (prefetch_stop_) {
        return;
      }
      job = prefetch_queue_.front();
      prefetch_queue_.pop_front();
    }

    RingFetchResult fetched;
    if (AnyMemberReachable()) {
      fetched = RingFetch(job.template_id, job.steps, job.blocks,
                          job.want_kv);
    }
    // A prefetch cannot register locally (it has no model); a miss or a
    // fully dead ring resolves the flight empty and the foreground runs
    // the ladder itself.

    std::shared_ptr<model::ActivationRecord> record =
        std::move(fetched.record);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.failovers += static_cast<uint64_t>(fetched.failovers);
      stats_.read_repairs += static_cast<uint64_t>(fetched.repairs);
      if (record != nullptr) {
        ++stats_.prefetch_remote_hits;
        stats_.prefetch_bytes_fetched += fetched.bytes;
        stats_.prefetch_wire_bytes_fetched += fetched.wire_bytes;
        prefetch_us_.Add(fetched.fetch_us);
      } else if (fetched.reachable > 0) {
        ++stats_.prefetch_remote_misses;
      } else {
        ++stats_.prefetch_fallbacks;
      }
      auto it = flights_.find(job.flight_key);
      if (it != flights_.end()) {
        if (record != nullptr) {
          if (it->second->joined) {
            InstallFront(job.template_id, record);
          } else {
            InstallStaged(job.template_id, record);
          }
          it->second->result = std::move(record);
        }
        it->second->done = true;
        flights_.erase(it);
      }
    }
    cv_.notify_all();
  }
}

std::vector<bool> ShardedRemoteStore::ProbeMembers(
    std::chrono::milliseconds timeout) {
  std::vector<bool> alive(members_.size(), false);
  for (size_t i = 0; i < members_.size(); ++i) {
    net::CacheClientPool::Lease lease = members_[i].pool->Checkout();
    alive[i] = lease->Probe(timeout);
    NoteTransport(i, alive[i]);
  }
  return alive;
}

ShardedStoreStats ShardedRemoteStore::Stats() const {
  ShardedStoreStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
    out.front_size = front_.size();
    out.prefetch_staged = staged_.size();
    if (!fetch_us_.empty()) {
      out.fetch_p50_us = fetch_us_.P50();
      out.fetch_p99_us = fetch_us_.P99();
    }
    if (!prefetch_us_.empty()) {
      out.prefetch_p50_us = prefetch_us_.P50();
      out.prefetch_p99_us = prefetch_us_.P99();
    }
  }
  // Sample the circuit gauges outside mu_ (breaker_mu_ is never nested
  // with it).
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(breaker_mu_);
  for (size_t i = 0; i < out.members.size() && i < members_.size(); ++i) {
    out.members[i].circuit_open = now < members_[i].degraded_until;
  }
  return out;
}

std::string ShardedRemoteStore::MetricsJson() const {
  const ShardedStoreStats s = Stats();
  std::ostringstream os;
  os << "{\"kind\":\"sharded\""
     << ",\"nodes\":" << s.members.size()
     << ",\"replication\":" << replication_
     << ",\"front_hits\":" << s.front_hits
     << ",\"remote_hits\":" << s.remote_hits
     << ",\"remote_misses\":" << s.remote_misses
     << ",\"fallbacks\":" << s.fallbacks
     << ",\"singleflight_waits\":" << s.singleflight_waits
     << ",\"local_registrations\":" << s.local_registrations
     << ",\"puts_ok\":" << s.puts_ok
     << ",\"read_repairs\":" << s.read_repairs
     << ",\"failovers\":" << s.failovers
     << ",\"degrade_trips\":" << s.degrade_trips
     << ",\"remote_bytes_fetched\":" << s.remote_bytes_fetched
     << ",\"remote_bytes_put\":" << s.remote_bytes_put
     << ",\"remote_wire_bytes_fetched\":" << s.remote_wire_bytes_fetched
     << ",\"remote_wire_bytes_put\":" << s.remote_wire_bytes_put
     << ",\"precision\":\"" << quant::ToString(options_.precision) << "\""
     << ",\"front_size\":" << s.front_size
     << ",\"fetch_p50_us\":" << s.fetch_p50_us
     << ",\"fetch_p99_us\":" << s.fetch_p99_us
     << ",\"prefetch_issued\":" << s.prefetch_issued
     << ",\"prefetch_coalesced\":" << s.prefetch_coalesced
     << ",\"prefetch_wasted\":" << s.prefetch_wasted
     << ",\"prefetch_redundant\":" << s.prefetch_redundant
     << ",\"prefetch_suppressed\":" << s.prefetch_suppressed
     << ",\"prefetch_dropped\":" << s.prefetch_dropped
     << ",\"prefetch_remote_hits\":" << s.prefetch_remote_hits
     << ",\"prefetch_remote_misses\":" << s.prefetch_remote_misses
     << ",\"prefetch_fallbacks\":" << s.prefetch_fallbacks
     << ",\"prefetch_bytes_fetched\":" << s.prefetch_bytes_fetched
     << ",\"prefetch_wire_bytes_fetched\":" << s.prefetch_wire_bytes_fetched
     << ",\"prefetch_staged\":" << s.prefetch_staged
     << ",\"prefetch_p50_us\":" << s.prefetch_p50_us
     << ",\"prefetch_p99_us\":" << s.prefetch_p99_us
     << ",\"members\":[";
  for (size_t i = 0; i < s.members.size(); ++i) {
    const RingMemberStats& m = s.members[i];
    if (i > 0) os << ",";
    os << "{\"id\":\"" << m.id << "\""
       << ",\"remote_hits\":" << m.remote_hits
       << ",\"remote_misses\":" << m.remote_misses
       << ",\"transport_failures\":" << m.transport_failures
       << ",\"circuit_trips\":" << m.circuit_trips
       << ",\"circuit_open\":" << (m.circuit_open ? "true" : "false")
       << ",\"puts_ok\":" << m.puts_ok
       << ",\"read_repairs\":" << m.read_repairs
       << ",\"bytes_fetched\":" << m.bytes_fetched
       << ",\"bytes_put\":" << m.bytes_put
       << ",\"wire_bytes_fetched\":" << m.wire_bytes_fetched
       << ",\"wire_bytes_put\":" << m.wire_bytes_put << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace flashps::cache
