#include "src/cache/ring/cache_ring.h"

#include <algorithm>
#include <cstdlib>

#include "src/net/wire.h"

namespace flashps::cache {

namespace {

// Hash of a template id: FNV-1a over its explicit little-endian bytes, so
// every process computes the same placement regardless of host endianness
// or integer width quirks.
uint64_t TemplateHash(int64_t template_id) {
  uint8_t bytes[8];
  uint64_t v = static_cast<uint64_t>(template_id);
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  return net::Fnv1a64(bytes, sizeof(bytes));
}

}  // namespace

std::vector<RingMember> ParseRingMembers(const std::string& csv,
                                         std::string* error) {
  std::vector<RingMember> members;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string entry =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    start = comma == std::string::npos ? csv.size() + 1 : comma + 1;
    if (entry.empty()) {
      if (error != nullptr) *error = "empty entry in node list";
      return {};
    }
    RingMember member;
    const size_t colon = entry.rfind(':');
    const std::string port_str =
        colon == std::string::npos ? entry : entry.substr(colon + 1);
    if (colon != std::string::npos) {
      member.host = entry.substr(0, colon);
      if (member.host.empty()) {
        if (error != nullptr) *error = "empty host in '" + entry + "'";
        return {};
      }
    }
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (port_str.empty() || end == nullptr || *end != '\0' || port <= 0 ||
        port > 65535) {
      if (error != nullptr) *error = "bad port in '" + entry + "'";
      return {};
    }
    member.port = static_cast<uint16_t>(port);
    members.push_back(std::move(member));
  }
  return members;
}

CacheRing::CacheRing(CacheRingOptions options) {
  members_ = std::move(options.members);
  std::sort(members_.begin(), members_.end(),
            [](const RingMember& a, const RingMember& b) {
              return a.id() < b.id();
            });
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());

  const int vnodes = std::max(1, options.virtual_nodes);
  ring_.reserve(members_.size() * static_cast<size_t>(vnodes));
  for (size_t m = 0; m < members_.size(); ++m) {
    const std::string base = members_[m].id() + "#";
    for (int v = 0; v < vnodes; ++v) {
      const std::string label = base + std::to_string(v);
      ring_.push_back(
          {net::Fnv1a64(label.data(), label.size()), static_cast<int>(m)});
    }
  }
  // Hash ties (astronomically unlikely) break by member index so two
  // processes still sort identically.
  std::sort(ring_.begin(), ring_.end(), [](const VNode& a, const VNode& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.member < b.member;
  });
}

std::vector<int> CacheRing::PreferenceList(int64_t template_id) const {
  std::vector<int> prefs;
  if (members_.empty()) {
    return prefs;
  }
  prefs.reserve(members_.size());
  std::vector<bool> taken(members_.size(), false);
  const uint64_t key = TemplateHash(template_id);
  const auto begin = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const VNode& v, uint64_t h) { return v.hash < h; });
  const size_t start =
      begin == ring_.end() ? 0 : static_cast<size_t>(begin - ring_.begin());
  for (size_t i = 0; i < ring_.size() && prefs.size() < members_.size();
       ++i) {
    const VNode& vnode = ring_[(start + i) % ring_.size()];
    if (!taken[static_cast<size_t>(vnode.member)]) {
      taken[static_cast<size_t>(vnode.member)] = true;
      prefs.push_back(vnode.member);
    }
  }
  return prefs;
}

int CacheRing::PrimaryFor(int64_t template_id) const {
  const std::vector<int> prefs = PreferenceList(template_id);
  return prefs.empty() ? -1 : prefs.front();
}

}  // namespace flashps::cache
