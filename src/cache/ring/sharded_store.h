// ActivationSource backed by a sharded, replicated ring of cache nodes.
//
// Where cache::RemoteActivationStore speaks to exactly one flashps_cached
// node, this store routes every fetch and publish through a CacheRing over
// N of them, converting the cache tier from "a node" into "a fleet":
//
//   placement   — each template maps to an ordered preference list of
//                 nodes (consistent hashing, vnodes, FNV-1a over the
//                 template id). Entry 0 is the primary; the next k-1 are
//                 replicas; the rest is the failover order.
//   replication — a miss-publish and every read repair write the record
//                 to the first `replication` *reachable* members of the
//                 list, so the Zipf head (~970 templates at ~35k reuses,
//                 per the paper's trace analysis) is served by k nodes
//                 instead of melting one.
//   failover    — the fetch walk skips members whose per-member circuit
//                 breaker is open and moves past transport failures to
//                 the next preferred member; a walk only gives up when it
//                 has heard k clean answers or run out of members.
//   read repair — when replica i misses but replica j>i hits, the record
//                 is written back (best effort) to every earlier reachable
//                 replica that missed, healing holes left by node restarts
//                 and membership change without a rebalance pass.
//   fallback    — if no member is reachable, the request registers the
//                 template locally: the "Acquire never fails" invariant is
//                 preserved node-by-node, and one sick member degrades
//                 only its own arcs of the ring.
//
// The PR-5 prefetch pipeline composes unchanged: Prefetch() opens the same
// single-flight entries and the background workers run the same ring walk
// (wire part only — a prefetch never registers locally), with one
// net::CacheClientPool per ring member so prefetches and foreground
// fetches to different nodes never share a socket.
//
// Every counter exists twice: aggregated (the ladder invariant of
// RemoteStoreStats holds identically) and per member, so a sick ring
// member is visible in one MetricsJson() dump instead of averaged away.
#ifndef FLASHPS_SRC_CACHE_RING_SHARDED_STORE_H_
#define FLASHPS_SRC_CACHE_RING_SHARDED_STORE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/activation_store.h"
#include "src/cache/ring/cache_ring.h"
#include "src/common/stats.h"
#include "src/net/cache_client.h"

namespace flashps::cache {

struct ShardedStoreOptions {
  // Ring membership; placement is deterministic in this set (order does
  // not matter — the ring sorts by id).
  std::vector<RingMember> nodes;
  // Replicas per template (clamped to [1, nodes.size()]). 1 = pure
  // sharding, no redundancy.
  int replication = 2;
  int virtual_nodes = 64;

  // In-process front capacity, in records (0 = front disabled).
  size_t lru_capacity = 64;
  // Per-connection transport knobs (same meaning as RemoteStoreOptions).
  int connect_attempts = 2;
  std::chrono::milliseconds connect_backoff{50};
  std::chrono::milliseconds call_timeout{5000};
  // Shared secret presented to every ring member at connect. Empty = no
  // handshake.
  std::string auth_token;
  // Per-member circuit breaker: consecutive transport failures against
  // ONE member open that member's circuit only; the rest of the ring
  // keeps serving its own ranges.
  int max_consecutive_failures = 3;
  std::chrono::milliseconds degrade_cooldown{1000};
  // Publish locally registered records to the replica set on a miss.
  bool put_on_miss = true;
  // Encoding policy for replica publishes and read repairs
  // (--cache-precision); fetches are self-describing. Same contract as
  // RemoteStoreOptions::precision.
  quant::PrecisionMode precision = quant::PrecisionMode::kLossless;
  // Back-fill earlier replicas that missed when a later one hits.
  bool read_repair = true;
  // Async prefetch pipeline (0 disables; Prefetch() becomes a no-op).
  int prefetch_workers = 0;
  size_t prefetch_queue_cap = 64;
  size_t prefetch_staging_cap = 32;
  // Wire connections per ring member. Clamped up so every prefetch worker
  // plus one foreground fetch can be on the wire against the same member.
  int connections_per_member = 1;
};

// Wire-facing counters for one ring member. All monotonic except
// circuit_open, a gauge sampled at Stats() time.
struct RingMemberStats {
  std::string id;
  uint64_t remote_hits = 0;     // Whole records served (incl. prefetch).
  uint64_t remote_misses = 0;   // Reachable but not resident.
  uint64_t transport_failures = 0;
  uint64_t circuit_trips = 0;
  bool circuit_open = false;
  uint64_t puts_ok = 0;         // Replication publishes acked.
  uint64_t read_repairs = 0;    // Repair writes landed ON this member.
  uint64_t bytes_fetched = 0;   // Decoded fp32 bytes.
  uint64_t bytes_put = 0;
  uint64_t wire_bytes_fetched = 0;  // Encoded bytes (post-codec).
  uint64_t wire_bytes_put = 0;
};

// Aggregate ladder counters, same accounting identity as RemoteStoreStats:
//   front_hits + remote_hits + remote_misses + fallbacks
//     + singleflight_waits + prefetch_coalesced == Acquire() calls.
struct ShardedStoreStats {
  uint64_t front_hits = 0;
  uint64_t remote_hits = 0;
  uint64_t remote_misses = 0;  // >=1 member reachable, none resident.
  uint64_t fallbacks = 0;      // No member reachable for this key.
  uint64_t singleflight_waits = 0;
  uint64_t prefetch_coalesced = 0;
  uint64_t local_registrations = 0;
  uint64_t puts_ok = 0;        // Replica publishes acked (all members).
  uint64_t read_repairs = 0;   // Back-fill writes acked (all members).
  uint64_t failovers = 0;      // Walk steps past a failed/open member.
  uint64_t degrade_trips = 0;  // Per-member circuit trips, summed.
  // Decoded vs wire (post-codec) bytes; equal in lossless mode.
  uint64_t remote_bytes_fetched = 0;
  uint64_t remote_bytes_put = 0;
  uint64_t remote_wire_bytes_fetched = 0;
  uint64_t remote_wire_bytes_put = 0;
  uint64_t front_size = 0;
  double fetch_p50_us = 0.0;   // Over successful foreground record fetches.
  double fetch_p99_us = 0.0;

  // Prefetch pipeline (same meaning as RemoteStoreStats).
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_wasted = 0;
  uint64_t prefetch_redundant = 0;
  uint64_t prefetch_suppressed = 0;  // Every member circuit open at issue.
  uint64_t prefetch_dropped = 0;
  uint64_t prefetch_remote_hits = 0;
  uint64_t prefetch_remote_misses = 0;
  uint64_t prefetch_fallbacks = 0;
  uint64_t prefetch_bytes_fetched = 0;
  uint64_t prefetch_wire_bytes_fetched = 0;
  uint64_t prefetch_staged = 0;  // Gauge.
  double prefetch_p50_us = 0.0;
  double prefetch_p99_us = 0.0;

  std::vector<RingMemberStats> members;
};

class ShardedRemoteStore : public ActivationSource {
 public:
  explicit ShardedRemoteStore(ShardedStoreOptions options);
  ~ShardedRemoteStore() override;

  ShardedRemoteStore(const ShardedRemoteStore&) = delete;
  ShardedRemoteStore& operator=(const ShardedRemoteStore&) = delete;

  // Never fails; see the failure ladder above. Thread-safe.
  std::shared_ptr<const model::ActivationRecord> Acquire(
      const model::DiffusionModel& m, int template_id,
      bool record_kv) override;

  // Queue-ahead hint; same contract as RemoteActivationStore::Prefetch.
  void Prefetch(const model::DiffusionModel& m, int template_id,
                bool record_kv) override;

  ShardedStoreStats Stats() const;
  std::string MetricsJson() const;

  // Liveness probe of every member (rides the metrics frame — no new wire
  // type). Best effort, for startup diagnostics; the per-member circuit
  // breakers are the live health signal.
  std::vector<bool> ProbeMembers(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(250));

  const CacheRing& ring() const { return ring_; }

 private:
  struct FrontEntry {
    std::shared_ptr<const model::ActivationRecord> record;
    std::list<int>::iterator lru_it;
  };

  struct Flight {
    bool done = false;
    bool prefetch = false;
    bool joined = false;
    std::shared_ptr<const model::ActivationRecord> result;
  };

  struct PrefetchJob {
    int64_t flight_key = 0;
    int template_id = 0;
    int steps = 0;
    int blocks = 0;
    bool want_kv = false;
  };

  struct StagedEntry {
    std::shared_ptr<const model::ActivationRecord> record;
    uint64_t order = 0;
  };

  // One ring member's transport state. The pool is internally
  // synchronized; breaker fields live under breaker_mu_; counters under
  // mu_ (in stats_.members).
  struct Member {
    std::unique_ptr<net::CacheClientPool> pool;
    int consecutive_failures = 0;  // Under breaker_mu_.
    std::chrono::steady_clock::time_point degraded_until{};  // breaker_mu_.
  };

  // Outcome of one ring walk (the wire part of the ladder only).
  struct RingFetchResult {
    std::shared_ptr<model::ActivationRecord> record;
    int hit_member = -1;
    int reachable = 0;  // Members that answered (hit or miss).
    int failovers = 0;  // Walk steps past a failed/open member.
    int repairs = 0;    // Read-repair writes acked.
    uint64_t bytes = 0;
    uint64_t wire_bytes = 0;
    double fetch_us = 0.0;
    std::vector<int> missed;  // Reachable members that missed, pref order.
  };

  static int64_t FlightKey(int template_id, bool record_kv) {
    return static_cast<int64_t>(template_id) * 2 + (record_kv ? 1 : 0);
  }

  // Walks the preference list: skip open circuits, move past transport
  // failures, stop at a hit or after `replication` clean answers. On a
  // hit, read-repairs the earlier reachable replicas that missed. No mu_
  // held; member counters are updated under mu_ before returning.
  RingFetchResult RingFetch(int template_id, int steps, int blocks,
                            bool want_kv);
  // The foreground ladder: RingFetch, then register + replicate on miss,
  // then local fallback.
  std::shared_ptr<const model::ActivationRecord> FetchOrRegister(
      const model::DiffusionModel& m, int template_id, bool record_kv);
  // Publishes `record` to up to `replication` reachable preferred members
  // (miss path). Returns acked put count; updates member counters.
  int Replicate(int template_id, const model::ActivationRecord& record);
  void PrefetchLoop();
  void InstallFront(int template_id,
                    std::shared_ptr<const model::ActivationRecord> record);
  void InstallStaged(int template_id,
                     std::shared_ptr<const model::ActivationRecord> record);
  bool CircuitClosed(size_t member);
  // Trips only `member`'s circuit; returns true when it tripped.
  void NoteTransport(size_t member, bool ok);
  // True when at least one member's circuit is closed.
  bool AnyMemberReachable();

  ShardedStoreOptions options_;
  CacheRing ring_;
  int replication_ = 1;  // Clamped.

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable prefetch_cv_;
  std::map<int, FrontEntry> front_;
  std::list<int> lru_;
  std::map<int, StagedEntry> staged_;
  uint64_t staged_order_ = 0;
  std::map<int64_t, std::shared_ptr<Flight>> flights_;
  std::deque<PrefetchJob> prefetch_queue_;
  bool prefetch_stop_ = false;
  ShardedStoreStats stats_;  // members[] sized at construction.
  StatAccumulator fetch_us_;
  StatAccumulator prefetch_us_;

  std::vector<Member> members_;  // Indexed like ring_.member().
  mutable std::mutex breaker_mu_;

  std::vector<std::thread> prefetch_threads_;
};

}  // namespace flashps::cache

#endif  // FLASHPS_SRC_CACHE_RING_SHARDED_STORE_H_
