// Consistent-hash placement for the sharded cache tier.
//
// The ring answers one question: for a template id, in what order should
// the fleet's cache nodes be asked? Each member contributes `virtual_nodes`
// points on a 64-bit hash circle (FNV-1a over "host:port#v"), and a
// template lands at the first point clockwise of FNV-1a over its id bytes.
// Walking clockwise from there and collecting *distinct* members yields the
// preference list: entry 0 is the primary, entries 1..k-1 are the replicas,
// and everything after is the failover order when a preferred node is dead.
//
// Properties the sharded store (and its tests) rely on:
//
//   deterministic — placement depends only on the membership *set* (members
//     are sorted by id at construction, so listing order and process
//     boundaries do not matter) and the vnode count. Two workers configured
//     with the same --cache-nodes compute identical preference lists, so
//     replicas and read repairs land on the same nodes fleet-wide without
//     any coordination service.
//   minimal movement — removing a member deletes only its vnodes; the
//     surviving members' points do not move, so a dead node's ranges shift
//     to its clockwise successors and every other placement is unchanged
//     (PreferenceList minus the dead member == the smaller ring's list).
//   spread — vnodes break up the circle so each member serves many small
//     arcs instead of one big one; the Zipf head's templates scatter
//     across members instead of melting whichever node owns one arc.
//
// The ring is placement only: liveness (circuit breakers, probes) belongs
// to the ShardedRemoteStore, which walks the list skipping members whose
// per-member circuit is open.
#ifndef FLASHPS_SRC_CACHE_RING_CACHE_RING_H_
#define FLASHPS_SRC_CACHE_RING_CACHE_RING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flashps::cache {

struct RingMember {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  std::string id() const { return host + ":" + std::to_string(port); }
  bool operator==(const RingMember& o) const {
    return host == o.host && port == o.port;
  }
};

// Parses "host:port,host:port,..." (a bare "port" entry means loopback).
// Returns an empty vector and sets *error on a malformed entry.
std::vector<RingMember> ParseRingMembers(const std::string& csv,
                                         std::string* error);

struct CacheRingOptions {
  std::vector<RingMember> members;
  // Hash points per member. More vnodes = smoother spread, larger table;
  // 64 keeps the first-preference share within a few percent of 1/N for
  // the fleet sizes this tier targets.
  int virtual_nodes = 64;
};

class CacheRing {
 public:
  explicit CacheRing(CacheRingOptions options);

  size_t size() const { return members_.size(); }
  // Members are sorted by id(); indices returned by PreferenceList refer
  // to this order.
  const RingMember& member(size_t index) const { return members_[index]; }
  const std::vector<RingMember>& members() const { return members_; }

  // Every member exactly once, in ring order from the template's point.
  // Deterministic for a given membership set (see file comment).
  std::vector<int> PreferenceList(int64_t template_id) const;

  // Convenience: PreferenceList(template_id)[0] (-1 on an empty ring).
  int PrimaryFor(int64_t template_id) const;

 private:
  struct VNode {
    uint64_t hash;
    int member;
  };

  std::vector<RingMember> members_;  // Sorted by id(), deduplicated.
  std::vector<VNode> ring_;          // Sorted by hash.
};

}  // namespace flashps::cache

#endif  // FLASHPS_SRC_CACHE_RING_CACHE_RING_H_
