// Hierarchical storage manager for cached template activations (paper §4.2).
//
// A template's activation cache (GiB-scale) lives on disk/remote storage
// permanently once registered; a host-memory tier holds the hot set under an
// LRU policy; the per-request working set is gather-loaded HBM-ward by the
// pipeline executor (not managed here — HBM holds only in-flight data).
//
// Promotion from disk to host runs on a dedicated disk-read timeline so it
// overlaps with the request's queueing delay, the "prefetch while queued"
// behaviour the paper adopts from LLM KV-cache management.
#ifndef FLASHPS_SRC_CACHE_CACHE_ENGINE_H_
#define FLASHPS_SRC_CACHE_CACHE_ENGINE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/time.h"
#include "src/device/device.h"

namespace flashps::cache {

enum class Tier { kHost, kDisk, kUnknown };

struct CacheStats {
  uint64_t host_hits = 0;
  uint64_t disk_promotions = 0;
  uint64_t evictions = 0;
  uint64_t host_bytes_used = 0;
};

class CacheEngine {
 public:
  // `host_capacity_bytes`: host-memory budget for template caches.
  CacheEngine(uint64_t host_capacity_bytes, device::DeviceSpec spec);

  // Registers a template's activation cache (it is durably on disk and, if
  // it fits, resident in host memory immediately).
  void RegisterTemplate(int template_id, uint64_t bytes, TimePoint now);

  bool IsRegistered(int template_id) const;
  Tier Locate(int template_id) const;

  // Ensures the template's cache is (or becomes) host-resident. Returns the
  // time at which it is usable: `now` if already resident, otherwise the
  // completion time of a disk read queued on the disk timeline. Idempotent:
  // a promotion already in flight returns its existing completion time.
  TimePoint EnsureHostResident(int template_id, TimePoint now);

  // Marks use for LRU ordering (call when a request starts denoising).
  void Touch(int template_id, TimePoint now);

  uint64_t host_bytes_used() const { return host_bytes_used_; }
  uint64_t host_capacity() const { return host_capacity_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t bytes = 0;
    bool host_resident = false;
    // Valid while a promotion is in flight (ready time in the future).
    TimePoint host_ready = TimePoint();
    std::list<int>::iterator lru_it;  // Valid iff host_resident.
  };

  // Evicts LRU entries until `bytes` fit; the caller then accounts them.
  void EvictForSpace(uint64_t bytes);

  uint64_t host_capacity_;
  uint64_t host_bytes_used_ = 0;
  device::DeviceSpec spec_;
  device::StreamTimeline disk_timeline_;
  std::unordered_map<int, Entry> entries_;
  std::list<int> lru_;  // Front = most recently used.
  CacheStats stats_;
};

}  // namespace flashps::cache

#endif  // FLASHPS_SRC_CACHE_CACHE_ENGINE_H_
