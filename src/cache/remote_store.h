// ActivationSource backed by a shared cache node over the wire protocol.
//
// Layered exactly as the issue's state machine describes:
//
//   1. in-process LRU front   — a hit costs no RPC at all; capacity is a
//                               record count (the hot templates of one
//                               worker, not the fleet's whole corpus).
//   2. single-flight dedup    — concurrent Acquire()s of the same
//                               (template, kv) key collapse into one
//                               fetch; late arrivals block on the flight
//                               and share its result.
//   3. remote fetch           — the whole record is fetched from the cache
//                               node, pipelined one matrix per frame,
//                               every payload checksum-verified.
//   4. fallback               — a remote miss registers locally and (best
//                               effort) publishes the record back to the
//                               node so the next worker hits. A transport
//                               failure registers locally too; after
//                               `max_consecutive_failures` of those in a
//                               row the circuit opens and fetches are
//                               skipped outright for `degrade_cooldown`,
//                               then one probe is allowed again.
//
// The invariant the serving tier relies on: Acquire() NEVER fails — a
// worker must never fail a request because the cache tier is down; the
// worst case is local-registration latency, observable in the fallback
// counters.
#ifndef FLASHPS_SRC_CACHE_REMOTE_STORE_H_
#define FLASHPS_SRC_CACHE_REMOTE_STORE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/cache/activation_store.h"
#include "src/common/stats.h"
#include "src/net/cache_client.h"

namespace flashps::cache {

struct RemoteStoreOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // In-process front capacity, in records (0 = front disabled).
  size_t lru_capacity = 64;
  // Bounded connect retry with exponential backoff, then degrade.
  int connect_attempts = 2;
  std::chrono::milliseconds connect_backoff{50};
  // Deadline for one whole-record fetch or put.
  std::chrono::milliseconds call_timeout{5000};
  // Circuit breaker: this many consecutive transport failures open the
  // circuit; while open, Acquire() goes straight to local registration.
  int max_consecutive_failures = 3;
  std::chrono::milliseconds degrade_cooldown{1000};
  // Publish locally registered records back to the node on a remote miss.
  bool put_on_miss = true;
};

// Counter snapshot; `front_hits + remote_hits + remote_misses + fallbacks`
// equals the number of non-coalesced Acquire() calls.
struct RemoteStoreStats {
  uint64_t front_hits = 0;
  uint64_t remote_hits = 0;    // Whole records fetched remotely.
  uint64_t remote_misses = 0;  // Node reachable but record not resident.
  uint64_t fallbacks = 0;      // Transport down or circuit open.
  uint64_t singleflight_waits = 0;
  uint64_t local_registrations = 0;  // Misses + fallbacks that registered.
  uint64_t puts_ok = 0;        // Records published back successfully.
  uint64_t degrade_trips = 0;  // Times the circuit opened.
  uint64_t remote_bytes_fetched = 0;
  uint64_t remote_bytes_put = 0;
  uint64_t front_size = 0;
  double fetch_p50_us = 0.0;  // Over successful remote record fetches.
  double fetch_p99_us = 0.0;
};

class RemoteActivationStore : public ActivationSource {
 public:
  explicit RemoteActivationStore(RemoteStoreOptions options);
  ~RemoteActivationStore() override;

  RemoteActivationStore(const RemoteActivationStore&) = delete;
  RemoteActivationStore& operator=(const RemoteActivationStore&) = delete;

  // Never fails; see the fallback ladder above. Thread-safe.
  std::shared_ptr<const model::ActivationRecord> Acquire(
      const model::DiffusionModel& m, int template_id,
      bool record_kv) override;

  RemoteStoreStats Stats() const;
  std::string MetricsJson() const;

 private:
  // Front key: a record registered with K/V satisfies both kv-ness
  // levels, so the front holds one record per template and upgrades in
  // place when a kv-wanting Acquire() replaces a Y-only record.
  struct FrontEntry {
    std::shared_ptr<const model::ActivationRecord> record;
    std::list<int>::iterator lru_it;
  };

  // One in-progress fetch; waiters block on cv_ until done.
  struct Flight {
    bool done = false;
    std::shared_ptr<const model::ActivationRecord> result;
  };

  // The fetch/fallback ladder (no front lock held). Serialized on
  // rpc_mu_: one client, one connection, one call at a time — the
  // single-flight layer already coalesced the hot path.
  std::shared_ptr<const model::ActivationRecord> FetchOrRegister(
      const model::DiffusionModel& m, int template_id, bool record_kv);
  // Under mu_: install into the front, evicting LRU tails.
  void InstallFront(int template_id,
                    std::shared_ptr<const model::ActivationRecord> record);

  RemoteStoreOptions options_;

  // Front + flights + counters.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, FrontEntry> front_;
  std::list<int> lru_;  // Front = most recently used.
  // Keyed by template_id * 2 + record_kv.
  std::map<int64_t, std::shared_ptr<Flight>> flights_;
  RemoteStoreStats stats_;
  StatAccumulator fetch_us_;

  // Transport: client + circuit-breaker state.
  std::mutex rpc_mu_;
  std::unique_ptr<net::CacheClient> client_;
  int consecutive_failures_ = 0;
  std::chrono::steady_clock::time_point degraded_until_{};
};

}  // namespace flashps::cache

#endif  // FLASHPS_SRC_CACHE_REMOTE_STORE_H_
