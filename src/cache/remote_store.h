// ActivationSource backed by a shared cache node over the wire protocol.
//
// Layered exactly as the issue's state machine describes:
//
//   1. in-process LRU front   — a hit costs no RPC at all; capacity is a
//                               record count (the hot templates of one
//                               worker, not the fleet's whole corpus).
//   2. prefetch staging       — records fetched by the background prefetch
//                               pipeline that no Acquire() has consumed
//                               yet. Held outside the LRU cap (a bounded
//                               double-buffer, like Algorithm 1's next-step
//                               cache load) so an undersized front cannot
//                               evict a prefetched record before the
//                               request it was fetched for arrives.
//   3. single-flight dedup    — concurrent Acquire()s of the same
//                               (template, kv) key collapse into one
//                               fetch; late arrivals block on the flight
//                               and share its result. Prefetch() opens a
//                               flight *synchronously*, so a foreground
//                               Acquire() racing a prefetch always joins
//                               it instead of starting a second fetch.
//   4. remote fetch           — the whole record is fetched from the cache
//                               node, pipelined one matrix per frame,
//                               every payload checksum-verified. Fetches
//                               ride a small connection pool, so
//                               prefetches for different templates (and
//                               foreground fetches) do not serialize
//                               behind one socket.
//   5. fallback               — a remote miss registers locally and (best
//                               effort) publishes the record back to the
//                               node so the next worker hits. A transport
//                               failure registers locally too; after
//                               `max_consecutive_failures` of those in a
//                               row the circuit opens and fetches are
//                               skipped outright for `degrade_cooldown`,
//                               then one probe is allowed again. While the
//                               circuit is open, prefetch issue is
//                               suppressed at the door.
//
// The prefetch pipeline (Prefetch(), `prefetch_workers` > 0) is the
// serving-tier extension of the paper's Algorithm 1: the gateway and the
// worker runtime hint queued requests' templates ahead of admission, so
// the wire fetch overlaps the predecessor requests' denoise loop the same
// way Algorithm 1 overlaps step s+1's cache load with step s's compute.
// A prefetch job performs the *network* part of the ladder only — it
// never registers locally (registration needs the model, whose lifetime
// belongs to the hinting worker); a prefetch that misses or dies resolves
// its flight empty and the foreground Acquire() runs the fallback ladder
// itself.
//
// The invariant the serving tier relies on: Acquire() NEVER fails — a
// worker must never fail a request because the cache tier is down; the
// worst case is local-registration latency, observable in the fallback
// counters.
#ifndef FLASHPS_SRC_CACHE_REMOTE_STORE_H_
#define FLASHPS_SRC_CACHE_REMOTE_STORE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/activation_store.h"
#include "src/common/stats.h"
#include "src/net/cache_client.h"

namespace flashps::cache {

struct RemoteStoreOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // In-process front capacity, in records (0 = front disabled).
  size_t lru_capacity = 64;
  // Bounded connect retry with exponential backoff, then degrade.
  int connect_attempts = 2;
  std::chrono::milliseconds connect_backoff{50};
  // Deadline for one whole-record fetch or put.
  std::chrono::milliseconds call_timeout{5000};
  // Shared secret presented to the cache node at connect (see
  // CacheClientOptions::auth_token). Empty = no handshake.
  std::string auth_token;
  // Circuit breaker: this many consecutive transport failures open the
  // circuit; while open, Acquire() goes straight to local registration.
  int max_consecutive_failures = 3;
  std::chrono::milliseconds degrade_cooldown{1000};
  // Publish locally registered records back to the node on a remote miss.
  bool put_on_miss = true;
  // Encoding policy for miss-publishes (--cache-precision): lossless keeps
  // every cached byte bitwise-exact; fp16/staged shrink wire frames and
  // node residency at a quality-gated precision cost. Fetches are
  // self-describing, so this only shapes what THIS store publishes.
  quant::PrecisionMode precision = quant::PrecisionMode::kLossless;
  // Async prefetch pipeline: background threads resolving Prefetch()
  // hints. 0 (the default) disables prefetch entirely — Prefetch() is a
  // no-op and the store behaves exactly like the pre-prefetch ladder.
  int prefetch_workers = 0;
  // Bounded queue of prefetch jobs not yet picked up; hints beyond the
  // cap are dropped (counted), never queued unboundedly.
  size_t prefetch_queue_cap = 64;
  // Completed-but-unconsumed prefetched records held outside the LRU cap;
  // the oldest is discarded (counted wasted) beyond this.
  size_t prefetch_staging_cap = 32;
  // Wire connections in the pool shared by foreground fetches and
  // prefetch jobs. Clamped up so the prefetch workers plus one foreground
  // fetch can all be on the wire at once.
  int connection_pool = 1;
};

// Counter snapshot. Every non-coalesced Acquire() lands in exactly one of
// front_hits / remote_hits / remote_misses / fallbacks; coalesced ones
// land in singleflight_waits (joined a foreground fetch) or
// prefetch_coalesced (absorbed by the prefetch pipeline — joined a
// prefetch flight or consumed a staged record). So
//   front_hits + remote_hits + remote_misses + fallbacks
//     + singleflight_waits + prefetch_coalesced == Acquire() calls,
// and remote_hits + remote_misses + fallbacks == foreground Acquire()s
// that stalled on the ladder (the number queue-ahead prefetch drives
// toward zero).
struct RemoteStoreStats {
  uint64_t front_hits = 0;
  uint64_t remote_hits = 0;    // Whole records fetched remotely (foreground).
  uint64_t remote_misses = 0;  // Node reachable but record not resident.
  uint64_t fallbacks = 0;      // Transport down or circuit open.
  uint64_t singleflight_waits = 0;  // Joined a foreground-origin flight.
  uint64_t local_registrations = 0;  // Misses + fallbacks that registered.
  uint64_t puts_ok = 0;        // Records published back successfully.
  uint64_t degrade_trips = 0;  // Times the circuit opened.
  // Decoded fp32 bytes (what the records hold) vs wire bytes (what the
  // codec actually moved). Equal in lossless mode; the gap is the
  // compression win.
  uint64_t remote_bytes_fetched = 0;
  uint64_t remote_bytes_put = 0;
  uint64_t remote_wire_bytes_fetched = 0;
  uint64_t remote_wire_bytes_put = 0;
  uint64_t front_size = 0;
  double fetch_p50_us = 0.0;  // Over successful foreground record fetches.
  double fetch_p99_us = 0.0;

  // Prefetch pipeline. issued = every hint that opened a flight;
  // coalesced = Acquire()s absorbed by the pipeline; wasted = prefetched
  // records discarded unconsumed (staging overflow or redundant by the
  // time they landed).
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_coalesced = 0;
  uint64_t prefetch_wasted = 0;
  uint64_t prefetch_redundant = 0;   // Hint already satisfied at issue time.
  uint64_t prefetch_suppressed = 0;  // Circuit open at issue time.
  uint64_t prefetch_dropped = 0;     // Job queue full at issue time.
  uint64_t prefetch_remote_hits = 0;    // Jobs that fetched a whole record.
  uint64_t prefetch_remote_misses = 0;  // Jobs that found it not resident.
  uint64_t prefetch_fallbacks = 0;      // Jobs that died on transport.
  uint64_t prefetch_bytes_fetched = 0;
  uint64_t prefetch_wire_bytes_fetched = 0;
  uint64_t prefetch_staged = 0;  // Currently staged (gauge).
  double prefetch_p50_us = 0.0;  // Over successful prefetch record fetches.
  double prefetch_p99_us = 0.0;
};

class RemoteActivationStore : public ActivationSource {
 public:
  explicit RemoteActivationStore(RemoteStoreOptions options);
  ~RemoteActivationStore() override;

  RemoteActivationStore(const RemoteActivationStore&) = delete;
  RemoteActivationStore& operator=(const RemoteActivationStore&) = delete;

  // Never fails; see the fallback ladder above. Thread-safe.
  std::shared_ptr<const model::ActivationRecord> Acquire(
      const model::DiffusionModel& m, int template_id,
      bool record_kv) override;

  // Queue-ahead hint: opens a single-flight entry and hands the wire
  // fetch to the background workers. Never blocks on the fetch; reads
  // only m.config() (steps/blocks) during the call. No-op when
  // `prefetch_workers` is 0; suppressed while the circuit is open.
  // Thread-safe.
  void Prefetch(const model::DiffusionModel& m, int template_id,
                bool record_kv) override;

  RemoteStoreStats Stats() const;
  std::string MetricsJson() const;

 private:
  // Front key: a record registered with K/V satisfies both kv-ness
  // levels, so the front holds one record per template and upgrades in
  // place when a kv-wanting Acquire() replaces a Y-only record.
  struct FrontEntry {
    std::shared_ptr<const model::ActivationRecord> record;
    std::list<int>::iterator lru_it;
  };

  // One in-progress fetch; waiters block on cv_ until done. A prefetch
  // flight may resolve with no result (miss/transport death) — waiters
  // then retry the ladder themselves rather than ever observing null.
  struct Flight {
    bool done = false;
    bool prefetch = false;  // Opened by Prefetch(), resolved by a worker.
    bool joined = false;    // Some Acquire() is waiting on it.
    std::shared_ptr<const model::ActivationRecord> result;
  };

  // A queued prefetch: everything the wire fetch needs, captured by value
  // at hint time (no model pointer — see the class comment).
  struct PrefetchJob {
    int64_t flight_key = 0;
    int template_id = 0;
    int steps = 0;
    int blocks = 0;
    bool want_kv = false;
  };

  // A staged record: prefetched, landed, not yet consumed by Acquire().
  struct StagedEntry {
    std::shared_ptr<const model::ActivationRecord> record;
    uint64_t order = 0;  // FIFO discard order for the staging cap.
  };

  static int64_t FlightKey(int template_id, bool record_kv) {
    return static_cast<int64_t>(template_id) * 2 + (record_kv ? 1 : 0);
  }

  // The foreground fetch/fallback ladder (no mu_ held). Rides one pooled
  // connection; concurrent calls for different keys overlap on the wire.
  std::shared_ptr<const model::ActivationRecord> FetchOrRegister(
      const model::DiffusionModel& m, int template_id, bool record_kv);
  // Background worker: pops jobs, fetches, resolves flights into staging.
  void PrefetchLoop();
  // Under mu_: install into the front, evicting LRU tails.
  void InstallFront(int template_id,
                    std::shared_ptr<const model::ActivationRecord> record);
  // Under mu_: stage a prefetched record, discarding the oldest beyond
  // the staging cap.
  void InstallStaged(int template_id,
                     std::shared_ptr<const model::ActivationRecord> record);
  // Circuit breaker (breaker_mu_): may we try the wire right now?
  bool CircuitClosed();
  // Records one transport outcome; trips the circuit on repeated failure.
  void NoteTransport(bool ok);

  RemoteStoreOptions options_;

  // Front + staging + flights + prefetch queue + counters.
  mutable std::mutex mu_;
  std::condition_variable cv_;           // Flight completion.
  std::condition_variable prefetch_cv_;  // Job queue.
  std::map<int, FrontEntry> front_;
  std::list<int> lru_;  // Front = most recently used.
  std::map<int, StagedEntry> staged_;
  uint64_t staged_order_ = 0;
  std::map<int64_t, std::shared_ptr<Flight>> flights_;
  std::deque<PrefetchJob> prefetch_queue_;
  bool prefetch_stop_ = false;
  RemoteStoreStats stats_;
  StatAccumulator fetch_us_;
  StatAccumulator prefetch_us_;

  // Transport: pooled clients + circuit-breaker state.
  std::unique_ptr<net::CacheClientPool> pool_;
  std::mutex breaker_mu_;
  int consecutive_failures_ = 0;
  std::chrono::steady_clock::time_point degraded_until_{};

  std::vector<std::thread> prefetch_threads_;
};

}  // namespace flashps::cache

#endif  // FLASHPS_SRC_CACHE_REMOTE_STORE_H_
