// Wire (de)serialization of runtime::OnlineRequest.
//
// The payload layout (all integers little-endian, see src/common/bytes.h):
//
//   template_id   i32
//   prompt_seed   u64
//   slo_us        i64   relative SLO budget; 0 = none
//   grid_h        i32   latent token grid height, (0, kMaxGridSide]
//   grid_w        i32   latent token grid width,  (0, kMaxGridSide]
//   n_masked      u32   <= grid_h * grid_w
//   masked[i]     u32   token ids, strictly increasing, < grid_h * grid_w
//   res_h         i32   request resolution; must equal grid_h (wire v3+)
//   res_w         i32   request resolution; must equal grid_w (wire v3+)
//
// The trailing resolution pair exists so hybrid-resolution servers can
// route by an explicit, validated field rather than inferring intent from
// the mask shape; v2 payloads omit it and decode with resolution = mask
// grid (see net::kResolutionWireVersion).
//
// Only the masked token list travels; the decoder rebuilds the unmasked
// complement, so a request can never arrive with an inconsistent mask.
// Decoding validates every field and reports a human-readable reason on
// failure — a malformed request is rejected, never partially applied.
// Absolute deadlines are deliberately not serialized: they are stamped
// server-side from the relative SLO at dispatch (clocks differ across
// hosts).
#ifndef FLASHPS_SRC_RUNTIME_SERDE_H_
#define FLASHPS_SRC_RUNTIME_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/runtime/online_server.h"

namespace flashps::runtime {

// Upper bound on either latent grid side accepted off the wire. Generous
// next to real diffusion latents (<= 128) while keeping the worst-case
// token list bounded.
inline constexpr int kMaxGridSide = 512;

// Appends the request payload to `out`.
void AppendOnlineRequest(const OnlineRequest& request,
                         std::vector<uint8_t>& out);

// Reads one request payload from `reader`. Returns false (and fills
// `error` when non-null) on short input or any validation failure; the
// reader is left failed so callers composing larger decodes see it too.
// `with_resolution` selects the payload layout: true reads and validates
// the trailing res_h/res_w pair (wire v3+), false stops after the masked
// token list (legacy v2 frames).
bool ReadOnlineRequest(ByteReader& reader, OnlineRequest* out,
                       std::string* error, bool with_resolution = true);

}  // namespace flashps::runtime

#endif  // FLASHPS_SRC_RUNTIME_SERDE_H_
